"""Choosing a stable eps — the Section 4.2 / Figure 6 workflow, end to end.

The paper's sandwich theorem turns parameter stability into a guarantee:
if the clustering does not change between eps and eps(1+rho), then
rho-approximate DBSCAN at eps provably returns the exact clusters.  The
practical workflow it suggests (leaning on the OPTICS view of the data):

1. run OPTICS once; the reachability plot shows clusters as valleys and
   the merge radii as peaks;
2. sweep eps (cheap: extract from the same OPTICS run) and find the wide
   plateaus of the cluster-count profile;
3. pick the midpoint of a wide plateau: the plateau's relative width is
   certified rho head-room.

Run::

    python examples/parameter_selection.py
"""

import numpy as np

from repro import approx_dbscan, dbscan
from repro.data import seed_spreader
from repro.extensions.optics import extract_dbscan, optics, reachability_profile
from repro.extensions.stability import plateaus

N = 4000
MIN_PTS = 10


def main() -> None:
    points = seed_spreader(N, 3, seed=42).points
    print(f"dataset: SS3D, n={N}, MinPts={MIN_PTS}\n")

    # 1. One OPTICS run at a generous radius.
    eps_top = 20000.0
    ordering = optics(points, eps_top, MIN_PTS)
    print("OPTICS reachability plot (valleys = clusters):")
    print(reachability_profile(ordering, width=72, height=10))
    print()

    # 2. eps sweep via extraction from the same run.
    sweep = np.linspace(2000.0, eps_top, 10)
    profile = [(float(e), extract_dbscan(ordering, float(e)).n_clusters)
               for e in sweep]
    print("eps sweep (extracted from the single OPTICS run):")
    for eps, k in profile:
        print(f"  eps={eps:>8.0f}: {k} clusters")

    flats = [p for p in plateaus(profile) if p.n_clusters >= 2]
    if not flats:
        print("\nno stable multi-cluster plateau in this sweep")
        return
    best = max(flats, key=lambda p: p.eps_hi - p.eps_lo)
    rho_headroom = best.relative_width / 2
    print(f"\nwidest stable plateau: eps in [{best.eps_lo:.0f}, {best.eps_hi:.0f}] "
          f"({best.n_clusters} clusters)")
    print(f"suggested eps = {best.midpoint:.0f}, certified rho head-room ~ "
          f"{rho_headroom:.3f}")

    # 3. The certificate in action: approximate DBSCAN at the suggested eps
    #    returns exactly the exact clusters.
    rho = min(0.1, rho_headroom / 2) or 0.001
    exact = dbscan(points, best.midpoint, MIN_PTS)
    approx = approx_dbscan(points, best.midpoint, MIN_PTS, rho=rho)
    same = approx.same_clusters(exact)
    print(f"\ncheck: rho={rho:g}-approximate DBSCAN at the suggested eps "
          f"returns exactly the exact clusters: {same}")


if __name__ == "__main__":
    main()
