"""Quickstart: exact and rho-approximate DBSCAN on arbitrary-shape data.

Generates the classic two-moons dataset (the kind of arbitrarily shaped
clusters DBSCAN exists for — see the paper's Figure 1), clusters it with

* exact DBSCAN (the paper's grid + BCP algorithm, Theorem 2), and
* rho-approximate DBSCAN (Theorem 4, expected linear time),

and verifies the two agree.  Run::

    python examples/quickstart.py
"""

import numpy as np

from repro import approx_dbscan, dbscan
from repro.data import two_moons
from repro.evaluation import confusion_summary


def main() -> None:
    points, provenance = two_moons(2000, noise=0.05, seed=7)
    eps, min_pts = 0.15, 10

    print(f"dataset: {len(points)} points in {points.shape[1]}D (two moons)")
    print(f"parameters: eps={eps}, MinPts={min_pts}\n")

    exact = dbscan(points, eps, min_pts)  # algorithm="grid" by default
    print(f"exact DBSCAN      : {exact.summary()}")

    approx = approx_dbscan(points, eps, min_pts, rho=0.001)
    print(f"0.001-approx DBSCAN: {approx.summary()}\n")

    print(confusion_summary(exact, approx))

    # The moons are interleaved: k-means-style methods cannot separate
    # them, but density-based clustering does.  Check the two clusters
    # correspond to the two generating moons.
    for cid, cluster in enumerate(exact.clusters):
        members = np.fromiter(cluster, dtype=np.int64)
        moons = provenance[members]
        majority = np.bincount(moons).argmax()
        purity = (moons == majority).mean()
        print(f"cluster {cid}: {len(members)} points, {purity:.1%} from moon {majority}")


if __name__ == "__main__":
    main()
