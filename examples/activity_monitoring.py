"""Activity-pattern discovery in wearable-sensor data — the *PAMAP2* use case.

The paper's PAMAP2 dataset is the 4D PCA of inertial-sensor streams from
subjects performing daily activities.  This example simulates such streams
(several oscillatory activity regimes over 9 IMU channels), projects them
to 4D exactly as the paper preprocessed PAMAP2, and shows the practical
point of Section 5.3: on multi-dimensional data the classic baselines slow
down dramatically as eps grows, while rho-approximate DBSCAN stays fast —
at (almost always) identical clustering output.

Run::

    python examples/activity_monitoring.py
"""

from time import perf_counter

from repro import approx_dbscan, dbscan
from repro.data import pamap2_like
from repro.evaluation import confusion_summary

N = 6000
EPS = 6000.0
MIN_PTS = 25


def main() -> None:
    points = pamap2_like(N, seed=99)
    print(f"simulated {N} sensor readings -> PCA to {points.shape[1]}D\n")

    runs = {}
    for name in ("kdd96", "grid"):
        start = perf_counter()
        runs[name] = dbscan(points, EPS, MIN_PTS, algorithm=name)
        print(f"{name:>7}: {perf_counter() - start:7.3f}s  {runs[name].summary()}")

    start = perf_counter()
    approx = approx_dbscan(points, EPS, MIN_PTS, rho=0.001)
    print(f"{'approx':>7}: {perf_counter() - start:7.3f}s  {approx.summary()}\n")

    print("approx vs exact:", confusion_summary(runs["grid"], approx))
    print(
        "\nEach cluster is one recurring activity regime; noise points are "
        "transitions between activities."
    )
    for cid, size in enumerate(approx.cluster_sizes()):
        share = size / approx.n
        print(f"  activity cluster {cid}: {size} readings ({share:.1%} of the stream)")


if __name__ == "__main__":
    main()
