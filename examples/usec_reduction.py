"""Executable Lemma 4: any DBSCAN algorithm is a USEC solver.

The paper's hardness result (Theorem 1) rests on a reduction: given a USEC
instance (points + equal-radius balls), run DBSCAN on the union of the
points and ball centres with eps = radius and MinPts = 1; the answer is
*yes* iff some point shares a cluster with some centre.  A DBSCAN
algorithm faster than n^{4/3} would therefore crack a problem widely
believed to require Omega(n^{4/3}) time.

This example runs the reduction against a brute-force USEC oracle on a
batch of random and planted instances — a machine-checked demonstration of
the proof's constructive half.

Run::

    python examples/usec_reduction.py
"""

from time import perf_counter

from repro import dbscan
from repro.hardness import planted_instance, random_instance, usec_brute, usec_via_dbscan


def solver(P, eps, min_pts):
    return dbscan(P, eps, min_pts, algorithm="grid")


def main() -> None:
    print("Lemma 4: solving USEC through a DBSCAN black box\n")
    print(f"{'instance':<28} {'brute':>6} {'via DBSCAN':>10}  agree")
    print("-" * 56)

    agree = 0
    total = 0
    start = perf_counter()
    for seed in range(10):
        inst = random_instance(300, 200, d=3, radius=1400.0, domain=100_000.0, seed=seed)
        truth = usec_brute(inst)
        via = usec_via_dbscan(inst, solver)
        total += 1
        agree += truth == via
        print(f"random 3D (seed {seed:>2})        {str(truth):>6} {str(via):>10}  {truth == via}")

    for answer in (True, False):
        for seed in range(3):
            inst = planted_instance(
                200, 100, d=5, radius=20_000.0, answer=answer,
                domain=100_000.0, seed=seed,
            )
            truth = usec_brute(inst)
            via = usec_via_dbscan(inst, solver)
            total += 1
            agree += truth == via
            label = f"planted 5D {str(answer):<5} (seed {seed})"
            print(f"{label:<28} {str(truth):>6} {str(via):>10}  {truth == via}")

    elapsed = perf_counter() - start
    print("-" * 56)
    print(f"{agree}/{total} instances agree ({elapsed:.2f}s total)")
    if agree == total:
        print("\nThe reduction is faithful: a fast DBSCAN would be a fast USEC solver,")
        print("which is why Theorem 1's lower bound applies to DBSCAN itself.")


if __name__ == "__main__":
    main()
