"""Figure 1's motivation, executable: DBSCAN vs k-means on arbitrary shapes.

The paper opens with two classic pictures — snake-shaped clusters and
noisy rings — and the claim that density-based clustering finds such
shapes while k-means "typically returns ball-like clusters".  This
example regenerates both datasets, runs rho-approximate DBSCAN and our
k-means baseline, scores each against the generating components, and
renders the side-by-side as ASCII.

Run::

    python examples/arbitrary_shapes.py
"""

import numpy as np

from repro import approx_dbscan
from repro.data import rings, snakes
from repro.extensions.kmeans import kmeans, purity

GLYPHS = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
WIDTH, HEIGHT = 64, 20


def render(points, labels):
    lo, hi = points.min(axis=0), points.max(axis=0)
    span = np.where(hi > lo, hi - lo, 1.0)
    canvas = [[" "] * WIDTH for _ in range(HEIGHT)]
    for (x, y), label in zip(points, labels):
        c = int((x - lo[0]) / span[0] * (WIDTH - 1))
        r = int((y - lo[1]) / span[1] * (HEIGHT - 1))
        canvas[HEIGHT - 1 - r][c] = GLYPHS[label % 26] if label >= 0 else "."
    return "\n".join("".join(row) for row in canvas)


def compare(name, points, provenance, eps, min_pts, k):
    print(f"=== {name} ({len(points)} points, {k} generating components) ===\n")
    db = approx_dbscan(points, eps, min_pts, rho=0.001)
    km = kmeans(points, k, seed=0)
    print(f"DBSCAN ({db.n_clusters} clusters, purity {purity(db.labels, provenance):.1%}):")
    print(render(points, db.labels))
    print(f"\nk-means (k={k}, purity {purity(km.labels, provenance):.1%}):")
    print(render(points, km.labels))
    print()
    return purity(db.labels, provenance), purity(km.labels, provenance)


def main() -> None:
    pts, prov = snakes(1200, n_snakes=4, seed=3)
    db_p, km_p = compare("snakes (Figure 1, left)", pts, prov,
                         eps=0.6, min_pts=6, k=4)

    pts, prov = rings(1200, radii=(1.0, 2.2, 3.4), noise=0.05, seed=5)
    db_p2, km_p2 = compare("rings (Figure 1, right, in spirit)", pts, prov,
                           eps=0.35, min_pts=6, k=3)

    print("Summary: density-based clustering recovers the arbitrary shapes "
          f"(purity {db_p:.1%} / {db_p2:.1%}) where k-means cuts across them "
          f"({km_p:.1%} / {km_p2:.1%}).")


if __name__ == "__main__":
    main()
