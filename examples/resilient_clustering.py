"""Resilient clustering: budgets, degradation, and checkpoint/resume.

The paper's Section 5.3 tables mark exact baselines that "did not
terminate within 12 hours"; its answer is rho-approximate DBSCAN, whose
result is sandwiched between DBSCAN(eps) and DBSCAN(eps(1+rho))
(Theorem 3).  ``repro.runtime`` turns that into operational machinery,
demonstrated here:

1. a uniform ``time_budget`` that every algorithm honours cooperatively;
2. the degradation cascade ``run_resilient`` — exact under budget, else
   rho-approximate, else a subsampled run — which degrades instead of
   dying (faults injected deterministically to force each hop);
3. phase-level checkpointing: a run killed mid-pipeline resumes from its
   last completed phase and returns the identical clustering.

Run::

    python examples/resilient_clustering.py
"""

import os
import tempfile

import numpy as np

from repro import ResiliencePolicy, dbscan, run_resilient
from repro.data import seed_spreader
from repro.errors import TimeoutExceeded
from repro.runtime import CheckpointStore, inject_faults


def main() -> None:
    dataset = seed_spreader(2000, 3, seed=7)
    points = dataset.points
    eps, min_pts = 5000.0, 10
    print(f"dataset: {len(points)} points in {points.shape[1]}D (seed spreader)")
    print(f"parameters: eps={eps:g}, MinPts={min_pts}\n")

    # 1. A uniform time budget.  The injected clock skip simulates an
    # exact run blowing past its budget without a real long wait.
    print("-- deadlines everywhere " + "-" * 40)
    with inject_faults(clock_skew=3600.0, skew_after=1):
        try:
            dbscan(points, eps, min_pts, algorithm="grid", time_budget=10.0)
        except TimeoutExceeded as exc:
            print(f"exact run cancelled cooperatively: {exc}")

    # 2. The degradation cascade under the same fault: tier "exact" times
    # out, tier "approx" serves the result with the sandwich guarantee.
    print("\n-- graceful degradation " + "-" * 40)
    policy = ResiliencePolicy(time_budget=10.0, rho=0.001)
    with inject_faults(clock_skew=3600.0, skew_after=1):
        result = run_resilient(points, eps, min_pts, policy)
    info = result.meta["resilience"]
    print(f"served by tier {info['tier']!r} "
          f"after {len(info['attempts'])} failed attempt(s)")
    for attempt in info["attempts"]:
        print(f"  - tier {attempt['tier']!r} failed with {attempt['error']}")
    print(f"guarantee: {info['guarantee']}")
    print(f"result: {result.summary()}")

    # 3. Checkpoint/resume: interrupt the exact run mid-pipeline, then
    # rerun with the same checkpoint and compare to an uninterrupted run.
    # The clock skip is armed after a growing number of reads until one
    # lands between two phase persists (how many reads a run makes depends
    # on its data, so the interrupt point is scanned, not hard-coded).
    print("\n-- checkpoint/resume " + "-" * 44)
    clean = dbscan(points, eps, min_pts, algorithm="grid")
    with tempfile.TemporaryDirectory() as tmp:
        ckpt = os.path.join(tmp, "run.npz")
        store = CheckpointStore(ckpt)
        saved_phase = None
        for skew_after in (2, 4, 8, 16, 32):
            store.clear()
            try:
                with inject_faults(clock_skew=3600.0, skew_after=skew_after):
                    dbscan(points, eps, min_pts, algorithm="grid",
                           time_budget=10.0, checkpoint=ckpt)
            except TimeoutExceeded:
                if store.exists():
                    saved_phase = store.load()["phase"]
                    break
        if saved_phase is None:
            raise SystemExit("no skew landed between two phase persists")
        print(f"run interrupted after persisting phase {saved_phase!r}")
        resumed = dbscan(points, eps, min_pts, algorithm="grid", checkpoint=ckpt)
        print(f"resumed from phase: {resumed.meta['resumed_from_phase']}")
        same = np.array_equal(resumed.labels, clean.labels)
        print(f"labels identical to uninterrupted run: {same}")
        if not same:
            raise SystemExit("resume mismatch")


if __name__ == "__main__":
    main()
