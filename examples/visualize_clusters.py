"""ASCII recreation of the paper's Figures 8 and 9.

Generates the 2D seed-spreader dataset of Figure 8 (n = 1000), then runs
exact DBSCAN and rho-approximate DBSCAN at the three radii of Figure 9
(MinPts = 20), rendering each clustering as an ASCII scatter plot and
reporting whether the approximate clusters match the exact ones — the
paper's headline quality result (they match everywhere except at the
deliberately unstable third radius).

Run::

    python examples/visualize_clusters.py
"""

import numpy as np

from repro import approx_dbscan, dbscan
from repro.config import FIG9_MINPTS
from repro.data import figure8_dataset

GLYPHS = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
WIDTH, HEIGHT = 72, 24


def render(points: np.ndarray, labels: np.ndarray) -> str:
    lo = points.min(axis=0)
    hi = points.max(axis=0)
    span = np.where(hi > lo, hi - lo, 1.0)
    cols = ((points[:, 0] - lo[0]) / span[0] * (WIDTH - 1)).astype(int)
    rows = ((points[:, 1] - lo[1]) / span[1] * (HEIGHT - 1)).astype(int)
    canvas = [[" "] * WIDTH for _ in range(HEIGHT)]
    for c, r, label in zip(cols, rows, labels):
        canvas[HEIGHT - 1 - r][c] = GLYPHS[label % 26] if label >= 0 else "."
    return "\n".join("".join(row) for row in canvas)


def pick_radii(points: np.ndarray) -> list:
    """Choose small / larger / unstable radii the way Figure 9 does.

    The paper hand-picked 5000 / 11300 / 12200 for its instance; we locate
    the analogous values on ours: a comfortably stable radius, a radius in
    the next plateau (where two clusters have merged), and a radius just
    below a merge boundary — the 'unstable' value at which large rho must
    start disagreeing.
    """
    from repro.extensions.stability import cluster_count_profile, plateaus

    sweep = np.linspace(2000.0, 40000.0, 39)
    profile = cluster_count_profile(points, FIG9_MINPTS, sweep)
    flats = [p for p in plateaus(profile) if p.n_clusters >= 1]
    base = flats[0]
    later = next((p for p in flats[1:] if p.n_clusters < base.n_clusters), base)

    # Unstable: bisect the merge boundary above `later` and stop a hair
    # below it, exactly how the paper's 12200 sits just under 12203.
    from repro import dbscan as exact_dbscan

    lo, hi = later.eps_hi, later.eps_hi + (sweep[1] - sweep[0])
    k_stable = later.n_clusters
    if exact_dbscan(points, hi, FIG9_MINPTS).n_clusters < k_stable:
        for _ in range(14):
            mid = 0.5 * (lo + hi)
            if exact_dbscan(points, mid, FIG9_MINPTS).n_clusters < k_stable:
                hi = mid
            else:
                lo = mid
    unstable = lo * 0.9995
    return [base.midpoint, later.midpoint, unstable]


def main() -> None:
    ds = figure8_dataset()
    points = ds.points
    print(f"Figure 8 dataset: {ds.n} points, {ds.n_restarts} seed-spreader restarts\n")

    for eps in pick_radii(points):
        exact = dbscan(points, eps, FIG9_MINPTS)
        print(f"=== eps = {eps:g}, MinPts = {FIG9_MINPTS} ===")
        print(f"exact DBSCAN: {exact.n_clusters} clusters")
        print(render(points, exact.labels))
        for rho in (0.001, 0.01, 0.1):
            approx = approx_dbscan(points, eps, FIG9_MINPTS, rho=rho)
            flag = "SAME" if approx.same_clusters(exact) else "DIFFERENT"
            print(f"  rho = {rho:<6}: {approx.n_clusters} clusters -> {flag}")
        print()


if __name__ == "__main__":
    main()
