"""Colour/texture segmentation with VZ features — the *Farm* use case.

The paper's Farm dataset is the 5D VZ-features of a satellite image of a
farm; VZ-feature clustering is a standard colour-segmentation approach
(Section 5.1).  This example runs that exact pipeline end to end on a
synthetic satellite image:

1. render a multi-region textured image;
2. extract VZ patch features for every pixel;
3. reduce to 5 dimensions with PCA (as the paper did);
4. cluster with rho-approximate DBSCAN;
5. print an ASCII rendering of the recovered segmentation.

Run::

    python examples/image_segmentation.py
"""

import numpy as np

from repro import approx_dbscan
from repro.data import vz


SIZE = 48            # image side (pixels); raise for finer segmentation
PATCH = 3            # VZ patch size
EPS = 9000.0         # radius in the normalised [0, 1e5]^5 feature domain
MIN_PTS = 12
GLYPHS = "#@%*+=-:. abcdefgh"


def main() -> None:
    image = vz.synthetic_satellite_image(SIZE, SIZE, n_regions=5, seed=20150531)
    print(f"rendered a {SIZE}x{SIZE} synthetic satellite image (5 land-use regions)")

    features = vz.vz_features(image, patch_size=PATCH)
    projected, _components = vz.pca(features, 5)
    points = vz.rescale_to_domain(projected, 100_000.0)
    print(f"extracted {len(points)} VZ features -> PCA to {points.shape[1]}D")

    result = approx_dbscan(points, EPS, MIN_PTS, rho=0.001)
    print(f"clustering: {result.summary()}\n")

    # Map labels back onto the (interior) pixel lattice and render.
    side = SIZE - 2 * (PATCH // 2)
    lattice = result.labels.reshape(side, side)
    print("recovered segmentation (one glyph per cluster, '.' = noise):")
    for row in lattice[:: max(1, side // 40)]:
        line = "".join(
            GLYPHS[label % (len(GLYPHS) - 1)] if label >= 0 else "."
            for label in row[:: max(1, side // 72)]
        )
        print("  " + line)

    sizes = sorted(result.cluster_sizes(), reverse=True)
    print(f"\nsegment sizes: {sizes[:8]}{' ...' if len(sizes) > 8 else ''}")


if __name__ == "__main__":
    main()
