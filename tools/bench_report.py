"""Merge every ``BENCH_*.json`` into a single benchmark-trajectory table.

Each benchmark module (``benchmarks/bench_*.py --json BENCH_x.json``)
records its own headline numbers with its own schema.  This tool collects
whatever ``BENCH_*.json`` files exist, extracts the common spine (config
name, instance size, every ``*_speedup`` / ``*_per_second`` metric, and
any correctness flags) and renders one markdown table so a whole CI run —
or a whole sequence of PRs — can be read as a single perf trajectory.

Usage::

    python tools/bench_report.py                 # scan the repo root
    python tools/bench_report.py --dir artifacts # scan a directory
    python tools/bench_report.py --out REPORT.md # also write markdown
    python tools/bench_report.py --json merged.json
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys

#: Boolean result keys that assert correctness rode along with the timing.
_CHECK_KEYS = ("byte_identical", "sandwich_checked")


def load_reports(directory):
    """``{benchmark name: parsed JSON}`` for every BENCH_*.json found."""
    reports = {}
    for path in sorted(glob.glob(os.path.join(directory, "BENCH_*.json"))):
        name = os.path.basename(path)[len("BENCH_"):-len(".json")]
        try:
            with open(path, "r", encoding="utf-8") as fh:
                reports[name] = json.load(fh)
        except (OSError, ValueError) as exc:
            print(f"warning: skipping {path}: {exc}", file=sys.stderr)
    return reports


def _metrics(stats):
    """The headline perf metrics of one report, in key order."""
    out = {}
    for key, value in stats.items():
        if key.endswith("_speedup") and isinstance(value, (int, float)):
            out[key] = f"{value:.2f}x"
        elif key.endswith("_per_second") and isinstance(value, (int, float)):
            out[key] = f"{value:,.0f}/s"
    return out


def _checks(stats):
    flags = [k for k in _CHECK_KEYS if stats.get(k) is True]
    return ", ".join(flags) if flags else "-"


def render_table(reports):
    """Markdown trajectory table over all collected reports."""
    rows = [("benchmark", "config", "n", "d", "headline metrics", "checks")]
    for name, stats in reports.items():
        metrics = _metrics(stats) or {"(no speedup metrics)": ""}
        rows.append((
            name,
            str(stats.get("config", "-")),
            str(stats.get("n", "-")),
            str(stats.get("d", "-")),
            ", ".join(f"{k} {v}".strip() for k, v in metrics.items()),
            _checks(stats),
        ))
    widths = [max(len(r[c]) for r in rows) for c in range(len(rows[0]))]
    lines = []
    for i, row in enumerate(rows):
        lines.append("| " + " | ".join(c.ljust(w) for c, w in zip(row, widths)) + " |")
        if i == 0:
            lines.append("|" + "|".join("-" * (w + 2) for w in widths) + "|")
    return "\n".join(lines)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dir", default=".", metavar="PATH",
                        help="directory to scan for BENCH_*.json (default: .)")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="also write the markdown table to PATH")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write the merged reports to PATH as one JSON object")
    args = parser.parse_args(argv)

    reports = load_reports(args.dir)
    if not reports:
        print(f"no BENCH_*.json files found under {args.dir!r}", file=sys.stderr)
        return 1

    table = render_table(reports)
    print(table)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write("# Benchmark trajectory\n\n" + table + "\n")
        print(f"wrote {args.out}")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(reports, fh, indent=2)
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
