"""End-to-end smoke of a live ``repro-dbscan serve`` process.

Starts the TCP server as a real subprocess, then drives it the way an
impatient fleet would and asserts the service contract from the outside:

* concurrent **duplicate** requests coalesce — the ``datasets`` op's
  per-engine run counters show exactly one execution, and every response
  carries identical clusters;
* responses always record ``{tier, reason}``;
* failures come back structured: an unknown dataset answers
  ``unknown-dataset``, an already-expired deadline answers ``overload``
  with ``reason: deadline-expired`` — and the connection survives both;
* malformed JSON answers a ``parameter`` error instead of killing the
  stream;
* ``shutdown`` stops the server with exit code 0.

Used by the CI ``service-smoke`` job; run locally with::

    PYTHONPATH=src python tools/service_smoke.py
"""

from __future__ import annotations

import json
import re
import socket
import subprocess
import sys
import tempfile
import threading


BURST = 8


def start_server(dataset_path: str) -> tuple[subprocess.Popen, int]:
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--dataset", f"toy={dataset_path}", "--max-queue", "32"],
        stderr=subprocess.PIPE,
        text=True,
    )
    for line in proc.stderr:
        match = re.search(r"serving on 127\.0\.0\.1:(\d+)", line)
        if match:
            return proc, int(match.group(1))
    raise AssertionError("server exited without printing its banner")


def request(port: int, payload: dict, out: list, slot: int) -> None:
    with socket.create_connection(("127.0.0.1", port), timeout=120) as sock:
        stream = sock.makefile("rw")
        stream.write(json.dumps(payload) + "\n")
        stream.flush()
        out[slot] = json.loads(stream.readline())


def main() -> int:
    import numpy as np

    with tempfile.NamedTemporaryFile(suffix=".csv", delete=False) as tmp:
        np.savetxt(tmp.name, np.random.default_rng(0).random((2000, 2)),
                   delimiter=",")
        proc, port = start_server(tmp.name)
    try:
        # One warm-up request, so the burst measures coalescing, not racing
        # against structure building.
        probe = [None]
        request(port, {"id": 0, "op": "cluster", "dataset": "toy",
                       "eps": 0.05, "min_pts": 10}, probe, 0)
        assert probe[0]["ok"], probe[0]
        assert probe[0]["result"]["tier"] and probe[0]["result"]["reason"]

        # The duplicate burst, truly concurrent: one connection per thread.
        responses = [None] * BURST
        threads = [
            threading.Thread(
                target=request,
                args=(port, {"id": i, "op": "cluster", "dataset": "toy",
                             "eps": 0.07, "min_pts": 10}, responses, i),
            )
            for i in range(BURST)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=180)
        assert all(r is not None for r in responses), "a request hung"
        assert all(r["ok"] for r in responses), responses
        clusters = responses[0]["result"]["clustering"]["clusters"]
        for r in responses[1:]:
            assert r["result"]["clustering"]["clusters"] == clusters, \
                "coalesced responses differ"
        coalesced = sum(bool(r["result"]["coalesced"]) for r in responses)

        # Exactly-once, read from the engine's own counters.
        info = [None]
        request(port, {"id": 100, "op": "datasets"}, info, 0)
        runs = info[0]["result"]["toy"]["runs"]
        total_runs = sum(runs.values())
        assert total_runs == 2, f"expected 2 engine runs (probe + burst), got {runs}"

        stats = [None]
        request(port, {"id": 101, "op": "stats"}, stats, 0)
        served = stats[0]["result"]
        assert served["executed"] == 2, served
        assert served["coalesced"] == coalesced == BURST - 1, served
        assert served["rejected"] == 0, served

        # Structured failures, connection intact afterwards.
        bad = [None, None, None]
        request(port, {"id": 200, "op": "cluster", "dataset": "missing",
                       "eps": 1.0, "min_pts": 5}, bad, 0)
        assert not bad[0]["ok"] and bad[0]["error"]["code"] == "unknown-dataset"
        request(port, {"id": 201, "op": "cluster", "dataset": "toy",
                       "eps": 0.05, "min_pts": 10, "time_budget": 1e-9},
                bad, 1)
        assert not bad[1]["ok"] and bad[1]["error"]["code"] == "overload"
        assert bad[1]["error"]["reason"] == "deadline-expired"
        with socket.create_connection(("127.0.0.1", port), timeout=60) as sock:
            stream = sock.makefile("rw")
            stream.write("this is not json\n")
            stream.flush()
            garbled = json.loads(stream.readline())
            assert not garbled["ok"] and garbled["error"]["code"] == "parameter"
            # Same connection still serves real requests.
            stream.write(json.dumps({"id": 202, "op": "ping"}) + "\n")
            stream.flush()
            assert json.loads(stream.readline())["ok"]

        down = [None]
        request(port, {"id": 300, "op": "shutdown"}, down, 0)
        assert down[0]["ok"], down[0]
        code = proc.wait(timeout=30)
        assert code == 0, f"server exited {code}"
    finally:
        if proc.poll() is None:  # pragma: no cover - cleanup on failure
            proc.kill()
    print(f"service smoke OK: {BURST} duplicates -> 1 execution "
          f"({coalesced} coalesced), structured errors, clean shutdown")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
