"""Crash-recovery and observability smoke of a persistent ``serve``.

Starts ``repro-dbscan serve`` with a ``--store-dir`` and a metrics
endpoint, then asserts the durable-service contract from the outside:

* datasets registered over the wire survive a full process restart —
  the second server recovers the catalog from the snapshot + journal
  and replays the same request to an identical clustering;
* tenant configuration (``--tenant-weight`` and the ``tenant`` op) is
  journaled and read back after restart;
* ``/metrics`` serves Prometheus text (counters move with traffic) and
  ``/healthz`` answers 200 while serving;
* SIGTERM drains gracefully: in-flight work finishes, the journal is
  flushed and compacted into a snapshot, and the process exits 0.

Used by the CI ``service-smoke`` job; run locally with::

    PYTHONPATH=src python tools/restart_smoke.py
"""

from __future__ import annotations

import json
import re
import signal
import socket
import subprocess
import sys
import tempfile
import urllib.request
from pathlib import Path


def start_server(store_dir: str, *extra: str):
    """Start a persistent server; return (proc, serve_port, metrics_port)."""
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--metrics-port", "0", "--store-dir", store_dir,
         "--tenant-weight", "gold=4", *extra],
        stderr=subprocess.PIPE,
        text=True,
    )
    metrics_port = None
    for line in proc.stderr:
        match = re.search(r"metrics on http://127\.0\.0\.1:(\d+)/metrics", line)
        if match:
            metrics_port = int(match.group(1))
        match = re.search(r"serving on 127\.0\.0\.1:(\d+)", line)
        if match:
            assert metrics_port is not None, "no metrics banner before serving"
            return proc, int(match.group(1)), metrics_port
    raise AssertionError("server exited without printing its banner")


def request(port: int, payload: dict) -> dict:
    with socket.create_connection(("127.0.0.1", port), timeout=120) as sock:
        stream = sock.makefile("rw")
        stream.write(json.dumps(payload) + "\n")
        stream.flush()
        return json.loads(stream.readline())


def http_get(port: int, path: str) -> tuple[int, str]:
    try:
        with urllib.request.urlopen(
                f"http://127.0.0.1:{port}{path}", timeout=30) as resp:
            return resp.status, resp.read().decode()
    except urllib.error.HTTPError as err:  # 4xx/5xx still carry a body
        return err.code, err.read().decode()


def main() -> int:
    import numpy as np

    tmp = Path(tempfile.mkdtemp(prefix="repro-restart-smoke-"))
    store = str(tmp / "store")
    csv = tmp / "toy.csv"
    np.savetxt(csv, np.random.default_rng(0).random((2000, 2)), delimiter=",")
    run = {"op": "cluster", "dataset": "toy", "eps": 0.05, "min_pts": 10}

    # ---- first life: register, cluster, observe, drain ----------------
    proc, port, mport = start_server(store)
    try:
        reg = request(port, {"id": 1, "op": "register", "name": "toy",
                             "path": str(csv)})
        assert reg["ok"], reg
        first = request(port, {"id": 2, **run})
        assert first["ok"], first
        baseline = first["result"]["clustering"]

        ten = request(port, {"id": 3, "op": "tenant", "name": "silver",
                             "weight": 2.0, "max_queue": 9})
        assert ten["ok"] and ten["result"]["weight"] == 2.0, ten

        status, body = http_get(mport, "/metrics")
        assert status == 200, (status, body)
        assert 'repro_service_requests_total{outcome="executed"} 1' in body, body
        assert "repro_service_draining 0" in body, body
        assert "repro_service_datasets 1" in body, body
        status, health = http_get(mport, "/healthz")
        assert status == 200 and json.loads(health)["ok"], (status, health)

        proc.send_signal(signal.SIGTERM)
        code = proc.wait(timeout=60)
        assert code == 0, f"drain exited {code}"
        assert (Path(store) / "registry.json").exists(), \
            "drain did not compact a snapshot"
    finally:
        if proc.poll() is None:  # pragma: no cover - cleanup on failure
            proc.kill()

    # ---- second life: recover, replay, verify tenant config -----------
    proc, port, mport = start_server(store)
    try:
        names = request(port, {"id": 10, "op": "datasets"})
        assert names["ok"] and set(names["result"]) == {"toy"}, names

        replay = request(port, {"id": 11, **run})
        assert replay["ok"], replay
        recovered = replay["result"]["clustering"]
        for field in ("n", "clusters", "core_mask"):
            assert recovered[field] == baseline[field], \
                f"replay diverged after restart ({field})"

        silver = request(port, {"id": 12, "op": "tenant", "name": "silver"})
        assert silver["ok"] and silver["result"]["weight"] == 2.0, silver
        assert silver["result"]["max_queue"] == 9, silver
        gold = request(port, {"id": 13, "op": "tenant", "name": "gold"})
        assert gold["ok"] and gold["result"]["weight"] == 4.0, gold

        status, body = http_get(mport, "/metrics")
        assert status == 200 and "repro_service_datasets 1" in body, body

        down = request(port, {"id": 14, "op": "shutdown"})
        assert down["ok"], down
        code = proc.wait(timeout=30)
        assert code == 0, f"server exited {code}"
    finally:
        if proc.poll() is None:  # pragma: no cover - cleanup on failure
            proc.kill()

    print("restart smoke OK: catalog + tenant config survived restart, "
          "replay identical, metrics scraped, SIGTERM drained to exit 0")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
