"""Ablations over the design choices DESIGN.md calls out.

1. **BCP strategy** for the exact algorithm's edge computation: chunked
   matrix scan vs kd-tree nearest-neighbour (the generalisation of
   Gunawan's Voronoi approach).
2. **Lemma 5 early-leaf size**: the verbatim paper structure
   (``exact_leaf_size=0``) vs the library default — same contract, fewer
   cells stored.
3. **Approximate core labeling** (the TODS'17 refinement of
   :mod:`repro.extensions.approx_cores`) vs the SIGMOD'15 exact labeling.
4. **KDD96 index backend**: STR R-tree vs kd-tree — the mis-claim is
   index-independent.
"""

import pytest

from repro import approx_dbscan, dbscan
from repro.algorithms.exact_grid import exact_grid_dbscan
from repro.algorithms.kdd96 import kdd96_dbscan
from repro.extensions.approx_cores import approx_dbscan_full
from repro.evaluation import format_table
from repro.evaluation.timing import timed

from . import config as cfg

N = cfg.DEFAULT_N


def test_ablation_bcp_strategy(datasets, report, benchmark):
    points = datasets.ss(3, N)

    def run_all():
        rows = []
        results = {}
        for strategy in ("auto", "brute", "kdtree"):
            run = timed(strategy, lambda s=strategy: exact_grid_dbscan(
                points, cfg.DEFAULT_EPS, cfg.MINPTS, bcp_strategy=s))
            results[strategy] = run.result
            rows.append([strategy, run.cell(), str(run.result.n_clusters)])
        return rows, results

    rows, results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    report(f"Ablation — BCP strategy in OurExact (SS3D, n={N})")
    report(format_table(["strategy", "time (s)", "#clusters"], rows))
    # All strategies must agree exactly.
    assert results["brute"].same_clusters(results["kdtree"])
    assert results["auto"].same_clusters(results["brute"])


def test_ablation_lemma5_leaf_size(datasets, report, benchmark):
    points = datasets.ss(3, N)

    def run_all():
        rows = []
        results = {}
        for leaf in (0, 1, 8, 64):
            run = timed(str(leaf), lambda l=leaf: approx_dbscan(
                points, cfg.DEFAULT_EPS, cfg.MINPTS, rho=cfg.DEFAULT_RHO,
                exact_leaf_size=l))
            results[leaf] = run.result
            rows.append([str(leaf), run.cell(), str(run.result.n_clusters)])
        return rows, results

    rows, results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    report("Ablation — Lemma 5 early-leaf size (0 = verbatim paper structure)")
    report(format_table(["exact_leaf_size", "time (s)", "#clusters"], rows))
    # Every variant obeys the same contract; on this workload all variants
    # land on the same clustering.
    kinds = {tuple(sorted(map(len, r.clusters))) for r in results.values()}
    assert len(kinds) == 1


def test_ablation_approx_cores(datasets, report, benchmark):
    points = datasets.ss(3, N)

    def run_both():
        sigmod = timed("exact cores", lambda: approx_dbscan(
            points, cfg.DEFAULT_EPS, cfg.MINPTS, rho=cfg.DEFAULT_RHO))
        tods = timed("approx cores", lambda: approx_dbscan_full(
            points, cfg.DEFAULT_EPS, cfg.MINPTS, rho=cfg.DEFAULT_RHO))
        return sigmod, tods

    sigmod, tods = benchmark.pedantic(run_both, rounds=1, iterations=1)
    report("Ablation — core labeling: SIGMOD'15 exact vs TODS'17 approximate")
    report(format_table(
        ["variant", "time (s)", "#clusters", "#cores"],
        [
            ["exact cores (paper)", sigmod.cell(),
             str(sigmod.result.n_clusters), str(int(sigmod.result.core_mask.sum()))],
            ["approx cores (ext.)", tods.cell(),
             str(tods.result.n_clusters), str(int(tods.result.core_mask.sum()))],
        ],
    ))
    # Approximate cores are a superset of exact cores.
    assert (tods.result.core_mask | ~sigmod.result.core_mask).all()


def test_ablation_kdd96_index(datasets, report, benchmark):
    points = datasets.ss(3, max(100, N // 2))

    def run_all():
        rows = []
        results = {}
        for index in ("rtree", "kdtree"):
            run = timed(index, lambda i=index: kdd96_dbscan(
                points, cfg.DEFAULT_EPS, cfg.MINPTS, index=i,
                time_budget=cfg.TIME_BUDGET))
            results[index] = run
            rows.append([index, run.cell()])
        return rows, results

    rows, results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    report("Ablation — KDD96 index backend (the blow-up is index-independent)")
    report(format_table(["index", "time (s)"], rows))
    if results["rtree"].finished and results["kdtree"].finished:
        assert results["rtree"].result.same_clusters(results["kdtree"].result)


@pytest.mark.parametrize("strategy", ["brute", "kdtree"])
def test_ablation_bcp_benchmark(strategy, datasets, benchmark):
    points = datasets.ss(3, max(100, N // 4))
    benchmark(lambda: exact_grid_dbscan(points, cfg.DEFAULT_EPS, cfg.MINPTS,
                                        bcp_strategy=strategy))
