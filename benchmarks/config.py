"""Benchmark workload configuration — the scaled Table 1.

The paper runs C++ on datasets of 100k-10m points; this reproduction is
pure Python, so every cardinality below is the paper's divided by a scale
factor (default 1/100 of the paper's smallest settings) while keeping
every other parameter paper-faithful: domain [0, 1e5]^d, dimensionalities
{3, 5, 7}, eps sweeps starting at 5000, rho grid from Table 1, and the
seed-spreader generator of Section 5.1.  ``REPRO_SCALE`` multiplies all
cardinalities (e.g. ``REPRO_SCALE=10`` for a long-running, closer-to-paper
run).

``MinPts`` is lowered from the paper's 100 to 10 by default: with 100x
fewer points per cluster, keeping MinPts at 100 would turn most clustered
points into noise and measure a different regime than the paper's.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro import config as paper
from repro.data import real_like, seed_spreader

#: Workload multiplier from REPRO_SCALE.
SCALE = paper.scale_factor()


def scaled(n: int) -> int:
    return max(100, int(n * SCALE))


#: The Figure 11 cardinality sweep (paper: 100k .. 10m).
FIG11_N_SWEEP: Tuple[int, ...] = tuple(scaled(n) for n in (1000, 2000, 4000, 8000))

#: Default synthetic cardinality (paper: 2m).
DEFAULT_N = scaled(8000)

#: Cardinality of the real-dataset stand-ins (paper: 2m-3.9m).
REAL_N = scaled(4000)

#: Dimensionalities of Table 1.
DIMENSIONS = paper.PAPER_DIMENSIONS

#: MinPts for benchmark runs (paper: 100 at 100x the cardinality).
MINPTS = 10

#: Default eps / rho (Table 1 bold values).
DEFAULT_EPS = 5000.0
DEFAULT_RHO = paper.DEFAULT_RHO

#: rho grid of Table 1, thinned for runtime.
RHO_GRID = (0.001, 0.01, 0.05, 0.1)

#: Number of eps samples per sweep (the paper plots ~6-8 per panel).
EPS_STEPS = 4

#: Wall-clock budget per algorithm run: the analogue of the paper's
#: 12-hour cut-off for KDD96 / CIT08.
TIME_BUDGET = 10.0 * max(1.0, SCALE)

#: Master seed for all benchmark datasets.
SEED = 20150531


class WorkloadCache:
    """Lazily generated, memoised benchmark datasets."""

    def __init__(self) -> None:
        self._cache: Dict[tuple, np.ndarray] = {}

    def ss(self, d: int, n: int = DEFAULT_N) -> np.ndarray:
        """Seed-spreader dataset SS<d>D with `n` points."""
        key = ("ss", d, n)
        if key not in self._cache:
            self._cache[key] = seed_spreader(n, d, seed=SEED + d).points
        return self._cache[key]

    def real(self, name: str, n: int = REAL_N) -> np.ndarray:
        key = ("real", name, n)
        if key not in self._cache:
            generator = real_like.REAL_LIKE_GENERATORS[name]
            self._cache[key] = generator(n, seed=SEED)
        return self._cache[key]

    def eps_sweep(self, points: np.ndarray, min_pts: int = MINPTS) -> np.ndarray:
        """eps values from 5000 towards the collapsing radius (Table 1).

        The collapsing radius itself costs several clusterings to locate;
        benches approximate the sweep end with a quantile of pairwise
        extent, which lands in the same regime at a fraction of the cost.
        """
        key = ("sweep", id(points), min_pts)
        if key not in self._cache:
            span = points.max(axis=0) - points.min(axis=0)
            hi = float(np.linalg.norm(span)) / 3.0
            self._cache[key] = np.linspace(DEFAULT_EPS, max(hi, DEFAULT_EPS * 2), EPS_STEPS)
        return self._cache[key]
