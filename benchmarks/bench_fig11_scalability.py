"""Figure 11: running time vs cardinality n (eps = 5000, rho = 0.001).

The paper's headline efficiency experiment: KDD96 and CIT08 blow up with n
(often not finishing within the cut-off), the paper's exact algorithm
stays polynomially better, and OurApprox scales linearly and wins by
orders of magnitude.  One panel per dimensionality in {3, 5, 7}.

Runs are wall-clock timed under a budget; a budget overrun prints DNF —
the analogue of the paper's "did not terminate within 12 hours".
"""

import pytest

from repro import approx_dbscan, dbscan
from repro.data import seed_spreader
from repro.evaluation import format_table, line_chart
from repro.evaluation.timing import timed

from . import config as cfg

ALGOS = ("KDD96", "CIT08", "OurExact", "OurApprox")


def run_algo(name, points, eps, min_pts):
    budget = cfg.TIME_BUDGET
    if name == "KDD96":
        return timed(name, lambda: dbscan(points, eps, min_pts, algorithm="kdd96",
                                          time_budget=budget))
    if name == "CIT08":
        return timed(name, lambda: dbscan(points, eps, min_pts, algorithm="cit08",
                                          time_budget=budget))
    if name == "OurExact":
        return timed(name, lambda: dbscan(points, eps, min_pts, algorithm="grid"))
    return timed(name, lambda: approx_dbscan(points, eps, min_pts, rho=cfg.DEFAULT_RHO))


@pytest.mark.parametrize("d", cfg.DIMENSIONS)
def test_fig11_time_vs_n(d, report, benchmark):
    rows = []
    results = {}
    for n in cfg.FIG11_N_SWEEP:
        points = seed_spreader(n, d, seed=cfg.SEED + d).points
        row = [str(n)]
        for algo in ALGOS:
            run = run_algo(algo, points, cfg.DEFAULT_EPS, cfg.MINPTS)
            results[(n, algo)] = run
            row.append(run.cell())
        rows.append(row)

    report(f"Figure 11 ({'abc'[cfg.DIMENSIONS.index(d)]}) — time (s) vs n, SS{d}D, "
           f"eps={cfg.DEFAULT_EPS:g}, MinPts={cfg.MINPTS}, rho={cfg.DEFAULT_RHO}")
    report(format_table(["n"] + list(ALGOS), rows))
    report(line_chart(
        list(cfg.FIG11_N_SWEEP),
        {algo: [results[(n, algo)].seconds for n in cfg.FIG11_N_SWEEP]
         for algo in ALGOS},
        x_label="n", y_label="time",
    ))

    # Shape assertions mirroring the paper's findings:
    # 1. every algorithm that finished produced some clustering;
    # 2. OurApprox is never slower than the slowest exact baseline at the
    #    largest n (the paper reports a gap of up to three orders).
    n_max = cfg.FIG11_N_SWEEP[-1]
    approx_run = results[(n_max, "OurApprox")]
    assert approx_run.finished
    exact_times = [
        results[(n_max, a)].seconds
        for a in ("KDD96", "CIT08")
        if results[(n_max, a)].finished
    ]
    if exact_times:
        assert approx_run.seconds <= max(exact_times) * 1.5

    points = seed_spreader(cfg.FIG11_N_SWEEP[0], d, seed=cfg.SEED + d).points
    benchmark(lambda: approx_dbscan(points, cfg.DEFAULT_EPS, cfg.MINPTS,
                                    rho=cfg.DEFAULT_RHO))
