"""Engine benchmark: incremental multi-eps sweeps vs independent runs.

Measures the three claims of :mod:`repro.engine` on a seed-spreader
workload (Section 5.1 generator):

* an incremental :meth:`~repro.engine.ClusteringEngine.sweep` over an
  ascending eps grid must beat one fresh :func:`repro.dbscan` per eps —
  the monotone carries (``known_core`` lower bounds, pre-union seeds that
  short-circuit BCP tests) skip work the independent runs repeat;
* a warm-cache single run (grid + core mask served from the
  :class:`~repro.engine.StructureCache`) must beat the cold run;
* every engine answer must be **byte-identical** to the one-shot call —
  a speedup that changes the labeling is worthless, so identity is
  asserted in-bench on every comparison.

Run standalone::

    python -m benchmarks.bench_engine_sweep              # full config
    python -m benchmarks.bench_engine_sweep --smoke      # CI-sized
    python -m benchmarks.bench_engine_sweep --json BENCH_engine.json

or via pytest like the other benches (the pytest path uses the smoke
config so the suite stays fast; the >= 2x sweep target is asserted only
on the full config, where the per-run work is large enough to amortise).
"""

from __future__ import annotations

import argparse
import json
import time

import numpy as np

from repro import ClusteringEngine, StructureCache, dbscan
from repro.data import seed_spreader

from . import config as cfg

#: Required speedup of the incremental sweep over independent runs (full
#: config only; smoke workloads are too small for the target to be honest).
TARGET_SWEEP_SPEEDUP = 2.0

#: (name, n, d, eps grid, MinPts).  The eps grid is ascending and
#: closely spaced (~9% steps), the shape of a parameter-tuning sweep:
#: consecutive clusterings share most of their structure, which is
#: exactly what the monotone carries (known-core lower bounds, pre-union
#: seeds) exploit.  At full size the core-labeling and BCP-dominated
#: components phases are the bulk of every independent run.
FULL_CONFIG = (
    "full", 50_000, 3,
    (40.0, 44.0, 48.0, 53.0, 58.0, 64.0, 70.0, 77.0), 10,
)
SMOKE_CONFIG = ("smoke", 4_000, 3, (60.0, 68.0, 77.0, 87.0, 98.0), 10)


def _assert_identical(a, b, context):
    assert np.array_equal(a.labels, b.labels), f"{context}: labels differ"
    assert np.array_equal(a.core_mask, b.core_mask), f"{context}: core masks differ"
    assert a == b, f"{context}: clusterings differ"


def measure(config, report=print):
    name, n, d, eps_grid, min_pts = config
    points = seed_spreader(n, d, seed=cfg.SEED + d).points
    report(f"engine sweep — SS{d}D, n={len(points)}, MinPts={min_pts}, "
           f"eps grid {[f'{e:g}' for e in eps_grid]} [{name}]")

    # Baseline: one independent cold run per eps.
    t0 = time.perf_counter()
    independent = [dbscan(points, eps, min_pts, algorithm="grid") for eps in eps_grid]
    independent_time = time.perf_counter() - t0
    report(f"  independent runs : {independent_time:8.3f} s "
           f"({len(eps_grid)} x fresh dbscan)")

    # Incremental sweep through a fresh engine (cold cache: the comparison
    # charges the engine for every structure it builds).
    engine = ClusteringEngine(points, cache=StructureCache())
    t0 = time.perf_counter()
    swept = engine.sweep(list(eps_grid), min_pts)
    sweep_time = time.perf_counter() - t0
    sweep_speedup = independent_time / sweep_time if sweep_time > 0 else float("inf")
    report(f"  incremental sweep: {sweep_time:8.3f} s "
           f"(speedup {sweep_speedup:.2f}x)")

    for eps, fresh, inc in zip(eps_grid, independent, swept):
        _assert_identical(inc, fresh, f"sweep @ eps={eps:g}")

    # Warm vs cold single run at the middle eps (fresh engine again so the
    # sweep above cannot have pre-warmed anything).
    mid = eps_grid[len(eps_grid) // 2]
    single = ClusteringEngine(points, cache=StructureCache())
    t0 = time.perf_counter()
    cold = single.dbscan(mid, min_pts)
    cold_time = time.perf_counter() - t0
    t0 = time.perf_counter()
    warm = single.dbscan(mid, min_pts)
    warm_time = time.perf_counter() - t0
    warm_speedup = cold_time / warm_time if warm_time > 0 else float("inf")
    report(f"  single @ eps={mid:g}: cold {cold_time:.3f} s, warm "
           f"{warm_time:.3f} s (speedup {warm_speedup:.2f}x)")
    _assert_identical(warm, cold, f"warm run @ eps={mid:g}")
    _assert_identical(cold, independent[len(eps_grid) // 2], f"cold run @ eps={mid:g}")

    return {
        "config": name,
        "n": int(len(points)),
        "d": d,
        "min_pts": min_pts,
        "eps_grid": list(eps_grid),
        "independent_seconds": independent_time,
        "sweep_seconds": sweep_time,
        "sweep_speedup": sweep_speedup,
        "cold_seconds": cold_time,
        "warm_seconds": warm_time,
        "warm_speedup": warm_speedup,
        "byte_identical": True,  # the asserts above would have failed otherwise
        "cache_stats": swept[-1].meta["engine_cache"],
    }


def test_engine_sweep_smoke(report):
    """CI smoke: byte-identity plus a sanity speedup on the tiny config."""
    stats = measure(SMOKE_CONFIG, report)
    # Even the smoke workload must not be *slower* than independent runs by
    # more than pool/noise margins; the honest 2x target is full-size only.
    assert stats["sweep_speedup"] > 1.0, (
        f"incremental sweep slower than independent runs "
        f"({stats['sweep_speedup']:.2f}x)"
    )
    assert stats["warm_speedup"] > 1.0, (
        f"warm-cache run slower than cold ({stats['warm_speedup']:.2f}x)"
    )


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="run the CI-sized config instead of the full one")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write the measurements to PATH as JSON")
    args = parser.parse_args(argv)
    config = SMOKE_CONFIG if args.smoke else FULL_CONFIG
    stats = measure(config)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(stats, fh, indent=2)
        print(f"wrote {args.json}")
    if args.smoke:
        ok = stats["sweep_speedup"] > 1.0 and stats["warm_speedup"] > 1.0
    else:
        ok = (stats["sweep_speedup"] >= TARGET_SWEEP_SPEEDUP
              and stats["warm_speedup"] > 1.0)
        if not ok:
            print(f"FAIL: sweep speedup {stats['sweep_speedup']:.2f}x below "
                  f"the {TARGET_SWEEP_SPEEDUP}x target")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
