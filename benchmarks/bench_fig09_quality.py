"""Figure 9: exact vs rho-approximate clusters on the 2D dataset.

Reproduces the 3x4 grid of Figure 9: for three radii (stable / merged /
deliberately unstable) and rho in {0.001, 0.01, 0.1}, report the number of
clusters each method finds and whether the approximate clusters equal the
exact ones.  The paper's finding: identical everywhere except possibly at
the unstable radius with large rho.

Also prints the boundary sweep of the Section 5.2 narrative (the paper's
12200-vs-12203 observation): the exact cluster count just below and just
above the located merge boundary.
"""

import numpy as np
import pytest

from repro import approx_dbscan, dbscan
from repro.config import FIG9_MINPTS, FIG9_RHO_VALUES
from repro.data import figure8_dataset
from repro.evaluation import best_match_jaccard, format_table


@pytest.fixture(scope="module")
def fig9_setup():
    ds = figure8_dataset()
    points = ds.points
    min_pts = FIG9_MINPTS

    # Locate the radii the way the paper picked 5000/11300/12200 for its
    # instance: a stable radius, a post-merge radius, and a radius just
    # below the next merge boundary.
    def k(eps):
        return dbscan(points, eps, min_pts).n_clusters

    sweep = np.linspace(2000.0, 40000.0, 20)
    counts = [(float(e), k(float(e))) for e in sweep]
    k0 = counts[0][1]
    stable = counts[0][0] * 2.0
    merged = next((e for e, c in counts if c < k0), counts[-1][0])
    # Bisect the first merge boundary: the largest eps still yielding k0
    # clusters sits just below the eps where two clusters fuse.
    lo = max(e for e, c in counts if e < merged)
    hi = merged
    for _ in range(14):
        mid = 0.5 * (lo + hi)
        if k(mid) < k0:
            hi = mid
        else:
            lo = mid
    unstable = lo * 0.9999
    return points, min_pts, (stable, merged, unstable), (lo, hi)


def test_fig09_grid(fig9_setup, report, benchmark):
    points, min_pts, radii, boundary = fig9_setup
    rows = []
    for eps in radii:
        exact = dbscan(points, eps, min_pts)
        row = [f"{eps:.0f}", str(exact.n_clusters)]
        for rho in FIG9_RHO_VALUES:
            approx = approx_dbscan(points, eps, min_pts, rho=rho)
            if approx.same_clusters(exact):
                verdict = "SAME"
            else:
                # Quantify how far off a DIFF is: even at the unstable
                # radius the clusters overlap heavily (they merged, not
                # scrambled).
                verdict = f"DIFF(J={best_match_jaccard(approx, exact):.2f})"
            row.append(f"{approx.n_clusters}/{verdict}")
        rows.append(row)

    report("Figure 9 — exact vs rho-approximate clusters (2D, MinPts=20)")
    report(format_table(
        ["eps", "#exact"] + [f"rho={r} (#/same?)" for r in FIG9_RHO_VALUES], rows
    ))
    lo, hi = boundary
    report(
        f"Section 5.2 boundary narrative: {dbscan(points, lo, min_pts).n_clusters} "
        f"clusters at eps={lo:.0f} but "
        f"{dbscan(points, hi, min_pts).n_clusters} at eps={hi:.0f} "
        f"(the paper's 12200-vs-12203 effect)"
    )

    # Paper's headline: the recommended rho=0.001 agrees everywhere.
    for eps in radii:
        exact = dbscan(points, eps, min_pts)
        approx = approx_dbscan(points, eps, min_pts, rho=0.001)
        assert approx.same_clusters(exact)

    # Benchmark the approximate clustering at the default radius.
    benchmark(lambda: approx_dbscan(points, radii[0], min_pts, rho=0.001))
