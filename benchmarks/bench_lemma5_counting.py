"""Lemma 5: reference hierarchy vs the flat batched kernel.

Two claims are measured here:

* **Lemma 5 complexity** (reference structure): O(n) expected construction
  and O(1) expected query for fixed eps, rho, d — build time grows
  ~linearly over a doubling-n sweep, per-query time stays flat, and the
  counting contract is re-verified on every sampled query.
* **Kernel speedup** (:class:`~repro.grid.FlatHierarchy`): the batched
  structure-of-arrays traversal must answer the same query workload at
  least :data:`TARGET_BATCH_SPEEDUP` times faster than the per-point
  reference path at the full config (n = 50k, d = 3), with every answer
  inside the brute-force sandwich and equal to the reference wherever the
  contract is exact.

Run standalone::

    python -m benchmarks.bench_lemma5_counting              # full config
    python -m benchmarks.bench_lemma5_counting --smoke      # CI-sized
    python -m benchmarks.bench_lemma5_counting --json BENCH_lemma5.json

or via pytest like the other benches (the pytest path uses CI-sized
workloads; the >= 5x target is asserted only on the full config).
"""

from __future__ import annotations

import argparse
import json
import time

import numpy as np

from repro.data import seed_spreader
from repro.evaluation import format_table
from repro.evaluation.timing import timed
from repro.geometry import distance as dm
from repro.grid.hierarchy import CountingHierarchy, FlatHierarchy

from . import config as cfg

EPS = 5000.0
RHO = 0.001
QUERIES = 200

#: Required speedup of flat batched queries over the per-point reference
#: path (full config only; at smoke size the fixed per-batch overheads are
#: a visible fraction of the run, so only a softer bar is honest there).
TARGET_BATCH_SPEEDUP = 5.0
SMOKE_BATCH_SPEEDUP = 2.0

#: (name, n, d, number of batched queries).
FULL_CONFIG = ("full", 50_000, 3, 4000)
SMOKE_CONFIG = ("smoke", 8_000, 3, 1000)


def _check_sandwich(points, queries, answers, eps=EPS, rho=RHO):
    sq = ((points[None, :, :] - queries[:, None, :]) ** 2).sum(axis=2)
    lo = (sq <= dm.sq_radius(eps)).sum(axis=1)
    hi = (sq <= (eps * (1 + rho)) ** 2).sum(axis=1)
    assert ((lo <= answers) & (answers <= hi)).all(), "Lemma 5 sandwich violated"
    return lo, hi


def measure(config, report=print):
    """Flat-vs-reference comparison on one seed-spreader workload."""
    name, n, d, n_queries = config
    points = seed_spreader(n, d, seed=cfg.SEED).points
    rng = np.random.default_rng(cfg.SEED)
    # Half the queries are data points (the workload of the approximate
    # core test), half uniform (edge probes into mostly empty space).
    queries = np.vstack([
        points[rng.choice(len(points), size=n_queries // 2, replace=False)],
        rng.uniform(0.0, 100_000.0, size=(n_queries - n_queries // 2, d)),
    ])
    report(f"Lemma 5 kernel — SS{d}D, n={n}, {len(queries)} queries, "
           f"eps={EPS:g}, rho={RHO} [{name}]")

    t0 = time.perf_counter()
    ref = CountingHierarchy(points, EPS, RHO)
    ref_build = time.perf_counter() - t0
    t0 = time.perf_counter()
    flat = FlatHierarchy(points, EPS, RHO)
    flat_build = time.perf_counter() - t0
    assert flat.node_count() == ref.node_count()
    report(f"  build: reference {ref_build:.3f} s, flat {flat_build:.3f} s "
           f"({flat.node_count()} cells, {flat.nbytes / 1e6:.1f} MB flat)")

    t0 = time.perf_counter()
    ref_answers = np.array([ref.count(q) for q in queries])
    ref_seconds = time.perf_counter() - t0
    t0 = time.perf_counter()
    flat_answers = flat.count_many(queries)
    flat_seconds = time.perf_counter() - t0
    speedup = ref_seconds / flat_seconds if flat_seconds > 0 else float("inf")
    report(f"  count: reference {len(queries) / ref_seconds:8.0f} q/s, "
           f"flat {len(queries) / flat_seconds:8.0f} q/s "
           f"(speedup {speedup:.2f}x)")

    # Correctness riding along with every measurement: sandwich always,
    # equality with the reference wherever the contract leaves no freedom.
    lo, hi = _check_sandwich(points, queries, flat_answers)
    _check_sandwich(points, queries, ref_answers)
    exact = lo == hi
    assert (flat_answers[exact] == ref_answers[exact]).all(), (
        "flat and reference disagree on an exact-contract query"
    )

    return {
        "config": name,
        "n": n,
        "d": d,
        "eps": EPS,
        "rho": RHO,
        "queries": int(len(queries)),
        "ref_build_seconds": ref_build,
        "flat_build_seconds": flat_build,
        "ref_queries_per_second": len(queries) / ref_seconds,
        "flat_queries_per_second": len(queries) / flat_seconds,
        "batch_speedup": speedup,
        "nodes": int(flat.node_count()),
        "flat_nbytes": int(flat.nbytes),
        "sandwich_checked": True,
    }


def test_lemma5_build_and_query(report, benchmark):
    ns = [cfg.scaled(n) for n in (2000, 4000, 8000, 16000)]
    rng = np.random.default_rng(cfg.SEED)
    rows = []
    per_query = []
    for n in ns:
        points = seed_spreader(n, 3, seed=cfg.SEED).points
        build = timed("build", lambda: CountingHierarchy(points, EPS, RHO))
        structure = build.result
        queries = rng.uniform(0, 100_000.0, size=(QUERIES, 3))

        def run_queries():
            return [structure.count(q) for q in queries]

        query = timed("query", run_queries)
        per_query.append(query.seconds / QUERIES)
        rows.append([
            str(n), build.cell(), f"{query.seconds / QUERIES * 1e6:.1f}",
            str(structure.node_count()),
        ])

        # Contract check on a sample of queries.
        answers = np.array(query.result)
        _check_sandwich(points, queries, answers)

    report(f"Lemma 5 — counting hierarchy (eps={EPS:g}, rho={RHO}, 3D)")
    report(format_table(["n", "build (s)", "query (us)", "cells stored"], rows))

    # O(1) query shape: per-query time at the largest n is within a small
    # factor of the smallest n.
    assert per_query[-1] <= per_query[0] * 8 + 1e-4

    points = seed_spreader(ns[0], 3, seed=cfg.SEED).points
    benchmark(lambda: CountingHierarchy(points, EPS, RHO))


def test_lemma5_query_benchmark(benchmark):
    points = seed_spreader(cfg.scaled(8000), 3, seed=cfg.SEED).points
    structure = FlatHierarchy(points, EPS, RHO)
    q = points[len(points) // 2][None, :]
    benchmark(lambda: structure.count_many(q))


def test_lemma5_flat_vs_reference_smoke(report):
    """CI smoke: the flat kernel beats the reference even at small n."""
    stats = measure(SMOKE_CONFIG, report)
    assert stats["batch_speedup"] >= SMOKE_BATCH_SPEEDUP, (
        f"flat batched queries only {stats['batch_speedup']:.2f}x faster "
        f"than the reference (smoke target {SMOKE_BATCH_SPEEDUP}x)"
    )


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="run the CI-sized config instead of the full one")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write the measurements to PATH as JSON")
    args = parser.parse_args(argv)
    config = SMOKE_CONFIG if args.smoke else FULL_CONFIG
    stats = measure(config)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(stats, fh, indent=2)
        print(f"wrote {args.json}")
    target = SMOKE_BATCH_SPEEDUP if args.smoke else TARGET_BATCH_SPEEDUP
    ok = stats["batch_speedup"] >= target
    if not ok:
        print(f"FAIL: batch speedup {stats['batch_speedup']:.2f}x below "
              f"the {target}x target")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
