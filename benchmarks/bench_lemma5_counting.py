"""Lemma 5: the approximate range-counting structure.

The lemma promises O(n) expected construction and O(1) expected query for
fixed eps, rho, d.  This bench measures both over a doubling-n sweep:
build time should grow ~linearly, per-query time should stay flat; and we
re-verify the counting contract on every sampled query.
"""

import numpy as np

from repro.data import seed_spreader
from repro.evaluation import format_table
from repro.evaluation.timing import timed
from repro.grid.hierarchy import CountingHierarchy

from . import config as cfg

EPS = 5000.0
RHO = 0.001
QUERIES = 200


def test_lemma5_build_and_query(report, benchmark):
    ns = [cfg.scaled(n) for n in (2000, 4000, 8000, 16000)]
    rng = np.random.default_rng(cfg.SEED)
    rows = []
    per_query = []
    for n in ns:
        points = seed_spreader(n, 3, seed=cfg.SEED).points
        build = timed("build", lambda: CountingHierarchy(points, EPS, RHO))
        structure = build.result
        queries = rng.uniform(0, 100_000.0, size=(QUERIES, 3))

        def run_queries():
            return [structure.count(q) for q in queries]

        query = timed("query", run_queries)
        per_query.append(query.seconds / QUERIES)
        rows.append([
            str(n), build.cell(), f"{query.seconds / QUERIES * 1e6:.1f}",
            str(structure.node_count()),
        ])

        # Contract check on a sample of queries.
        answers = query.result
        sq = ((points[None, :, :] - queries[:, None, :]) ** 2).sum(axis=2)
        lo = (sq <= EPS * EPS).sum(axis=1)
        hi = (sq <= (EPS * (1 + RHO)) ** 2).sum(axis=1)
        assert ((lo <= answers) & (answers <= hi)).all()

    report(f"Lemma 5 — counting hierarchy (eps={EPS:g}, rho={RHO}, 3D)")
    report(format_table(["n", "build (s)", "query (us)", "cells stored"], rows))

    # O(1) query shape: per-query time at the largest n is within a small
    # factor of the smallest n.
    assert per_query[-1] <= per_query[0] * 8 + 1e-4

    points = seed_spreader(ns[0], 3, seed=cfg.SEED).points
    benchmark(lambda: CountingHierarchy(points, EPS, RHO))


def test_lemma5_query_benchmark(benchmark):
    points = seed_spreader(cfg.scaled(8000), 3, seed=cfg.SEED).points
    structure = CountingHierarchy(points, EPS, RHO)
    q = points[len(points) // 2]
    benchmark(lambda: structure.count(q))
