"""Figure 12: running time vs eps (rho = 0.001).

Sweep eps from 5000 towards the collapsing regime on every dataset and
time the four algorithms.  Paper shape to reproduce:

* KDD96 and CIT08 get *monotonically slower* as eps grows (their range
  queries return ever more points) and eventually exceed the budget;
* OurExact / OurApprox have no such monotone blow-up;
* OurApprox is consistently the fastest (or tied) at every eps.
"""

import pytest

from repro import approx_dbscan, dbscan
from repro.evaluation import format_table, line_chart
from repro.evaluation.timing import timed

from . import config as cfg

ALGOS = ("KDD96", "CIT08", "OurExact", "OurApprox")
N = max(100, cfg.DEFAULT_N // 2)


def run_algo(name, points, eps):
    budget = cfg.TIME_BUDGET
    if name == "KDD96":
        return timed(name, lambda: dbscan(points, eps, cfg.MINPTS, algorithm="kdd96",
                                          time_budget=budget))
    if name == "CIT08":
        return timed(name, lambda: dbscan(points, eps, cfg.MINPTS, algorithm="cit08",
                                          time_budget=budget))
    if name == "OurExact":
        return timed(name, lambda: dbscan(points, eps, cfg.MINPTS, algorithm="grid"))
    return timed(name, lambda: approx_dbscan(points, eps, cfg.MINPTS, rho=cfg.DEFAULT_RHO))


def sweep_panel(points, label, report):
    eps_values = [5000.0 * (2.0 ** i) for i in range(cfg.EPS_STEPS)]
    rows = []
    slow = {a: [] for a in ALGOS}
    for eps in eps_values:
        row = [f"{eps:.0f}"]
        for algo in ALGOS:
            run = run_algo(algo, points, eps)
            slow[algo].append(run)
            row.append(run.cell())
        rows.append(row)
    report(f"Figure 12 — time (s) vs eps ({label}, n={len(points)}, "
           f"MinPts={cfg.MINPTS}, rho={cfg.DEFAULT_RHO})")
    report(format_table(["eps"] + list(ALGOS), rows))
    report(line_chart(
        eps_values,
        {algo: [r.seconds for r in slow[algo]] for algo in ALGOS},
        x_label="eps", y_label="time",
    ))
    return slow


@pytest.mark.parametrize("label,d", [("SS3D", 3), ("SS5D", 5), ("SS7D", 7)])
def test_fig12_synthetic(label, d, datasets, report, benchmark):
    points = datasets.ss(d, N)
    runs = benchmark.pedantic(
        lambda: sweep_panel(points, label, report), rounds=1, iterations=1
    )
    _assert_paper_shape(runs)


@pytest.mark.parametrize("name", ["pamap2", "farm", "household"])
def test_fig12_real(name, datasets, report, benchmark):
    points = datasets.real(name, N)
    runs = benchmark.pedantic(
        lambda: sweep_panel(points, name, report), rounds=1, iterations=1
    )
    _assert_paper_shape(runs)


def _assert_paper_shape(runs):
    # The expansion baselines must not get *faster* by an order of
    # magnitude as eps grows (the paper: they strictly slow down)...
    for baseline in ("KDD96", "CIT08"):
        series = runs[baseline]
        finished = [r.seconds for r in series if r.finished]
        if len(finished) >= 2:
            assert finished[-1] >= finished[0] * 0.2
    # ...and OurApprox beats (or ties) the slowest baseline at the top eps.
    approx_last = runs["OurApprox"][-1]
    assert approx_last.finished
    last_baselines = [runs[b][-1] for b in ("KDD96", "CIT08")]
    finished_baselines = [r.seconds for r in last_baselines if r.finished]
    if finished_baselines:
        assert approx_last.seconds <= max(finished_baselines) * 1.5


def test_fig12_benchmark_approx_default(datasets, benchmark):
    points = datasets.ss(3, N)
    benchmark(lambda: approx_dbscan(points, 5000.0, cfg.MINPTS, rho=cfg.DEFAULT_RHO))
