"""Benches for the extension modules.

* **OPTICS amortisation**: one OPTICS run answers a whole eps sweep of
  DBSCAN extractions; compare against running DBSCAN per eps (the Figure 6
  / Section 4.2 use case of picking a stable eps).
* **Stability profiling**: cost of the suggest-eps sweep that certifies a
  rho head-room (sandwich-theorem-backed parameter advice).
"""

import numpy as np

from repro import approx_dbscan, dbscan
from repro.data import seed_spreader
from repro.evaluation import format_table
from repro.evaluation.timing import timed
from repro.extensions.optics import extract_dbscan, optics
from repro.extensions.stability import suggest_eps

from . import config as cfg

N = max(100, cfg.DEFAULT_N // 4)
SWEEP_STEPS = 5


def test_optics_amortised_sweep(report, benchmark):
    points = seed_spreader(N, 3, seed=cfg.SEED).points
    eps_top = cfg.DEFAULT_EPS * 2
    sweep = np.linspace(cfg.DEFAULT_EPS / 2, eps_top, SWEEP_STEPS)

    def optics_way():
        ordering = optics(points, eps_top, cfg.MINPTS)
        return [extract_dbscan(ordering, float(e)).n_clusters for e in sweep]

    def dbscan_way():
        return [dbscan(points, float(e), cfg.MINPTS).n_clusters for e in sweep]

    o_run = timed("optics", optics_way)
    d_run = timed("dbscan-per-eps", dbscan_way)
    report(f"Extension — OPTICS-amortised eps sweep ({SWEEP_STEPS} radii, "
           f"SS3D n={N}, MinPts={cfg.MINPTS})")
    report(format_table(
        ["method", "time (s)", "cluster counts over sweep"],
        [
            ["one OPTICS + extract", o_run.cell(), str(o_run.result)],
            ["DBSCAN per eps", d_run.cell(), str(d_run.result)],
        ],
    ))
    # The two sweeps must report identical cluster counts.
    assert o_run.result == d_run.result

    benchmark(lambda: optics(points, eps_top, cfg.MINPTS))


def test_stability_suggestion(report, benchmark):
    points = seed_spreader(N, 3, seed=cfg.SEED + 1).points
    sweep = np.linspace(2000.0, 30000.0, 8)

    def suggest():
        return suggest_eps(points, cfg.MINPTS, sweep)

    run = timed("suggest", suggest)
    plateau = run.result
    report(f"Extension — stability-based eps suggestion (SS3D n={N})")
    if plateau is None:
        report("no stable multi-cluster plateau found")
        rows = []
    else:
        rows = [[
            f"[{plateau.eps_lo:g}, {plateau.eps_hi:g}]",
            str(plateau.n_clusters),
            f"{plateau.midpoint:g}",
            f"{plateau.relative_width / 2:.3f}",
            run.cell(),
        ]]
        report(format_table(
            ["plateau", "#clusters", "suggested eps", "rho head-room", "time (s)"],
            rows,
        ))
        # The certified head-room is real: approx DBSCAN at the suggested
        # eps with rho below the head-room returns exactly the exact
        # clusters.
        rho = min(0.1, plateau.relative_width / 4)
        if rho > 0:
            exact = dbscan(points, plateau.midpoint, cfg.MINPTS)
            approx = approx_dbscan(points, plateau.midpoint, cfg.MINPTS, rho=rho)
            assert approx.same_clusters(exact)

    benchmark.pedantic(suggest, rounds=1, iterations=1)
