"""Figure 10: maximum legal rho vs eps (the sawtooth view).

For each dataset (SS3D/5D/7D and the three real-dataset stand-ins) sweep
eps and report the largest rho from the (thinned) Table 1 grid for which
rho-approximate DBSCAN returns exactly the exact clusters.  The paper's
findings to reproduce in shape:

* for most eps the maximum legal rho is large (>= 0.1, the grid top);
* isolated eps values — those sitting just below a cluster-merge
  boundary — have small or zero legal rho (the sawtooth valleys);
* the recommended rho = 0.001 is legal almost everywhere.
"""

import pytest

from repro.evaluation import format_table, max_legal_rho, sawtooth_chart
from repro.algorithms.exact_grid import exact_grid_dbscan

from . import config as cfg

#: Smaller n than the efficiency benches: each sweep point costs one exact
#: clustering plus up to len(RHO_GRID) approximate ones.
N = max(100, cfg.DEFAULT_N // 4)

SYNTHETIC = [("SS3D", 3), ("SS5D", 5), ("SS7D", 7)]
REAL = ["pamap2", "farm", "household"]


def sawtooth(points, eps_values, report, label):
    rows = []
    rhos = []
    legal_at_default = 0
    for eps in eps_values:
        exact = exact_grid_dbscan(points, float(eps), cfg.MINPTS)
        rho = max_legal_rho(points, float(eps), cfg.MINPTS, cfg.RHO_GRID, exact=exact)
        rows.append([f"{eps:.0f}", str(exact.n_clusters), f"{rho:g}"])
        rhos.append(rho)
        if rho >= cfg.DEFAULT_RHO:
            legal_at_default += 1
    report(f"Figure 10 — maximum legal rho vs eps ({label}, n={len(points)}, "
           f"MinPts={cfg.MINPTS}, grid={cfg.RHO_GRID})")
    report(format_table(["eps", "#clusters", "max legal rho"], rows))
    report(sawtooth_chart(list(map(float, eps_values)), rhos))
    report(f"rho={cfg.DEFAULT_RHO} legal at {legal_at_default}/{len(rows)} sweep points")
    return legal_at_default, len(rows)


@pytest.mark.parametrize("label,d", SYNTHETIC)
def test_fig10_synthetic(label, d, datasets, report, benchmark):
    points = datasets.ss(d, N)
    eps_values = datasets.eps_sweep(points)
    legal, total = sawtooth(points, eps_values, report, label)
    # Paper shape: the default rho is legal at (almost) every eps.
    assert legal >= total - 1

    eps0 = float(eps_values[0])
    benchmark(lambda: max_legal_rho(points, eps0, cfg.MINPTS, (cfg.DEFAULT_RHO,)))


@pytest.mark.parametrize("name", REAL)
def test_fig10_real(name, datasets, report, benchmark):
    points = datasets.real(name, N)
    eps_values = datasets.eps_sweep(points)
    legal, total = benchmark.pedantic(
        lambda: sawtooth(points, eps_values, report, name), rounds=1, iterations=1
    )
    assert legal >= total - 1
