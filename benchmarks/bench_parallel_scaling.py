"""Parallel scaling of the sharded grid pipeline (Figure-11 style).

Times the exact grid algorithm on SS3D seed-spreader workloads at 1, 2 and
4 workers and reports the speedup over the serial run.  Two configs:

* ``small`` — the paper-default Figure-11 config (n = ``cfg.DEFAULT_N``,
  eps = ``cfg.DEFAULT_EPS``).  Reported only: the serial run takes tens of
  milliseconds, well under the pool's own startup cost, so the honest
  speedup is < 1 on *any* machine — this row documents why the executor
  has a serial-fallback threshold at all.
* ``large`` — n = 8x the default at eps = 100 (cell side ~58, >10k
  occupied cells): several seconds of BCP-dominated work where the pool
  can amortise.  On a host with >= 4 CPUs, 4 workers must reach >= 1.7x;
  on smaller boxes the speedup is recorded but not asserted — a 1-core
  container physically cannot speed up, and a failing assert there would
  only measure the hardware.

Either way, every parallel labeling is asserted *identical* to the serial
one — a speedup that changes the answer is worthless.

Run standalone with ``python -m benchmarks.bench_parallel_scaling`` or via
pytest like the other benches.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro import dbscan
from repro.data import seed_spreader
from repro.parallel import ParallelConfig

from . import config as cfg

#: Worker counts swept (1 = the serial baseline).
WORKER_SWEEP = (1, 2, 4)

#: Required speedup at 4 workers on the large config (>= 4-CPU hosts only).
TARGET_SPEEDUP = 1.7

#: (name, n, eps, repeats) — repeats are best-of; pools cold-start each run.
CONFIGS = (
    ("small", cfg.DEFAULT_N, cfg.DEFAULT_EPS, 3),
    ("large", cfg.scaled(64000), 100.0, 2),
)


def _time_run(points, eps, workers, repeats):
    best = float("inf")
    result = None
    par = workers if workers == 1 else ParallelConfig(workers=workers, min_points=0)
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = dbscan(points, eps, cfg.MINPTS, workers=par)
        best = min(best, time.perf_counter() - t0)
    return best, result


def measure_scaling(report=print):
    d = 3
    all_speedups = {}
    report(f"parallel scaling — SS{d}D, MinPts={cfg.MINPTS}, "
           f"host cpus={os.cpu_count()}")
    for name, n, eps, repeats in CONFIGS:
        points = seed_spreader(n, d, seed=cfg.SEED + d).points
        serial_time, serial = _time_run(points, eps, 1, repeats)
        report(f"  [{name}] n={len(points)}, eps={eps:g}, "
               f"{serial.meta['grid_cells']} cells, best of {repeats}:")
        report(f"    workers=1: {serial_time:8.3f} s  (baseline, "
               f"{serial.n_clusters} clusters)")
        speedups = {1: 1.0}
        for workers in WORKER_SWEEP[1:]:
            elapsed, result = _time_run(points, eps, workers, repeats)
            assert np.array_equal(result.labels, serial.labels), (
                f"[{name}] parallel run at {workers} workers changed the labeling"
            )
            assert np.array_equal(result.core_mask, serial.core_mask)
            speedups[workers] = serial_time / elapsed
            report(f"    workers={workers}: {elapsed:8.3f} s  "
                   f"(speedup {speedups[workers]:.2f}x)")
        all_speedups[name] = speedups
    return all_speedups


def test_parallel_scaling(report):
    speedups = measure_scaling(report)
    cpus = os.cpu_count() or 1
    if cpus >= 4:
        assert speedups["large"][4] >= TARGET_SPEEDUP, (
            f"4-worker speedup {speedups['large'][4]:.2f}x below the "
            f"{TARGET_SPEEDUP}x target on a {cpus}-cpu host"
        )
    else:
        report(f"  ({cpus} cpu(s): {TARGET_SPEEDUP}x target not asserted)")


if __name__ == "__main__":
    speedups = measure_scaling()
    cpus = os.cpu_count() or 1
    ok = cpus < 4 or speedups["large"][4] >= TARGET_SPEEDUP
    raise SystemExit(0 if ok else 1)
