"""Parallel scaling of the sharded grid pipeline (Figure-11 style).

Times the exact grid algorithm on SS3D seed-spreader workloads at 1, 2 and
4 workers and reports the speedup over the serial run.  Two configs:

* ``small`` — the paper-default Figure-11 config (n = ``cfg.DEFAULT_N``,
  eps = ``cfg.DEFAULT_EPS``).  Reported only: the serial run takes tens of
  milliseconds, well under the pool's own startup cost, so the honest
  speedup is < 1 on *any* machine — this row documents why the executor
  has a serial-fallback threshold at all.
* ``large`` — n = 8x the default at eps = 100 (cell side ~58, >10k
  occupied cells): several seconds of BCP-dominated work where the pool
  can amortise.  On a host with >= 4 CPUs, 4 workers must reach >= 1.7x;
  on smaller boxes the speedup is recorded but not asserted — a 1-core
  container physically cannot speed up, and a failing assert there would
  only measure the hardware.

Either way, every parallel labeling is asserted *identical* to the serial
one — a speedup that changes the answer is worthless.

Run standalone with ``python -m benchmarks.bench_parallel_scaling`` or via
pytest like the other benches.
"""

from __future__ import annotations

import argparse
import json
import os
import time

import numpy as np

from repro import dbscan
from repro.data import seed_spreader
from repro.parallel import ParallelConfig, track_copy_bytes

from . import config as cfg

#: Worker counts swept (1 = the serial baseline).
WORKER_SWEEP = (1, 2, 4)

#: Required speedup at 4 workers on the large config (>= 4-CPU hosts only).
TARGET_SPEEDUP = 1.7

#: (name, n, eps, repeats) — repeats are best-of; pools cold-start each run.
CONFIGS = (
    ("small", cfg.DEFAULT_N, cfg.DEFAULT_EPS, 3),
    ("large", cfg.scaled(64000), 100.0, 2),
)

#: Required per-run transport-bytes reduction of the shm path vs pickled
#: at >= 2 workers.  CPU-count independent: this measures what crosses the
#: pipe, not how fast — a 1-core container asserts it just as honestly.
TARGET_COPY_REDUCTION = 10.0


def _time_run(points, eps, workers, repeats):
    best = float("inf")
    result = None
    par = workers if workers == 1 else ParallelConfig(workers=workers, min_points=0)
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = dbscan(points, eps, cfg.MINPTS, workers=par)
        best = min(best, time.perf_counter() - t0)
    return best, result


def measure_scaling(report=print):
    d = 3
    all_speedups = {}
    report(f"parallel scaling — SS{d}D, MinPts={cfg.MINPTS}, "
           f"host cpus={os.cpu_count()}")
    for name, n, eps, repeats in CONFIGS:
        points = seed_spreader(n, d, seed=cfg.SEED + d).points
        serial_time, serial = _time_run(points, eps, 1, repeats)
        report(f"  [{name}] n={len(points)}, eps={eps:g}, "
               f"{serial.meta['grid_cells']} cells, best of {repeats}:")
        report(f"    workers=1: {serial_time:8.3f} s  (baseline, "
               f"{serial.n_clusters} clusters)")
        speedups = {1: 1.0}
        for workers in WORKER_SWEEP[1:]:
            elapsed, result = _time_run(points, eps, workers, repeats)
            assert np.array_equal(result.labels, serial.labels), (
                f"[{name}] parallel run at {workers} workers changed the labeling"
            )
            assert np.array_equal(result.core_mask, serial.core_mask)
            speedups[workers] = serial_time / elapsed
            report(f"    workers={workers}: {elapsed:8.3f} s  "
                   f"(speedup {speedups[workers]:.2f}x)")
        all_speedups[name] = speedups
    return all_speedups


def measure_copy_bytes(report=print, n=None, eps=None):
    """Per-run pickled transport bytes: pickled vs shm at 2 workers.

    Both runs fan the same workload out over a 2-worker pool; the
    :func:`~repro.parallel.track_copy_bytes` ledger counts every byte
    that crosses the pipe (task items out, results back — the fork-
    inherited initializer payload is shared, not copied).  The shm
    transport replaces cell blocks and edge-pair lists with (start, stop)
    ranges and results with slab-write acks, so its steady-state copy
    traffic is ~zero.
    """
    d = 3
    n = cfg.scaled(8000) if n is None else n
    eps = cfg.DEFAULT_EPS if eps is None else eps
    points = seed_spreader(n, d, seed=cfg.SEED + d).points
    serial = dbscan(points, eps, cfg.MINPTS)
    report(f"copy bytes per run — SS{d}D n={len(points)}, eps={eps:g}, "
           f"MinPts={cfg.MINPTS}, workers=2")
    out = {"n": int(len(points)), "eps": float(eps), "workers": 2}
    for label, shm in (("pickled", False), ("shm", True)):
        with track_copy_bytes() as ledger:
            result = dbscan(
                points, eps, cfg.MINPTS,
                workers=ParallelConfig(workers=2, min_points=0, shm=shm),
            )
        assert np.array_equal(result.labels, serial.labels), (
            f"{label} transport changed the labeling"
        )
        total = ledger["task_bytes"] + ledger["result_bytes"]
        out[label] = {
            "task_bytes": int(ledger["task_bytes"]),
            "result_bytes": int(ledger["result_bytes"]),
            "total_bytes": int(total),
            "tasks": int(ledger["tasks"]),
        }
        report(f"    {label:8s}: {total:12,d} B  "
               f"({ledger['task_bytes']:,d} out + {ledger['result_bytes']:,d} "
               f"back over {ledger['tasks']} tasks)")
    reduction = out["pickled"]["total_bytes"] / max(1, out["shm"]["total_bytes"])
    out["reduction"] = float(reduction)
    report(f"    reduction: {reduction:.1f}x (target >= "
           f"{TARGET_COPY_REDUCTION:g}x)")
    assert reduction >= TARGET_COPY_REDUCTION, (
        f"shm transport only cut copy bytes {reduction:.1f}x "
        f"(< {TARGET_COPY_REDUCTION:g}x) vs the pickled path"
    )
    return out


def test_parallel_scaling(report):
    speedups = measure_scaling(report)
    cpus = os.cpu_count() or 1
    if cpus >= 4:
        assert speedups["large"][4] >= TARGET_SPEEDUP, (
            f"4-worker speedup {speedups['large'][4]:.2f}x below the "
            f"{TARGET_SPEEDUP}x target on a {cpus}-cpu host"
        )
    else:
        report(f"  ({cpus} cpu(s): {TARGET_SPEEDUP}x target not asserted)")


def test_shm_copy_bytes(report):
    measure_copy_bytes(report)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="copy-bytes measurement only, at a reduced n "
                             "(CI-friendly; skips the wall-clock sweep)")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write the copy-bytes report as JSON")
    args = parser.parse_args()
    ok = True
    if args.smoke:
        copy_report = measure_copy_bytes(n=cfg.scaled(2000))
    else:
        speedups = measure_scaling()
        cpus = os.cpu_count() or 1
        ok = cpus < 4 or speedups["large"][4] >= TARGET_SPEEDUP
        copy_report = measure_copy_bytes()
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(copy_report, fh, indent=2, sort_keys=True)
        print(f"wrote {args.json}")
    raise SystemExit(0 if ok else 1)
