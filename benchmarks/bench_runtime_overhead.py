"""Runtime-guard overhead: deadline checks must cost <5% on Figure 11.

The resilient runtime threads a cooperative :class:`repro.runtime.Deadline`
through every algorithm's hot loops (one monotonic-clock read per work
unit).  That only stays free if the work units are coarse enough; this
bench is the guard.  It times the exact grid algorithm on the Figure-11
small config with no budget versus a budget far too large to trigger, and
asserts the median slowdown stays under 5%.  The memory guard is polled at
phase boundaries only (a handful of /proc reads per run), so it rides
along in the budgeted timing.

A second measurement holds the parallel *supervisor* to the same budget:
on a fault-free run, tracked ``apply_async`` submission plus the hang /
death sweeps must cost <5% over the bare ``imap_unordered`` fan-out.

Run standalone with ``python -m benchmarks.bench_runtime_overhead`` or via
pytest like the other benches.
"""

from __future__ import annotations

import statistics
import time

from repro import dbscan
from repro.data import seed_spreader

from . import config as cfg

#: Acceptable median slowdown from deadline/memory polling.
OVERHEAD_BUDGET = 0.05

#: Timed back-to-back (plain, guarded) pairs.
REPEATS = 25

#: A budget no small-config run can reach, so every check is a miss.
NEVER_TRIGGERS = 3600.0


def _paired_times(fn_a, fn_b, repeats=REPEATS):
    """Per-pair (a_seconds, b_seconds), measured back to back.

    On a millisecond workload the guard cost is microseconds, far below a
    shared box's run-to-run jitter — so each variant pair is timed back to
    back (same cache and scheduler state) and the *median of per-pair
    ratios* is compared, which cancels the jitter that independent
    medians or minimums cannot.
    """
    pairs = []
    for i in range(repeats):
        # Alternate within-pair order so "ran second" effects (cache heat,
        # frequency scaling) do not bias one variant.
        first_is_a = i % 2 == 0
        t0 = time.perf_counter()
        (fn_a if first_is_a else fn_b)()
        first = time.perf_counter() - t0
        t0 = time.perf_counter()
        (fn_b if first_is_a else fn_a)()
        second = time.perf_counter() - t0
        pairs.append((first, second) if first_is_a else (second, first))
    return pairs


def measure_overhead(report=print):
    n = cfg.FIG11_N_SWEEP[0]
    d = 3
    points = seed_spreader(n, d, seed=cfg.SEED + d).points

    def plain():
        dbscan(points, cfg.DEFAULT_EPS, cfg.MINPTS, algorithm="grid")

    def guarded():
        dbscan(
            points,
            cfg.DEFAULT_EPS,
            cfg.MINPTS,
            algorithm="grid",
            time_budget=NEVER_TRIGGERS,
            memory_budget_mb=1 << 20,
        )

    plain()  # warm caches outside the timed region
    guarded()
    pairs = _paired_times(plain, guarded)
    base = statistics.median(a for a, _ in pairs)
    with_guards = statistics.median(b for _, b in pairs)
    overhead = statistics.median(b / a - 1.0 for a, b in pairs)

    report(f"runtime-guard overhead — SS{d}D, n={n}, eps={cfg.DEFAULT_EPS:g}, "
           f"MinPts={cfg.MINPTS}, median of {REPEATS} back-to-back pairs")
    report(f"  unguarded        : {base * 1e3:8.2f} ms")
    report(f"  deadline + memory: {with_guards * 1e3:8.2f} ms")
    report(f"  overhead         : {overhead:+.2%} (budget {OVERHEAD_BUDGET:.0%})")
    return overhead


def measure_supervisor_overhead(report=print, repeats=7):
    """Fault-free supervision cost versus the bare ``imap_unordered`` pool.

    The supervisor replaces ``imap_unordered`` with tracked ``apply_async``
    submissions plus a 50 ms sweep loop; on a fault-free run the only extra
    work is the bookkeeping, which must stay under the same 5% budget.
    Measured on a parallel-forced small run (pool startup dominates both
    variants equally and is inside both timings, so it cancels in the
    ratio).
    """
    from repro.parallel import ParallelConfig

    n = 4000
    d = 3
    points = seed_spreader(n, d, seed=cfg.SEED + d).points
    common = dict(workers=2, min_points=0)

    def bare():
        dbscan(points, cfg.DEFAULT_EPS, cfg.MINPTS, algorithm="grid",
               workers=ParallelConfig(supervise=False, **common))

    def supervised():
        dbscan(points, cfg.DEFAULT_EPS, cfg.MINPTS, algorithm="grid",
               workers=ParallelConfig(supervise=True, **common))

    bare()  # warm caches (and fork state) outside the timed region
    supervised()
    pairs = _paired_times(bare, supervised, repeats=repeats)
    base = statistics.median(a for a, _ in pairs)
    with_supervisor = statistics.median(b for _, b in pairs)
    overhead = statistics.median(b / a - 1.0 for a, b in pairs)

    report(f"supervisor overhead — SS{d}D, n={n}, 2 workers, fault-free, "
           f"median of {repeats} back-to-back pairs")
    report(f"  bare imap_unordered: {base * 1e3:8.2f} ms")
    report(f"  supervised         : {with_supervisor * 1e3:8.2f} ms")
    report(f"  overhead           : {overhead:+.2%} (budget {OVERHEAD_BUDGET:.0%})")
    return overhead


def test_runtime_overhead(report):
    overhead = measure_overhead(report)
    assert overhead < OVERHEAD_BUDGET, (
        f"deadline checks cost {overhead:.2%} (> {OVERHEAD_BUDGET:.0%}); "
        "hot-loop poll granularity has regressed"
    )


def test_supervisor_overhead(report):
    overhead = measure_supervisor_overhead(report)
    assert overhead < OVERHEAD_BUDGET, (
        f"fault-free supervision costs {overhead:.2%} (> {OVERHEAD_BUDGET:.0%}); "
        "the submit/sweep loop has regressed"
    )


if __name__ == "__main__":
    failed = measure_overhead() >= OVERHEAD_BUDGET
    failed |= measure_supervisor_overhead() >= OVERHEAD_BUDGET
    raise SystemExit(1 if failed else 0)
