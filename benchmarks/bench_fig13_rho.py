"""Figure 13: OurApprox running time vs the approximation ratio rho.

The paper: as rho increases (less precision demanded) the approximate
algorithm only gets faster — the Lemma 5 hierarchies get shallower
(``1 + ceil(log2(1/rho))`` levels) and queries prune earlier.
"""

import pytest

from repro import approx_dbscan
from repro.evaluation import format_table, line_chart
from repro.evaluation.timing import timed

from . import config as cfg

RHOS = (0.001, 0.01, 0.05, 0.1)
N = cfg.DEFAULT_N


def rho_series(points, label, report):
    rows = []
    times = []
    for rho in RHOS:
        run = timed(f"rho={rho}", lambda r=rho: approx_dbscan(
            points, cfg.DEFAULT_EPS, cfg.MINPTS, rho=r))
        times.append(run.seconds)
        rows.append([f"{rho:g}", run.cell(), str(run.result.n_clusters)])
    report(f"Figure 13 — OurApprox time (s) vs rho ({label}, n={len(points)}, "
           f"eps={cfg.DEFAULT_EPS:g}, MinPts={cfg.MINPTS})")
    report(format_table(["rho", "time", "#clusters"], rows))
    report(line_chart(list(RHOS), {"OurApprox": times}, x_label="rho", y_label="time"))
    return times


@pytest.mark.parametrize("label,d", [("SS3D", 3), ("SS5D", 5), ("SS7D", 7)])
def test_fig13_synthetic(label, d, datasets, report, benchmark):
    points = datasets.ss(d, N)
    times = benchmark.pedantic(
        lambda: rho_series(points, label, report), rounds=1, iterations=1
    )
    # Paper shape: larger rho is never dramatically slower than smaller rho.
    assert times[-1] <= times[0] * 2.0 + 0.05


@pytest.mark.parametrize("name", ["pamap2", "farm", "household"])
def test_fig13_real(name, datasets, report, benchmark):
    points = datasets.real(name, N)
    times = benchmark.pedantic(
        lambda: rho_series(points, name, report), rounds=1, iterations=1
    )
    assert times[-1] <= times[0] * 2.0 + 0.05


@pytest.mark.parametrize("rho", RHOS)
def test_fig13_benchmark(rho, datasets, benchmark):
    points = datasets.ss(3, max(100, N // 2))
    benchmark(lambda: approx_dbscan(points, cfg.DEFAULT_EPS, cfg.MINPTS, rho=rho))
