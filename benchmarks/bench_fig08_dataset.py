"""Figure 8 + Table 1: the seed-spreader generator.

Prints the provenance statistics of the Figure 8 visualisation dataset and
benchmarks generation throughput at the default benchmark cardinality
(the generator must be O(n) or it would dominate every other experiment).
"""

import numpy as np

from repro.data import figure8_dataset, seed_spreader
from repro.evaluation import format_table

from . import config as cfg


def test_fig08_dataset(report, benchmark):
    ds = figure8_dataset()
    report("Figure 8 — 2D seed-spreader dataset (n=1000)")
    rows = [
        ["points", str(ds.n)],
        ["dimension", str(ds.dim)],
        ["restarts (clusters)", str(ds.n_restarts)],
        ["noise points", str(ds.n_noise)],
    ]
    for r in range(ds.n_restarts):
        members = ds.points[ds.restart_ids == r]
        span = members.max(axis=0) - members.min(axis=0)
        rows.append([
            f"restart {r}",
            f"{len(members)} pts, extent {span[0]:.0f} x {span[1]:.0f}",
        ])
    report(format_table(["property", "value"], rows))

    benchmark(lambda: seed_spreader(cfg.DEFAULT_N, 3, seed=1))


def test_table1_parameter_grid(report, benchmark):
    """Print the scaled Table 1 actually used by this harness."""

    def run():
        report("Table 1 — parameter grid (scaled for pure Python; REPRO_SCALE to grow)")
        report(format_table(
            ["parameter", "paper", "this harness"],
            [
                ["n (synthetic)", "100k..10m (default 2m)",
                 f"{cfg.FIG11_N_SWEEP} (default {cfg.DEFAULT_N})"],
                ["d (synthetic)", "3, 5, 7", str(cfg.DIMENSIONS)],
                ["eps", "5000..collapsing radius", f"{cfg.DEFAULT_EPS:g}..sweep"],
                ["rho", "0.001..0.1 (default 0.001)",
                 f"{cfg.RHO_GRID} (default {cfg.DEFAULT_RHO})"],
                ["MinPts", "100", str(cfg.MINPTS)],
            ],
        ))
        return np.array(cfg.FIG11_N_SWEEP)

    sizes = benchmark.pedantic(run, rounds=1, iterations=1)
    assert (sizes[1:] > sizes[:-1]).all()
