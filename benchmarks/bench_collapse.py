"""Section 5.1: the collapsing radius.

"Every dataset has a unique collapsing radius, which is the smallest eps
such that exact DBSCAN returns a single cluster" — the upper endpoint of
every eps sweep in the paper.  This bench computes it for the Figure 8
dataset and a scaled SS3D dataset, verifies the defining property on both
sides of the returned radius, and times the search.
"""

from repro import dbscan
from repro.data import figure8_dataset, seed_spreader
from repro.evaluation import collapsing_radius, format_table
from repro.evaluation.timing import timed

from . import config as cfg


def test_collapsing_radius(report, benchmark):
    datasets = {
        "Figure 8 (2D, n=1000)": (figure8_dataset().points, 20),
        f"SS3D (n={cfg.scaled(2000)})": (
            seed_spreader(cfg.scaled(2000), 3, seed=cfg.SEED).points, cfg.MINPTS),
    }
    rows = []
    for label, (points, min_pts) in datasets.items():
        run = timed(label, lambda p=points, m=min_pts: collapsing_radius(
            p, m, lo=1000.0, rel_tol=0.005))
        radius = run.result
        at = dbscan(points, radius, min_pts).n_clusters
        below = dbscan(points, radius * 0.9, min_pts).n_clusters
        rows.append([label, f"{radius:.0f}", str(at), str(below), run.cell()])
        # Defining property: single cluster at the radius, (usually) more
        # than one just below it.
        assert at == 1
        assert below >= 1
    report("Section 5.1 — collapsing radius per dataset")
    report(format_table(
        ["dataset", "collapsing radius", "#clusters at", "#clusters at 0.9x", "time (s)"],
        rows,
    ))

    points, min_pts = datasets["Figure 8 (2D, n=1000)"]
    benchmark(lambda: collapsing_radius(points, min_pts, lo=1000.0, rel_tol=0.01))
