"""Shared fixtures for the benchmark harness.

Every bench prints paper-style rows through the ``report`` fixture, which
writes straight to the terminal reporter so the tables appear even under
pytest's output capture (no ``-s`` needed).
"""

from __future__ import annotations

import sys

import pytest


@pytest.fixture()
def report(capsys):
    """A ``print``-like callable that bypasses pytest output capture."""

    def write(line: str = "") -> None:
        with capsys.disabled():
            print(line, file=sys.stderr)

    write("")  # drop to a fresh line under the live progress dots
    return write


@pytest.fixture(scope="session")
def datasets():
    """Session-cached workload datasets (see benchmarks/config.py)."""
    from . import config as bench_config

    return bench_config.WorkloadCache()
