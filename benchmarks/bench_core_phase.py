"""Core + border phases: the staged batched kernels vs the per-cell loops.

The first and last hot phases of the Section 2.2 grid pipeline — core
labeling (``|B(p, eps)| >= MinPts``) and border assignment (every cluster
with a core point within ``eps``) — pay one Python iteration plus several
small numpy calls per cell in the reference loops, which dominates
wall-clock on seed-spreader-style grids with tens of thousands of
near-singleton cells.  The staged kernels
(:mod:`repro.core.corekernel`) settle both phases with vectorised,
size-classed tiles.  This bench measures both kernels' wall-clock for the
two phases on an identical workload — clustered seed-spreader points
blended with uniform background noise, so the grid mixes dense
quick-accept cells with a long tail of sparse cells — and asserts:

* the staged kernels are at least :data:`TARGET_SPEEDUP` times faster on
  the **combined** core + border phase time;
* the results are **byte-identical** between the kernels on the serial
  path, the parallel path (workers > 1, pickled and shm transports), and
  a ``known_core``-carried (sweep) run — the differential oracle riding
  along with every measurement.

Run standalone::

    python -m benchmarks.bench_core_phase              # full config
    python -m benchmarks.bench_core_phase --smoke      # CI-sized
    python -m benchmarks.bench_core_phase --json BENCH_core.json

or via pytest like the other benches (the pytest path uses the CI-sized
workload).
"""

from __future__ import annotations

import argparse
import json
import math
import time

import numpy as np

from repro.core import cellgraph as cg
from repro.core.border import assign_borders
from repro.core.labeling import label_cores
from repro.data import seed_spreader
from repro.grid import counters
from repro.grid.cells import Grid
from repro.parallel import unpublish_grid
from repro.parallel.executor import (
    ParallelConfig,
    parallel_assign_borders,
    parallel_label_cores,
)

from . import config as cfg

#: Required combined core+border speedup of the staged kernels over the
#: per-cell loops at every config — the staged tiles win even at smoke
#: size because they remove per-cell Python overhead, not just
#: asymptotic work.
TARGET_SPEEDUP = 3.0

#: (name, clustered points, noise points, d, eps, min_pts).
FULL_CONFIG = ("full", 15_000, 15_000, 2, 1500.0, 10)
SMOKE_CONFIG = ("smoke", 6_000, 6_000, 2, 1500.0, 10)

#: Noise-domain side length at ``FULL_CONFIG`` scale; smaller configs
#: shrink the domain with sqrt(n) so the background density — and with it
#: the sparse-cell tail feeding stage B — stays constant across configs.
_NOISE_SIDE = 100_000.0
_NOISE_REF = 15_000


def _workload(n_clustered: int, n_noise: int, d: int, eps: float):
    """Blended workload with a warm grid (adjacency charged up front)."""
    rng = np.random.default_rng(cfg.SEED)
    clustered = seed_spreader(n_clustered, d, seed=cfg.SEED).points
    side = _NOISE_SIDE * math.sqrt(n_noise / _NOISE_REF)
    noise = rng.uniform(0.0, side, size=(n_noise, d))
    points = np.vstack([clustered, noise])
    grid = Grid(points, eps)
    grid.warm_neighbors()
    return grid


def _timed(runner):
    t0 = time.perf_counter()
    result = runner()
    return result, time.perf_counter() - t0


def measure(config, report=print):
    """Staged-vs-loop comparison on one blended workload."""
    name, n_clustered, n_noise, d, eps, min_pts = config
    grid = _workload(n_clustered, n_noise, d, eps)
    report(
        f"core+border phases — SS{d}D + noise, n={len(grid.points)}, "
        f"eps={eps:g}, min_pts={min_pts}, {len(grid.cells)} cells [{name}]"
    )

    # Untimed warm-up of both kernels: charges one-time costs (BLAS
    # initialisation, the grid's SoA cache, allocator growth) to neither
    # side, so the timings compare steady-state kernel work.
    label_cores(grid, min_pts, kernel="staged")
    label_cores(grid, min_pts, kernel="loop")

    before = counters.snapshot()
    core_staged, t_core_staged = _timed(
        lambda: label_cores(grid, min_pts, kernel="staged")
    )
    core_funnel = {
        k: v for k, v in counters.delta_since(before).items()
        if k.startswith("core_")
    }
    core_loop, t_core_loop = _timed(
        lambda: label_cores(grid, min_pts, kernel="loop")
    )
    labels, n_clusters = cg.exact_components(grid, core_loop)
    before = counters.snapshot()
    b_staged, t_border_staged = _timed(
        lambda: assign_borders(grid, core_loop, labels, kernel="staged")
    )
    border_funnel = {
        k: v for k, v in counters.delta_since(before).items()
        if k.startswith("border_")
    }
    b_loop, t_border_loop = _timed(
        lambda: assign_borders(grid, core_loop, labels, kernel="loop")
    )

    t_staged = t_core_staged + t_border_staged
    t_loop = t_core_loop + t_border_loop
    core_speedup = t_core_loop / t_core_staged if t_core_staged > 0 else float("inf")
    border_speedup = (
        t_border_loop / t_border_staged if t_border_staged > 0 else float("inf")
    )
    combined_speedup = t_loop / t_staged if t_staged > 0 else float("inf")
    report(
        f"  core:     loop {t_core_loop:.3f} s, staged {t_core_staged:.3f} s "
        f"(speedup {core_speedup:.2f}x)"
    )
    report(
        f"  border:   loop {t_border_loop:.3f} s, staged {t_border_staged:.3f} s "
        f"(speedup {border_speedup:.2f}x)"
    )
    report(
        f"  combined: loop {t_loop:.3f} s, staged {t_staged:.3f} s "
        f"(speedup {combined_speedup:.2f}x)"
    )
    total = max(1, core_funnel.get("core_points_total", 0))
    report(
        "  funnel: "
        f"{core_funnel.get('core_dense_points', 0) / total:.1%} dense-accept, "
        f"{core_funnel.get('core_counted_points', 0) / total:.1%} counted, "
        f"{core_funnel.get('core_retired_points', 0) / total:.1%} retired early; "
        f"{border_funnel.get('border_assigned', 0)} borders assigned, "
        f"{border_funnel.get('border_noise', 0)} noise"
    )

    # Differential oracle riding along with every measurement: results
    # must be byte-identical between kernels on the serial path...
    assert np.array_equal(core_staged, core_loop), "serial core mask drifted"
    assert b_staged == b_loop, "serial border assignment drifted"
    # ...on the parallel path (workers > 1, both transports; staged
    # kernel inside shards)...
    for shm in (False, True):
        pcfg = ParallelConfig(workers=2, min_points=0, shm=shm)
        try:
            par_core = parallel_label_cores(grid, min_pts, pcfg)
            par_b = parallel_assign_borders(grid, core_loop, labels, pcfg)
        finally:
            # Calling the executor directly makes us the grid's owner:
            # drop any published shm segment before returning.
            unpublish_grid(grid)
        assert np.array_equal(par_core, core_loop), f"parallel cores drifted (shm={shm})"
        assert dict(par_b) == dict(b_loop), f"parallel borders drifted (shm={shm})"
    # ...and on a known_core-carried run (the sweep's monotone hint).
    small = Grid(grid.points, eps * 0.6)
    hint = label_cores(small, min_pts, kernel="staged")
    carried = label_cores(grid, min_pts, kernel="staged", known_core=hint)
    assert np.array_equal(carried, core_loop), "known_core-carried mask drifted"
    report("  oracle: serial / parallel (pickled+shm) / carry byte-identical")

    return {
        "config": name,
        "n": int(len(grid.points)),
        "d": d,
        "eps": eps,
        "min_pts": min_pts,
        "grid_cells": int(len(grid.cells)),
        "clusters": int(n_clusters),
        "core_loop_seconds": t_core_loop,
        "core_staged_seconds": t_core_staged,
        "core_speedup": core_speedup,
        "border_loop_seconds": t_border_loop,
        "border_staged_seconds": t_border_staged,
        "border_speedup": border_speedup,
        "combined_loop_seconds": t_loop,
        "combined_staged_seconds": t_staged,
        "combined_speedup": combined_speedup,
        "core_funnel": core_funnel,
        "border_funnel": border_funnel,
        "byte_identical": True,
    }


def test_core_phase_staged_vs_loop(report, benchmark):
    """CI smoke: the staged kernels beat the loops with identical results."""
    stats = measure(SMOKE_CONFIG, report)
    assert stats["combined_speedup"] >= TARGET_SPEEDUP, (
        f"staged core+border phases only {stats['combined_speedup']:.2f}x faster "
        f"(target {TARGET_SPEEDUP}x)"
    )
    grid = _workload(*SMOKE_CONFIG[1:5])
    min_pts = SMOKE_CONFIG[5]
    benchmark(lambda: label_cores(grid, min_pts, kernel="staged"))


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="run the CI-sized config instead of the full one")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write the measurements to PATH as JSON")
    args = parser.parse_args(argv)
    config = SMOKE_CONFIG if args.smoke else FULL_CONFIG
    stats = measure(config)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(stats, fh, indent=2)
        print(f"wrote {args.json}")
    ok = stats["combined_speedup"] >= TARGET_SPEEDUP
    if not ok:
        print(
            f"FAIL: combined core+border speedup "
            f"{stats['combined_speedup']:.2f}x below the {TARGET_SPEEDUP}x target"
        )
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
