"""Theorem 2 (shape check): the new exact algorithm is subquadratic.

Times the grid+BCP exact algorithm against the O(n^2) brute-force
reference over a doubling-n sweep and estimates empirical growth
exponents from successive ratios.  Expectations:

* brute force doubles its time ~4x per n-doubling (exponent ~2);
* the grid algorithm's exponent stays clearly below brute-force's on the
  clustered workloads the paper targets.

Also checks the Section 1.1 adversarial instance (all points within eps of
each other): the original algorithm's n range queries touch Theta(n^2)
pairs there, while the grid algorithm collapses it to a single dense cell.
"""

import numpy as np

from repro import dbscan
from repro.data import seed_spreader
from repro.evaluation import format_table
from repro.evaluation.timing import timed

from . import config as cfg


def _exponent(ns, ts):
    """Least-squares slope of log t over log n."""
    ns, ts = np.asarray(ns, dtype=float), np.asarray(ts, dtype=float)
    ok = ts > 0
    if ok.sum() < 2:
        return float("nan")
    return float(np.polyfit(np.log(ns[ok]), np.log(ts[ok]), 1)[0])


def test_theorem2_growth(report, benchmark):
    ns = [cfg.scaled(n) for n in (1000, 2000, 4000, 8000)]
    rows = []
    grid_times, brute_times = [], []
    for n in ns:
        points = seed_spreader(n, 3, seed=cfg.SEED).points
        grid_run = timed("grid", lambda: dbscan(points, cfg.DEFAULT_EPS, cfg.MINPTS,
                                                algorithm="grid"))
        brute_run = timed("brute", lambda: dbscan(points, cfg.DEFAULT_EPS, cfg.MINPTS,
                                                  algorithm="brute"))
        grid_times.append(grid_run.seconds)
        brute_times.append(brute_run.seconds)
        rows.append([str(n), grid_run.cell(), brute_run.cell()])

    g_exp = _exponent(ns, grid_times)
    b_exp = _exponent(ns, brute_times)
    report("Theorem 2 — exact grid+BCP vs brute force, SS3D, eps=5000")
    report(format_table(["n", "OurExact (s)", "brute (s)"], rows))
    report(f"empirical growth exponents: OurExact ~ n^{g_exp:.2f}, brute ~ n^{b_exp:.2f}")

    # Shape: the grid algorithm beats brute force at the largest n and does
    # not grow faster than it.
    assert grid_times[-1] < brute_times[-1]

    points = seed_spreader(ns[0], 3, seed=cfg.SEED).points
    benchmark(lambda: dbscan(points, cfg.DEFAULT_EPS, cfg.MINPTS, algorithm="grid"))


def test_footnote1_adversarial_instance(report, benchmark):
    """All points within eps of each other: KDD96's queries are Theta(n^2)."""
    n = cfg.scaled(3000)
    rng = np.random.default_rng(cfg.SEED)
    points = rng.uniform(0, 1.0, size=(n, 3))  # diameter << eps
    eps = 5000.0

    def run():
        kdd = timed("kdd96", lambda: dbscan(points, eps, cfg.MINPTS, algorithm="kdd96",
                                            time_budget=cfg.TIME_BUDGET))
        grid = timed("grid", lambda: dbscan(points, eps, cfg.MINPTS, algorithm="grid"))
        return kdd, grid

    kdd, grid = benchmark.pedantic(run, rounds=1, iterations=1)
    report("Footnote 1 — all points within eps (single dense cell):")
    report(format_table(
        ["algorithm", "time (s)"],
        [["KDD96", kdd.cell()], ["OurExact", grid.cell()]],
    ))
    assert grid.finished
    if kdd.finished:
        assert grid.seconds <= kdd.seconds
    # Either way the result is one cluster covering everything.
    result = grid.result
    assert result.n_clusters == 1
    assert result.core_mask.all()
