"""Section 2.2: the 2D case is genuinely solved.

Gunawan's algorithm gives exact DBSCAN in O(n log n) for d = 2; the paper
contrasts this with the impossibility of similar bounds for d >= 3.  This
bench times Gunawan's algorithm (our grid algorithm with NN-based edges)
against KDD96 and brute force on 2D seed-spreader data over a doubling-n
sweep, and estimates the growth exponent — it should hover near 1 (the
log factor is invisible at these sizes), far below brute force's 2.
"""

import numpy as np

from repro import dbscan
from repro.data import seed_spreader
from repro.evaluation import format_table, line_chart
from repro.evaluation.timing import timed

from . import config as cfg


def _exponent(ns, ts):
    ns, ts = np.asarray(ns, dtype=float), np.asarray(ts, dtype=float)
    ok = ts > 0
    if ok.sum() < 2:
        return float("nan")
    return float(np.polyfit(np.log(ns[ok]), np.log(ts[ok]), 1)[0])


def test_gunawan_2d_scaling(report, benchmark):
    ns = [cfg.scaled(n) for n in (1000, 2000, 4000, 8000)]
    series = {"Gunawan2D": [], "KDD96": [], "brute": []}
    rows = []
    last_results = {}
    for n in ns:
        points = seed_spreader(n, 2, seed=cfg.SEED).points
        gun = timed("gunawan", lambda: dbscan(points, cfg.DEFAULT_EPS, cfg.MINPTS,
                                              algorithm="gunawan2d"))
        kdd = timed("kdd96", lambda: dbscan(points, cfg.DEFAULT_EPS, cfg.MINPTS,
                                            algorithm="kdd96",
                                            time_budget=cfg.TIME_BUDGET))
        brute = timed("brute", lambda: dbscan(points, cfg.DEFAULT_EPS, cfg.MINPTS,
                                              algorithm="brute"))
        series["Gunawan2D"].append(gun.seconds)
        series["KDD96"].append(kdd.seconds)
        series["brute"].append(brute.seconds)
        rows.append([str(n), gun.cell(), kdd.cell(), brute.cell()])
        last_results = {"gunawan": gun.result, "brute": brute.result}

    report(f"Section 2.2 — the solved 2D case (eps={cfg.DEFAULT_EPS:g}, "
           f"MinPts={cfg.MINPTS})")
    report(format_table(["n", "Gunawan2D", "KDD96", "brute"], rows))
    report(line_chart(ns, series, x_label="n", y_label="time"))
    g_exp = _exponent(ns, series["Gunawan2D"])
    b_exp = _exponent(ns, series["brute"])
    report(f"growth exponents: Gunawan2D ~ n^{g_exp:.2f}, brute ~ n^{b_exp:.2f}")

    # Exactness: Gunawan's output is the unique DBSCAN result.
    assert last_results["gunawan"].same_clusters(last_results["brute"])
    # Shape: clearly subquadratic, and faster than brute at the top size.
    assert series["Gunawan2D"][-1] < series["brute"][-1]

    points = seed_spreader(ns[0], 2, seed=cfg.SEED).points
    benchmark(lambda: dbscan(points, cfg.DEFAULT_EPS, cfg.MINPTS,
                             algorithm="gunawan2d"))
