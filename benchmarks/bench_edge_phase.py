"""Edge phase: the staged batched kernel vs the per-pair reference loop.

The component phase of the grid algorithms (Lemma 1's core-cell graph)
must settle every eps-neighbouring pair of core cells.  The staged kernel
(:mod:`repro.core.edgekernel`) resolves most pairs with vectorised
quick-accept / quick-reject certificates and schedules the few survivors
cheapest-first under a spanning-forest early exit; the reference loop
(``kernel="loop"``) pays a full per-pair decision.  This bench measures
the edge-phase wall-clock of both kernels on an identical workload —
clustered seed-spreader points blended with uniform background noise, so
the candidate pairs span dense accepts, far rejects and borderline
survivors — and asserts:

* the staged kernel is at least :data:`TARGET_SPEEDUP` times faster on
  the exact *and* the approximate edge rule;
* labels are **byte-identical** between the kernels on the serial path,
  the parallel path (workers > 1), and a preunion-seeded (sweep-carry)
  run — the differential oracle riding along with every measurement.

Run standalone::

    python -m benchmarks.bench_edge_phase              # full config
    python -m benchmarks.bench_edge_phase --smoke      # CI-sized
    python -m benchmarks.bench_edge_phase --json BENCH_edge.json

or via pytest like the other benches (the pytest path uses the CI-sized
workload).
"""

from __future__ import annotations

import argparse
import json
import math
import time

import numpy as np

from repro.core import cellgraph as cg
from repro.core.labeling import label_cores
from repro.data import seed_spreader
from repro.grid import counters
from repro.grid.cells import Grid
from repro.parallel import unpublish_grid
from repro.parallel.executor import ParallelConfig, parallel_exact_components

from . import config as cfg

#: Required edge-phase speedup of the staged kernel over the per-pair
#: loop, for both edge rules, at every config — the vectorised stages
#: win even at smoke size because they remove per-pair Python overhead,
#: not just asymptotic work.
TARGET_SPEEDUP = 3.0

#: (name, clustered points, noise points, d, eps, min_pts, rho).
FULL_CONFIG = ("full", 15_000, 15_000, 2, 1500.0, 10, 0.001)
SMOKE_CONFIG = ("smoke", 6_000, 6_000, 2, 1500.0, 10, 0.001)

#: Noise-domain side length at ``FULL_CONFIG`` scale; smaller configs
#: shrink the domain with sqrt(n) so the background density — and with it
#: the mix of borderline core cells feeding the survivor stage — stays
#: constant across configs.
_NOISE_SIDE = 100_000.0
_NOISE_REF = 15_000


def _workload(n_clustered: int, n_noise: int, d: int, eps: float, min_pts: int):
    """Blended workload + shared phase inputs (grid, warm adjacency, cores)."""
    rng = np.random.default_rng(cfg.SEED)
    clustered = seed_spreader(n_clustered, d, seed=cfg.SEED).points
    side = _NOISE_SIDE * math.sqrt(n_noise / _NOISE_REF)
    noise = rng.uniform(0.0, side, size=(n_noise, d))
    points = np.vstack([clustered, noise])
    grid = Grid(points, eps)
    grid.warm_neighbors()
    core = label_cores(grid, min_pts)
    return grid, core


def _timed_components(runner):
    t0 = time.perf_counter()
    result = runner()
    return result, time.perf_counter() - t0


def measure(config, report=print):
    """Staged-vs-loop comparison on one blended workload."""
    name, n_clustered, n_noise, d, eps, min_pts, rho = config
    grid, core = _workload(n_clustered, n_noise, d, eps, min_pts)
    cells = cg.core_cells(grid, core)
    _, ii, _ = grid.neighbor_cell_pair_arrays(subset=cells.keys())
    report(
        f"edge phase — SS{d}D + noise, n={len(grid.points)}, eps={eps:g}, "
        f"min_pts={min_pts}, {len(cells)} core cells, "
        f"{len(ii)} candidate pairs [{name}]"
    )

    before = counters.snapshot()
    exact_staged, t_exact_staged = _timed_components(
        lambda: cg.exact_components(grid, core, kernel="staged")
    )
    funnel = {
        k: v for k, v in counters.delta_since(before).items()
        if k.startswith("edge_")
    }
    approx_staged, t_approx_staged = _timed_components(
        lambda: cg.approx_components(grid, core, rho, kernel="staged")
    )
    exact_loop, t_exact_loop = _timed_components(
        lambda: cg.exact_components(grid, core, kernel="loop")
    )
    approx_loop, t_approx_loop = _timed_components(
        lambda: cg.approx_components(grid, core, rho, kernel="loop")
    )

    exact_speedup = t_exact_loop / t_exact_staged if t_exact_staged > 0 else float("inf")
    approx_speedup = t_approx_loop / t_approx_staged if t_approx_staged > 0 else float("inf")
    report(
        f"  exact:  loop {t_exact_loop:.3f} s, staged {t_exact_staged:.3f} s "
        f"(speedup {exact_speedup:.2f}x)"
    )
    report(
        f"  approx: loop {t_approx_loop:.3f} s, staged {t_approx_staged:.3f} s "
        f"(speedup {approx_speedup:.2f}x)"
    )
    total = max(1, funnel.get("edge_pairs_total", 0))
    report(
        "  funnel: "
        f"{funnel.get('edge_quick_accept', 0) / total:.1%} quick-accept, "
        f"{funnel.get('edge_quick_reject', 0) / total:.1%} quick-reject, "
        f"{funnel.get('edge_predicate_tests', 0) / total:.2%} per-pair tests"
    )

    # Differential oracle riding along with every measurement: labels must
    # be byte-identical between kernels on the serial path...
    assert np.array_equal(exact_staged[0], exact_loop[0]), "serial exact labels drifted"
    assert exact_staged[1] == exact_loop[1]
    assert np.array_equal(approx_staged[0], approx_loop[0]), "serial approx labels drifted"
    assert approx_staged[1] == approx_loop[1]
    # ...on the parallel path (workers > 1; staged kernel inside shards)...
    try:
        par = parallel_exact_components(
            grid, core, ParallelConfig(workers=2, min_points=0)
        )
    finally:
        # Calling the executor directly makes us the grid's owner: drop
        # any published shm segment before returning.
        unpublish_grid(grid)
    assert np.array_equal(par[0], exact_loop[0]), "parallel labels drifted"
    # ...and on a preunion-seeded run (the sweep's carry).
    seed = cg.edge_list_exact(grid, core)[::2]
    seeded, _ = _timed_components(
        lambda: cg.exact_components(grid, core, kernel="staged", preunion=seed)
    )
    assert np.array_equal(seeded[0], exact_loop[0]), "preunion-seeded labels drifted"
    report("  oracle: serial / parallel / preunion labels byte-identical")

    return {
        "config": name,
        "n": int(len(grid.points)),
        "d": d,
        "eps": eps,
        "min_pts": min_pts,
        "rho": rho,
        "core_cells": int(len(cells)),
        "candidate_pairs": int(len(ii)),
        "exact_loop_seconds": t_exact_loop,
        "exact_staged_seconds": t_exact_staged,
        "exact_speedup": exact_speedup,
        "approx_loop_seconds": t_approx_loop,
        "approx_staged_seconds": t_approx_staged,
        "approx_speedup": approx_speedup,
        "funnel": funnel,
        "byte_identical": True,
    }


def test_edge_phase_staged_vs_loop(report, benchmark):
    """CI smoke: the staged kernel beats the loop with identical labels."""
    stats = measure(SMOKE_CONFIG, report)
    assert stats["exact_speedup"] >= TARGET_SPEEDUP, (
        f"staged exact edge phase only {stats['exact_speedup']:.2f}x faster "
        f"(target {TARGET_SPEEDUP}x)"
    )
    assert stats["approx_speedup"] >= TARGET_SPEEDUP, (
        f"staged approx edge phase only {stats['approx_speedup']:.2f}x faster "
        f"(target {TARGET_SPEEDUP}x)"
    )
    grid, core = _workload(*SMOKE_CONFIG[1:6])
    benchmark(lambda: cg.exact_components(grid, core, kernel="staged"))


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="run the CI-sized config instead of the full one")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write the measurements to PATH as JSON")
    args = parser.parse_args(argv)
    config = SMOKE_CONFIG if args.smoke else FULL_CONFIG
    stats = measure(config)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(stats, fh, indent=2)
        print(f"wrote {args.json}")
    ok = (
        stats["exact_speedup"] >= TARGET_SPEEDUP
        and stats["approx_speedup"] >= TARGET_SPEEDUP
    )
    if not ok:
        print(
            f"FAIL: edge-phase speedup below the {TARGET_SPEEDUP}x target "
            f"(exact {stats['exact_speedup']:.2f}x, "
            f"approx {stats['approx_speedup']:.2f}x)"
        )
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
