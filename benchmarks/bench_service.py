"""Service front-end overhead: the async door must stay cheap.

Run one clustering through the full service path — admission, coalescing
map, executor hop, response serialization — and compare against calling
the same warm :class:`~repro.engine.ClusteringEngine` directly.  The
difference is the price of clustering-as-a-service, and it must stay a
small constant per request (it is serialization plus event-loop
bookkeeping, independent of dataset size), not a multiple of the
clustering itself.

A second measurement drives the coalescing path: a burst of identical
concurrent requests must execute the engine exactly once and finish in
roughly one computation's wall time, not N of them.

A third measurement prices the fair scheduler: the same mixed-tenant
burst of *distinct* warm requests runs through the deficit-round-robin
scheduler (``fair=True``) and the legacy FIFO semaphore
(``fair=False``), interleaved to cancel machine drift, and the fair
path must cost within ``FAIRNESS_BUDGET_PCT`` of FIFO — fairness is
bookkeeping on the dispatch path, not extra work per request.

Run standalone::

    python -m benchmarks.bench_service --smoke --json BENCH_service.json

or via pytest like the other benches (the pytest path uses the smoke
config).
"""

from __future__ import annotations

import argparse
import json
import statistics
import time

from repro.data import seed_spreader
from repro.engine import ClusteringEngine
from repro.service import AdmissionPolicy, ServiceClient

from . import config as cfg

#: Acceptable median per-request service overhead (seconds).  The service
#: adds serialization + a thread/loop round trip; on the smoke workload
#: that is milliseconds, and CI boxes get generous headroom.
OVERHEAD_BUDGET_S = 0.25

#: Identical concurrent requests in the coalescing burst.
BURST = 16

#: Acceptable median cost of deficit-round-robin dispatch over the legacy
#: FIFO semaphore, as a percentage of the FIFO burst wall time.
FAIRNESS_BUDGET_PCT = 5.0

#: Distinct concurrent requests (two tenants) in each fairness burst.
FAIRNESS_BURST = 24

#: Interleaved fair/FIFO repetitions; medians cancel one-off stalls.
FAIRNESS_REPEATS = 5

FULL_CONFIG = ("full", 20_000, 3, 10)
SMOKE_CONFIG = ("smoke", 4_000, 3, 10)


def measure(config, report=print):
    name, n, d, repeats = config
    points = seed_spreader(n, d, seed=cfg.SEED + d).points
    eps, min_pts = cfg.DEFAULT_EPS, cfg.MINPTS

    engine = ClusteringEngine(points)
    engine.dbscan(eps, min_pts)  # warm the structures once

    def direct():
        return engine.dbscan(eps, min_pts)

    with ServiceClient(policy=AdmissionPolicy(max_queue=64)) as client:
        client.register("bench", points)
        client.cluster("bench", eps, min_pts)  # warm the service engine

        direct_times, service_times = [], []
        for _ in range(repeats):
            t0 = time.perf_counter()
            direct()
            direct_times.append(time.perf_counter() - t0)
            t0 = time.perf_counter()
            client.cluster("bench", eps, min_pts)
            service_times.append(time.perf_counter() - t0)

        service_engine = client.service.registry.get("bench").engine
        runs_before = service_engine.runs_executed
        t0 = time.perf_counter()
        burst = client.cluster_many(
            [{"dataset": "bench", "eps": eps, "min_pts": min_pts}] * BURST,
            return_exceptions=False,
        )
        burst_s = time.perf_counter() - t0
        burst_runs = service_engine.runs_executed - runs_before
        stats_snapshot = client.stats()

    direct_s = statistics.median(direct_times)
    service_s = statistics.median(service_times)
    overhead_s = service_s - direct_s
    stats = {
        "config": name,
        "n": n,
        "d": d,
        "repeats": repeats,
        "direct_ms": direct_s * 1e3,
        "service_ms": service_s * 1e3,
        "overhead_ms": overhead_s * 1e3,
        "ratio": service_s / direct_s if direct_s else float("inf"),
        "burst_size": BURST,
        "burst_runs": burst_runs,
        "burst_ms": burst_s * 1e3,
        "burst_per_request_ms": burst_s / BURST * 1e3,
        "coalesced": stats_snapshot["coalesced"],
    }
    report(f"service overhead — SS{d}D, n={n}, eps={eps:g}, MinPts={min_pts}, "
           f"median of {repeats} warm requests")
    report(f"  direct engine call : {stats['direct_ms']:8.2f} ms")
    report(f"  through the service: {stats['service_ms']:8.2f} ms")
    report(f"  overhead           : {stats['overhead_ms']:8.2f} ms "
           f"(budget {OVERHEAD_BUDGET_S * 1e3:.0f} ms)")
    report(f"coalescing burst — {BURST} identical concurrent requests")
    report(f"  engine executions  : {burst_runs} (must be 1)")
    report(f"  burst wall time    : {stats['burst_ms']:8.2f} ms "
           f"({stats['burst_per_request_ms']:.2f} ms/request)")
    assert len(burst) == BURST
    return stats


def measure_fairness(config, report=print):
    """Price deficit-round-robin dispatch against the FIFO semaphore.

    Identical mixed-tenant bursts of *distinct* warm requests (no
    coalescing, structures pre-built) run through both dispatch paths,
    interleaved FIFO/fair so machine drift hits both medians equally.
    """
    name, n, d, _ = config
    points = seed_spreader(n, d, seed=cfg.SEED + d).points
    min_pts = cfg.MINPTS
    eps_grid = [cfg.DEFAULT_EPS * (1.0 + 0.02 * i) for i in range(FAIRNESS_BURST)]
    requests = [
        {"dataset": "bench", "eps": eps, "min_pts": min_pts,
         "tenant": "gold" if i % 2 else "blue"}
        for i, eps in enumerate(eps_grid)
    ]

    def client_for(fair):
        client = ServiceClient(
            policy=AdmissionPolicy(max_queue=128, max_concurrency=4, fair=fair))
        client.register("bench", points)
        client.cluster_many(requests, return_exceptions=False)  # warm structures
        return client

    clients = {False: client_for(False), True: client_for(True)}
    times = {False: [], True: []}
    try:
        for _ in range(FAIRNESS_REPEATS):
            for fair in (False, True):
                t0 = time.perf_counter()
                results = clients[fair].cluster_many(
                    requests, return_exceptions=False)
                times[fair].append(time.perf_counter() - t0)
                assert len(results) == FAIRNESS_BURST
    finally:
        for client in clients.values():
            client.close()

    fifo_s = statistics.median(times[False])
    fair_s = statistics.median(times[True])
    overhead_pct = (fair_s - fifo_s) / fifo_s * 100.0 if fifo_s else 0.0
    stats = {
        "config": name,
        "fairness_burst": FAIRNESS_BURST,
        "fairness_repeats": FAIRNESS_REPEATS,
        "fifo_burst_ms": fifo_s * 1e3,
        "fair_burst_ms": fair_s * 1e3,
        "fairness_overhead_pct": overhead_pct,
        "fairness_budget_pct": FAIRNESS_BUDGET_PCT,
    }
    report(f"fair scheduling overhead — {FAIRNESS_BURST} distinct warm "
           f"requests, 2 tenants, median of {FAIRNESS_REPEATS} bursts")
    report(f"  FIFO semaphore     : {stats['fifo_burst_ms']:8.2f} ms/burst")
    report(f"  deficit round-robin: {stats['fair_burst_ms']:8.2f} ms/burst")
    report(f"  overhead           : {overhead_pct:8.2f} % "
           f"(budget {FAIRNESS_BUDGET_PCT:.0f} %)")
    return stats


def test_service_overhead_smoke(report):
    """CI smoke: bounded per-request overhead, exactly-once coalescing."""
    stats = measure(SMOKE_CONFIG, report)
    assert stats["overhead_ms"] < OVERHEAD_BUDGET_S * 1e3, (
        f"service adds {stats['overhead_ms']:.1f} ms per request "
        f"(> {OVERHEAD_BUDGET_S * 1e3:.0f} ms); the front-end has regressed"
    )
    assert stats["burst_runs"] == 1, (
        f"{stats['burst_size']} identical concurrent requests ran the "
        f"engine {stats['burst_runs']} times; coalescing has regressed"
    )


def test_fairness_overhead_smoke(report):
    """CI smoke: deficit-round-robin dispatch costs <5% over FIFO."""
    stats = measure_fairness(SMOKE_CONFIG, report)
    assert stats["fairness_overhead_pct"] < FAIRNESS_BUDGET_PCT, (
        f"fair scheduling adds {stats['fairness_overhead_pct']:.1f}% over "
        f"FIFO (> {FAIRNESS_BUDGET_PCT:.0f}%); the dispatch path has regressed"
    )


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="run the CI-sized config instead of the full one")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write the measurements to PATH as JSON")
    args = parser.parse_args(argv)
    config = SMOKE_CONFIG if args.smoke else FULL_CONFIG
    stats = measure(config)
    stats.update(measure_fairness(config))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(stats, fh, indent=2)
        print(f"wrote {args.json}")
    ok = (stats["overhead_ms"] < OVERHEAD_BUDGET_S * 1e3
          and stats["burst_runs"] == 1
          and stats["fairness_overhead_pct"] < FAIRNESS_BUDGET_PCT)
    if not ok:
        print(f"FAIL: overhead {stats['overhead_ms']:.1f} ms, "
              f"burst executions {stats['burst_runs']}, or fairness "
              f"overhead {stats['fairness_overhead_pct']:.1f}% out of budget")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
