"""Lemma 4: the USEC-via-DBSCAN reduction, validated and timed.

Runs the reduction with the grid exact algorithm as the black box on a
batch of random 3D instances and planted 5D instances, checks agreement
with a brute-force USEC oracle on every one, and reports timings.
"""

from repro import dbscan
from repro.evaluation import format_table
from repro.evaluation.timing import timed
from repro.hardness import planted_instance, random_instance, usec_brute, usec_via_dbscan
from repro.hardness.usec_fast import usec_grid

from . import config as cfg


def solver(P, eps, min_pts):
    return dbscan(P, eps, min_pts, algorithm="grid")


def test_lemma4_reduction(report, benchmark):
    rows = []
    agreements = 0
    total = 0

    def record(label, inst):
        nonlocal agreements, total
        brute = timed("brute", lambda: usec_brute(inst))
        fast = timed("grid", lambda: usec_grid(inst))
        via = timed("via", lambda: usec_via_dbscan(inst, solver))
        agree = brute.result == via.result == fast.result
        agreements += agree
        total += 1
        rows.append([label, str(brute.result), brute.cell(), fast.cell(),
                     via.cell(), str(agree)])

    n_pt = cfg.scaled(2000)
    n_ball = cfg.scaled(1000)
    for seed in range(5):
        record(
            f"random 3D #{seed}",
            random_instance(n_pt, n_ball, d=3, radius=1500.0,
                            domain=100_000.0, seed=seed),
        )
    for answer in (True, False):
        record(
            f"planted 5D {answer}",
            planted_instance(n_pt // 2, n_ball // 2, d=5, radius=20_000.0,
                             answer=answer, domain=100_000.0, seed=7),
        )

    report(f"Lemma 4 — USEC three ways (n_pt={n_pt}, n_ball={n_ball})")
    report(format_table(
        ["instance", "answer", "brute t(s)", "grid t(s)", "via-DBSCAN t(s)", "agree"],
        rows,
    ))
    assert agreements == total

    inst = random_instance(n_pt, n_ball, d=3, radius=1500.0,
                           domain=100_000.0, seed=99)
    benchmark(lambda: usec_via_dbscan(inst, solver))
