"""Exception hierarchy for the :mod:`repro` library.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can catch library failures with a single
``except`` clause while letting genuine programming errors propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ParameterError(ReproError, ValueError):
    """An algorithm parameter is invalid (e.g. ``eps <= 0`` or ``min_pts < 1``)."""


class ConfigError(ReproError, ValueError):
    """An environment-provided configuration value is invalid.

    Raised at *call time* by the :mod:`repro.config` readers (e.g.
    ``REPRO_WORKERS=abc`` or a negative ``REPRO_PARALLEL_MIN_POINTS``), so
    a broken deployment fails with a message naming the variable instead
    of an unhandled ``ValueError`` deep inside the library.
    """


class DataError(ReproError, ValueError):
    """The input point set is malformed (wrong shape, NaNs, empty, ...)."""


class InvalidDataError(DataError):
    """A loaded dataset contains rows that cannot be clustered.

    Structured variant of :class:`DataError` raised by the hardened
    loaders in :mod:`repro.data.io`: carries the offending rows verbatim
    and a human-readable reason per row (with its line number), so callers
    (and the CLI) can report *which* rows were non-numeric, ragged or
    non-finite instead of letting NaNs silently poison every distance
    computation downstream.
    """

    def __init__(self, message: str, bad_rows=(), reasons=()) -> None:
        self.bad_rows = tuple(str(r) for r in bad_rows)
        self.reasons = tuple(str(r) for r in reasons)
        self._message = str(message)
        detail = message
        if self.reasons:
            shown = "; ".join(self.reasons[:5])
            more = "" if len(self.reasons) <= 5 else f"; +{len(self.reasons) - 5} more"
            detail = f"{message} ({shown}{more})"
        super().__init__(detail)

    def __reduce__(self):
        # Exception pickling replays ``args`` (the formatted message) into
        # ``__init__``; rebuild from the structured fields instead.
        return (InvalidDataError, (self._message, self.bad_rows, self.reasons))


class AlgorithmError(ReproError, RuntimeError):
    """An algorithm reached an internal state that violates its invariants."""


class TimeoutExceeded(ReproError, RuntimeError):
    """A run exceeded its configured wall-clock budget.

    Mirrors the paper's "did not terminate within 12 hours" markers for the
    KDD96 / CIT08 baselines (Section 5.3).  Raised cooperatively by every
    algorithm through :class:`repro.runtime.Deadline`.
    """

    def __init__(self, elapsed: float, budget: float) -> None:
        super().__init__(
            f"run exceeded its time budget: {elapsed:.2f}s elapsed > {budget:.2f}s allowed"
        )
        self.elapsed = elapsed
        self.budget = budget

    def __reduce__(self):
        # Default Exception pickling would replay ``args`` (the formatted
        # message) into ``__init__`` and crash on the missing ``budget``;
        # worker processes re-raise this error across the pool boundary.
        return (TimeoutExceeded, (self.elapsed, self.budget))


class MemoryBudgetExceeded(ReproError, RuntimeError):
    """A run exceeded (or would exceed) its configured memory budget.

    Raised either up front, when a footprint estimate for a phase already
    overshoots the budget, or at a phase boundary when the polled process
    RSS crosses it.
    """

    def __init__(self, observed_bytes: float, budget_bytes: float, phase: str = "") -> None:
        where = f" during {phase}" if phase else ""
        super().__init__(
            f"run exceeded its memory budget{where}: "
            f"{observed_bytes / 1e6:.1f} MB observed > {budget_bytes / 1e6:.1f} MB allowed"
        )
        self.observed_bytes = float(observed_bytes)
        self.budget_bytes = float(budget_bytes)
        self.phase = phase

    def __reduce__(self):
        # See TimeoutExceeded.__reduce__: keep the error picklable across
        # worker-pool boundaries despite the multi-argument constructor.
        return (MemoryBudgetExceeded, (self.observed_bytes, self.budget_bytes, self.phase))


class CheckpointError(ReproError, RuntimeError):
    """A checkpoint file is missing a field, corrupt, or unreadable.

    The checkpointing pipeline treats this as recoverable: it logs a
    WARNING and recomputes from scratch instead of failing the run.
    """


class ServiceError(ReproError, RuntimeError):
    """Base class for errors raised by the clustering service layer.

    Raised by :mod:`repro.service` (the asyncio front-end over a shared
    :class:`~repro.engine.ClusteringEngine`), never by the algorithms
    themselves.  Every subclass is a *structured* verdict a client can act
    on — back off, pick another dataset, fix the request — and carries an
    ``as_dict()`` rendering for the wire protocol.
    """

    #: Stable machine-readable discriminator for the wire protocol.
    code = "service"

    def as_dict(self) -> dict:
        """Wire-protocol rendering: ``{"code", "message", ...fields}``."""
        return {"code": self.code, "message": str(self)}


class ServiceOverloadError(ServiceError):
    """The service shed a request instead of queueing it forever.

    Raised by the admission controller when the bounded request queue is
    full, or by the dispatcher when a request's deadline expired while it
    waited in the queue.  Carries the queue state and a ``retry_after``
    hint so clients can implement honest backoff instead of hammering an
    overloaded service.
    """

    code = "overload"

    def __init__(
        self,
        message: str,
        *,
        reason: str = "queue-full",
        queue_depth: int = 0,
        limit: int = 0,
        retry_after: float | None = None,
    ) -> None:
        super().__init__(message)
        self.reason = str(reason)
        self.queue_depth = int(queue_depth)
        self.limit = int(limit)
        self.retry_after = None if retry_after is None else float(retry_after)

    def as_dict(self) -> dict:
        out = super().as_dict()
        out.update(
            reason=self.reason,
            queue_depth=self.queue_depth,
            limit=self.limit,
            retry_after=self.retry_after,
        )
        return out

    def __reduce__(self):
        # Multi-argument constructor: rebuild from the structured fields
        # (see TimeoutExceeded.__reduce__ for the pickling rationale).
        return (
            _rebuild_overload,
            (
                self.args[0] if self.args else "",
                self.reason,
                self.queue_depth,
                self.limit,
                self.retry_after,
            ),
        )


def _rebuild_overload(message, reason, queue_depth, limit, retry_after):
    return ServiceOverloadError(
        message,
        reason=reason,
        queue_depth=queue_depth,
        limit=limit,
        retry_after=retry_after,
    )


class UnknownDatasetError(ServiceError):
    """A request named a dataset the registry does not hold."""

    code = "unknown-dataset"

    def __init__(self, name: str, known=()) -> None:
        self.name = str(name)
        self.known = tuple(sorted(str(k) for k in known))
        hint = f"; registered: {list(self.known)}" if self.known else ""
        super().__init__(f"unknown dataset {self.name!r}{hint}")

    def as_dict(self) -> dict:
        out = super().as_dict()
        out.update(name=self.name, known=list(self.known))
        return out

    def __reduce__(self):
        return (UnknownDatasetError, (self.name, self.known))


class DatasetQuarantinedError(ServiceError):
    """The circuit breaker has quarantined a dataset after repeated faults.

    A dataset whose requests keep failing for infrastructure reasons
    (poisoned worker pools, internal errors) is quarantined for a cooldown
    period so one poisonous tenant cannot keep burning pool respawns and
    executor slots that other tenants need.  ``retry_after`` tells clients
    when the breaker will next allow a probe.
    """

    code = "quarantined"

    def __init__(self, name: str, failures: int, retry_after: float) -> None:
        self.name = str(name)
        self.failures = int(failures)
        self.retry_after = float(retry_after)
        super().__init__(
            f"dataset {self.name!r} is quarantined after {self.failures} "
            f"consecutive failure(s); retry in {self.retry_after:.1f}s"
        )

    def as_dict(self) -> dict:
        out = super().as_dict()
        out.update(name=self.name, failures=self.failures, retry_after=self.retry_after)
        return out

    def __reduce__(self):
        return (DatasetQuarantinedError, (self.name, self.failures, self.retry_after))


class RegistryStoreError(ServiceError):
    """The registry's backing store refused or lost an operation.

    Raised by :mod:`repro.service.store` for problems with the persistence
    layer itself — a missing or unreadable payload file, an append on a
    closed store, an invalid store configuration.  Torn journals and
    corrupt snapshots do *not* raise: recovery truncates to the last valid
    record and quarantines the rest (see ``docs/SERVICE.md``), because a
    service that refuses to start over one torn write is worse than one
    that restarts with the catalog it can prove.
    """

    code = "store"


class WorkerPoolError(ReproError, RuntimeError):
    """The supervised worker pool failed beyond its recovery budgets.

    Raised by :mod:`repro.parallel.supervisor` only after the whole
    recovery ladder is spent: per-shard retries exhausted, pool respawns
    exhausted, and quarantine (serial re-execution in the parent)
    disabled.  Carries the supervisor's bookkeeping so callers — notably
    :func:`repro.runtime.run_resilient`, which treats this error as
    degradable — can record what was attempted.
    """

    def __init__(self, message: str, stats=None) -> None:
        super().__init__(message)
        #: Supervisor bookkeeping (a ``SupervisorStats.as_dict()`` mapping),
        #: or ``None`` when unavailable.
        self.stats = dict(stats) if stats else None

    def __reduce__(self):
        # Keep the two-argument constructor picklable (see TimeoutExceeded).
        return (WorkerPoolError, (self.args[0] if self.args else "", self.stats))
