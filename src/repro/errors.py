"""Exception hierarchy for the :mod:`repro` library.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can catch library failures with a single
``except`` clause while letting genuine programming errors propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ParameterError(ReproError, ValueError):
    """An algorithm parameter is invalid (e.g. ``eps <= 0`` or ``min_pts < 1``)."""


class DataError(ReproError, ValueError):
    """The input point set is malformed (wrong shape, NaNs, empty, ...)."""


class AlgorithmError(ReproError, RuntimeError):
    """An algorithm reached an internal state that violates its invariants."""


class TimeoutExceeded(ReproError, RuntimeError):
    """A benchmark run exceeded its configured wall-clock budget.

    Mirrors the paper's "did not terminate within 12 hours" markers for the
    KDD96 / CIT08 baselines (Section 5.3).
    """

    def __init__(self, elapsed: float, budget: float) -> None:
        super().__init__(
            f"run exceeded its time budget: {elapsed:.2f}s elapsed > {budget:.2f}s allowed"
        )
        self.elapsed = elapsed
        self.budget = budget
