"""Exception hierarchy for the :mod:`repro` library.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can catch library failures with a single
``except`` clause while letting genuine programming errors propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ParameterError(ReproError, ValueError):
    """An algorithm parameter is invalid (e.g. ``eps <= 0`` or ``min_pts < 1``)."""


class DataError(ReproError, ValueError):
    """The input point set is malformed (wrong shape, NaNs, empty, ...)."""


class AlgorithmError(ReproError, RuntimeError):
    """An algorithm reached an internal state that violates its invariants."""


class TimeoutExceeded(ReproError, RuntimeError):
    """A run exceeded its configured wall-clock budget.

    Mirrors the paper's "did not terminate within 12 hours" markers for the
    KDD96 / CIT08 baselines (Section 5.3).  Raised cooperatively by every
    algorithm through :class:`repro.runtime.Deadline`.
    """

    def __init__(self, elapsed: float, budget: float) -> None:
        super().__init__(
            f"run exceeded its time budget: {elapsed:.2f}s elapsed > {budget:.2f}s allowed"
        )
        self.elapsed = elapsed
        self.budget = budget

    def __reduce__(self):
        # Default Exception pickling would replay ``args`` (the formatted
        # message) into ``__init__`` and crash on the missing ``budget``;
        # worker processes re-raise this error across the pool boundary.
        return (TimeoutExceeded, (self.elapsed, self.budget))


class MemoryBudgetExceeded(ReproError, RuntimeError):
    """A run exceeded (or would exceed) its configured memory budget.

    Raised either up front, when a footprint estimate for a phase already
    overshoots the budget, or at a phase boundary when the polled process
    RSS crosses it.
    """

    def __init__(self, observed_bytes: float, budget_bytes: float, phase: str = "") -> None:
        where = f" during {phase}" if phase else ""
        super().__init__(
            f"run exceeded its memory budget{where}: "
            f"{observed_bytes / 1e6:.1f} MB observed > {budget_bytes / 1e6:.1f} MB allowed"
        )
        self.observed_bytes = float(observed_bytes)
        self.budget_bytes = float(budget_bytes)
        self.phase = phase

    def __reduce__(self):
        # See TimeoutExceeded.__reduce__: keep the error picklable across
        # worker-pool boundaries despite the multi-argument constructor.
        return (MemoryBudgetExceeded, (self.observed_bytes, self.budget_bytes, self.phase))


class CheckpointError(ReproError, RuntimeError):
    """A checkpoint file is missing a field, corrupt, or unreadable.

    The checkpointing pipeline treats this as recoverable: it logs a
    WARNING and recomputes from scratch instead of failing the run.
    """
