"""Quadtree-like counting hierarchy for approximate range counting (Lemma 5).

Given a fixed radius ``eps`` and approximation constant ``rho``, an
*approximate range count query* at a point ``q`` returns an integer that is
guaranteed to lie between ``|B(q, eps) ∩ P|`` and ``|B(q, eps(1+rho)) ∩ P|``.

The structure follows Section 4.3 of the paper: a regular grid of side
``eps / sqrt(d)`` is refined recursively — each non-empty cell splits into
``2^d`` half-side children — until the side length drops to
``eps * rho / sqrt(d)``, so the hierarchy has
``h = max(1, 1 + ceil(log2(1/rho)))`` levels.  A query walks down from the
level-0 cells, pruning cells disjoint from ``B(q, eps)``, bulk-adding the
counts of cells fully inside ``B(q, eps(1+rho))``, and resolving deepest
cells by the intersect test (valid because a deepest cell has diameter at
most ``eps * rho``).

Two implementations share that logic:

* :class:`CountingHierarchy` — the pointer-based reference structure
  (one Python ``_Node`` per cell, one query point at a time).  It is the
  readable rendition of the paper's pseudo-code and the differential
  oracle for the fast path.
* :class:`FlatHierarchy` — the production kernel: the same tree flattened
  into level-ordered structure-of-arrays (CSR child rows, one contiguous
  early-leaf point-index array) whose batched queries
  (:meth:`~FlatHierarchy.count_many` /
  :meth:`~FlatHierarchy.contains_any_many`) advance a ``(query, node)``
  frontier one level at a time with vectorised prune / bulk-add / descend
  partitions.  See ``docs/PERFORMANCE.md`` for the layout and the
  measured speedups (``benchmarks/bench_lemma5_counting.py``).

Engineering refinement (documented deviation): a subtree holding at most
``_EXACT_LEAF_SIZE`` points is not subdivided further; such an *early leaf*
stores its point indices and is resolved by exact distance tests against
``eps``.  Both answers respect the Lemma 5 contract — the early leaf merely
returns a tighter count — and the structure becomes considerably smaller on
sparse cells.  Set ``exact_leaf_size=0`` to build the verbatim paper
structure.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import DataError
from repro.geometry import distance as dm
from repro.grid import counters
from repro.grid.cells import _group_by_rows
from repro.runtime.deadline import Deadline
from repro.utils.validation import check_eps, check_rho

_EXACT_LEAF_SIZE = 8

#: Above this many candidate level-0 coordinates, a query scans the stored
#: roots instead of enumerating the coordinate box around ``q``.
_ENUMERATION_BUDGET = 4096

#: Queries per internal batch of the flat kernel: bounds the frontier and
#: candidate-probe intermediates no matter how many queries one
#: :meth:`FlatHierarchy.count_many` call carries.
_QUERY_CHUNK = 4096

_EMPTY = np.empty(0, dtype=np.int64)


class _Node:
    """One cell of the hierarchy."""

    __slots__ = ("count", "children", "point_idx")

    def __init__(self, count: int) -> None:
        self.count = count
        self.children: Optional[List[Tuple[np.ndarray, "_Node"]]] = None
        self.point_idx: Optional[np.ndarray] = None  # set on early leaves


class CountingHierarchy:
    """Approximate range counting structure of Lemma 5 (reference).

    Parameters
    ----------
    points:
        Array of shape ``(n, d)`` — the set the queries count over.
    eps, rho:
        The fixed query radius and approximation constant.
    exact_leaf_size:
        Subtrees with at most this many points become exact leaves
        (0 reproduces the paper's structure verbatim).
    """

    def __init__(
        self,
        points: np.ndarray,
        eps: float,
        rho: float,
        exact_leaf_size: int = _EXACT_LEAF_SIZE,
    ) -> None:
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or len(points) == 0:
            raise DataError("CountingHierarchy requires a non-empty (n, d) array")
        self.points = points
        self.eps = check_eps(eps)
        self.rho = check_rho(rho)
        self.dim = points.shape[1]
        self.side0 = self.eps / np.sqrt(self.dim)
        # Number of levels: h = max(1, 1 + ceil(log2(1/rho))).
        if self.rho >= 1.0:
            self.n_levels = 1
        else:
            self.n_levels = 1 + int(np.ceil(np.log2(1.0 / self.rho)))
        self._exact_leaf_size = max(0, int(exact_leaf_size))
        self._sq_eps = dm.sq_radius(self.eps)
        self._sq_outer = (self.eps * (1.0 + self.rho)) ** 2

        coords0 = np.floor(points / self.side0).astype(np.int64)
        self._roots: Dict[Tuple[int, ...], _Node] = {}
        for key, idx in _group_by_rows(coords0).items():
            node = self._build(np.asarray(key, dtype=np.int64), idx, level=0)
            self._roots[key] = node

    # -------------------------------------------------------------- build

    def _build(self, coord: np.ndarray, idx: np.ndarray, level: int) -> _Node:
        node = _Node(len(idx))
        deepest = level >= self.n_levels - 1
        if deepest or len(idx) <= self._exact_leaf_size:
            if len(idx) <= self._exact_leaf_size:
                # Early leaf (or tiny deepest cell): keep indices for exact
                # resolution, which is both tighter and cheap.
                node.point_idx = idx
            return node
        child_side = self.side0 / (2 ** (level + 1))
        child_coords = np.floor(self.points[idx] / child_side).astype(np.int64)
        node.children = []
        for key, sub in _group_by_rows(child_coords).items():
            child = self._build(np.asarray(key, dtype=np.int64), idx[sub], level + 1)
            node.children.append((np.asarray(key, dtype=np.int64), child))
        return node

    # ------------------------------------------------------------- queries

    def count(self, q: np.ndarray) -> int:
        """Approximate count of points within ``eps`` of ``q``.

        The result is guaranteed to be in
        ``[|B(q, eps) ∩ P|, |B(q, eps(1+rho)) ∩ P|]``.
        """
        q = np.asarray(q, dtype=np.float64)
        total = 0
        for coord, node in self._iter_candidate_roots(q):
            total += self._count_rec(q, coord, node, level=0)
        return total

    def contains_any(self, q: np.ndarray) -> bool:
        """Approximate emptiness test: True means some point lies within
        ``eps(1+rho)``; False means no point lies within ``eps``.

        This is the exact contract the rho-approximate DBSCAN edge rule
        needs (Section 4.4: yes / no / don't-care).
        """
        q = np.asarray(q, dtype=np.float64)
        for coord, node in self._iter_candidate_roots(q):
            if self._any_rec(q, coord, node, level=0):
                return True
        return False

    # ------------------------------------------------------------ internals

    def _iter_candidate_roots(self, q: np.ndarray):
        """Level-0 cells that could intersect ``B(q, eps)``."""
        lo = np.floor((q - self.eps) / self.side0).astype(np.int64)
        hi = np.floor((q + self.eps) / self.side0).astype(np.int64)
        spans = hi - lo + 1
        budget = int(np.prod(spans.astype(np.float64)))
        if 0 < budget <= _ENUMERATION_BUDGET and budget <= max(len(self._roots), 1) * 4:
            # Vectorised box enumeration: one meshgrid builds every candidate
            # coordinate at once (row-major, i.e. the last axis fastest — the
            # order the old per-candidate digit loop produced).
            axes = [np.arange(int(l), int(h) + 1) for l, h in zip(lo, hi)]
            cand = np.stack(
                np.meshgrid(*axes, indexing="ij"), axis=-1
            ).reshape(-1, self.dim)
            roots = self._roots
            for row in cand.tolist():
                node = roots.get(tuple(row))
                if node is not None:
                    yield np.asarray(row, dtype=np.int64), node
        else:
            for key, node in self._roots.items():
                coord = np.asarray(key, dtype=np.int64)
                if np.all(coord >= lo) and np.all(coord <= hi):
                    yield coord, node

    def _box_bounds(self, coord: np.ndarray, level: int, q: np.ndarray) -> Tuple[float, float]:
        side = self.side0 / (2 ** level)
        low = coord * side
        high = low + side
        near = np.maximum(low - q, 0.0) + np.maximum(q - high, 0.0)
        far = np.maximum(np.abs(q - low), np.abs(q - high))
        return float(np.dot(near, near)), float(np.dot(far, far))

    def _count_rec(self, q: np.ndarray, coord: np.ndarray, node: _Node, level: int) -> int:
        min_sq, max_sq = self._box_bounds(coord, level, q)
        if min_sq > self._sq_eps:
            return 0  # disjoint with B(q, eps)
        if max_sq <= self._sq_outer:
            return node.count  # fully inside B(q, eps(1+rho))
        if node.point_idx is not None:
            sq = dm.sq_dists_to_point(self.points[node.point_idx], q)
            return int((sq <= self._sq_eps).sum())
        if node.children is None:
            # Deepest-level cell: it intersects B(q, eps) and has diameter
            # <= eps * rho, so all its points are within eps(1+rho).
            return node.count
        return sum(
            self._count_rec(q, child_coord, child, level + 1)
            for child_coord, child in node.children
        )

    def _any_rec(self, q: np.ndarray, coord: np.ndarray, node: _Node, level: int) -> bool:
        min_sq, max_sq = self._box_bounds(coord, level, q)
        if min_sq > self._sq_eps:
            return False
        if max_sq <= self._sq_outer:
            return node.count > 0
        if node.point_idx is not None:
            sq = dm.sq_dists_to_point(self.points[node.point_idx], q)
            return bool((sq <= self._sq_eps).any())
        if node.children is None:
            return node.count > 0
        return any(
            self._any_rec(q, child_coord, child, level + 1)
            for child_coord, child in node.children
        )

    # ----------------------------------------------------------- statistics

    def node_count(self) -> int:
        """Total number of cells stored (for space accounting in benches)."""
        total = 0
        stack = list(self._roots.values())
        while stack:
            node = stack.pop()
            total += 1
            if node.children:
                stack.extend(child for _c, child in node.children)
        return total


def _concat_ranges(starts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """``np.concatenate([np.arange(s, s + l) for s, l in zip(starts, lengths)])``
    without the Python loop (zero-length ranges contribute nothing)."""
    keep = lengths > 0
    if not keep.all():
        starts = starts[keep]
        lengths = lengths[keep]
    if len(starts) == 0:
        return _EMPTY
    ends = np.cumsum(lengths)
    out = np.ones(int(ends[-1]), dtype=np.int64)
    out[0] = starts[0]
    out[ends[:-1]] = starts[1:] - (starts[:-1] + lengths[:-1]) + 1
    return np.cumsum(out)


class FlatHierarchy:
    """The Lemma 5 structure as level-ordered structure-of-arrays.

    Same tree as :class:`CountingHierarchy` (identical node set, identical
    per-node prune / bulk-add / leaf decisions), stored flat: per level
    ``l`` the arrays ``coords[l] (m_l, d)``, ``counts[l]``, CSR child rows
    ``child_off[l] / child_n[l]`` into level ``l+1``, and early-leaf spans
    ``leaf_off[l] / leaf_n[l]`` (``-1`` = not a leaf) into one contiguous
    ``leaf_point_idx`` array.  Level-0 cells are additionally indexed by
    packed mixed-radix int64 keys for a vectorised ``np.searchsorted``
    candidate-root probe.

    Queries are *batched*: :meth:`count_many` / :meth:`contains_any_many`
    advance a ``(query_id, node_id)`` frontier one level at a time —
    vectorised box bounds per pair, one partition pass into pruned /
    bulk-added / leaf-resolved / descending pairs, one distance kernel call
    per level for all early-leaf pairs — so the per-node Python overhead of
    the reference structure is paid once per *level* per *batch* instead of
    once per node per query.  Scalar :meth:`count` / :meth:`contains_any`
    wrap a batch of one and honour the same Lemma 5 contract.
    """

    __slots__ = (
        "points", "eps", "rho", "dim", "side0", "n_levels",
        "_exact_leaf_size", "_sq_eps", "_sq_outer",
        "_coords", "_counts", "_child_off", "_child_n",
        "_leaf_off", "_leaf_n", "_leaf_point_idx",
        "_root_lo", "_root_hi", "_root_mults", "_root_keys", "_root_order",
    )

    def __init__(
        self,
        points: np.ndarray,
        eps: float,
        rho: float,
        exact_leaf_size: int = _EXACT_LEAF_SIZE,
    ) -> None:
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or len(points) == 0:
            raise DataError("FlatHierarchy requires a non-empty (n, d) array")
        self.points = points
        self.eps = check_eps(eps)
        self.rho = check_rho(rho)
        self.dim = points.shape[1]
        self.side0 = self.eps / np.sqrt(self.dim)
        if self.rho >= 1.0:
            self.n_levels = 1
        else:
            self.n_levels = 1 + int(np.ceil(np.log2(1.0 / self.rho)))
        self._exact_leaf_size = max(0, int(exact_leaf_size))
        self._sq_eps = dm.sq_radius(self.eps)
        self._sq_outer = (self.eps * (1.0 + self.rho)) ** 2
        self._build_levels()
        self._index_roots()

    # -------------------------------------------------------------- build

    def _build_levels(self) -> None:
        """Non-recursive, level-synchronous build.

        Each level is one :func:`_group_by_rows` pass: level 0 groups the
        points by their level-0 cell, and level ``l+1`` groups the points
        of every *subdivided* level-``l`` node by ``(parent node id, child
        cell coordinate)`` — the parent id column keeps each parent's
        children contiguous (CSR rows), and the grouper's lexsort orders
        them by coordinate within the parent, exactly like the reference
        builder's per-node grouping.
        """
        d = self.dim
        leaf = self._exact_leaf_size
        self._coords: List[np.ndarray] = []
        self._counts: List[np.ndarray] = []
        self._child_off: List[np.ndarray] = []
        self._child_n: List[np.ndarray] = []
        self._leaf_off: List[np.ndarray] = []
        self._leaf_n: List[np.ndarray] = []
        leaf_blocks: List[np.ndarray] = []
        leaf_base = 0

        coords0 = np.floor(self.points / self.side0).astype(np.int64)
        groups = _group_by_rows(coords0)
        coords = np.array(list(groups.keys()), dtype=np.int64).reshape(len(groups), d)
        members = np.concatenate(list(groups.values()))
        lengths = np.fromiter(
            (len(g) for g in groups.values()), dtype=np.int64, count=len(groups)
        )
        ptr = np.concatenate([[0], np.cumsum(lengths)])

        for level in range(self.n_levels):
            m = len(coords)
            counts = ptr[1:] - ptr[:-1]
            deepest = level == self.n_levels - 1
            leaf_mask = counts <= leaf
            split_mask = np.zeros(m, dtype=bool) if deepest else ~leaf_mask

            leaf_n = np.where(leaf_mask, counts, -1).astype(np.int64)
            leaf_off = np.zeros(m, dtype=np.int64)
            if leaf_mask.any():
                ln = counts[leaf_mask]
                leaf_off[leaf_mask] = leaf_base + np.concatenate(
                    [[0], np.cumsum(ln[:-1])]
                )
                leaf_blocks.append(
                    members[_concat_ranges(ptr[:-1][leaf_mask], ln)]
                )
                leaf_base += int(ln.sum())

            child_n = np.zeros(m, dtype=np.int64)
            child_off = np.zeros(m, dtype=np.int64)
            self._coords.append(coords)
            self._counts.append(counts.astype(np.int64))
            self._leaf_off.append(leaf_off)
            self._leaf_n.append(leaf_n)

            if not split_mask.any():
                self._child_off.append(child_off)
                self._child_n.append(child_n)
                break

            parents = np.nonzero(split_mask)[0]
            rows = _concat_ranges(ptr[:-1][split_mask], counts[split_mask])
            active = members[rows]
            pid = np.repeat(parents, counts[split_mask])
            child_side = self.side0 / (2 ** (level + 1))
            child_coords = np.floor(
                self.points[active] / child_side
            ).astype(np.int64)
            cgroups = _group_by_rows(np.column_stack([pid, child_coords]))
            keys = np.array(list(cgroups.keys()), dtype=np.int64).reshape(
                len(cgroups), d + 1
            )
            child_pid = keys[:, 0]
            # Children arrive sorted by (parent, coordinate): each parent's
            # children are one contiguous CSR row of the next level.
            child_n = np.bincount(child_pid, minlength=m).astype(np.int64)
            child_off = np.concatenate([[0], np.cumsum(child_n)[:-1]])
            self._child_off.append(child_off)
            self._child_n.append(child_n)

            clengths = np.fromiter(
                (len(g) for g in cgroups.values()), dtype=np.int64,
                count=len(cgroups),
            )
            members = active[np.concatenate(list(cgroups.values()))]
            ptr = np.concatenate([[0], np.cumsum(clengths)])
            coords = keys[:, 1:]

        self._leaf_point_idx = (
            np.concatenate(leaf_blocks) if leaf_blocks else _EMPTY
        )

    def _index_roots(self) -> None:
        """Sorted packed-key index over the level-0 cells.

        The radix spans the root bounding box, so any candidate coordinate
        (clipped into the box) packs into a unique int64 and one
        ``np.searchsorted`` answers a whole batch of membership probes.
        Falls back to coordinate scans when the packed keys would overflow.
        """
        roots = self._coords[0]
        self._root_lo = roots.min(axis=0)
        self._root_hi = roots.max(axis=0)
        spans = self._root_hi - self._root_lo + 1
        if float(np.prod(spans.astype(np.float64))) < 2.0 ** 62:
            rev = np.concatenate([[1], np.cumprod(spans[::-1][:-1])])
            mults = rev[::-1]
            keys = (roots - self._root_lo) @ mults
            order = np.argsort(keys, kind="stable")
            self._root_mults = mults
            self._root_keys = keys[order]
            self._root_order = order
        else:  # pragma: no cover - astronomically spread coordinates
            self._root_mults = None
            self._root_keys = None
            self._root_order = None

    # ------------------------------------------------------------- queries

    def count(self, q: np.ndarray) -> int:
        """Scalar :meth:`count_many` (same Lemma 5 contract as the reference)."""
        return int(self.count_many(np.asarray(q, dtype=np.float64)[None, :])[0])

    def contains_any(self, q: np.ndarray) -> bool:
        """Scalar :meth:`contains_any_many`."""
        return bool(
            self.contains_any_many(np.asarray(q, dtype=np.float64)[None, :])[0]
        )

    def count_many(
        self, queries: np.ndarray, *, deadline: Optional[Deadline] = None
    ) -> np.ndarray:
        """Approximate counts for every row of ``queries`` at once.

        Each answer independently satisfies the Lemma 5 sandwich
        ``[|B(q, eps) ∩ P|, |B(q, eps(1+rho)) ∩ P|]`` and equals the
        answer of the scalar :meth:`count` on that row.  A bounded
        ``deadline`` is polled once per traversal level per internal chunk,
        so even a single huge batch cannot overshoot its time budget by
        more than one level's worth of work.
        """
        queries = self._as_queries(queries)
        totals = np.zeros(len(queries), dtype=np.int64)
        for start in range(0, len(queries), _QUERY_CHUNK):
            chunk = slice(start, min(start + _QUERY_CHUNK, len(queries)))
            self._count_chunk(queries[chunk], totals[chunk], deadline)
        return totals

    def contains_any_many(
        self, queries: np.ndarray, *, deadline: Optional[Deadline] = None
    ) -> np.ndarray:
        """Batched :meth:`contains_any`: one bool per query row.

        ``True`` means some point lies within ``eps(1+rho)`` of the query;
        ``False`` means none lies within ``eps`` — the yes / no /
        don't-care contract of the rho-approximate edge rule.  A query
        retires from the frontier the moment its answer is decided.  A
        bounded ``deadline`` is polled per level per chunk (see
        :meth:`count_many`).
        """
        queries = self._as_queries(queries)
        answers = np.zeros(len(queries), dtype=bool)
        for start in range(0, len(queries), _QUERY_CHUNK):
            chunk = slice(start, min(start + _QUERY_CHUNK, len(queries)))
            self._contains_chunk(
                queries[chunk], answers[chunk], stop_on_first=False, deadline=deadline
            )
        return answers

    def any_contains(
        self, queries: np.ndarray, *, deadline: Optional[Deadline] = None
    ) -> bool:
        """Does *any* query row get a yes?  (The batched edge decision.)

        Equivalent to ``self.contains_any_many(queries).any()`` but the
        traversal returns the moment the first yes is decided — the batched
        analogue of the old per-point loop's ``any(...)`` short-circuit.
        """
        queries = self._as_queries(queries)
        for start in range(0, len(queries), _QUERY_CHUNK):
            chunk = slice(start, min(start + _QUERY_CHUNK, len(queries)))
            answers = np.zeros(chunk.stop - chunk.start, dtype=bool)
            if self._contains_chunk(
                queries[chunk], answers, stop_on_first=True, deadline=deadline
            ):
                return True
        return False

    # ----------------------------------------------------------- traversal

    def _as_queries(self, queries: np.ndarray) -> np.ndarray:
        queries = np.asarray(queries, dtype=np.float64)
        if queries.ndim != 2 or queries.shape[1] != self.dim:
            raise DataError(
                f"queries must be a (k, {self.dim}) array; got shape "
                f"{queries.shape}"
            )
        return queries

    def _root_frontier(self, queries: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Initial ``(query_id, node_id)`` frontier over the level-0 cells.

        Vectorised candidate discovery: per query the coordinate box
        ``[floor((q-eps)/side0), floor((q+eps)/side0)]`` is clipped into
        the root bounding box and either *enumerated* (packed-key
        ``np.searchsorted`` probe over the sorted root keys — the batched
        analogue of the reference's enumeration branch) or, when the box
        volume dwarfs the root count, resolved by a chunked coordinate
        *scan* over all roots.
        """
        nq = len(queries)
        lo = np.floor((queries - self.eps) / self.side0).astype(np.int64)
        hi = np.floor((queries + self.eps) / self.side0).astype(np.int64)
        np.maximum(lo, self._root_lo[None, :], out=lo)
        np.minimum(hi, self._root_hi[None, :], out=hi)
        spans = hi - lo + 1
        valid = (spans > 0).all(axis=1)
        if not valid.any():
            return _EMPTY, _EMPTY
        v_idx = np.nonzero(valid)[0]
        lo_v, hi_v, spans_v = lo[v_idx], hi[v_idx], spans[v_idx]
        max_spans = spans_v.max(axis=0)
        n_off = int(np.prod(max_spans.astype(np.float64)))
        m = len(self._coords[0])
        if (
            self._root_mults is not None
            and 0 < n_off <= _ENUMERATION_BUDGET
            and n_off <= 4 * m
        ):
            offs = np.stack(
                np.meshgrid(*[np.arange(int(s)) for s in max_spans], indexing="ij"),
                axis=-1,
            ).reshape(-1, self.dim)
            q_parts: List[np.ndarray] = []
            n_parts: List[np.ndarray] = []
            rows = max(1, 2_000_000 // max(n_off, 1))
            for s in range(0, len(v_idx), rows):
                part = slice(s, min(s + rows, len(v_idx)))
                cand = lo_v[part][:, None, :] + offs[None, :, :]
                ok = (offs[None, :, :] < spans_v[part][:, None, :]).all(axis=2)
                np.minimum(cand, self._root_hi[None, None, :], out=cand)
                keys = (cand - self._root_lo[None, None, :]) @ self._root_mults
                pos = np.searchsorted(self._root_keys, keys)
                np.minimum(pos, m - 1, out=pos)
                hit = ok & (self._root_keys[pos] == keys)
                qi, oi = np.nonzero(hit)
                q_parts.append(v_idx[part][qi])
                n_parts.append(self._root_order[pos[qi, oi]])
            return (
                np.concatenate(q_parts) if q_parts else _EMPTY,
                np.concatenate(n_parts) if n_parts else _EMPTY,
            )
        # Scan branch: compare every root against every query box, chunked.
        roots = self._coords[0]
        q_parts = []
        n_parts = []
        rows = max(1, 2_000_000 // max(m * self.dim, 1))
        for s in range(0, len(v_idx), rows):
            part = slice(s, min(s + rows, len(v_idx)))
            inside = (
                (roots[None, :, :] >= lo_v[part][:, None, :])
                & (roots[None, :, :] <= hi_v[part][:, None, :])
            ).all(axis=2)
            qi, ri = np.nonzero(inside)
            q_parts.append(v_idx[part][qi])
            n_parts.append(ri.astype(np.int64))
        return (
            np.concatenate(q_parts) if q_parts else _EMPTY,
            np.concatenate(n_parts) if n_parts else _EMPTY,
        )

    def _bounds(
        self, queries: np.ndarray, q_id: np.ndarray, node: np.ndarray, level: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorised :meth:`CountingHierarchy._box_bounds` per frontier pair."""
        side = self.side0 / (2 ** level)
        low = self._coords[level][node] * side
        high = low + side
        qp = queries[q_id]
        near = np.maximum(low - qp, 0.0) + np.maximum(qp - high, 0.0)
        far = np.maximum(np.abs(qp - low), np.abs(qp - high))
        min_sq = np.einsum("ij,ij->i", near, near)
        max_sq = np.einsum("ij,ij->i", far, far)
        return min_sq, max_sq

    def _leaf_pairs(
        self, q_id: np.ndarray, node: np.ndarray, level: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Expand early-leaf frontier pairs into (query_id, point_idx) pairs."""
        ln = self._leaf_n[level][node]
        p_rows = _concat_ranges(self._leaf_off[level][node], ln)
        return np.repeat(q_id, ln), self._leaf_point_idx[p_rows]

    def _count_chunk(
        self,
        queries: np.ndarray,
        totals: np.ndarray,
        deadline: Optional[Deadline] = None,
    ) -> None:
        counters.add("lemma5_queries", len(queries))
        counters.add("lemma5_batches")
        q_id, node = self._root_frontier(queries)
        for level in range(self.n_levels):
            if len(q_id) == 0:
                break
            if deadline is not None:
                deadline.check()
            counters.add("lemma5_frontier_pairs", len(q_id))
            min_sq, max_sq = self._bounds(queries, q_id, node, level)
            alive = min_sq <= self._sq_eps
            bulk = alive & (max_sq <= self._sq_outer)
            rest = alive & ~bulk
            leaf = rest & (self._leaf_n[level][node] >= 0)
            descend = rest & (self._child_n[level][node] > 0)
            # rest & ~leaf & ~descend: deepest-level cells that intersect
            # B(q, eps) — diameter <= eps*rho, so bulk-add their counts.
            np.bitwise_or(bulk, rest & ~leaf & ~descend, out=bulk)
            counters.add("lemma5_pruned", int((~alive).sum()))
            counters.add("lemma5_bulk_add", int(bulk.sum()))
            if bulk.any():
                np.add.at(totals, q_id[bulk], self._counts[level][node[bulk]])
            if leaf.any():
                counters.add("lemma5_leaf_nodes", int(leaf.sum()))
                q_rep, p_idx = self._leaf_pairs(q_id[leaf], node[leaf], level)
                counters.add("lemma5_leaf_pairs", len(q_rep))
                diff = self.points[p_idx] - queries[q_rep]
                within = np.einsum("ij,ij->i", diff, diff) <= self._sq_eps
                np.add.at(totals, q_rep[within], 1)
            if descend.any():
                cn = self._child_n[level][node[descend]]
                next_node = _concat_ranges(self._child_off[level][node[descend]], cn)
                q_id = np.repeat(q_id[descend], cn)
                node = next_node
            else:
                break

    def _contains_chunk(
        self,
        queries: np.ndarray,
        answers: np.ndarray,
        *,
        stop_on_first: bool,
        deadline: Optional[Deadline] = None,
    ) -> bool:
        """Advance the containment frontier; fills ``answers`` in place.

        Returns True as soon as any query is decided yes when
        ``stop_on_first`` is set (remaining answers are then unreliable).
        """
        counters.add("lemma5_queries", len(queries))
        counters.add("lemma5_batches")
        q_id, node = self._root_frontier(queries)
        for level in range(self.n_levels):
            if len(q_id) == 0:
                break
            if deadline is not None:
                deadline.check()
            counters.add("lemma5_frontier_pairs", len(q_id))
            min_sq, max_sq = self._bounds(queries, q_id, node, level)
            alive = min_sq <= self._sq_eps
            # Non-empty cells fully inside B(q, eps(1+rho)) decide yes, and
            # so do intersecting deepest-level cells (diameter <= eps*rho);
            # every stored node has count >= 1.
            leaf_flag = self._leaf_n[level][node] >= 0
            has_child = self._child_n[level][node] > 0
            yes = alive & ((max_sq <= self._sq_outer) | (~leaf_flag & ~has_child))
            counters.add("lemma5_pruned", int((~alive).sum()))
            counters.add("lemma5_bulk_add", int(yes.sum()))
            if yes.any():
                answers[q_id[yes]] = True
                if stop_on_first:
                    return True
            rest = alive & ~yes
            leaf = rest & leaf_flag
            if leaf.any():
                counters.add("lemma5_leaf_nodes", int(leaf.sum()))
                q_rep, p_idx = self._leaf_pairs(q_id[leaf], node[leaf], level)
                counters.add("lemma5_leaf_pairs", len(q_rep))
                diff = self.points[p_idx] - queries[q_rep]
                within = np.einsum("ij,ij->i", diff, diff) <= self._sq_eps
                if within.any():
                    answers[q_rep[within]] = True
                    if stop_on_first:
                        return True
            descend = rest & has_child
            # Early retirement: decided queries leave the frontier now.
            descend &= ~answers[q_id]
            if descend.any():
                cn = self._child_n[level][node[descend]]
                next_node = _concat_ranges(self._child_off[level][node[descend]], cn)
                q_id = np.repeat(q_id[descend], cn)
                node = next_node
            else:
                break
        return bool(answers.any()) if stop_on_first else False

    # ----------------------------------------------------------- statistics

    def node_count(self) -> int:
        """Total number of cells stored (matches the reference structure)."""
        return sum(len(c) for c in self._coords)

    @property
    def nbytes(self) -> int:
        """Bytes held by the structure's arrays (cache accounting)."""
        total = self.points.nbytes + self._leaf_point_idx.nbytes
        for arrays in (
            self._coords, self._counts, self._child_off, self._child_n,
            self._leaf_off, self._leaf_n,
        ):
            total += sum(a.nbytes for a in arrays)
        if self._root_keys is not None:
            total += self._root_keys.nbytes + self._root_order.nbytes
        return int(total)
