"""Quadtree-like counting hierarchy for approximate range counting (Lemma 5).

Given a fixed radius ``eps`` and approximation constant ``rho``, an
*approximate range count query* at a point ``q`` returns an integer that is
guaranteed to lie between ``|B(q, eps) ∩ P|`` and ``|B(q, eps(1+rho)) ∩ P|``.

The structure follows Section 4.3 of the paper: a regular grid of side
``eps / sqrt(d)`` is refined recursively — each non-empty cell splits into
``2^d`` half-side children — until the side length drops to
``eps * rho / sqrt(d)``, so the hierarchy has
``h = max(1, 1 + ceil(log2(1/rho)))`` levels.  A query walks down from the
level-0 cells, pruning cells disjoint from ``B(q, eps)``, bulk-adding the
counts of cells fully inside ``B(q, eps(1+rho))``, and resolving deepest
cells by the intersect test (valid because a deepest cell has diameter at
most ``eps * rho``).

Engineering refinement (documented deviation): a subtree holding at most
``_EXACT_LEAF_SIZE`` points is not subdivided further; such an *early leaf*
stores its point indices and is resolved by exact distance tests against
``eps``.  Both answers respect the Lemma 5 contract — the early leaf merely
returns a tighter count — and the structure becomes considerably smaller on
sparse cells.  Set ``exact_leaf_size=0`` to build the verbatim paper
structure.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import DataError
from repro.geometry import distance as dm
from repro.grid.cells import _group_by_rows
from repro.utils.validation import check_eps, check_rho

_EXACT_LEAF_SIZE = 8

#: Above this many candidate level-0 coordinates, a query scans the stored
#: roots instead of enumerating the coordinate box around ``q``.
_ENUMERATION_BUDGET = 4096


class _Node:
    """One cell of the hierarchy."""

    __slots__ = ("count", "children", "point_idx")

    def __init__(self, count: int) -> None:
        self.count = count
        self.children: Optional[List[Tuple[np.ndarray, "_Node"]]] = None
        self.point_idx: Optional[np.ndarray] = None  # set on early leaves


class CountingHierarchy:
    """Approximate range counting structure of Lemma 5.

    Parameters
    ----------
    points:
        Array of shape ``(n, d)`` — the set the queries count over.
    eps, rho:
        The fixed query radius and approximation constant.
    exact_leaf_size:
        Subtrees with at most this many points become exact leaves
        (0 reproduces the paper's structure verbatim).
    """

    def __init__(
        self,
        points: np.ndarray,
        eps: float,
        rho: float,
        exact_leaf_size: int = _EXACT_LEAF_SIZE,
    ) -> None:
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or len(points) == 0:
            raise DataError("CountingHierarchy requires a non-empty (n, d) array")
        self.points = points
        self.eps = check_eps(eps)
        self.rho = check_rho(rho)
        self.dim = points.shape[1]
        self.side0 = self.eps / np.sqrt(self.dim)
        # Number of levels: h = max(1, 1 + ceil(log2(1/rho))).
        if self.rho >= 1.0:
            self.n_levels = 1
        else:
            self.n_levels = 1 + int(np.ceil(np.log2(1.0 / self.rho)))
        self._exact_leaf_size = max(0, int(exact_leaf_size))
        self._sq_eps = dm.sq_radius(self.eps)
        self._sq_outer = (self.eps * (1.0 + self.rho)) ** 2

        coords0 = np.floor(points / self.side0).astype(np.int64)
        self._roots: Dict[Tuple[int, ...], _Node] = {}
        for key, idx in _group_by_rows(coords0).items():
            node = self._build(np.asarray(key, dtype=np.int64), idx, level=0)
            self._roots[key] = node

    # -------------------------------------------------------------- build

    def _build(self, coord: np.ndarray, idx: np.ndarray, level: int) -> _Node:
        node = _Node(len(idx))
        deepest = level >= self.n_levels - 1
        if deepest or len(idx) <= self._exact_leaf_size:
            if len(idx) <= self._exact_leaf_size:
                # Early leaf (or tiny deepest cell): keep indices for exact
                # resolution, which is both tighter and cheap.
                node.point_idx = idx
            return node
        child_side = self.side0 / (2 ** (level + 1))
        child_coords = np.floor(self.points[idx] / child_side).astype(np.int64)
        node.children = []
        for key, sub in _group_by_rows(child_coords).items():
            child = self._build(np.asarray(key, dtype=np.int64), idx[sub], level + 1)
            node.children.append((np.asarray(key, dtype=np.int64), child))
        return node

    # ------------------------------------------------------------- queries

    def count(self, q: np.ndarray) -> int:
        """Approximate count of points within ``eps`` of ``q``.

        The result is guaranteed to be in
        ``[|B(q, eps) ∩ P|, |B(q, eps(1+rho)) ∩ P|]``.
        """
        q = np.asarray(q, dtype=np.float64)
        total = 0
        for coord, node in self._iter_candidate_roots(q):
            total += self._count_rec(q, coord, node, level=0)
        return total

    def contains_any(self, q: np.ndarray) -> bool:
        """Approximate emptiness test: True means some point lies within
        ``eps(1+rho)``; False means no point lies within ``eps``.

        This is the exact contract the rho-approximate DBSCAN edge rule
        needs (Section 4.4: yes / no / don't-care).
        """
        q = np.asarray(q, dtype=np.float64)
        for coord, node in self._iter_candidate_roots(q):
            if self._any_rec(q, coord, node, level=0):
                return True
        return False

    # ------------------------------------------------------------ internals

    def _iter_candidate_roots(self, q: np.ndarray):
        """Level-0 cells that could intersect ``B(q, eps)``."""
        lo = np.floor((q - self.eps) / self.side0).astype(np.int64)
        hi = np.floor((q + self.eps) / self.side0).astype(np.int64)
        spans = hi - lo + 1
        budget = int(np.prod(spans.astype(np.float64)))
        if 0 < budget <= _ENUMERATION_BUDGET and budget <= max(len(self._roots), 1) * 4:
            for flat in range(budget):
                coord = np.empty(self.dim, dtype=np.int64)
                rem = flat
                for axis in range(self.dim - 1, -1, -1):
                    coord[axis] = lo[axis] + rem % spans[axis]
                    rem //= spans[axis]
                node = self._roots.get(tuple(coord.tolist()))
                if node is not None:
                    yield coord, node
        else:
            for key, node in self._roots.items():
                coord = np.asarray(key, dtype=np.int64)
                if np.all(coord >= lo) and np.all(coord <= hi):
                    yield coord, node

    def _box_bounds(self, coord: np.ndarray, level: int, q: np.ndarray) -> Tuple[float, float]:
        side = self.side0 / (2 ** level)
        low = coord * side
        high = low + side
        near = np.maximum(low - q, 0.0) + np.maximum(q - high, 0.0)
        far = np.maximum(np.abs(q - low), np.abs(q - high))
        return float(np.dot(near, near)), float(np.dot(far, far))

    def _count_rec(self, q: np.ndarray, coord: np.ndarray, node: _Node, level: int) -> int:
        min_sq, max_sq = self._box_bounds(coord, level, q)
        if min_sq > self._sq_eps:
            return 0  # disjoint with B(q, eps)
        if max_sq <= self._sq_outer:
            return node.count  # fully inside B(q, eps(1+rho))
        if node.point_idx is not None:
            sq = dm.sq_dists_to_point(self.points[node.point_idx], q)
            return int((sq <= self._sq_eps).sum())
        if node.children is None:
            # Deepest-level cell: it intersects B(q, eps) and has diameter
            # <= eps * rho, so all its points are within eps(1+rho).
            return node.count
        return sum(
            self._count_rec(q, child_coord, child, level + 1)
            for child_coord, child in node.children
        )

    def _any_rec(self, q: np.ndarray, coord: np.ndarray, node: _Node, level: int) -> bool:
        min_sq, max_sq = self._box_bounds(coord, level, q)
        if min_sq > self._sq_eps:
            return False
        if max_sq <= self._sq_outer:
            return node.count > 0
        if node.point_idx is not None:
            sq = dm.sq_dists_to_point(self.points[node.point_idx], q)
            return bool((sq <= self._sq_eps).any())
        if node.children is None:
            return node.count > 0
        return any(
            self._any_rec(q, child_coord, child, level + 1)
            for child_coord, child in node.children
        )

    # ----------------------------------------------------------- statistics

    def node_count(self) -> int:
        """Total number of cells stored (for space accounting in benches)."""
        total = 0
        stack = list(self._roots.values())
        while stack:
            node = stack.pop()
            total += 1
            if node.children:
                stack.extend(child for _c, child in node.children)
        return total
