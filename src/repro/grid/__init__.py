"""Grid substrates: the cell grid T and the Lemma 5 counting hierarchies."""

from repro.grid.cells import Grid, default_side, neighbor_offsets
from repro.grid.hierarchy import CountingHierarchy, FlatHierarchy

__all__ = [
    "Grid",
    "CountingHierarchy",
    "FlatHierarchy",
    "default_side",
    "neighbor_offsets",
]
