"""Grid substrates: the cell grid T and the Lemma 5 counting hierarchy."""

from repro.grid.cells import Grid, default_side, neighbor_offsets
from repro.grid.hierarchy import CountingHierarchy

__all__ = ["Grid", "CountingHierarchy", "default_side", "neighbor_offsets"]
