"""The d-dimensional grid ``T`` underlying the paper's algorithms.

Sections 2.2 / 3.2 / 4.4 all impose a grid on the data space whose cells are
hyper-squares with side length ``eps / sqrt(d)``.  Two facts drive every use:

* any two points in the same cell are within distance ``eps`` of each other;
* a point's eps-ball can only reach points in the cell's *eps-neighbour*
  cells — cells whose minimum box distance to it is at most ``eps`` — and
  there are only ``O((sqrt(d)+2)^d) = O(1)`` of those for fixed ``d``
  (21 in 2D, as the paper notes).

:class:`Grid` maps points to integer cell coordinates, groups point indices
per non-empty cell, and enumerates eps-neighbour cells via a cached offset
table shared across instances.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import numpy as np

from repro.errors import ParameterError

CellCoord = Tuple[int, ...]

#: Cache of neighbour-offset tables keyed by ``(d, reach, ratio_key)``.
_OFFSET_CACHE: Dict[Tuple[int, int, int], np.ndarray] = {}


def default_side(eps: float, d: int) -> float:
    """The paper's cell side length ``eps / sqrt(d)``."""
    return eps / np.sqrt(d)


def neighbor_offsets(eps: float, side: float, d: int) -> np.ndarray:
    """Integer offsets ``o`` such that cells ``c`` and ``c + o`` can contain a
    pair of points within distance ``eps``.

    A cell at offset ``o`` has a minimum box-to-box gap of
    ``max(|o_i| - 1, 0) * side`` along axis ``i``; the offset qualifies iff
    the Euclidean combination of those gaps is at most ``eps``.  The zero
    offset (the cell itself) is included.
    """
    if side <= 0:
        raise ParameterError(f"grid side must be positive; got {side}")
    reach = int(np.floor(eps / side)) + 1
    # side/eps is almost always 1/sqrt(d); key the cache on a fine rounding
    # of the ratio so custom sides do not collide.
    ratio_key = int(round(side / eps * 1e9))
    cache_key = (d, reach, ratio_key)
    cached = _OFFSET_CACHE.get(cache_key)
    if cached is not None:
        return cached

    axes = [np.arange(-reach, reach + 1)] * d
    mesh = np.meshgrid(*axes, indexing="ij")
    offsets = np.stack([m.ravel() for m in mesh], axis=1)
    gaps = np.maximum(np.abs(offsets) - 1, 0) * side
    ok = np.einsum("ij,ij->i", gaps, gaps) <= eps * eps + 1e-9 * eps * eps
    result = offsets[ok]
    _OFFSET_CACHE[cache_key] = result
    return result


class Grid:
    """A grid over a point set, with per-cell point groups.

    Parameters
    ----------
    points:
        Array of shape ``(n, d)``.
    eps:
        The DBSCAN radius; determines neighbour reach.
    side:
        Cell side length.  Defaults to ``eps / sqrt(d)`` (the paper's
        choice, which guarantees same-cell pairs are within ``eps``).
    """

    def __init__(self, points: np.ndarray, eps: float, side: float | None = None) -> None:
        points = np.asarray(points, dtype=np.float64)
        if eps <= 0:
            raise ParameterError(f"eps must be positive; got {eps}")
        d = points.shape[1]
        self.points = points
        self.eps = float(eps)
        self.side = float(side) if side is not None else default_side(eps, d)
        if self.side <= 0:
            raise ParameterError(f"side must be positive; got {self.side}")
        self.dim = d

        coords = np.floor(points / self.side).astype(np.int64)
        self.point_cells = coords
        self._cells: Dict[CellCoord, np.ndarray] = _group_by_rows(coords)
        self._offsets = neighbor_offsets(self.eps, self.side, d)
        # In high dimensions the offset table explodes (~257k entries for
        # d = 7, ~1.6k for d = 4) and per-cell enumeration costs
        # |cells| * |offsets| dictionary probes per pass; when that beats
        # the one-off cost of a (chunked, vectorised) all-pairs
        # box-distance computation, build the full adjacency map instead.
        # Built lazily on first neighbour query.
        self._adjacency: Dict[CellCoord, List[CellCoord]] | None = None
        self._key_coords: np.ndarray | None = None
        m = len(self._cells)
        probe_cost = len(self._offsets) * m
        self._use_allpairs = (
            len(self._offsets) > 4 * max(m, 64)
            or (probe_cost > 1_000_000 and m <= 60_000)
        )

    # ------------------------------------------------------------- inspection

    def __len__(self) -> int:
        """Number of non-empty cells."""
        return len(self._cells)

    def __contains__(self, cell: CellCoord) -> bool:
        return tuple(cell) in self._cells

    @property
    def cells(self) -> Dict[CellCoord, np.ndarray]:
        """Mapping of non-empty cell coordinate -> array of point indices."""
        return self._cells

    def cell_of(self, i: int) -> CellCoord:
        """Cell coordinate of point ``i``."""
        return tuple(int(c) for c in self.point_cells[i])

    def points_in(self, cell: CellCoord) -> np.ndarray:
        """Indices of the points covered by ``cell`` (empty array if none)."""
        return self._cells.get(tuple(cell), _EMPTY_IDX)

    # ------------------------------------------------------------- neighbours

    def _ensure_adjacency(self) -> Dict[CellCoord, List[CellCoord]]:
        """Build the full cell-adjacency map by all-pairs box tests."""
        if self._adjacency is not None:
            return self._adjacency
        self._adjacency = self.adjacency_rows(list(self._cells.keys()))
        return self._adjacency

    def adjacency_rows(self, keys_block: List[CellCoord]) -> Dict[CellCoord, List[CellCoord]]:
        """Adjacency lists for a block of cells, by vectorised box tests.

        The unit of work of the all-pairs adjacency build: each block row
        is independent of every other, which is what lets the parallel
        executor shard the build across workers and merge the returned
        dicts (:func:`repro.parallel.executor.parallel_warm_neighbors`).
        Internally chunked so the ``rows x cells`` distance blocks stay a
        few million elements regardless of block size.
        """
        keys = list(self._cells.keys())
        if self._key_coords is None:
            self._key_coords = np.asarray(keys, dtype=np.int64).reshape(len(keys), self.dim)
        coords = self._key_coords
        limit = self.eps * self.eps * (1.0 + 1e-9)
        block_keys = [tuple(k) for k in keys_block]
        out: Dict[CellCoord, List[CellCoord]] = {}
        sub = max(1, 2_000_000 // max(len(keys) * self.dim, 1))
        for start in range(0, len(block_keys), sub):
            part = block_keys[start:start + sub]
            block = np.asarray(part, dtype=np.int64).reshape(len(part), self.dim)
            gaps = (np.maximum(np.abs(block[:, None, :] - coords[None, :, :]) - 1, 0)
                    * self.side)
            ok = np.einsum("bmd,bmd->bm", gaps, gaps) <= limit
            for bi, key in enumerate(part):
                out[key] = [keys[j] for j in np.nonzero(ok[bi])[0] if keys[j] != key]
        return out

    @property
    def needs_neighbor_warmup(self) -> bool:
        """True while the all-pairs adjacency map is still unbuilt."""
        return self._use_allpairs and self._adjacency is None

    def warm_neighbors(self) -> None:
        """Pre-build the neighbour machinery this grid will use.

        A no-op on the offset-probe path.  On the all-pairs path this
        forces the (expensive, cached) adjacency build *now* — the parallel
        executor calls it before forking workers so every worker inherits
        the warm table instead of each rebuilding it.
        """
        if self._use_allpairs:
            self._ensure_adjacency()

    def install_adjacency(self, adjacency: Dict[CellCoord, List[CellCoord]]) -> None:
        """Install an externally assembled adjacency map.

        Used by the parallel executor after sharding
        :meth:`adjacency_rows` across workers; the map must cover every
        non-empty cell.
        """
        if len(adjacency) != len(self._cells):
            raise ParameterError(
                f"adjacency covers {len(adjacency)} cells; grid has {len(self._cells)}"
            )
        self._adjacency = adjacency

    def neighbor_cells(self, cell: CellCoord, *, include_self: bool = False) -> Iterator[CellCoord]:
        """Yield the non-empty eps-neighbour cells of ``cell``.

        The guarantee is one-sided, as in the paper: every cell that could
        hold a point within ``eps`` of a point of ``cell`` is yielded; a
        yielded cell may still turn out to hold no qualifying point.
        """
        cell = tuple(cell)
        if self._use_allpairs and cell in self._cells:
            if include_self:
                yield cell
            yield from self._ensure_adjacency()[cell]
            return
        base = np.asarray(cell, dtype=np.int64)
        cells = self._cells
        for off in self._offsets:
            if not include_self and not off.any():
                continue
            other = tuple((base + off).tolist())
            if other in cells:
                yield other

    def neighbor_points(self, cell: CellCoord, *, include_self: bool = False) -> np.ndarray:
        """Indices of all points in the eps-neighbour cells of ``cell``."""
        blocks = [self.points_in(c) for c in self.neighbor_cells(cell, include_self=include_self)]
        if not blocks:
            return _EMPTY_IDX
        return np.concatenate(blocks)

    def neighbor_cell_pairs(self, subset=None) -> Iterator[Tuple[CellCoord, CellCoord]]:
        """Yield each unordered pair of distinct eps-neighbour cells once.

        ``subset`` optionally restricts both endpoints to a collection of
        cells (e.g. the core cells when building the graph ``G``).
        Deduplication uses the lexicographic order of the offset vector, so
        the pair ``(c, c + o)`` is emitted only for positive offsets.
        """
        allowed = None if subset is None else set(map(tuple, subset))
        pool = self._cells if allowed is None else allowed
        cells = self._cells
        if self._use_allpairs:
            adjacency = self._ensure_adjacency()
            seen = set()
            for cell in pool:
                if cell not in cells:
                    continue
                for other in adjacency[cell]:
                    if allowed is not None and other not in allowed:
                        continue
                    pair = (cell, other) if cell < other else (other, cell)
                    if pair not in seen:
                        seen.add(pair)
                        yield pair
            return
        positive = [off for off in self._offsets if _is_positive(off)]
        for cell in pool:
            if cell not in cells:
                continue
            base = np.asarray(cell, dtype=np.int64)
            for off in positive:
                other = tuple((base + off).tolist())
                if other in cells and (allowed is None or other in allowed):
                    yield cell, other


def _is_positive(off: np.ndarray) -> bool:
    """Lexicographically positive offsets select one direction per pair."""
    for v in off:
        if v > 0:
            return True
        if v < 0:
            return False
    return False


def _group_by_rows(coords: np.ndarray) -> Dict[CellCoord, np.ndarray]:
    """Group row indices of an integer matrix by identical rows."""
    order = np.lexsort(coords.T[::-1])
    sorted_coords = coords[order]
    change = np.any(sorted_coords[1:] != sorted_coords[:-1], axis=1)
    boundaries = np.concatenate([[0], np.nonzero(change)[0] + 1, [len(coords)]])
    groups: Dict[CellCoord, np.ndarray] = {}
    for a, b in zip(boundaries[:-1], boundaries[1:]):
        key = tuple(int(v) for v in sorted_coords[a])
        groups[key] = np.sort(order[a:b])
    return groups


_EMPTY_IDX = np.empty(0, dtype=np.int64)
