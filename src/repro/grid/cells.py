"""The d-dimensional grid ``T`` underlying the paper's algorithms.

Sections 2.2 / 3.2 / 4.4 all impose a grid on the data space whose cells are
hyper-squares with side length ``eps / sqrt(d)``.  Two facts drive every use:

* any two points in the same cell are within distance ``eps`` of each other;
* a point's eps-ball can only reach points in the cell's *eps-neighbour*
  cells — cells whose minimum box distance to it is at most ``eps`` — and
  there are only ``O((sqrt(d)+2)^d) = O(1)`` of those for fixed ``d``
  (21 in 2D, as the paper notes).

:class:`Grid` maps points to integer cell coordinates, groups point indices
per non-empty cell, and enumerates eps-neighbour cells via a cached offset
table shared across instances.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import numpy as np

from repro.errors import ParameterError

CellCoord = Tuple[int, ...]

#: Cache of neighbour-offset tables keyed by ``(d, reach, ratio_key)``.
_OFFSET_CACHE: Dict[Tuple[int, int, int], np.ndarray] = {}


def default_side(eps: float, d: int) -> float:
    """The paper's cell side length ``eps / sqrt(d)``."""
    return eps / np.sqrt(d)


def neighbor_offsets(eps: float, side: float, d: int) -> np.ndarray:
    """Integer offsets ``o`` such that cells ``c`` and ``c + o`` can contain a
    pair of points within distance ``eps``.

    A cell at offset ``o`` has a minimum box-to-box gap of
    ``max(|o_i| - 1, 0) * side`` along axis ``i``; the offset qualifies iff
    the Euclidean combination of those gaps is at most ``eps``.  The zero
    offset (the cell itself) is included.
    """
    if side <= 0:
        raise ParameterError(f"grid side must be positive; got {side}")
    reach = int(np.floor(eps / side)) + 1
    # side/eps is almost always 1/sqrt(d); key the cache on a fine rounding
    # of the ratio so custom sides do not collide.
    ratio_key = int(round(side / eps * 1e9))
    cache_key = (d, reach, ratio_key)
    cached = _OFFSET_CACHE.get(cache_key)
    if cached is not None:
        return cached

    axes = [np.arange(-reach, reach + 1)] * d
    mesh = np.meshgrid(*axes, indexing="ij")
    offsets = np.stack([m.ravel() for m in mesh], axis=1)
    gaps = np.maximum(np.abs(offsets) - 1, 0) * side
    ok = np.einsum("ij,ij->i", gaps, gaps) <= eps * eps + 1e-9 * eps * eps
    result = offsets[ok]
    _OFFSET_CACHE[cache_key] = result
    return result


class Grid:
    """A grid over a point set, with per-cell point groups.

    Parameters
    ----------
    points:
        Array of shape ``(n, d)``.
    eps:
        The DBSCAN radius; determines neighbour reach.
    side:
        Cell side length.  Defaults to ``eps / sqrt(d)`` (the paper's
        choice, which guarantees same-cell pairs are within ``eps``).
    """

    def __init__(self, points: np.ndarray, eps: float, side: float | None = None) -> None:
        points = np.asarray(points, dtype=np.float64)
        if eps <= 0:
            raise ParameterError(f"eps must be positive; got {eps}")
        d = points.shape[1]
        self.points = points
        self.eps = float(eps)
        self.side = float(side) if side is not None else default_side(eps, d)
        if self.side <= 0:
            raise ParameterError(f"side must be positive; got {self.side}")
        self.dim = d

        coords = np.floor(points / self.side).astype(np.int64)
        self.point_cells = coords
        self._cells: Dict[CellCoord, np.ndarray] = _group_by_rows(coords)
        self._offsets = neighbor_offsets(self.eps, self.side, d)
        # In high dimensions the offset table explodes (~257k entries for
        # d = 7, ~1.6k for d = 4) far past the number of non-empty cells;
        # there, probing offsets is hopeless and a (chunked, vectorised)
        # all-pairs box-distance computation builds the full adjacency map
        # instead.  Built lazily on first neighbour query.
        self._adjacency: Dict[CellCoord, List[CellCoord]] | _CSRAdjacency | None = None
        self._key_coords: np.ndarray | None = None
        m = len(self._cells)
        self._use_allpairs = len(self._offsets) > 4 * max(m, 64)

    @classmethod
    def from_soa(
        cls,
        points: np.ndarray,
        point_cells: np.ndarray,
        cell_coords: np.ndarray,
        cell_indptr: np.ndarray,
        cell_order: np.ndarray,
        adj_indptr: np.ndarray,
        adj_indices: np.ndarray,
        *,
        eps: float,
        side: float,
    ) -> "Grid":
        """Rebuild a grid from its structure-of-arrays export — zero copies.

        The inverse of ``repro.parallel.shm.grid_soa``: every per-cell
        index group and every adjacency row is a *view* into the given
        arrays (typically shared-memory mappings), so attaching workers
        reconstruct the parent's grid without materialising anything.
        ``cell_coords`` must be in the insertion order of the original
        ``cells`` dict (which :func:`_group_by_rows` makes lexicographic),
        and the CSR rows must preserve the original per-row neighbour
        order — both are what keeps parallel output byte-identical.
        """
        self = cls.__new__(cls)
        points = np.asarray(points, dtype=np.float64)
        self.points = points
        self.eps = float(eps)
        self.side = float(side)
        self.dim = int(points.shape[1])
        self.point_cells = np.asarray(point_cells, dtype=np.int64)
        m = int(cell_coords.shape[0])
        coord_rows = cell_coords.tolist()
        cells: Dict[CellCoord, np.ndarray] = {}
        indptr = cell_indptr.tolist()
        for t in range(m):
            cells[tuple(coord_rows[t])] = cell_order[indptr[t]:indptr[t + 1]]
        self._cells = cells
        self._offsets = neighbor_offsets(self.eps, self.side, self.dim)
        keys = list(cells.keys())
        index = {c: t for t, c in enumerate(keys)}
        self._adjacency = _CSRAdjacency(
            keys,
            np.asarray(adj_indptr, dtype=np.int64),
            np.asarray(adj_indices, dtype=np.int64),
            index,
        )
        self._key_coords = None
        self._use_allpairs = len(self._offsets) > 4 * max(m, 64)
        return self

    # ------------------------------------------------------------- inspection

    def __len__(self) -> int:
        """Number of non-empty cells."""
        return len(self._cells)

    def __contains__(self, cell: CellCoord) -> bool:
        return tuple(cell) in self._cells

    @property
    def cells(self) -> Dict[CellCoord, np.ndarray]:
        """Mapping of non-empty cell coordinate -> array of point indices."""
        return self._cells

    def cell_of(self, i: int) -> CellCoord:
        """Cell coordinate of point ``i``."""
        return tuple(int(c) for c in self.point_cells[i])

    def points_in(self, cell: CellCoord) -> np.ndarray:
        """Indices of the points covered by ``cell`` (empty array if none)."""
        return self._cells.get(tuple(cell), _EMPTY_IDX)

    # ------------------------------------------------------------- neighbours

    def _ensure_adjacency(self):
        """Build (once) the full cell-adjacency map.

        Low dimensions use the vectorised offset probe and store the map in
        CSR form (index arrays, no per-cell Python lists); the high-``d``
        regime, where the offset table dwarfs the cell count, falls back to
        all-pairs box tests (:meth:`adjacency_rows`) and a plain dict.
        :meth:`neighbor_cells` reads either representation.
        """
        if self._adjacency is not None:
            return self._adjacency
        if self._use_allpairs:
            self._adjacency = self.adjacency_rows(list(self._cells.keys()))
        else:
            self._adjacency = self._adjacency_from_offsets()
        return self._adjacency

    def _adjacency_from_offsets(self) -> "_CSRAdjacency":
        """CSR adjacency via the vectorised offset probe.

        Each cell's neighbours come out in offset-table order — the same
        order the old per-cell probing loop yielded them in, which callers
        that scan neighbours lazily (labeling early-exit) may observe.
        """
        keys = list(self._cells.keys())
        index = {c: t for t, c in enumerate(keys)}
        m = len(keys)
        if m < 2:
            return _CSRAdjacency(
                keys, np.zeros(m + 1, dtype=np.int64), _EMPTY_IDX, index
            )
        coords = np.asarray(keys, dtype=np.int64).reshape(m, self.dim)
        nonzero = self._offsets[(self._offsets != 0).any(axis=1)]
        i_parts: List[np.ndarray] = []
        j_parts: List[np.ndarray] = []
        for i_arr, j_arr in self._iter_offset_hits(coords, nonzero):
            i_parts.append(i_arr)
            j_parts.append(j_arr)
        if not i_parts:
            return _CSRAdjacency(
                keys, np.zeros(m + 1, dtype=np.int64), _EMPTY_IDX, index
            )
        ii = np.concatenate(i_parts)
        jj = np.concatenate(j_parts)
        # Stable sort by source cell keeps each row in offset-table order
        # (the concatenation order of the per-offset hit arrays).
        order = np.argsort(ii, kind="stable")
        indptr = np.concatenate(
            [[0], np.cumsum(np.bincount(ii, minlength=m))]
        ).astype(np.int64)
        return _CSRAdjacency(keys, indptr, jj[order], index)

    def _iter_offset_hits(
        self, coords: np.ndarray, offsets: np.ndarray
    ) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Per offset, index arrays ``(i, j)`` with ``coords[i] + off == coords[j]``.

        One scalar membership test per offset replaces ``|coords| x
        |offsets|`` dictionary probes: rows are packed into mixed-radix
        int64 keys (the radix is padded by the offset reach, so every
        shifted coordinate stays in range and a shift is a single scalar
        addition on the packed keys), with a structured-dtype row view as
        the overflow fallback.  Offsets that hit nothing are skipped.
        """
        reach = int(np.abs(self._offsets).max())
        lo = coords.min(axis=0) - reach
        spans = coords.max(axis=0) + reach + 1 - lo
        if float(np.prod(spans.astype(np.float64))) < 2.0 ** 62:
            rev = np.concatenate([[1], np.cumprod(spans[::-1][:-1])])
            mults = rev[::-1]
            base = (coords - lo) @ mults
            shifts = [int(off @ mults) for off in offsets]
        else:  # packed keys would overflow: fall back to structured rows
            base = _row_view(coords)
            shifts = None
        order = np.argsort(base, kind="stable")
        sorted_keys = base[order]
        last = len(sorted_keys) - 1
        for k, off in enumerate(offsets):
            shifted = base + shifts[k] if shifts is not None else _row_view(coords + off)
            pos = np.searchsorted(sorted_keys, shifted)
            np.minimum(pos, last, out=pos)
            hit = np.nonzero(sorted_keys[pos] == shifted)[0]
            if len(hit):
                yield hit, order[pos[hit]]

    def adjacency_rows(self, keys_block: List[CellCoord]) -> Dict[CellCoord, List[CellCoord]]:
        """Adjacency lists for a block of cells, by vectorised box tests.

        The unit of work of the all-pairs adjacency build: each block row
        is independent of every other, which is what lets the parallel
        executor shard the build across workers and merge the returned
        dicts (:func:`repro.parallel.executor.parallel_warm_neighbors`).
        Internally chunked so the ``rows x cells`` distance blocks stay a
        few million elements regardless of block size.
        """
        keys = list(self._cells.keys())
        if self._key_coords is None:
            self._key_coords = np.asarray(keys, dtype=np.int64).reshape(len(keys), self.dim)
        coords = self._key_coords
        limit = self.eps * self.eps * (1.0 + 1e-9)
        block_keys = [tuple(k) for k in keys_block]
        out: Dict[CellCoord, List[CellCoord]] = {}
        sub = max(1, 2_000_000 // max(len(keys) * self.dim, 1))
        for start in range(0, len(block_keys), sub):
            part = block_keys[start:start + sub]
            block = np.asarray(part, dtype=np.int64).reshape(len(part), self.dim)
            gaps = (np.maximum(np.abs(block[:, None, :] - coords[None, :, :]) - 1, 0)
                    * self.side)
            ok = np.einsum("bmd,bmd->bm", gaps, gaps) <= limit
            for bi, key in enumerate(part):
                out[key] = [keys[j] for j in np.nonzero(ok[bi])[0] if keys[j] != key]
        return out

    @property
    def needs_neighbor_warmup(self) -> bool:
        """True while the adjacency map is still unbuilt."""
        return self._adjacency is None

    @property
    def uses_allpairs_adjacency(self) -> bool:
        """True when adjacency comes from all-pairs box tests (high ``d``).

        Only that build is expensive enough to shard across workers; the
        offset-probe build is a fast vectorised pass done in-process.
        """
        return self._use_allpairs

    def warm_neighbors(self) -> None:
        """Force the (cached) adjacency build *now*.

        The parallel executor calls it before forking workers so every
        worker inherits the warm table instead of each rebuilding it, and
        the pipeline calls it during the grid phase so the cost is charged
        where it belongs.
        """
        self._ensure_adjacency()

    def install_adjacency(self, adjacency: Dict[CellCoord, List[CellCoord]]) -> None:
        """Install an externally assembled adjacency map.

        Used by the parallel executor after sharding
        :meth:`adjacency_rows` across workers; the map must cover every
        non-empty cell.
        """
        if len(adjacency) != len(self._cells):
            raise ParameterError(
                f"adjacency covers {len(adjacency)} cells; grid has {len(self._cells)}"
            )
        self._adjacency = adjacency

    def neighbor_cells(self, cell: CellCoord, *, include_self: bool = False) -> Iterator[CellCoord]:
        """Yield the non-empty eps-neighbour cells of ``cell``.

        The guarantee is one-sided, as in the paper: every cell that could
        hold a point within ``eps`` of a point of ``cell`` is yielded; a
        yielded cell may still turn out to hold no qualifying point.
        """
        cell = tuple(cell)
        if cell in self._cells:
            if include_self:
                yield cell
            adjacency = self._ensure_adjacency()
            if isinstance(adjacency, _CSRAdjacency):
                yield from adjacency.row(cell)
            else:
                yield from adjacency[cell]
            return
        # A coordinate with no points has no adjacency row; probe offsets.
        base = np.asarray(cell, dtype=np.int64)
        cells = self._cells
        for off in self._offsets:
            if not off.any():
                continue
            other = tuple((base + off).tolist())
            if other in cells:
                yield other

    def neighbor_points(self, cell: CellCoord, *, include_self: bool = False) -> np.ndarray:
        """Indices of all points in the eps-neighbour cells of ``cell``."""
        blocks = [self.points_in(c) for c in self.neighbor_cells(cell, include_self=include_self)]
        if not blocks:
            return _EMPTY_IDX
        return np.concatenate(blocks)

    def neighbor_cell_pair_arrays(
        self, subset=None
    ) -> Tuple[List[CellCoord], np.ndarray, np.ndarray]:
        """Index-array form of :meth:`neighbor_cell_pairs`.

        Returns ``(keys, i, j)`` where the pairs are
        ``(keys[i[t]], keys[j[t]])`` — the representation callers want when
        they post-filter pairs vectorised (e.g. dropping pairs whose
        endpoints a carried pre-union already connects) instead of paying
        a Python-level yield per pair.  ``i``-side cells precede their
        ``j`` partners lexicographically, matching the orientation contract
        of :meth:`neighbor_cell_pairs`.
        """
        cells = self._cells
        if subset is None:
            sub_keys = list(cells.keys())
        else:
            allowed = set(map(tuple, subset))
            sub_keys = [c for c in cells if c in allowed]
        empty = np.empty(0, dtype=np.int64)
        if len(sub_keys) < 2:
            return sub_keys, empty, empty
        if self._use_allpairs:
            index = {c: t for t, c in enumerate(sub_keys)}
            adjacency = self._ensure_adjacency()
            ii: List[int] = []
            jj: List[int] = []
            for t, cell in enumerate(sub_keys):
                for other in adjacency[cell]:
                    u = index.get(other)
                    if u is not None and cell < other:
                        ii.append(t)
                        jj.append(u)
            return sub_keys, np.asarray(ii, dtype=np.int64), np.asarray(jj, dtype=np.int64)
        coords = np.asarray(sub_keys, dtype=np.int64).reshape(len(sub_keys), self.dim)
        positive = self._offsets[_positive_offset_mask(self._offsets)]
        i_parts: List[np.ndarray] = []
        j_parts: List[np.ndarray] = []
        for i_arr, j_arr in self._iter_offset_hits(coords, positive):
            i_parts.append(i_arr)
            j_parts.append(j_arr)
        if not i_parts:
            return sub_keys, empty, empty
        return sub_keys, np.concatenate(i_parts), np.concatenate(j_parts)

    def neighbor_cell_pairs(self, subset=None) -> Iterator[Tuple[CellCoord, CellCoord]]:
        """Yield each unordered pair of distinct eps-neighbour cells once.

        ``subset`` optionally restricts both endpoints to a collection of
        cells (e.g. the core cells when building the graph ``G``).
        Deduplication uses the lexicographic order of the offset vector, so
        the pair ``(c, c + o)`` is emitted only for positive offsets.
        """
        keys, ii, jj = self.neighbor_cell_pair_arrays(subset)
        for i, j in zip(ii.tolist(), jj.tolist()):
            yield keys[i], keys[j]


class _CSRAdjacency:
    """Cell adjacency in compressed-sparse-row form.

    ``indices[indptr[t]:indptr[t + 1]]`` are the positions (into ``keys``)
    of cell ``keys[t]``'s neighbours, in offset-table order.  Index arrays
    instead of per-cell Python lists keep the build fully vectorised.
    """

    __slots__ = ("keys", "indptr", "indices", "index")

    def __init__(
        self,
        keys: List[CellCoord],
        indptr: np.ndarray,
        indices: np.ndarray,
        index: Dict[CellCoord, int],
    ) -> None:
        self.keys = keys
        self.indptr = indptr
        self.indices = indices
        self.index = index

    def row(self, cell: CellCoord) -> Iterator[CellCoord]:
        t = self.index[cell]
        keys = self.keys
        for j in self.indices[self.indptr[t]:self.indptr[t + 1]].tolist():
            yield keys[j]

    def __getitem__(self, cell: CellCoord) -> List[CellCoord]:
        """Dict-style row access, so CSR can stand in for the all-pairs
        adjacency dict (e.g. on grids rebuilt via :meth:`Grid.from_soa`)."""
        return list(self.row(cell))


def _row_view(a: np.ndarray) -> np.ndarray:
    """A 1-D structured view of a 2-D integer array, one element per row.

    Structured elements compare field by field, i.e. lexicographically by
    row — the overflow-proof (but slower) fallback for row-wise membership
    queries when packed int64 keys cannot represent the coordinate range.
    """
    a = np.ascontiguousarray(a)
    return a.view([("", a.dtype)] * a.shape[1]).ravel()


def _positive_offset_mask(offsets: np.ndarray) -> np.ndarray:
    """Mask of lexicographically positive offsets (one direction per pair)."""
    nonzero = offsets != 0
    has_any = nonzero.any(axis=1)
    first = np.argmax(nonzero, axis=1)
    leading = offsets[np.arange(len(offsets)), first]
    return has_any & (leading > 0)


def _group_by_rows(coords: np.ndarray) -> Dict[CellCoord, np.ndarray]:
    """Group row indices of an integer matrix by identical rows.

    One stable ``np.lexsort`` is the whole bucketing pass: stability makes
    the indices inside each group come out already ascending (what the
    old code re-sorted per group), and the group bodies are zero-copy
    views into the single sorted index array.
    """
    if len(coords) == 0:
        return {}
    order = np.lexsort(coords.T[::-1])
    sorted_coords = coords[order]
    change = np.any(sorted_coords[1:] != sorted_coords[:-1], axis=1)
    starts = np.concatenate([[0], np.nonzero(change)[0] + 1])
    bounds = np.append(starts, len(coords))
    keys = sorted_coords[starts].tolist()
    groups: Dict[CellCoord, np.ndarray] = {}
    for i, key in enumerate(keys):
        groups[tuple(key)] = order[bounds[i]:bounds[i + 1]]
    return groups


_EMPTY_IDX = np.empty(0, dtype=np.int64)
