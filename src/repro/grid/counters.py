"""Lightweight kernel performance counters.

The batched Lemma 5 kernel (:class:`repro.grid.hierarchy.FlatHierarchy`)
and the early-exit BCP decision path (:func:`repro.geometry.bcp.bcp_within`)
report how much work they actually did — queries batched, frontier pairs
visited, prune / bulk-add / leaf resolutions, BCP early exits — through
this process-global registry.  The grid pipeline snapshots the registry
around each run and publishes the delta under ``meta["kernel_counters"]``,
which the CLI's ``--profile`` flag prints.

The counters are advisory observability, not accounting: increments happen
under the GIL (plain dict updates, no lock), and worker *processes*
accumulate into their own copies, so a parallel run's parent-side delta
only covers the work the parent did itself.  Costs stay negligible — a
handful of dict updates per *batch*, never per point.
"""

from __future__ import annotations

from typing import Dict

_COUNTS: Dict[str, int] = {}


def add(name: str, value: int = 1) -> None:
    """Increment counter ``name`` by ``value`` (creating it at zero)."""
    _COUNTS[name] = _COUNTS.get(name, 0) + int(value)


def snapshot() -> Dict[str, int]:
    """A point-in-time copy of every counter."""
    return dict(_COUNTS)


def delta_since(before: Dict[str, int]) -> Dict[str, int]:
    """Counters that moved since ``before`` (a :func:`snapshot`), as deltas."""
    out: Dict[str, int] = {}
    for name, value in _COUNTS.items():
        moved = value - before.get(name, 0)
        if moved:
            out[name] = moved
    return out


def reset() -> None:
    """Zero every counter (test isolation helper)."""
    _COUNTS.clear()
