"""Evaluation machinery: comparison, legal-rho sweeps, collapse search, timing."""

from repro.evaluation.ascii_chart import line_chart, sawtooth_chart
from repro.evaluation.collapse import collapsing_radius
from repro.evaluation.compare import (
    adjusted_rand_index,
    best_match_jaccard,
    cluster_f1,
    clusters_contained_in,
    confusion_summary,
    rand_index,
    same_clusters,
    sandwich_holds,
)
from repro.evaluation.legal_rho import (
    LegalRhoPoint,
    eps_sweep,
    legal_rho_profile,
    max_legal_rho,
)
from repro.evaluation.timing import DNF, TimedRun, format_table, speedup, timed

__all__ = [
    "same_clusters",
    "clusters_contained_in",
    "sandwich_holds",
    "rand_index",
    "adjusted_rand_index",
    "best_match_jaccard",
    "cluster_f1",
    "confusion_summary",
    "max_legal_rho",
    "legal_rho_profile",
    "LegalRhoPoint",
    "eps_sweep",
    "collapsing_radius",
    "line_chart",
    "sawtooth_chart",
    "timed",
    "TimedRun",
    "DNF",
    "format_table",
    "speedup",
]
