"""Maximum legal rho (the Figure 10 methodology).

For a dataset and a radius ``eps``, the *maximum legal rho* is the largest
``rho`` under which rho-approximate DBSCAN returns exactly the same
clusters as exact DBSCAN (Section 5.2, "All Dimensionalities — A Sawtooth
View").  The paper evaluates it over the rho grid of Table 1; since
legality need not be monotone in ``rho``, we scan the grid from the top
and return the largest grid value that passes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro import config
from repro.algorithms.approx import approx_dbscan
from repro.algorithms.exact_grid import exact_grid_dbscan
from repro.core.result import Clustering


@dataclass(frozen=True)
class LegalRhoPoint:
    """One sample of the Figure 10 curves."""

    eps: float
    max_legal_rho: float  # 0.0 if no grid value is legal
    n_clusters_exact: int


def max_legal_rho(
    points: np.ndarray,
    eps: float,
    min_pts: int,
    rho_grid: Sequence[float] = config.PAPER_RHO_GRID,
    exact: Optional[Clustering] = None,
) -> float:
    """Largest rho in ``rho_grid`` whose approximate result equals DBSCAN's.

    Returns ``0.0`` when even the smallest grid value changes the clusters
    (the paper's sawtooth valleys — an *unstable* eps).
    """
    if exact is None:
        exact = exact_grid_dbscan(points, eps, min_pts)
    for rho in sorted(rho_grid, reverse=True):
        approx = approx_dbscan(points, eps, min_pts, rho=rho)
        if approx.same_clusters(exact):
            return float(rho)
    return 0.0


def legal_rho_profile(
    points: np.ndarray,
    eps_values: Sequence[float],
    min_pts: int,
    rho_grid: Sequence[float] = config.PAPER_RHO_GRID,
) -> Tuple[LegalRhoPoint, ...]:
    """The full sawtooth curve: maximum legal rho at each eps."""
    out = []
    for eps in eps_values:
        exact = exact_grid_dbscan(points, float(eps), min_pts)
        rho = max_legal_rho(points, float(eps), min_pts, rho_grid, exact=exact)
        out.append(LegalRhoPoint(float(eps), rho, exact.n_clusters))
    return tuple(out)


def eps_sweep(eps_min: float, eps_max: float, n_steps: int) -> np.ndarray:
    """Evenly spaced eps values from ``eps_min`` to ``eps_max`` inclusive."""
    if n_steps < 2:
        return np.array([eps_min], dtype=np.float64)
    return np.linspace(eps_min, eps_max, n_steps)
