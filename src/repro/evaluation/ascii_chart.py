"""Text rendering of the paper's figure types.

The paper's evaluation figures are log-scale time-vs-parameter line charts
(Figures 11-13) and the sawtooth legal-rho plot (Figure 10).  Pure-text
analogues let the benchmark harness print the *figures*, not just the
tables, with no plotting dependency.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

_MARKERS = "ox+*#@%&"


def line_chart(
    x: Sequence[float],
    series: Dict[str, Sequence[Optional[float]]],
    *,
    width: int = 64,
    height: int = 14,
    logy: bool = True,
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render one or more series as an ASCII line chart.

    ``None`` values (DNF runs) are skipped.  With ``logy`` the y axis is
    log-scaled, matching the paper's plots.
    """
    xs = np.asarray(list(x), dtype=np.float64)
    all_vals = [v for vs in series.values() for v in vs if v is not None and v > 0]
    if not all_vals or len(xs) == 0:
        return "(no data)"
    lo, hi = min(all_vals), max(all_vals)
    if logy:
        lo, hi = np.log10(lo), np.log10(hi)
    if hi <= lo:
        hi = lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    x_lo, x_hi = float(xs.min()), float(xs.max())
    x_span = (x_hi - x_lo) or 1.0

    legend = []
    for (name, values), marker in zip(series.items(), _MARKERS):
        legend.append(f"{marker} = {name}")
        for xv, yv in zip(xs, values):
            if yv is None or yv <= 0:
                continue
            y_norm = ((np.log10(yv) if logy else yv) - lo) / (hi - lo)
            col = int((xv - x_lo) / x_span * (width - 1))
            row = int((1.0 - y_norm) * (height - 1))
            grid[min(max(row, 0), height - 1)][min(max(col, 0), width - 1)] = marker

    top_label = f"{10 ** hi:.3g}s" if logy else f"{hi:.3g}"
    bottom_label = f"{10 ** lo:.3g}s" if logy else f"{lo:.3g}"
    lines = [f"{y_label} (top={top_label}, bottom={bottom_label}, log y)" if logy
             else f"{y_label} (top={top_label}, bottom={bottom_label})"]
    lines += ["|" + "".join(row) for row in grid]
    lines.append("+" + "-" * width)
    lines.append(f" {x_label}: {x_lo:g} .. {x_hi:g}    {'   '.join(legend)}")
    return "\n".join(lines)


def sawtooth_chart(
    eps_values: Sequence[float],
    legal_rho: Sequence[float],
    *,
    rho_top: float = 0.1,
    width: int = 64,
    height: int = 10,
) -> str:
    """Render a Figure 10-style maximum-legal-rho sawtooth."""
    xs = np.asarray(list(eps_values), dtype=np.float64)
    ys = np.clip(np.asarray(list(legal_rho), dtype=np.float64), 0.0, rho_top)
    if len(xs) == 0:
        return "(no data)"
    grid = [[" "] * width for _ in range(height)]
    x_lo, x_hi = float(xs.min()), float(xs.max())
    x_span = (x_hi - x_lo) or 1.0
    for xv, yv in zip(xs, ys):
        col = int((xv - x_lo) / x_span * (width - 1))
        row = int((1.0 - yv / rho_top) * (height - 1))
        grid[min(max(row, 0), height - 1)][col] = "*"
    lines = [f"max legal rho (top={rho_top:g}, bottom=0)"]
    lines += ["|" + "".join(row) for row in grid]
    lines.append("+" + "-" * width)
    lines.append(f" eps: {x_lo:g} .. {x_hi:g}")
    return "\n".join(lines)
