"""Comparing clustering results.

The paper's quality experiments (Section 5.2) hinge on one question — did
rho-approximate DBSCAN return *exactly the same clusters* as DBSCAN? —
plus the containment relations of the sandwich theorem.  This module
implements those, and adds the Rand / Adjusted Rand indexes for graded
similarity reporting.
"""

from __future__ import annotations

import numpy as np

from repro.core.result import Clustering
from repro.errors import DataError


def same_clusters(a: Clustering, b: Clustering) -> bool:
    """Exact cluster-set equality (the Section 5.2 criterion)."""
    return a.same_clusters(b)


def clusters_contained_in(inner: Clustering, outer: Clustering) -> bool:
    """True iff every cluster of ``inner`` is a subset of some cluster of ``outer``.

    With ``inner`` = exact DBSCAN(eps) and ``outer`` = a rho-approximate
    result, this is Statement 1 of the sandwich theorem; with ``inner`` =
    the approximate result and ``outer`` = exact DBSCAN(eps(1+rho)), it is
    Statement 2.
    """
    if inner.n != outer.n:
        raise DataError("results must cover the same point set")
    for cluster in inner.clusters:
        anchor = next(iter(cluster))
        if not any(
            anchor in candidate and cluster <= candidate
            for candidate in outer.clusters
        ):
            return False
    return True


def sandwich_holds(exact_eps: Clustering, approx: Clustering, exact_inflated: Clustering) -> bool:
    """Both statements of Theorem 3 at once."""
    return clusters_contained_in(exact_eps, approx) and clusters_contained_in(
        approx, exact_inflated
    )


def _comparison_labels(result: Clustering) -> np.ndarray:
    """Primary labels with each noise point as its own singleton cluster."""
    labels = result.labels.copy()
    noise = labels == -1
    if noise.any():
        fresh = np.arange(int(noise.sum())) + (labels.max(initial=-1) + 1)
        labels[noise] = fresh
    return labels


def _pair_counts(a: Clustering, b: Clustering):
    if a.n != b.n:
        raise DataError("results must cover the same point set")
    la = _comparison_labels(a)
    lb = _comparison_labels(b)
    # Contingency table via pair encoding.
    _, ia = np.unique(la, return_inverse=True)
    _, ib = np.unique(lb, return_inverse=True)
    pair = ia.astype(np.int64) * (ib.max() + 1) + ib
    _, counts = np.unique(pair, return_counts=True)
    _, counts_a = np.unique(ia, return_counts=True)
    _, counts_b = np.unique(ib, return_counts=True)

    def comb2(x):
        x = x.astype(np.float64)
        return (x * (x - 1) / 2.0).sum()

    return comb2(counts), comb2(counts_a), comb2(counts_b), a.n * (a.n - 1) / 2.0


def rand_index(a: Clustering, b: Clustering) -> float:
    """Rand index over primary labels (noise points as singletons)."""
    nij, ni, nj, total = _pair_counts(a, b)
    if total == 0:
        return 1.0
    agreements = total + 2 * nij - ni - nj
    return float(agreements / total)


def adjusted_rand_index(a: Clustering, b: Clustering) -> float:
    """Adjusted Rand index (Hubert & Arabie) over primary labels."""
    nij, ni, nj, total = _pair_counts(a, b)
    if total == 0:
        return 1.0
    expected = ni * nj / total
    maximum = (ni + nj) / 2.0
    if maximum == expected:
        return 1.0
    return float((nij - expected) / (maximum - expected))


def best_match_jaccard(a: Clustering, b: Clustering) -> float:
    """Mean best-match Jaccard similarity between the two cluster sets.

    For each cluster of ``a``, its best Jaccard overlap with any cluster
    of ``b``; averaged symmetrically over both directions.  1.0 iff the
    cluster sets are identical; degrades gracefully under small
    membership perturbations (unlike the exact equality test).
    """
    if a.n != b.n:
        raise DataError("results must cover the same point set")
    if not a.clusters and not b.clusters:
        return 1.0
    if not a.clusters or not b.clusters:
        return 0.0

    def one_way(src, dst):
        total = 0.0
        for cluster in src:
            best = 0.0
            for candidate in dst:
                inter = len(cluster & candidate)
                if inter:
                    union = len(cluster | candidate)
                    best = max(best, inter / union)
            total += best
        return total / len(src)

    return 0.5 * (one_way(a.clusters, b.clusters) + one_way(b.clusters, a.clusters))


def cluster_f1(a: Clustering, b: Clustering, threshold: float = 0.5) -> float:
    """Cluster-level F1: a cluster "matches" when some counterpart shares
    more than ``threshold`` Jaccard overlap.

    Precision = matched fraction of ``a``'s clusters, recall = matched
    fraction of ``b``'s; the harmonic mean is returned (1.0 for identical
    sets, 0.0 when nothing overlaps).
    """
    if a.n != b.n:
        raise DataError("results must cover the same point set")
    if not a.clusters and not b.clusters:
        return 1.0
    if not a.clusters or not b.clusters:
        return 0.0

    def matched(src, dst):
        hits = 0
        for cluster in src:
            for candidate in dst:
                inter = len(cluster & candidate)
                if inter and inter / len(cluster | candidate) > threshold:
                    hits += 1
                    break
        return hits / len(src)

    precision = matched(a.clusters, b.clusters)
    recall = matched(b.clusters, a.clusters)
    if precision + recall == 0:
        return 0.0
    return 2 * precision * recall / (precision + recall)


def confusion_summary(a: Clustering, b: Clustering) -> str:
    """One-line comparison used by benchmark printouts."""
    flag = "SAME" if same_clusters(a, b) else "DIFFERENT"
    return (
        f"{flag}: {a.n_clusters} vs {b.n_clusters} clusters, "
        f"ARI={adjusted_rand_index(a, b):.4f}"
    )
