"""A self-contained experiment battery with a markdown report.

``python -m repro.evaluation.report [output.md]`` runs a quick version of
every headline experiment (scaled to finish in a couple of minutes) and
writes a paper-vs-measured markdown table.  The full benchmark harness in
``benchmarks/`` remains the authoritative reproduction; this module exists
so that a user can regenerate an EXPERIMENTS-style summary with one
command and no pytest invocation.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from time import perf_counter
from typing import Callable, List

import numpy as np

from repro import approx_dbscan, dbscan
from repro.data import figure8_dataset, seed_spreader
from repro.evaluation.compare import sandwich_holds
from repro.evaluation.legal_rho import max_legal_rho
from repro.hardness import random_instance, usec_brute, usec_via_dbscan


@dataclass
class Check:
    """One verified claim: experiment id, the paper's expectation, what we
    measured, and whether the shape holds."""

    experiment: str
    expectation: str
    measured: str
    holds: bool


def _figure9() -> Check:
    ds = figure8_dataset()
    eps = 7000.0
    exact = dbscan(ds.points, eps, 20)
    same = all(
        approx_dbscan(ds.points, eps, 20, rho=rho).same_clusters(exact)
        for rho in (0.001, 0.01, 0.1)
    )
    return Check(
        "Figure 9 (quality grid)",
        "approx clusters == exact clusters at stable radii for all rho",
        f"{exact.n_clusters} clusters; all three rho values identical: {same}",
        same,
    )


def _figure10() -> Check:
    points = seed_spreader(2000, 3, seed=10).points
    rho = max_legal_rho(points, 5000.0, 10, (0.001, 0.01, 0.1))
    return Check(
        "Figure 10 (max legal rho)",
        "max legal rho >= 0.001 at typical eps",
        f"max legal rho at eps=5000: {rho:g}",
        rho >= 0.001,
    )


def _figure11() -> Check:
    points = seed_spreader(4000, 3, seed=11).points
    t0 = perf_counter()
    dbscan(points, 5000.0, 10, algorithm="kdd96")
    t_kdd = perf_counter() - t0
    t0 = perf_counter()
    approx_dbscan(points, 5000.0, 10, rho=0.001)
    t_approx = perf_counter() - t0
    factor = t_kdd / max(t_approx, 1e-9)
    return Check(
        "Figure 11 (time vs n)",
        "OurApprox beats KDD96 by a large factor",
        f"KDD96 {t_kdd:.2f}s vs OurApprox {t_approx:.3f}s ({factor:.0f}x)",
        factor > 2,
    )


def _figure12() -> Check:
    points = seed_spreader(2000, 3, seed=12).points
    slow_small = _time(lambda: dbscan(points, 5000.0, 10, algorithm="cit08"))
    slow_large = _time(lambda: dbscan(points, 40000.0, 10, algorithm="cit08"))
    return Check(
        "Figure 12 (time vs eps)",
        "expansion baselines slow down as eps grows",
        f"CIT08: {slow_small:.2f}s at eps=5000, {slow_large:.2f}s at eps=40000",
        slow_large >= slow_small * 0.8,
    )


def _figure13() -> Check:
    points = seed_spreader(4000, 3, seed=13).points
    t_small = _time(lambda: approx_dbscan(points, 5000.0, 10, rho=0.001))
    t_large = _time(lambda: approx_dbscan(points, 5000.0, 10, rho=0.1))
    return Check(
        "Figure 13 (time vs rho)",
        "larger rho never dramatically slower",
        f"rho=0.001: {t_small:.3f}s, rho=0.1: {t_large:.3f}s",
        t_large <= t_small * 2 + 0.05,
    )


def _theorem2() -> Check:
    ns = (1000, 4000)
    grid_t, brute_t = [], []
    for n in ns:
        points = seed_spreader(n, 3, seed=14).points
        grid_t.append(_time(lambda: dbscan(points, 5000.0, 10)))
        brute_t.append(_time(lambda: dbscan(points, 5000.0, 10, algorithm="brute")))
    sub_quadratic = grid_t[1] < brute_t[1]
    return Check(
        "Theorem 2 (exact, subquadratic)",
        "grid+BCP beats the O(n^2) reference",
        f"n=4000: grid {grid_t[1]:.3f}s vs brute {brute_t[1]:.2f}s",
        sub_quadratic,
    )


def _theorem3() -> Check:
    rng = np.random.default_rng(15)
    points = rng.uniform(0, 30, size=(600, 3))
    eps, min_pts, rho = 2.0, 5, 0.3
    approx = approx_dbscan(points, eps, min_pts, rho=rho)
    exact = dbscan(points, eps, min_pts, algorithm="brute")
    inflated = dbscan(points, eps * (1 + rho), min_pts, algorithm="brute")
    holds = sandwich_holds(exact, approx, inflated)
    return Check(
        "Theorem 3 (sandwich)",
        "exact(eps) subset-of approx subset-of exact(eps(1+rho))",
        f"containments verified on uniform 3D data: {holds}",
        holds,
    )


def _lemma4() -> Check:
    agree = all(
        usec_via_dbscan(
            random_instance(200, 100, 3, radius=8000.0, domain=100_000.0, seed=s),
            lambda P, e, m: dbscan(P, e, m),
        )
        == usec_brute(random_instance(200, 100, 3, radius=8000.0,
                                      domain=100_000.0, seed=s))
        for s in range(5)
    )
    return Check(
        "Lemma 4 (USEC reduction)",
        "USEC via DBSCAN == brute USEC on every instance",
        f"5/5 random instances agree: {agree}",
        agree,
    )


def _time(fn: Callable[[], object]) -> float:
    start = perf_counter()
    fn()
    return perf_counter() - start


ALL_CHECKS = (
    _figure9, _figure10, _figure11, _figure12, _figure13,
    _theorem2, _theorem3, _lemma4,
)


def run_battery() -> List[Check]:
    """Run every quick check and return the records."""
    return [check() for check in ALL_CHECKS]


def render_markdown(checks: List[Check]) -> str:
    lines = [
        "# Experiment battery (quick run)",
        "",
        "Generated by `python -m repro.evaluation.report`.  The full",
        "reproduction lives in `benchmarks/` (see EXPERIMENTS.md).",
        "",
        "| experiment | paper expectation | measured | holds |",
        "|---|---|---|---|",
    ]
    for c in checks:
        flag = "yes" if c.holds else "**NO**"
        lines.append(f"| {c.experiment} | {c.expectation} | {c.measured} | {flag} |")
    return "\n".join(lines) + "\n"


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    checks = run_battery()
    text = render_markdown(checks)
    if argv:
        with open(argv[0], "w") as fh:
            fh.write(text)
        print(f"wrote {argv[0]}")
    else:
        print(text)
    return 0 if all(c.holds for c in checks) else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
