"""Collapsing radius (Section 5.1).

"Every dataset has a unique collapsing radius, which is the smallest eps
such that exact DBSCAN returns a single cluster."  The paper sweeps eps
from 5000 up to this value in every experiment, so the benchmark harness
needs to compute it.

The number of clusters is not formally monotone in eps (growing eps can
promote noise into new clusters before everything merges), so the binary
search below is a heuristic for the crossing point; pass ``verify_steps``
to refine the bracket with a linear scan near the answer.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.algorithms.exact_grid import exact_grid_dbscan
from repro.errors import ParameterError

ClusterCounter = Callable[[np.ndarray, float, int], int]


def _default_counter(points: np.ndarray, eps: float, min_pts: int) -> int:
    return exact_grid_dbscan(points, eps, min_pts).n_clusters


def collapsing_radius(
    points: np.ndarray,
    min_pts: int,
    *,
    lo: float = 1.0,
    hi: Optional[float] = None,
    rel_tol: float = 0.01,
    counter: ClusterCounter = _default_counter,
    verify_steps: int = 0,
) -> float:
    """Smallest eps (within ``rel_tol``) at which DBSCAN yields one cluster.

    Raises :class:`~repro.errors.ParameterError` when no radius can
    collapse the dataset (``n < min_pts``: no point can ever be core).
    """
    points = np.asarray(points, dtype=np.float64)
    if len(points) < min_pts:
        raise ParameterError(
            f"dataset of {len(points)} points can never produce a cluster with "
            f"min_pts={min_pts}"
        )
    if hi is None:
        span = points.max(axis=0) - points.min(axis=0)
        hi = float(np.linalg.norm(span)) + 1.0
    if counter(points, hi, min_pts) != 1:
        # With eps >= diameter every point is core and in one cluster, so
        # this only triggers for degenerate counters.
        raise ParameterError("upper bound does not collapse the dataset")
    if counter(points, lo, min_pts) == 1:
        return lo

    while hi - lo > rel_tol * hi:
        mid = 0.5 * (lo + hi)
        if counter(points, mid, min_pts) == 1:
            hi = mid
        else:
            lo = mid

    if verify_steps > 0:
        # Walk downwards from `hi` to guard against non-monotonicity.
        for eps in np.linspace(hi, lo, verify_steps + 1):
            if counter(points, float(eps), min_pts) != 1:
                break
            hi = float(eps)
    return hi
