"""Timing harness for the efficiency experiments (Section 5.3).

Runs algorithm callables under a wall-clock budget, records outcomes
(including "did not finish", the reproduction's analogue of the paper's
12-hour cut-off), and renders aligned text tables so every benchmark can
print paper-style rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import TimeoutExceeded

#: Marker used in tables when a run exceeded its budget.
DNF = "DNF"


@dataclass
class TimedRun:
    """Outcome of one timed algorithm execution."""

    label: str
    seconds: Optional[float]  # None when the run did not finish
    result: object = None
    note: str = ""
    extra: Dict[str, object] = field(default_factory=dict)

    @property
    def finished(self) -> bool:
        return self.seconds is not None

    def cell(self) -> str:
        """Table-cell rendering: seconds or the DNF marker."""
        return f"{self.seconds:.3f}" if self.finished else DNF


def timed(label: str, fn: Callable[[], object], budget: Optional[float] = None) -> TimedRun:
    """Execute ``fn`` and record its wall-clock time.

    A :class:`~repro.errors.TimeoutExceeded` raised by the callable is
    recorded as a DNF rather than propagated; any other exception
    propagates (a benchmark bug should fail loudly).
    """
    start = perf_counter()
    try:
        result = fn()
    except TimeoutExceeded as exc:
        return TimedRun(label, None, note=str(exc))
    return TimedRun(label, perf_counter() - start, result=result)


class PhaseTimer:
    """Accumulates named wall-clock spans — the pipeline's phase profiler.

    Use :meth:`measure` as a context manager around each phase; repeated
    spans under the same name accumulate.  :attr:`seconds` is a plain
    ``{name: seconds}`` dict, ready to drop into a result's ``meta``.
    """

    def __init__(self) -> None:
        self.seconds: Dict[str, float] = {}

    def measure(self, name: str) -> "_PhaseSpan":
        return _PhaseSpan(self, name)

    def add(self, name: str, seconds: float) -> None:
        self.seconds[name] = self.seconds.get(name, 0.0) + float(seconds)

    @property
    def total(self) -> float:
        return sum(self.seconds.values())


class _PhaseSpan:
    """One ``with``-scoped span of a :class:`PhaseTimer`."""

    def __init__(self, timer: PhaseTimer, name: str) -> None:
        self._timer = timer
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_PhaseSpan":
        self._start = perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._timer.add(self._name, perf_counter() - self._start)


def format_profile(
    phase_seconds: Dict[str, float],
    extra: Optional[Dict[str, object]] = None,
) -> str:
    """Render a per-phase timing breakdown as an aligned table.

    ``extra`` rows (e.g. cache hit / miss counters) are appended verbatim
    below the timings — this is what ``repro cluster --profile`` prints.
    """
    total = sum(phase_seconds.values())
    rows: List[Sequence[object]] = []
    for name, secs in phase_seconds.items():
        share = f"{100.0 * secs / total:.1f}%" if total > 0 else "-"
        rows.append((name, f"{secs:.4f}", share))
    rows.append(("total", f"{total:.4f}", "100.0%" if total > 0 else "-"))
    if extra:
        for key, value in extra.items():
            rows.append((key, str(value), ""))
    return format_table(("phase", "seconds", "share"), rows)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned plain-text table."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for r, row in enumerate(cells):
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        if r == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def speedup(baseline: TimedRun, contender: TimedRun) -> Optional[float]:
    """``baseline_time / contender_time`` when both finished, else None."""
    if not (baseline.finished and contender.finished) or contender.seconds == 0:
        return None
    return baseline.seconds / contender.seconds


def geometric_growth(values: List[float]) -> List[float]:
    """Successive ratios ``v[i+1] / v[i]`` — used to eyeball growth exponents."""
    return [b / a for a, b in zip(values, values[1:]) if a > 0]
