"""Zero-copy shared-memory transport for the parallel grid pipeline.

PR 4/5 turned the pipeline's hot state into structure-of-arrays numpy
buffers — exactly the layout ``multiprocessing.shared_memory`` wants.
This module publishes that state (points, per-point cell coordinates,
packed cell keys + CSR point membership, CSR cell adjacency) into named
shared-memory segments once per run, so pool workers *attach* and
reconstruct read-only numpy views instead of receiving pickled copies,
and write their results into preallocated shared output slabs instead of
pickling them back.  The parent still stitches fragments with the serial
insertion-order rule, so output stays byte-identical to serial (the
differential oracle of ``tests/test_shm_equivalence.py``).

Ownership model (the contract ``tests/test_shm_equivalence.py`` enforces):

* **The parent owns every segment.** It creates, registers, and unlinks
  them — in ``finally`` blocks around each fan-out, on every supervisor
  recovery rung (the supervisor never sees the segments; the executor's
  ``finally`` runs whether the ladder retried, respawned, quarantined, or
  gave up), and in an ``atexit`` safety net for anything still live at
  interpreter shutdown.
* **Workers only attach.** :meth:`SharedBlock.attach` suppresses the
  ``resource_tracker`` registration while mapping (see
  :func:`_untracked_attach`) so a worker's exit — normal or ``SIGKILL`` —
  never unlinks a segment it does not own, never trips the tracker's
  double-unlink warning, and never corrupts the tracker registry the
  forked fleet shares with the parent (the latent cleanup gap this PR
  fixes).

Segment layout: one segment packs many arrays at 64-byte-aligned offsets.
The *header* — a small picklable dict ``{segment, nbytes, fields: {name:
{offset, dtype, shape}}, meta}`` — travels in the task payload; attaching
is ``SharedMemory(name)`` plus one ``np.ndarray(buffer=...)`` per field,
no data copied anywhere.  ``meta`` carries the grid scalars (eps, side)
and a dataset fingerprint so an attach onto the wrong segment fails loudly
instead of computing garbage.
"""

from __future__ import annotations

import atexit
import os
import secrets
import threading
import zlib
from contextlib import contextmanager
from multiprocessing import resource_tracker, shared_memory
from typing import Dict, Mapping, Optional, Set, Tuple

import numpy as np

from repro.errors import ParameterError
from repro.grid.cells import Grid
from repro.runtime.memory import MemoryBudget
from repro.utils.log import get_logger

_log = get_logger("parallel.shm")

#: Name prefix of every segment this module creates; the leak tests scan
#: ``/dev/shm`` for it.
SEGMENT_PREFIX = "repro-shm"

#: Byte alignment of every array packed into a segment.
_ALIGN = 64

#: Serialises the register-suppressing attach (one mapping at a time; the
#: patch on ``resource_tracker.register`` must not race another thread's
#: legitimate create).
_ATTACH_LOCK = threading.Lock()


def _segment_name() -> str:
    return f"{SEGMENT_PREFIX}-{os.getpid()}-{secrets.token_hex(4)}"


@contextmanager
def _untracked_attach():
    """Suppress ``resource_tracker`` registration while attaching.

    ``SharedMemory(name)`` registers every mapping for unlink-at-exit;
    correct for owners, wrong for attachers: a worker dying (or being
    killed) with a registration would either unlink the parent's live
    segment or emit the tracker's "leaked shared_memory" warning.  Python
    3.13 grew ``track=False`` for exactly this.  On 3.10-3.12 the popular
    workaround — ``resource_tracker.unregister`` right after attach — is
    itself buggy under the fork start method: forked workers share the
    parent's tracker daemon, so the worker's unregister removes the
    *parent's* registration and the owner's eventual ``unlink()`` raises a
    ``KeyError`` inside the tracker.  Suppressing the register call at the
    source keeps the shared registry balanced: exactly one register (the
    creator's) and one unregister (the creator's unlink).
    """
    original = resource_tracker.register
    with _ATTACH_LOCK:
        resource_tracker.register = lambda name, rtype: None
        try:
            yield
        finally:
            resource_tracker.register = original


#: Owner-side registry backing the atexit safety net.
_LIVE_BLOCKS: "Set[SharedBlock]" = set()


def _cleanup_at_exit() -> None:  # pragma: no cover - runs at interpreter exit
    for block in list(_LIVE_BLOCKS):
        block.close()


atexit.register(_cleanup_at_exit)


def fingerprint_points(points: np.ndarray) -> str:
    """Cheap, deterministic dataset fingerprint for the segment header.

    Shape plus a CRC over a strided sample — enough to catch an attach
    against the wrong dataset's segment without hashing gigabytes.
    """
    n = int(points.shape[0])
    stride = max(1, n // 64)
    sample = np.ascontiguousarray(points[::stride])
    crc = zlib.crc32(sample.tobytes()) & 0xFFFFFFFF
    return f"{n}x{int(points.shape[1])}-{crc:08x}"


class SharedBlock:
    """One named shared-memory segment packing several numpy arrays.

    Created by the owner from a ``{name: array}`` mapping; attached by
    workers from the picklable :attr:`header`.  ``arrays`` holds the live
    views either way.  :meth:`close` is idempotent and safe on every
    error path: owners unlink the name first (so nothing can leak even if
    releasing the local mapping fails), then drop the mapping.
    """

    def __init__(
        self,
        segment: shared_memory.SharedMemory,
        header: Dict[str, object],
        arrays: Dict[str, np.ndarray],
        *,
        owner: bool,
    ) -> None:
        self.segment = segment
        self.header = header
        self.arrays = arrays
        self.owner = owner
        self.closed = False

    # ------------------------------------------------------------ properties

    @property
    def name(self) -> str:
        return str(self.header["segment"])

    @property
    def nbytes(self) -> int:
        return int(self.header["nbytes"])

    # ------------------------------------------------------------- lifecycle

    @classmethod
    def create(
        cls,
        arrays: Mapping[str, np.ndarray],
        *,
        meta: Optional[Mapping[str, object]] = None,
        memory: Optional[MemoryBudget] = None,
        phase: str = "shm-publish",
    ) -> "SharedBlock":
        """Allocate a segment, copy ``arrays`` in, return the owning block.

        The parent's :class:`~repro.runtime.memory.MemoryBudget` (when
        given) is charged for the segment *before* allocation — once,
        fleet-wide: workers subtract the shared bytes from their own RSS
        polls (see :attr:`MemoryBudget.shared_bytes`), so a segment is
        never double-counted per attaching process.
        """
        packed: Dict[str, np.ndarray] = {
            name: np.ascontiguousarray(arr) for name, arr in arrays.items()
        }
        fields: Dict[str, Dict[str, object]] = {}
        offset = 0
        for name, arr in packed.items():
            offset = (offset + _ALIGN - 1) // _ALIGN * _ALIGN
            fields[name] = {
                "offset": offset,
                "dtype": arr.dtype.str,
                "shape": list(arr.shape),
            }
            offset += arr.nbytes
        total = max(1, offset)
        if memory is not None:
            memory.charge_estimate(total, phase)
        segment = None
        for _ in range(3):  # name collisions are ~impossible but cheap to retry
            try:
                segment = shared_memory.SharedMemory(
                    name=_segment_name(), create=True, size=total
                )
                break
            except FileExistsError:  # pragma: no cover
                continue
        if segment is None:  # pragma: no cover
            raise OSError("could not allocate a uniquely named shared-memory segment")
        views: Dict[str, np.ndarray] = {}
        for name, arr in packed.items():
            spec = fields[name]
            view = np.ndarray(
                arr.shape, dtype=arr.dtype, buffer=segment.buf, offset=int(spec["offset"])
            )
            view[...] = arr
            views[name] = view
        header = {
            "segment": segment.name,
            "nbytes": total,
            "fields": fields,
            "meta": dict(meta or {}),
        }
        block = cls(segment, header, views, owner=True)
        _LIVE_BLOCKS.add(block)
        _log.debug("published segment %s (%d bytes, %d arrays)", block.name, total, len(views))
        return block

    @classmethod
    def attach(cls, header: Mapping[str, object], *, writable: bool = False) -> "SharedBlock":
        """Map an existing segment and rebuild the views — zero copies.

        The mapping is immediately dropped from the ``resource_tracker``:
        attachers never own the name (see the module docstring).  Inputs
        should attach read-only so a worker bug cannot corrupt state
        shared by the whole fleet.
        """
        with _untracked_attach():
            segment = shared_memory.SharedMemory(name=str(header["segment"]), create=False)
        views: Dict[str, np.ndarray] = {}
        for name, spec in dict(header["fields"]).items():
            view = np.ndarray(
                tuple(spec["shape"]),
                dtype=np.dtype(str(spec["dtype"])),
                buffer=segment.buf,
                offset=int(spec["offset"]),
            )
            if not writable:
                view.flags.writeable = False
            views[name] = view
        return cls(segment, dict(header), views, owner=False)

    def close(self) -> None:
        """Release this mapping; the owner also unlinks the name.

        Unlink happens *first*: once the name is gone nothing can leak,
        even if dropping the local mapping fails because live numpy views
        (e.g. result arrays a caller copied out lazily) still export the
        buffer — that mapping simply dies with the process.
        """
        if self.closed:
            return
        self.closed = True
        _LIVE_BLOCKS.discard(self)
        if self.owner:
            try:
                self.segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        self.arrays = {}
        try:
            self.segment.close()
        except BufferError:  # pragma: no cover - a view outlives the block
            pass


# --------------------------------------------------------------------- grid


def grid_soa(grid: Grid) -> Tuple[Dict[str, np.ndarray], Dict[str, object]]:
    """Export a grid's hot state as SoA arrays plus scalar meta.

    Forces the adjacency build first (serial if nobody warmed it): the
    published CSR must be the parent's own table so workers observe the
    exact row order the serial code observes (labeling early-exits scan
    rows lazily, and byte-identity needs identical scan order).
    """
    adjacency = grid._ensure_adjacency()
    keys = list(grid.cells.keys())
    m = len(keys)
    dim = int(grid.dim)
    cell_coords = (
        np.asarray(keys, dtype=np.int64).reshape(m, dim)
        if m
        else np.empty((0, dim), dtype=np.int64)
    )
    counts = np.fromiter(
        (len(grid.cells[k]) for k in keys), dtype=np.int64, count=m
    )
    cell_indptr = np.zeros(m + 1, dtype=np.int64)
    np.cumsum(counts, out=cell_indptr[1:])
    cell_order = (
        np.concatenate([np.asarray(grid.cells[k], dtype=np.int64) for k in keys])
        if m
        else np.empty(0, dtype=np.int64)
    )
    if isinstance(adjacency, dict):
        # All-pairs grids build a plain dict; re-express it as CSR over the
        # same key order, preserving each row's neighbour order.
        index = {k: t for t, k in enumerate(keys)}
        row_lens = np.fromiter(
            (len(adjacency[k]) for k in keys), dtype=np.int64, count=m
        )
        adj_indptr = np.zeros(m + 1, dtype=np.int64)
        np.cumsum(row_lens, out=adj_indptr[1:])
        adj_indices = np.fromiter(
            (index[n] for k in keys for n in adjacency[k]),
            dtype=np.int64,
            count=int(adj_indptr[-1]),
        )
    else:
        adj_indptr = np.asarray(adjacency.indptr, dtype=np.int64)
        adj_indices = np.asarray(adjacency.indices, dtype=np.int64)
    arrays = {
        "points": grid.points,
        "point_cells": grid.point_cells,
        "cell_coords": cell_coords,
        "cell_indptr": cell_indptr,
        "cell_order": cell_order,
        "adj_indptr": adj_indptr,
        "adj_indices": adj_indices,
    }
    meta = {
        "eps": float(grid.eps),
        "side": float(grid.side),
        "dim": dim,
        "allpairs_adjacency": bool(isinstance(adjacency, dict)),
        "fingerprint": fingerprint_points(grid.points),
    }
    return arrays, meta


def publish_grid(grid: Grid, *, memory: Optional[MemoryBudget] = None) -> SharedBlock:
    """Publish (or reuse) a grid's shared-memory segment.

    The block is cached on the grid (``grid._shm_publication``) so one
    publication serves every phase of a run — and, for engine-cached
    grids, every run that reuses the structure, no re-pickling anywhere.
    The grid's owner is responsible for :func:`unpublish_grid`; the
    structure cache and the pipeline both do (plus the atexit net).
    """
    pub = getattr(grid, "_shm_publication", None)
    if pub is not None and not pub.closed:
        return pub
    arrays, meta = grid_soa(grid)
    block = SharedBlock.create(arrays, meta=meta, memory=memory, phase="shm-publish")
    grid._shm_publication = block
    return block


def unpublish_grid(grid: Grid) -> None:
    """Unlink a grid's publication, if any.  Idempotent."""
    pub = getattr(grid, "_shm_publication", None)
    if pub is not None:
        pub.close()


def attach_grid(header: Mapping[str, object]) -> Grid:
    """Reconstruct a read-only :class:`Grid` from a published segment.

    Every array on the returned grid is a view into the mapped segment;
    the block itself is pinned on the grid (``grid._shm_attachment``) so
    the mapping lives as long as the grid does.
    """
    block = SharedBlock.attach(header, writable=False)
    meta = dict(header["meta"])
    a = block.arrays
    expected = fingerprint_points(a["points"])
    if str(meta.get("fingerprint")) != expected:
        block.close()
        raise ParameterError(
            f"shared-memory segment {block.name} does not match its header "
            f"fingerprint ({meta.get('fingerprint')!r} != {expected!r})"
        )
    grid = Grid.from_soa(
        a["points"],
        a["point_cells"],
        a["cell_coords"],
        a["cell_indptr"],
        a["cell_order"],
        a["adj_indptr"],
        a["adj_indices"],
        eps=float(meta["eps"]),
        side=float(meta["side"]),
    )
    grid._shm_attachment = block
    return grid


def leaked_segments() -> list:
    """Names of live ``/dev/shm`` entries created by this module (tests)."""
    root = "/dev/shm"
    try:
        entries = os.listdir(root)
    except OSError:  # pragma: no cover - non-Linux
        return []
    return sorted(e for e in entries if e.startswith(SEGMENT_PREFIX))
