"""Multiprocessing execution layer for the shared grid pipeline.

The paper's Theorem 2 decomposition is embarrassingly parallel: core
determination is per-cell, the core-cell graph is per-edge, and border
assignment is per-cell again.  This package shards the grid into
spatially contiguous cell blocks, fans the three data-parallel phases out
over a worker pool, and stitches per-shard union-find forests back into
the global component labeling — producing output *identical* to the
serial pipeline (see ``docs/PARALLEL.md`` for the correctness argument
and ``tests/test_parallel_equivalence.py`` for the differential oracle).

Public entry points accept ``workers=`` (an int or a
:class:`ParallelConfig`); ``repro-dbscan --workers N`` exposes it on the
command line, and the ``REPRO_WORKERS`` environment variable sets the
fleet-wide default.
"""

from repro.parallel.executor import (
    OVERSHARD,
    ParallelConfig,
    as_parallel_config,
    effective_workers,
    parallel_approx_components,
    parallel_assign_borders,
    parallel_exact_components,
    parallel_label_cores,
    parallel_warm_neighbors,
)
from repro.parallel.shard import assign_shards, chunked, shard_cells, split_pairs
from repro.parallel.supervisor import (
    SupervisorStats,
    collect_stats,
    current_stats,
    retry_transient,
    run_supervised,
)

__all__ = [
    "ParallelConfig",
    "as_parallel_config",
    "effective_workers",
    "parallel_label_cores",
    "parallel_exact_components",
    "parallel_approx_components",
    "parallel_assign_borders",
    "parallel_warm_neighbors",
    "shard_cells",
    "assign_shards",
    "split_pairs",
    "chunked",
    "OVERSHARD",
    "SupervisorStats",
    "collect_stats",
    "current_stats",
    "retry_transient",
    "run_supervised",
]
