"""Multiprocessing execution layer for the shared grid pipeline.

The paper's Theorem 2 decomposition is embarrassingly parallel: core
determination is per-cell, the core-cell graph is per-edge, and border
assignment is per-cell again.  This package shards the grid into
spatially contiguous cell blocks, fans the three data-parallel phases out
over a worker pool, and stitches per-shard union-find forests back into
the global component labeling — producing output *identical* to the
serial pipeline (see ``docs/PARALLEL.md`` for the correctness argument
and ``tests/test_parallel_equivalence.py`` for the differential oracle).

Public entry points accept ``workers=`` (an int or a
:class:`ParallelConfig`); ``repro-dbscan --workers N`` exposes it on the
command line, and the ``REPRO_WORKERS`` environment variable sets the
fleet-wide default.  ``ParallelConfig(shm=...)`` (CLI ``--shm``, env
``REPRO_SHM``) selects the zero-copy shared-memory transport of
:mod:`repro.parallel.shm`; ``backend="thread"`` (CLI ``--backend``, env
``REPRO_BACKEND``) swaps the process pool for threads.
"""

from repro.parallel.executor import (
    BORDER_SLAB_WIDTH,
    OVERSHARD,
    ParallelConfig,
    as_parallel_config,
    effective_workers,
    parallel_approx_components,
    parallel_assign_borders,
    parallel_exact_components,
    parallel_label_cores,
    parallel_warm_neighbors,
    track_copy_bytes,
    with_transport,
)
from repro.parallel.shm import (
    SharedBlock,
    attach_grid,
    leaked_segments,
    publish_grid,
    unpublish_grid,
)
from repro.parallel.shard import assign_shards, chunked, shard_cells, split_pairs
from repro.parallel.supervisor import (
    SupervisorStats,
    collect_stats,
    current_stats,
    retry_transient,
    run_supervised,
)

__all__ = [
    "ParallelConfig",
    "as_parallel_config",
    "effective_workers",
    "parallel_label_cores",
    "parallel_exact_components",
    "parallel_approx_components",
    "parallel_assign_borders",
    "parallel_warm_neighbors",
    "shard_cells",
    "assign_shards",
    "split_pairs",
    "chunked",
    "OVERSHARD",
    "BORDER_SLAB_WIDTH",
    "with_transport",
    "track_copy_bytes",
    "SharedBlock",
    "publish_grid",
    "unpublish_grid",
    "attach_grid",
    "leaked_segments",
    "SupervisorStats",
    "collect_stats",
    "current_stats",
    "retry_transient",
    "run_supervised",
]
