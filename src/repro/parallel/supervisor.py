"""Fault-tolerant supervision of the sharded worker pool.

``multiprocessing.Pool.imap_unordered`` gives the grid pipeline cheap
fan-out but no *supervision*: an OOM-killed or segfaulted worker loses its
task forever (the pool quietly replaces the process, the result never
arrives), a hung worker blocks the run indefinitely, and a shard whose
data deterministically crashes workers sinks everything computed so far.
This module layers a supervisor over the same pool that makes worker
failure a recoverable event instead of a fatal one:

* every in-flight shard is **tracked** (submit time, attempt count) and
  results arrive through ``apply_async`` callbacks, so completion is as
  prompt as ``imap_unordered``;
* **dead workers** are detected from pool process exit codes and pid
  churn (the pool's self-repair replaces crashed processes), **hung
  shards** from a per-task soft timeout derived from the run's deadline;
  either event terminates and **respawns the pool**, requeueing only the
  shards whose results have not arrived — completed work is kept;
* failed shards are **retried with exponential backoff plus
  deterministic jitter** up to a configurable budget;
* shards that exhaust their retries are **quarantined**: re-executed
  serially in the parent process with the very same task function, so one
  poison shard cannot sink the run and the merged output stays
  byte-identical to the serial pipeline (shard results are
  order-independent and idempotent by construction — see
  ``docs/PARALLEL.md``);
* when the pool itself keeps breaking past its respawn budget, all
  remaining shards are **serially requeued** in the parent (the last rung
  before giving up); only with quarantine explicitly disabled does the
  supervisor raise :class:`~repro.errors.WorkerPoolError`, which
  :func:`repro.runtime.run_resilient` treats as degradable.

Everything the supervisor does — every retry, timeout, respawn, and
quarantine — is recorded on a :class:`SupervisorStats`, which the grid
pipeline surfaces as ``Clustering.meta["supervisor"]`` and the resilient
runtime folds into ``meta["resilience"]``.

Library errors raised *inside* workers (:class:`~repro.errors.TimeoutExceeded`,
:class:`~repro.errors.MemoryBudgetExceeded`) are **not** retried: they are
cooperative budget verdicts, not infrastructure failures, and re-raise to
the parent exactly as the unsupervised pool re-raised them.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import MemoryBudgetExceeded, TimeoutExceeded, WorkerPoolError
from repro.runtime.deadline import Deadline
from repro.runtime.memory import MemoryBudget
from repro.utils.log import get_logger

_log = get_logger("parallel.supervisor")

#: Hang threshold (seconds) when neither ``shard_timeout`` nor a bounded
#: deadline is configured.  Generous on purpose: it exists to guarantee
#: liveness (a lost task must never block forever), not to police slow
#: shards.
DEFAULT_SHARD_TIMEOUT = 300.0

#: How long the supervisor waits for a completion signal before sweeping
#: for hung shards and dead workers.  Completions themselves wake the
#: loop immediately through an event, so this bounds only failure
#: *detection* latency, not fault-free throughput.
POLL_INTERVAL = 0.05

#: Exponential-backoff parameters for shard retries.
BACKOFF_BASE = 0.05
BACKOFF_CAP = 2.0

_GOLDEN = 0.6180339887498949


def backoff_delay(attempt: int, seq: int) -> float:
    """Backoff before retry number ``attempt`` (1-based) of shard ``seq``.

    Exponential in the attempt, with a deterministic per-shard jitter in
    ``[0.5x, 1.5x)`` (golden-ratio hashing of the shard id) so retried
    shards do not resubmit in lockstep yet runs stay reproducible.
    """
    base = min(BACKOFF_CAP, BACKOFF_BASE * (2.0 ** max(0, attempt - 1)))
    jitter = 0.5 + ((seq * _GOLDEN) % 1.0)
    return base * jitter


def retry_transient(
    fn: Callable[[], object],
    *,
    attempts: int = 3,
    seq: int = 0,
    deadline: Optional[Deadline] = None,
    retry_on: Tuple[type, ...] = (WorkerPoolError, OSError),
    on_retry: Optional[Callable[[int, BaseException], None]] = None,
    sleep: Callable[[float], None] = time.sleep,
):
    """Call ``fn()`` with the supervisor's backoff on transient failures.

    The supervisor's retry ladder, reusable outside :func:`run_supervised`
    for callers (the service dispatcher, ad-hoc scripts) that invoke a
    whole engine run rather than a single shard.  Only exceptions in
    ``retry_on`` are retried — by default infrastructure failures
    (:class:`~repro.errors.WorkerPoolError`, ``OSError``); cooperative
    budget verdicts (:class:`~repro.errors.TimeoutExceeded`,
    :class:`~repro.errors.MemoryBudgetExceeded`) and parameter errors
    propagate immediately, exactly as :func:`run_supervised` treats them.
    Between attempts the delay follows :func:`backoff_delay` (``seq``
    picks the jitter lane); a bounded ``deadline`` that cannot cover the
    next delay re-raises instead of sleeping past the budget.
    ``on_retry(attempt, exc)`` is invoked before each backoff so callers
    can keep their own ledger.
    """
    if attempts < 1:
        raise ValueError(f"attempts must be >= 1; got {attempts}")
    last: Optional[BaseException] = None
    for attempt in range(1, attempts + 1):
        try:
            return fn()
        except retry_on as exc:
            last = exc
            if attempt == attempts:
                raise
            delay = backoff_delay(attempt, seq)
            if deadline is not None:
                deadline.check()
                remaining = deadline.remaining()
                if remaining is not None and remaining <= delay:
                    raise
            if on_retry is not None:
                on_retry(attempt, exc)
            _log.warning(
                "retry_transient: attempt %d/%d failed (%s: %s); retrying in %.0fms",
                attempt, attempts, type(exc).__name__, exc, delay * 1e3,
            )
            sleep(delay)
    raise AssertionError("unreachable") from last  # pragma: no cover


@dataclass
class SupervisorStats:
    """Ledger of every recovery action taken across one run's phases."""

    #: One entry per shard resubmission: phase, shard seq, attempt number,
    #: and the reason (``"error"``, ``"timeout"``, ``"worker-death"``).
    retries: List[Dict[str, object]] = field(default_factory=list)
    #: One entry per quarantined shard (retries exhausted, ran in parent).
    quarantined: List[Dict[str, object]] = field(default_factory=list)
    #: Pool respawns after breakage (worker death or hung-shard recovery).
    respawns: int = 0
    #: Shards whose soft timeout fired.
    timeouts: int = 0
    #: Shards executed serially in the parent after the pool was abandoned.
    serial_requeued: int = 0

    def record_retry(self, phase: str, seq: int, attempt: int, reason: str) -> None:
        self.retries.append(
            {"phase": phase, "shard": int(seq), "attempt": int(attempt), "reason": reason}
        )

    def record_quarantine(self, phase: str, seq: int, attempts: int, reason: str) -> None:
        self.quarantined.append(
            {"phase": phase, "shard": int(seq), "attempts": int(attempts), "reason": reason}
        )

    @property
    def events(self) -> int:
        """Total recovery actions (0 means a fault-free run)."""
        return (
            len(self.retries)
            + len(self.quarantined)
            + self.respawns
            + self.timeouts
            + self.serial_requeued
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "retries": list(self.retries),
            "quarantined": list(self.quarantined),
            "respawns": int(self.respawns),
            "timeouts": int(self.timeouts),
            "serial_requeued": int(self.serial_requeued),
        }


#: Ambient stats collector: the pipeline opens one per run so the phase
#: executors (reached through callbacks whose signatures predate the
#: supervisor) all charge the same ledger without signature churn.
_stats_var: ContextVar[Optional[SupervisorStats]] = ContextVar(
    "repro_supervisor_stats", default=None
)


def current_stats() -> Optional[SupervisorStats]:
    """The ambient per-run stats ledger, if a pipeline opened one."""
    return _stats_var.get()


@contextmanager
def collect_stats() -> Iterator[SupervisorStats]:
    """Install a fresh ambient :class:`SupervisorStats` for one run."""
    stats = SupervisorStats()
    token = _stats_var.set(stats)
    try:
        yield stats
    finally:
        _stats_var.reset(token)


@dataclass
class _Shard:
    """Parent-side state of one task for the lifetime of a phase."""

    seq: int
    item: object
    attempts: int = 0
    eligible_at: float = 0.0
    done: bool = False


class _Policy:
    """The supervisor knobs, duck-read off a ``ParallelConfig``."""

    __slots__ = ("max_shard_retries", "shard_timeout", "quarantine", "max_pool_respawns")

    def __init__(self, cfg) -> None:
        self.max_shard_retries = int(getattr(cfg, "max_shard_retries", 2))
        self.shard_timeout = getattr(cfg, "shard_timeout", None)
        self.quarantine = bool(getattr(cfg, "quarantine", True))
        self.max_pool_respawns = int(getattr(cfg, "max_pool_respawns", 2))


def _effective_timeout(policy: _Policy, deadline: Optional[Deadline]) -> float:
    if policy.shard_timeout is not None:
        return float(policy.shard_timeout)
    if deadline is not None and deadline.budget is not None:
        # A shard can never legitimately outlive the remaining budget; the
        # parent's own deadline check fires first either way.
        return max(float(deadline.remaining() or 0.0), 1e-3)
    return DEFAULT_SHARD_TIMEOUT


def run_supervised(
    pool_factory: Callable[[], object],
    task: Callable,
    kind: str,
    phase: str,
    items: Sequence,
    consume: Callable[[object], None],
    *,
    cfg,
    deadline: Optional[Deadline] = None,
    memory: Optional[MemoryBudget] = None,
    local_runner: Optional[Callable[[str, object], object]] = None,
    stats: Optional[SupervisorStats] = None,
) -> None:
    """Run ``task(kind, seq, item)`` for every item, surviving worker faults.

    ``pool_factory`` builds (and rebuilds, after breakage) the initialized
    pool; ``consume`` merges each shard result into the parent-side
    accumulators — it must be order-independent and idempotent, which all
    four phase merges are (index writes, dict updates, union-find unions).
    ``local_runner(kind, item)`` executes one shard in the parent process
    for quarantine / serial requeue.

    Raises :class:`~repro.errors.WorkerPoolError` only when the recovery
    ladder is exhausted *and* quarantine is disabled; budget errors from
    workers (:class:`TimeoutExceeded`, :class:`MemoryBudgetExceeded`)
    re-raise immediately, as the unsupervised pool did.
    """
    if not items:
        return
    policy = _Policy(cfg)
    if stats is None:
        stats = current_stats() or SupervisorStats()
    timeout = _effective_timeout(policy, deadline)

    shards = [_Shard(seq=i, item=item) for i, item in enumerate(items)]
    pending: Deque[_Shard] = deque(shards)
    inflight: Dict[int, float] = {}
    n_done = 0

    wake = threading.Event()
    completions: Deque[Tuple[int, bool, object]] = deque()

    def _on_result(seq: int, ok: bool, value: object) -> None:
        # Runs on the pool's result-handler thread: enqueue and signal only.
        completions.append((seq, ok, value))
        wake.set()

    pool = None
    pool_pids: frozenset = frozenset()
    respawns = 0

    def _spawn_pool():
        nonlocal pool, pool_pids
        pool = pool_factory()
        try:
            pool_pids = frozenset(p.pid for p in pool._pool)
        except Exception:  # pragma: no cover - interpreter-internal layout
            pool_pids = frozenset()

    def _submit(shard: _Shard) -> None:
        seq = shard.seq
        pool.apply_async(
            task,
            (kind, seq, shard.item),
            callback=lambda value, seq=seq: _on_result(seq, True, value),
            error_callback=lambda exc, seq=seq: _on_result(seq, False, exc),
        )
        inflight[seq] = time.monotonic()

    def _run_in_parent(shard: _Shard, *, why: str) -> None:
        nonlocal n_done
        if local_runner is None:  # pragma: no cover - all phases wire one
            raise WorkerPoolError(
                f"shard {shard.seq} of phase {phase!r} failed and no parent-side "
                "runner is available",
                stats.as_dict(),
            )
        _log.warning(
            "supervisor[%s]: running shard %d in the parent (%s)", phase, shard.seq, why
        )
        consume(local_runner(kind, shard.item))
        shard.done = True
        n_done += 1

    def _retry_or_quarantine(shard: _Shard, reason: str, detail: str) -> None:
        shard.attempts += 1
        if shard.attempts <= policy.max_shard_retries:
            delay = backoff_delay(shard.attempts, shard.seq)
            shard.eligible_at = time.monotonic() + delay
            stats.record_retry(phase, shard.seq, shard.attempts, reason)
            _log.warning(
                "supervisor[%s]: shard %d failed (%s: %s); retry %d/%d in %.0fms",
                phase, shard.seq, reason, detail, shard.attempts,
                policy.max_shard_retries, delay * 1e3,
            )
            pending.append(shard)
            return
        if policy.quarantine:
            stats.record_quarantine(phase, shard.seq, shard.attempts, reason)
            _run_in_parent(shard, why=f"quarantined after {shard.attempts} failed attempt(s)")
            return
        raise WorkerPoolError(
            f"shard {shard.seq} of phase {phase!r} failed {shard.attempts} time(s) "
            f"({reason}: {detail}) and quarantine is disabled",
            stats.as_dict(),
        )

    def _break_pool(reason: str, detail: str, hung: Sequence[int] = ()) -> None:
        """Terminate the pool, requeue lost shards, respawn within budget."""
        nonlocal pool, respawns
        _log.warning(
            "supervisor[%s]: pool breakage (%s: %s); %d shard(s) in flight",
            phase, reason, detail, len(inflight),
        )
        _terminate(pool)
        pool = None
        lost = [s for s in shards if s.seq in inflight and not s.done]
        inflight.clear()
        for shard in lost:
            # A crash cannot be attributed to one shard, so every lost
            # shard is charged an attempt: the poison shard is in flight
            # at every breakage and exhausts its budget; innocents
            # complete long before theirs runs out.
            _retry_or_quarantine(
                shard, "timeout" if shard.seq in hung else reason, "pool respawned"
            )
        respawns += 1
        if respawns <= policy.max_pool_respawns:
            stats.respawns += 1
            _log.warning(
                "supervisor[%s]: respawning pool (%d/%d)",
                phase, respawns, policy.max_pool_respawns + 1,
            )
            _spawn_pool()
        elif not policy.quarantine:
            raise WorkerPoolError(
                f"worker pool for phase {phase!r} broke {respawns} time(s), "
                f"exceeding its respawn budget of {policy.max_pool_respawns}, "
                "and quarantine is disabled",
                stats.as_dict(),
            )
        else:
            _log.warning(
                "supervisor[%s]: respawn budget exhausted; running the remaining "
                "%d shard(s) serially in the parent", phase, len(pending),
            )

    try:
        _spawn_pool()
        while n_done < len(shards):
            if deadline is not None:
                deadline.check()
            now = time.monotonic()

            if pool is None and pending:
                # Respawn budget spent: the serial-requeue rung.  Shards run
                # with the same task functions in the parent, so the output
                # is untouched by where they execute.
                shard = pending.popleft()
                if not shard.done:
                    stats.serial_requeued += 1
                    _run_in_parent(shard, why="serial requeue, pool abandoned")
                continue

            if pool is not None:
                waiting: List[_Shard] = []
                while pending:
                    shard = pending.popleft()
                    if shard.done:
                        continue
                    if shard.eligible_at > now:
                        waiting.append(shard)
                        continue
                    _submit(shard)
                pending.extend(waiting)

            wake.wait(POLL_INTERVAL)
            wake.clear()

            while completions:
                seq, ok, value = completions.popleft()
                shard = shards[seq]
                inflight.pop(seq, None)
                if shard.done:
                    continue  # stale duplicate from a pool torn down mid-task
                if ok:
                    shard.done = True
                    n_done += 1
                    consume(value)
                    if memory is not None:
                        memory.check(phase)
                elif isinstance(value, (TimeoutExceeded, MemoryBudgetExceeded)):
                    raise value
                else:
                    _retry_or_quarantine(shard, "error", f"{type(value).__name__}: {value}")

            if pool is not None and inflight:
                now = time.monotonic()
                hung = [seq for seq, t0 in inflight.items() if now - t0 > timeout]
                if hung:
                    stats.timeouts += len(hung)
                    _break_pool(
                        "timeout",
                        f"{len(hung)} shard(s) exceeded the {timeout:g}s soft timeout",
                        hung=hung,
                    )
                    continue

            if pool is not None and inflight and _pool_damaged(pool, pool_pids):
                _break_pool("worker-death", "a pool process exited or was replaced")
    finally:
        _terminate(pool)


def _pool_damaged(pool, known_pids: frozenset) -> bool:
    """True when a pool process died (exit code) or was replaced (pid churn)."""
    try:
        procs = list(pool._pool)
        if any(p.exitcode is not None for p in procs):
            return True
        return frozenset(p.pid for p in procs) != known_pids
    except Exception:  # pragma: no cover - racing the pool's repair thread
        return True


def _terminate(pool) -> None:
    if pool is None:
        return
    try:
        pool.terminate()
        pool.join()
    except Exception:  # pragma: no cover - already-dead pool
        pass
