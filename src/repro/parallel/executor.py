"""Parent-process orchestration of the parallel grid pipeline.

The three data-parallel phases of the shared pipeline (core labeling,
core-cell graph connectivity, border assignment) fan out over a
``multiprocessing.Pool`` via chunked ``imap_unordered``:

* **cores / borders** — per-cell work with read-only inputs; shards of
  spatially contiguous cells are processed independently and the results
  (index/flag arrays, border dicts) merged by direct writes;
* **components** — candidate cell pairs are split into intra-shard lists
  (each evaluated under a worker-local union-find, i.e. a per-shard
  forest) and cross-shard *boundary* chunks; every task returns the pairs
  it actually united, and the parent stitches all of them into one global
  :class:`~repro.utils.unionfind.KeyedUnionFind` built over the core
  cells in the same insertion order the serial path uses — which makes
  the final component labels *identical*, not merely isomorphic.

Every phase falls back to the serial implementation when the resolved
worker count is 1, the input is below :attr:`ParallelConfig.min_points`,
or there are fewer cells than workers.  Workers poll the remaining time
budget and the memory limit cooperatively (see ``repro.parallel.worker``).

By default every fan-out runs under the fault-tolerant supervisor
(:mod:`repro.parallel.supervisor`): dead workers and hung shards are
detected, the pool is respawned, failed shards are retried with backoff
and ultimately quarantined to serial parent-side execution — while budget
errors raised *inside* workers still re-raise promptly.  Set
``ParallelConfig(supervise=False)`` for the bare ``imap_unordered``
fan-out, where the parent re-raises the first worker error and any
worker crash is fatal.
"""

from __future__ import annotations

import multiprocessing as mp
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple, Union

import numpy as np

from repro import config
from repro.core.border import assign_borders
from repro.core.cellgraph import (
    _labels_from_components,
    apply_preunion,
    approx_components,
    core_cells,
    exact_components,
)
from repro.core.labeling import label_cores
from repro.errors import ParameterError
from repro.grid.cells import Grid
from repro.parallel import worker
from repro.parallel.shard import assign_shards, chunked, shard_cells, split_pairs
from repro.parallel.supervisor import run_supervised
from repro.runtime import faultinject
from repro.runtime.deadline import Deadline
from repro.runtime.memory import MemoryBudget
from repro.utils.log import get_logger
from repro.utils.unionfind import KeyedUnionFind

_log = get_logger("parallel.executor")

#: Shards per worker for the per-cell phases: mild over-sharding lets
#: ``imap_unordered`` rebalance skewed cell occupancy across the pool.
OVERSHARD = 4


@dataclass(frozen=True)
class ParallelConfig:
    """How the grid pipeline distributes work over processes.

    Parameters
    ----------
    workers:
        Worker-process count.  ``1`` disables the pool entirely.
    min_points:
        Serial fallback threshold: inputs smaller than this never spawn a
        pool (startup + payload transfer dominate the work there).  The
        default follows ``REPRO_PARALLEL_MIN_POINTS`` (see
        :func:`repro.config.parallel_min_points`).
    chunk_pairs:
        Boundary-edge chunk size for the component phase.
    start_method:
        Explicit multiprocessing start method; ``None`` picks ``fork``
        where available (cheap, copy-on-write payloads) and the platform
        default elsewhere.
    supervise:
        Run phases through the fault-tolerant supervisor
        (:mod:`repro.parallel.supervisor`) — crash/hang detection, pool
        respawn, shard retry, quarantine.  ``False`` restores the bare
        ``imap_unordered`` fan-out, where any worker failure is fatal
        (kept for overhead comparison; see
        ``benchmarks/bench_runtime_overhead.py``).
    max_shard_retries:
        How many times a failed (or crash-lost) shard is resubmitted to
        the pool before quarantine.  Defaults to ``REPRO_MAX_SHARD_RETRIES``
        (see :func:`repro.config.max_shard_retries`).
    shard_timeout:
        Per-shard soft timeout in seconds; a shard in flight longer than
        this is declared hung, the pool is respawned, and the lost shards
        retried.  ``None`` (the ``REPRO_SHARD_TIMEOUT`` default) derives
        the threshold from the run's deadline, falling back to a generous
        built-in liveness bound.
    quarantine:
        Whether a shard that exhausts its retries (or outlives the pool's
        respawn budget) is re-executed serially in the parent.  With
        ``False`` the supervisor raises
        :class:`~repro.errors.WorkerPoolError` instead — which
        :func:`repro.runtime.run_resilient` treats as degradable.
    max_pool_respawns:
        How many times a broken pool (dead worker / hung shard) is
        rebuilt before the supervisor abandons it and serially requeues
        the remaining shards in the parent.
    """

    workers: int = 1
    min_points: int = field(default_factory=config.parallel_min_points)
    chunk_pairs: int = 256
    start_method: Optional[str] = None
    supervise: bool = True
    max_shard_retries: int = field(default_factory=config.max_shard_retries)
    shard_timeout: Optional[float] = field(default_factory=config.shard_timeout)
    quarantine: bool = True
    max_pool_respawns: int = 2

    def __post_init__(self) -> None:
        if int(self.workers) < 1:
            raise ParameterError(f"workers must be >= 1; got {self.workers}")
        if int(self.chunk_pairs) < 1:
            raise ParameterError(f"chunk_pairs must be >= 1; got {self.chunk_pairs}")
        if int(self.max_shard_retries) < 0:
            raise ParameterError(
                f"max_shard_retries must be >= 0; got {self.max_shard_retries}"
            )
        if self.shard_timeout is not None and not float(self.shard_timeout) > 0:
            raise ParameterError(
                f"shard_timeout must be positive (or None); got {self.shard_timeout}"
            )
        if int(self.max_pool_respawns) < 0:
            raise ParameterError(
                f"max_pool_respawns must be >= 0; got {self.max_pool_respawns}"
            )


WorkersLike = Union[None, int, ParallelConfig]


def as_parallel_config(workers: WorkersLike) -> Optional[ParallelConfig]:
    """Normalise the public ``workers`` argument.

    ``None`` consults :func:`repro.config.default_workers` (the
    ``REPRO_WORKERS`` environment default); an integer becomes a default
    :class:`ParallelConfig`; a ready-made config passes through.  ``None``
    is returned whenever the resolved worker count is 1, so callers can
    use ``cfg is None`` as "strictly serial".
    """
    if workers is None:
        workers = config.default_workers()
    if isinstance(workers, ParallelConfig):
        return None if workers.workers == 1 else workers
    count = int(workers)
    if count < 1:
        raise ParameterError(f"workers must be >= 1; got {workers}")
    return None if count == 1 else ParallelConfig(workers=count)


def effective_workers(
    cfg: Optional[ParallelConfig], n_points: int, n_cells: int
) -> int:
    """Resolved worker count for one phase (1 means run serial)."""
    if cfg is None:
        return 1
    if n_points < cfg.min_points:
        return 1
    return max(1, min(int(cfg.workers), n_cells))


def _base_payload(
    grid: Grid,
    phase: str,
    deadline: Optional[Deadline],
    memory: Optional[MemoryBudget],
) -> Dict[str, object]:
    time_remaining = None
    if deadline is not None and deadline.budget is not None:
        # Workers measure from their own start, so hand them what is left.
        time_remaining = max(deadline.remaining(), 1e-3)
    memory_limit_mb = None
    if memory is not None and memory.limit_bytes is not None:
        memory_limit_mb = memory.limit_bytes / 1e6
    return {
        "grid": grid,
        "phase": phase,
        "time_remaining": time_remaining,
        "memory_limit_mb": memory_limit_mb,
        # Snapshot of any active worker-fault injection (tests only; None
        # in production).  Shipped in the payload so the spec reaches
        # workers under both fork and spawn.
        "fault_spec": faultinject.worker_fault_spec(),
    }


def _fan_out(
    cfg: ParallelConfig,
    n_workers: int,
    payload: Dict[str, object],
    kind: str,
    items,
    consume,
    *,
    deadline: Optional[Deadline],
    memory: Optional[MemoryBudget],
) -> None:
    """Distribute one phase's tasks over the pool and merge the results.

    ``consume`` must be order-independent and idempotent (all four phase
    merges are: index writes, dict updates, union-find unions), which is
    what lets the supervisor keep completed work across pool respawns and
    tolerate a duplicate result from a torn-down pool.
    """
    phase = str(payload.get("phase", kind))
    if cfg.supervise:
        run_supervised(
            pool_factory=lambda: _pool(cfg, n_workers, payload),
            task=worker.supervised_task,
            kind=kind,
            phase=phase,
            items=items,
            consume=consume,
            cfg=cfg,
            deadline=deadline,
            memory=memory,
            local_runner=worker.make_local_runner(payload),
        )
        return
    # Unsupervised fan-out: the PR-2 fast path, kept for overhead
    # comparison.  Any worker failure here is fatal to the run.
    with _pool(cfg, n_workers, payload) as pool:
        for result in pool.imap_unordered(worker._TASKS[kind], items):
            consume(result)
            _check_guards(deadline, memory, phase)
        pool.close()
        pool.join()


def parallel_warm_neighbors(
    grid: Grid,
    cfg: Optional[ParallelConfig],
    *,
    deadline: Optional[Deadline] = None,
    memory: Optional[MemoryBudget] = None,
) -> None:
    """Build the grid's all-pairs adjacency map, sharded over the pool.

    On grids that use the all-pairs neighbour strategy this build is the
    dominant *serial* cost of a parallel run (every later phase only reads
    the finished map), so it gets its own fan-out: workers compute
    :meth:`~repro.grid.cells.Grid.adjacency_rows` for blocks of cells and
    the parent merges the rows and installs the map.  A no-op when the
    grid probes offsets instead, and serial below the fallback thresholds.

    Every later payload then carries the *warm* grid: under fork the
    workers of subsequent phases inherit the table copy-on-write; under
    spawn it rides along in the pickled payload — built once either way.
    """
    if not grid.needs_neighbor_warmup:
        return
    n_workers = effective_workers(cfg, len(grid.points), len(grid))
    if n_workers <= 1 or not grid.uses_allpairs_adjacency:
        grid.warm_neighbors()
        return
    _check_guards(deadline, memory, "grid")
    keys = list(grid.cells.keys())
    block = max(1, (len(keys) + n_workers * OVERSHARD - 1) // (n_workers * OVERSHARD))
    blocks = chunked(keys, block)
    payload = _base_payload(grid, "grid", deadline, memory)
    adjacency = {}
    _log.debug("adjacency warm-up: %d blocks over %d workers", len(blocks), n_workers)
    _fan_out(
        cfg, n_workers, payload, "adjacency", blocks,
        lambda rows: adjacency.update(rows),
        deadline=deadline, memory=memory,
    )
    grid.install_adjacency(adjacency)


def _pool(cfg: ParallelConfig, n_workers: int, payload: Dict[str, object]):
    method = cfg.start_method
    if method is None and "fork" in mp.get_all_start_methods():
        method = "fork"
    ctx = mp.get_context(method)
    return ctx.Pool(
        processes=n_workers, initializer=worker.init_worker, initargs=(payload,)
    )


def _check_guards(deadline: Optional[Deadline], memory: Optional[MemoryBudget], phase: str) -> None:
    if deadline is not None:
        deadline.check()
    if memory is not None:
        memory.check(phase)


def parallel_label_cores(
    grid: Grid,
    min_pts: int,
    cfg: Optional[ParallelConfig],
    *,
    deadline: Optional[Deadline] = None,
    memory: Optional[MemoryBudget] = None,
    known_core: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Phase-2 core determination, sharded over the pool (or serial).

    ``known_core`` is the monotone-sweep hint of
    :func:`repro.core.labeling.label_cores`: points already known core skip
    their counting pass.  It rides in the payload, so pooled shards profit
    exactly like the serial path.
    """
    n_workers = effective_workers(cfg, len(grid.points), len(grid))
    if n_workers <= 1:
        return label_cores(grid, min_pts, deadline=deadline, known_core=known_core)
    _check_guards(deadline, memory, "cores")
    parallel_warm_neighbors(grid, cfg, deadline=deadline, memory=memory)
    weights = {c: len(idx) for c, idx in grid.cells.items()}
    shards = shard_cells(grid.cells.keys(), n_workers * OVERSHARD, weights)
    payload = _base_payload(grid, "cores", deadline, memory)
    payload["min_pts"] = int(min_pts)
    if known_core is not None:
        payload["known_core"] = known_core
    core = np.zeros(len(grid.points), dtype=bool)
    _log.debug("cores phase: %d shards over %d workers", len(shards), n_workers)

    def merge_cores(result) -> None:
        idx, flags = result
        core[idx] = flags

    _fan_out(
        cfg, n_workers, payload, "cores", shards, merge_cores,
        deadline=deadline, memory=memory,
    )
    return core


def parallel_exact_components(
    grid: Grid,
    core_mask: np.ndarray,
    cfg: Optional[ParallelConfig],
    bcp_strategy: str = "auto",
    *,
    deadline: Optional[Deadline] = None,
    memory: Optional[MemoryBudget] = None,
    preunion=None,
) -> Tuple[np.ndarray, int]:
    """Phase-3 exact connectivity: per-shard forests + boundary stitching.

    ``preunion`` seeds known same-component cell pairs
    (:func:`repro.core.cellgraph.apply_preunion`) into both the parent's
    stitching forest and every worker's chunk-local forest, so seeded
    connectivity short-circuits BCP tests everywhere.
    """
    return _parallel_components(
        grid,
        core_mask,
        cfg,
        {"edge_rule": "exact", "bcp_strategy": bcp_strategy},
        deadline=deadline,
        memory=memory,
        preunion=preunion,
    )


def parallel_approx_components(
    grid: Grid,
    core_mask: np.ndarray,
    cfg: Optional[ParallelConfig],
    rho: float,
    exact_leaf_size: int | None = None,
    *,
    deadline: Optional[Deadline] = None,
    memory: Optional[MemoryBudget] = None,
    preunion=None,
    structures=None,
) -> Tuple[np.ndarray, int]:
    """Phase-3 rho-approximate connectivity over the pool (or serial).

    ``preunion`` seeds known same-component pairs; ``structures`` seeds the
    per-cell Lemma 5 structure map (cells already built are not rebuilt —
    on the pooled path the map ships in the payload, so workers inherit the
    warm structures instead of rebuilding them lazily).
    """
    return _parallel_components(
        grid,
        core_mask,
        cfg,
        {
            "edge_rule": "approx",
            "rho": float(rho),
            "exact_leaf_size": exact_leaf_size,
            "structures": structures,
        },
        deadline=deadline,
        memory=memory,
        preunion=preunion,
    )


def _parallel_components(
    grid: Grid,
    core_mask: np.ndarray,
    cfg: Optional[ParallelConfig],
    edge_payload: Dict[str, object],
    *,
    deadline: Optional[Deadline],
    memory: Optional[MemoryBudget],
    preunion=None,
) -> Tuple[np.ndarray, int]:
    cells = core_cells(grid, core_mask)
    n_workers = effective_workers(cfg, len(grid.points), len(cells))
    if n_workers <= 1:
        if edge_payload["edge_rule"] == "exact":
            return exact_components(
                grid,
                core_mask,
                edge_payload["bcp_strategy"],
                deadline=deadline,
                preunion=preunion,
            )
        return approx_components(
            grid,
            core_mask,
            edge_payload["rho"],
            edge_payload["exact_leaf_size"],
            deadline=deadline,
            preunion=preunion,
            structures=edge_payload.get("structures"),
        )
    _check_guards(deadline, memory, "components")
    parallel_warm_neighbors(grid, cfg, deadline=deadline, memory=memory)

    # Pairs already connected by the pre-union seed never need an edge
    # test anywhere — drop them before sharding so neither the payload nor
    # any worker carries them (see cellgraph.candidate_cell_pairs).
    keys, ii, jj = grid.neighbor_cell_pair_arrays(subset=cells.keys())
    if deadline is not None:
        deadline.tick()
    if preunion and len(ii):
        seed_forest = KeyedUnionFind(cells.keys())
        apply_preunion(seed_forest, preunion)
        seed_root = np.fromiter(
            (seed_forest.find(c) for c in keys), dtype=np.int64, count=len(keys)
        )
        keep = seed_root[ii] != seed_root[jj]
        ii, jj = ii[keep], jj[keep]
    pairs = [(keys[i], keys[j]) for i, j in zip(ii.tolist(), jj.tolist())]
    weights = {c: len(idx) for c, idx in cells.items()}
    shards = shard_cells(cells.keys(), n_workers, weights)
    owner = assign_shards(shards)
    intra, boundary = split_pairs(pairs, owner, len(shards))
    tasks = [block for block in intra if block]
    tasks.extend(chunked(boundary, cfg.chunk_pairs))
    _log.debug(
        "components phase: %d intra lists + %d boundary pairs in %d tasks "
        "over %d workers",
        sum(len(b) for b in intra),
        len(boundary),
        len(tasks),
        n_workers,
    )

    payload = _base_payload(grid, "components", deadline, memory)
    payload["core_mask"] = core_mask
    payload.update(edge_payload)
    if preunion:
        payload["preunion"] = list(preunion)

    # The stitching pass: one forest over *all* core cells, registered in
    # the same order the serial path uses, so component labels (assigned
    # by first appearance) come out identical.
    uf = KeyedUnionFind(cells.keys())
    apply_preunion(uf, preunion)

    def merge_edges(united) -> None:
        for c1, c2 in united:
            uf.union(c1, c2)

    if tasks:
        _fan_out(
            cfg, n_workers, payload, "edges", tasks, merge_edges,
            deadline=deadline, memory=memory,
        )
    return _labels_from_components(grid, cells, uf)


def parallel_assign_borders(
    grid: Grid,
    core_mask: np.ndarray,
    core_labels: np.ndarray,
    cfg: Optional[ParallelConfig],
    *,
    deadline: Optional[Deadline] = None,
    memory: Optional[MemoryBudget] = None,
) -> Dict[int, Tuple[int, ...]]:
    """Phase-4 border assignment, sharded over the pool (or serial)."""
    n_workers = effective_workers(cfg, len(grid.points), len(grid))
    if n_workers <= 1:
        return assign_borders(grid, core_mask, core_labels, deadline=deadline)
    _check_guards(deadline, memory, "borders")
    parallel_warm_neighbors(grid, cfg, deadline=deadline, memory=memory)
    weights = {c: len(idx) for c, idx in grid.cells.items()}
    shards = shard_cells(grid.cells.keys(), n_workers * OVERSHARD, weights)
    payload = _base_payload(grid, "borders", deadline, memory)
    payload["core_mask"] = core_mask
    payload["core_labels"] = core_labels
    out: Dict[int, Tuple[int, ...]] = {}
    _log.debug("borders phase: %d shards over %d workers", len(shards), n_workers)
    _fan_out(
        cfg, n_workers, payload, "borders", shards,
        lambda items: out.update(items),
        deadline=deadline, memory=memory,
    )
    return out
