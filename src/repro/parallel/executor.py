"""Parent-process orchestration of the parallel grid pipeline.

The three data-parallel phases of the shared pipeline (core labeling,
core-cell graph connectivity, border assignment) fan out over a
``multiprocessing.Pool`` via chunked ``imap_unordered``:

* **cores / borders** — per-cell work with read-only inputs; shards of
  spatially contiguous cells are processed independently and the results
  (index/flag arrays, border dicts) merged by direct writes;
* **components** — candidate cell pairs are split into intra-shard lists
  (each evaluated under a worker-local union-find, i.e. a per-shard
  forest) and cross-shard *boundary* chunks; every task returns the pairs
  it actually united, and the parent stitches all of them into one global
  :class:`~repro.utils.unionfind.DenseUnionFind` over dense cell ids in
  the same insertion order the serial path uses — which makes
  the final component labels *identical*, not merely isomorphic.  Inside
  each chunk the workers run the same staged edge kernel
  (:mod:`repro.core.edgekernel`) the serial builders use.

Every phase falls back to the serial implementation when the resolved
worker count is 1, the input is below :attr:`ParallelConfig.min_points`,
or there are fewer cells than workers.  Workers poll the remaining time
budget and the memory limit cooperatively (see ``repro.parallel.worker``).

By default every fan-out runs under the fault-tolerant supervisor
(:mod:`repro.parallel.supervisor`): dead workers and hung shards are
detected, the pool is respawned, failed shards are retried with backoff
and ultimately quarantined to serial parent-side execution — while budget
errors raised *inside* workers still re-raise promptly.  Set
``ParallelConfig(supervise=False)`` for the bare ``imap_unordered``
fan-out, where the parent re-raises the first worker error and any
worker crash is fatal.

**Transport.** With ``ParallelConfig(shm=True)`` (or ``"auto"``, or
``REPRO_SHM``) the phases switch to the zero-copy shared-memory transport
of :mod:`repro.parallel.shm`: the grid's SoA state is published once into
named segments, task items shrink to ``(start, stop)`` ranges over the
shard layout, and workers write results into preallocated shared output
slabs instead of pickling them back.  Slab writes are position-stable and
idempotent, so every rung of the supervisor's recovery ladder (retry,
respawn, quarantine, serial requeue) works unchanged — a retried shard
simply rewrites the same slots.  The parent owns every segment and
unlinks it in ``finally`` blocks (plus an atexit net), so no error path
can leak ``/dev/shm`` entries.  ``ParallelConfig(backend="thread")``
instead runs the task functions on an in-process thread pool — shared
memory by construction (the ``shm`` flag is moot there), profitable when
the GIL-releasing numpy kernels dominate.
"""

from __future__ import annotations

import multiprocessing as mp
import pickle
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro import config
from repro.core.border import assign_borders
from repro.core.cellgraph import (
    approx_components,
    core_cells,
    exact_components,
    labels_from_dense,
)
from repro.core.edgekernel import apply_preunion_dense
from repro.core.labeling import label_cores
from repro.errors import MemoryBudgetExceeded, ParameterError, WorkerPoolError
from repro.grid.cells import Grid
from repro.parallel import shm as shm_transport
from repro.parallel import worker
from repro.parallel.shard import assign_shards, chunked, shard_cells, split_pairs
from repro.parallel.supervisor import run_supervised
from repro.runtime import faultinject
from repro.runtime.deadline import Deadline
from repro.runtime.memory import MemoryBudget
from repro.utils.log import get_logger
from repro.utils.unionfind import DenseUnionFind

_log = get_logger("parallel.executor")

#: Shards per worker for the per-cell phases: mild over-sharding lets
#: ``imap_unordered`` rebalance skewed cell occupancy across the pool.
OVERSHARD = 4


@dataclass(frozen=True)
class ParallelConfig:
    """How the grid pipeline distributes work over processes.

    Parameters
    ----------
    workers:
        Worker-process count.  ``1`` disables the pool entirely.
    min_points:
        Serial fallback threshold: inputs smaller than this never spawn a
        pool (startup + payload transfer dominate the work there).  The
        default follows ``REPRO_PARALLEL_MIN_POINTS`` (see
        :func:`repro.config.parallel_min_points`).
    chunk_pairs:
        Boundary-edge chunk size for the component phase.
    start_method:
        Explicit multiprocessing start method; ``None`` picks ``fork``
        where available (cheap, copy-on-write payloads) and the platform
        default elsewhere.
    supervise:
        Run phases through the fault-tolerant supervisor
        (:mod:`repro.parallel.supervisor`) — crash/hang detection, pool
        respawn, shard retry, quarantine.  ``False`` restores the bare
        ``imap_unordered`` fan-out, where any worker failure is fatal
        (kept for overhead comparison; see
        ``benchmarks/bench_runtime_overhead.py``).
    max_shard_retries:
        How many times a failed (or crash-lost) shard is resubmitted to
        the pool before quarantine.  Defaults to ``REPRO_MAX_SHARD_RETRIES``
        (see :func:`repro.config.max_shard_retries`).
    shard_timeout:
        Per-shard soft timeout in seconds; a shard in flight longer than
        this is declared hung, the pool is respawned, and the lost shards
        retried.  ``None`` (the ``REPRO_SHARD_TIMEOUT`` default) derives
        the threshold from the run's deadline, falling back to a generous
        built-in liveness bound.
    quarantine:
        Whether a shard that exhausts its retries (or outlives the pool's
        respawn budget) is re-executed serially in the parent.  With
        ``False`` the supervisor raises
        :class:`~repro.errors.WorkerPoolError` instead — which
        :func:`repro.runtime.run_resilient` treats as degradable.
    max_pool_respawns:
        How many times a broken pool (dead worker / hung shard) is
        rebuilt before the supervisor abandons it and serially requeues
        the remaining shards in the parent.
    shm:
        Transport selector: ``False`` (default, honours ``REPRO_SHM``)
        pickles payloads and results; ``True`` publishes the grid and the
        result slabs into ``multiprocessing.shared_memory`` segments (see
        :mod:`repro.parallel.shm`) and fails the run with
        :class:`~repro.errors.WorkerPoolError` if publication is
        impossible; ``"auto"`` tries shared memory and falls back to
        pickling.  String forms (``"on"``/``"off"``/``"auto"``) are
        accepted for CLI/env symmetry.  Ignored by the thread backend,
        which shares memory by construction.
    backend:
        ``"process"`` (default, honours ``REPRO_BACKEND``) fans out over a
        multiprocessing pool; ``"thread"`` over an in-process thread pool.
        Threads cannot crash and share the address space, so the
        supervisor's crash/respawn machinery does not apply — thread
        fan-outs run unsupervised (budget errors still propagate).
    """

    workers: int = 1
    min_points: int = field(default_factory=config.parallel_min_points)
    chunk_pairs: int = 256
    start_method: Optional[str] = None
    supervise: bool = True
    max_shard_retries: int = field(default_factory=config.max_shard_retries)
    shard_timeout: Optional[float] = field(default_factory=config.shard_timeout)
    quarantine: bool = True
    max_pool_respawns: int = 2
    shm: object = field(default_factory=config.default_shm)
    backend: str = field(default_factory=config.default_backend)

    def __post_init__(self) -> None:
        object.__setattr__(self, "shm", _normalize_shm(self.shm))
        backend = str(self.backend).strip().lower()
        if backend not in ("process", "thread"):
            raise ParameterError(
                f"backend must be 'process' or 'thread'; got {self.backend!r}"
            )
        object.__setattr__(self, "backend", backend)
        if int(self.workers) < 1:
            raise ParameterError(f"workers must be >= 1; got {self.workers}")
        if int(self.chunk_pairs) < 1:
            raise ParameterError(f"chunk_pairs must be >= 1; got {self.chunk_pairs}")
        if int(self.max_shard_retries) < 0:
            raise ParameterError(
                f"max_shard_retries must be >= 0; got {self.max_shard_retries}"
            )
        if self.shard_timeout is not None and not float(self.shard_timeout) > 0:
            raise ParameterError(
                f"shard_timeout must be positive (or None); got {self.shard_timeout}"
            )
        if int(self.max_pool_respawns) < 0:
            raise ParameterError(
                f"max_pool_respawns must be >= 0; got {self.max_pool_respawns}"
            )


def _normalize_shm(value: object) -> object:
    """Canonicalise the ``shm`` knob to ``True`` / ``False`` / ``"auto"``."""
    if value is True or value is False:
        return value
    if value is None:
        return False
    text = str(value).strip().lower()
    if text in ("on", "true", "1", "yes"):
        return True
    if text in ("off", "false", "0", "no"):
        return False
    if text == "auto":
        return "auto"
    raise ParameterError(f"shm must be True/False/'auto'; got {value!r}")


WorkersLike = Union[None, int, ParallelConfig]


def with_transport(
    cfg: Optional[ParallelConfig],
    *,
    shm: object = None,
    backend: Optional[str] = None,
) -> Optional[ParallelConfig]:
    """Apply per-call transport overrides to a resolved config.

    The public entry points take ``shm=`` / a backend via the config; this
    folds an explicit override into the config produced by
    :func:`as_parallel_config` (a no-op on ``None`` — serial runs have no
    transport to configure, and an explicit ``shm=True`` with one worker
    is simply moot, matching how ``workers=1`` already ignores the rest of
    the config).
    """
    if cfg is None:
        return None
    updates: Dict[str, object] = {}
    if shm is not None:
        updates["shm"] = shm
    if backend is not None:
        updates["backend"] = backend
    return replace(cfg, **updates) if updates else cfg


def as_parallel_config(workers: WorkersLike) -> Optional[ParallelConfig]:
    """Normalise the public ``workers`` argument.

    ``None`` consults :func:`repro.config.default_workers` (the
    ``REPRO_WORKERS`` environment default); an integer becomes a default
    :class:`ParallelConfig`; a ready-made config passes through.  ``None``
    is returned whenever the resolved worker count is 1, so callers can
    use ``cfg is None`` as "strictly serial".
    """
    if workers is None:
        workers = config.default_workers()
    if isinstance(workers, ParallelConfig):
        return None if workers.workers == 1 else workers
    count = int(workers)
    if count < 1:
        raise ParameterError(f"workers must be >= 1; got {workers}")
    return None if count == 1 else ParallelConfig(workers=count)


def effective_workers(
    cfg: Optional[ParallelConfig], n_points: int, n_cells: int
) -> int:
    """Resolved worker count for one phase (1 means run serial)."""
    if cfg is None:
        return 1
    if n_points < cfg.min_points:
        return 1
    return max(1, min(int(cfg.workers), n_cells))


def _base_payload(
    grid: Grid,
    phase: str,
    deadline: Optional[Deadline],
    memory: Optional[MemoryBudget],
) -> Dict[str, object]:
    time_remaining = None
    if deadline is not None and deadline.budget is not None:
        # Workers measure from their own start, so hand them what is left.
        time_remaining = max(deadline.remaining(), 1e-3)
    memory_limit_mb = None
    if memory is not None and memory.limit_bytes is not None:
        memory_limit_mb = memory.limit_bytes / 1e6
    return {
        "grid": grid,
        "phase": phase,
        "time_remaining": time_remaining,
        "memory_limit_mb": memory_limit_mb,
        # Snapshot of any active worker-fault injection (tests only; None
        # in production).  Shipped in the payload so the spec reaches
        # workers under both fork and spawn.
        "fault_spec": faultinject.worker_fault_spec(),
    }


# ------------------------------------------------------------ copy ledger

#: Active copy-bytes ledger (None outside :func:`track_copy_bytes`).  The
#: pools run under ``fork``, so the initializer payload is inherited, not
#: pickled — what actually crosses the process boundary per run are the
#: task items going out and the results coming back, and that is what the
#: ledger measures (via ``pickle.dumps``, the same encoder the pool uses).
_COPY_LEDGER: Optional[Dict[str, int]] = None


@contextmanager
def track_copy_bytes():
    """Measure pickled transport bytes for every fan-out in the block.

    Yields a dict updated in place: ``task_bytes`` / ``result_bytes`` /
    ``tasks``.  The scaling bench uses it to demonstrate the shm
    transport's ~zero steady-state copy traffic; not thread-safe (one
    measurement at a time, which is what a bench does).
    """
    global _COPY_LEDGER
    ledger = {"task_bytes": 0, "result_bytes": 0, "tasks": 0}
    prev = _COPY_LEDGER
    _COPY_LEDGER = ledger
    try:
        yield ledger
    finally:
        _COPY_LEDGER = prev


def _count_copies(items, consume):
    """Wrap one fan-out's items/consume with ledger accounting."""
    ledger = _COPY_LEDGER
    if ledger is None:
        return items, consume
    items = list(items)
    ledger["tasks"] += len(items)
    ledger["task_bytes"] += sum(
        len(pickle.dumps(item, protocol=pickle.HIGHEST_PROTOCOL)) for item in items
    )

    def counting_consume(result):
        ledger["result_bytes"] += len(
            pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
        )
        consume(result)

    return items, counting_consume


# -------------------------------------------------------------- shm phases


#: Columns of the border-assignment output slab: border points touching
#: more than this many clusters (possible but vanishingly rare — it needs
#: >4 distinct clusters inside one point's eps-ball) overflow to a tiny
#: pickled result instead (see ``worker.borders_task``).
BORDER_SLAB_WIDTH = 4


class _ShmSession:
    """One phase's shared-memory wiring: the grid publication + an IO block.

    The IO block packs the phase's read-only inputs (fields prefixed
    ``in_``) and its preallocated output slabs (``out_``) into one
    segment.  The session owns only the IO block — the grid publication is
    cached on the grid and outlives the phase (unlinked by the pipeline /
    structure cache / atexit, whoever owns the grid).
    """

    def __init__(self, grid_block: shm_transport.SharedBlock,
                 io_block: shm_transport.SharedBlock) -> None:
        self.grid_block = grid_block
        self.io_block = io_block

    @property
    def shared_nbytes(self) -> int:
        return self.grid_block.nbytes + self.io_block.nbytes

    def out(self, name: str) -> np.ndarray:
        """A private copy of an output slab (safe to use after close)."""
        return np.array(self.io_block.arrays["out_" + name])

    def install(self, payload: Dict[str, object]) -> None:
        """Swap the pickled grid out of ``payload`` for segment headers."""
        payload.pop("grid", None)
        payload["grid_header"] = self.grid_block.header
        payload["shm_io"] = self.io_block.header
        payload["shm_shared_bytes"] = self.shared_nbytes

    def close(self) -> None:
        self.io_block.close()


def _open_shm_session(
    cfg: Optional[ParallelConfig],
    grid: Grid,
    phase: str,
    memory: Optional[MemoryBudget],
    inputs: Dict[str, np.ndarray],
    outputs: Dict[str, np.ndarray],
) -> Optional[_ShmSession]:
    """Publish the grid + the phase IO block, honouring the ``shm`` knob.

    Returns ``None`` for the pickled transport (knob off, thread backend,
    or ``"auto"`` hitting an infrastructure failure).  ``shm=True`` turns
    infrastructure failures into :class:`~repro.errors.WorkerPoolError`
    (degradable by ``run_resilient``); a memory-budget verdict always
    propagates as itself — refusing publication over budget is the budget
    working, not the transport failing.
    """
    if cfg is None or not cfg.shm or cfg.backend == "thread":
        return None
    fields = {"in_" + name: arr for name, arr in inputs.items()}
    fields.update({"out_" + name: arr for name, arr in outputs.items()})
    try:
        grid_block = shm_transport.publish_grid(grid, memory=memory)
        io_block = shm_transport.SharedBlock.create(
            fields, meta={"phase": phase}, memory=memory, phase=f"shm-{phase}"
        )
    except MemoryBudgetExceeded:
        raise
    except Exception as exc:
        if cfg.shm == "auto":
            _log.warning(
                "shared-memory transport unavailable for phase %r (%s: %s); "
                "falling back to pickled transport",
                phase, type(exc).__name__, exc,
            )
            return None
        raise WorkerPoolError(
            f"shared-memory publication failed for phase {phase!r}: "
            f"{type(exc).__name__}: {exc}"
        ) from exc
    return _ShmSession(grid_block, io_block)


def _shard_ranges(shards: List[list]) -> List[Tuple[str, int, int]]:
    """Range-marker items for contiguous shards of the grid's cell order.

    ``shard_cells`` cuts the *sorted* cell list, and ``_group_by_rows``
    inserts cells in exactly that order — so every shard is a contiguous
    run of ``grid.cells.keys()`` and ships as ``(start, stop)`` instead of
    a pickled key list.  Workers resolve the range against their attached
    grid (``worker._resolve_item``).
    """
    out: List[Tuple[str, int, int]] = []
    start = 0
    for shard in shards:
        stop = start + len(shard)
        out.append((worker.SHM_RANGE, start, stop))
        start = stop
    return out


def _fan_out(
    cfg: ParallelConfig,
    n_workers: int,
    payload: Dict[str, object],
    kind: str,
    items,
    consume,
    *,
    deadline: Optional[Deadline],
    memory: Optional[MemoryBudget],
) -> None:
    """Distribute one phase's tasks over the pool and merge the results.

    ``consume`` must be order-independent and idempotent (all four phase
    merges are: index writes, dict updates, union-find unions, and in shm
    mode position-stable slab writes), which is what lets the supervisor
    keep completed work across pool respawns and tolerate a duplicate
    result from a torn-down pool.
    """
    phase = str(payload.get("phase", kind))
    if cfg.backend == "thread":
        _fan_out_threads(cfg, n_workers, payload, kind, items, consume,
                         deadline=deadline, memory=memory)
        return
    items, consume = _count_copies(items, consume)
    if cfg.supervise:
        run_supervised(
            pool_factory=lambda: _pool(cfg, n_workers, payload),
            task=worker.supervised_task,
            kind=kind,
            phase=phase,
            items=items,
            consume=consume,
            cfg=cfg,
            deadline=deadline,
            memory=memory,
            local_runner=worker.make_local_runner(payload),
        )
        return
    # Unsupervised fan-out: the PR-2 fast path, kept for overhead
    # comparison.  Any worker failure here is fatal to the run.
    with _pool(cfg, n_workers, payload) as pool:
        for result in pool.imap_unordered(worker._TASKS[kind], items):
            consume(result)
            _check_guards(deadline, memory, phase)
        pool.close()
        pool.join()


def _fan_out_threads(
    cfg: ParallelConfig,
    n_workers: int,
    payload: Dict[str, object],
    kind: str,
    items,
    consume,
    *,
    deadline: Optional[Deadline],
    memory: Optional[MemoryBudget],
) -> None:
    """Thread-pool fan-out: zero-copy by construction, nothing pickled.

    Threads share the parent's address space, so the payload is adopted
    directly (``in_worker=False`` — injected *process* faults like
    ``os._exit`` must not fire inside the parent) and the supervisor's
    crash/respawn ladder does not apply: a thread cannot die of SIGKILL,
    and an exception propagates like any serial error.  Budget guards are
    polled between completions exactly as on the process path.
    """
    from multiprocessing.pool import ThreadPool

    ctx = worker.build_context(payload, in_worker=False)
    prev = worker._CTX
    worker._CTX = ctx
    try:
        with ThreadPool(processes=n_workers) as pool:
            for result in pool.imap_unordered(worker._TASKS[kind], items):
                consume(result)
                _check_guards(deadline, memory, str(payload.get("phase", kind)))
            pool.close()
            pool.join()
    finally:
        worker._CTX = prev


def parallel_warm_neighbors(
    grid: Grid,
    cfg: Optional[ParallelConfig],
    *,
    deadline: Optional[Deadline] = None,
    memory: Optional[MemoryBudget] = None,
) -> None:
    """Build the grid's all-pairs adjacency map, sharded over the pool.

    On grids that use the all-pairs neighbour strategy this build is the
    dominant *serial* cost of a parallel run (every later phase only reads
    the finished map), so it gets its own fan-out: workers compute
    :meth:`~repro.grid.cells.Grid.adjacency_rows` for blocks of cells and
    the parent merges the rows and installs the map.  A no-op when the
    grid probes offsets instead, and serial below the fallback thresholds.

    Every later payload then carries the *warm* grid: under fork the
    workers of subsequent phases inherit the table copy-on-write; under
    spawn it rides along in the pickled payload — built once either way.
    """
    if not grid.needs_neighbor_warmup:
        return
    n_workers = effective_workers(cfg, len(grid.points), len(grid))
    if n_workers <= 1 or not grid.uses_allpairs_adjacency:
        grid.warm_neighbors()
        return
    _check_guards(deadline, memory, "grid")
    keys = list(grid.cells.keys())
    block = max(1, (len(keys) + n_workers * OVERSHARD - 1) // (n_workers * OVERSHARD))
    blocks = chunked(keys, block)
    payload = _base_payload(grid, "grid", deadline, memory)
    adjacency = {}
    _log.debug("adjacency warm-up: %d blocks over %d workers", len(blocks), n_workers)
    _fan_out(
        cfg, n_workers, payload, "adjacency", blocks,
        lambda rows: adjacency.update(rows),
        deadline=deadline, memory=memory,
    )
    grid.install_adjacency(adjacency)


def _pool(cfg: ParallelConfig, n_workers: int, payload: Dict[str, object]):
    method = cfg.start_method
    if method is None and "fork" in mp.get_all_start_methods():
        method = "fork"
    ctx = mp.get_context(method)
    return ctx.Pool(
        processes=n_workers, initializer=worker.init_worker, initargs=(payload,)
    )


def _check_guards(deadline: Optional[Deadline], memory: Optional[MemoryBudget], phase: str) -> None:
    if deadline is not None:
        deadline.check()
    if memory is not None:
        memory.check(phase)


def parallel_label_cores(
    grid: Grid,
    min_pts: int,
    cfg: Optional[ParallelConfig],
    *,
    deadline: Optional[Deadline] = None,
    memory: Optional[MemoryBudget] = None,
    known_core: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Phase-2 core determination, sharded over the pool (or serial).

    ``known_core`` is the monotone-sweep hint of
    :func:`repro.core.labeling.label_cores`: points already known core skip
    their counting pass.  It rides in the payload, so pooled shards profit
    exactly like the serial path.
    """
    n_workers = effective_workers(cfg, len(grid.points), len(grid))
    if n_workers <= 1:
        return label_cores(grid, min_pts, deadline=deadline, known_core=known_core)
    _check_guards(deadline, memory, "cores")
    parallel_warm_neighbors(grid, cfg, deadline=deadline, memory=memory)
    weights = {c: len(idx) for c, idx in grid.cells.items()}
    shards = shard_cells(grid.cells.keys(), n_workers * OVERSHARD, weights)
    payload = _base_payload(grid, "cores", deadline, memory)
    payload["min_pts"] = int(min_pts)
    n = len(grid.points)
    inputs: Dict[str, np.ndarray] = {}
    if known_core is not None:
        inputs["known_core"] = np.asarray(known_core, dtype=bool)
    session = _open_shm_session(
        cfg, grid, "cores", memory, inputs, {"core": np.zeros(n, dtype=bool)}
    )
    if session is None:
        if known_core is not None:
            payload["known_core"] = known_core
        items = shards
    else:
        session.install(payload)
        items = _shard_ranges(shards)
    core = np.zeros(n, dtype=bool)
    _log.debug("cores phase: %d shards over %d workers (shm=%s)",
               len(shards), n_workers, session is not None)

    def merge_cores(result) -> None:
        if session is not None:
            return  # flags landed in the shared slab; the ack is just a count
        idx, flags = result
        core[idx] = flags

    try:
        _fan_out(
            cfg, n_workers, payload, "cores", items, merge_cores,
            deadline=deadline, memory=memory,
        )
        if session is not None:
            core = session.out("core")
    finally:
        if session is not None:
            session.close()
    return core


def parallel_exact_components(
    grid: Grid,
    core_mask: np.ndarray,
    cfg: Optional[ParallelConfig],
    bcp_strategy: str = "auto",
    *,
    deadline: Optional[Deadline] = None,
    memory: Optional[MemoryBudget] = None,
    preunion=None,
    structures=None,
) -> Tuple[np.ndarray, int]:
    """Phase-3 exact connectivity: per-shard forests + boundary stitching.

    ``preunion`` seeds known same-component cell pairs
    (:func:`repro.core.cellgraph.apply_preunion`) into both the parent's
    stitching forest and every worker's chunk-local forest, so seeded
    connectivity short-circuits BCP tests everywhere.  ``structures``
    seeds the per-cell search-structure cache of
    :func:`repro.core.cellgraph.exact_edge_predicate` (kd-trees / Voronoi
    diagrams) — the engine's warm-cache seam, mirroring the Lemma 5
    ``structures`` of :func:`parallel_approx_components`.
    """
    return _parallel_components(
        grid,
        core_mask,
        cfg,
        {
            "edge_rule": "exact",
            "bcp_strategy": bcp_strategy,
            "structures": structures,
        },
        deadline=deadline,
        memory=memory,
        preunion=preunion,
    )


def parallel_approx_components(
    grid: Grid,
    core_mask: np.ndarray,
    cfg: Optional[ParallelConfig],
    rho: float,
    exact_leaf_size: int | None = None,
    *,
    deadline: Optional[Deadline] = None,
    memory: Optional[MemoryBudget] = None,
    preunion=None,
    structures=None,
) -> Tuple[np.ndarray, int]:
    """Phase-3 rho-approximate connectivity over the pool (or serial).

    ``preunion`` seeds known same-component pairs; ``structures`` seeds the
    per-cell Lemma 5 structure map (cells already built are not rebuilt —
    on the pooled path the map ships in the payload, so workers inherit the
    warm structures instead of rebuilding them lazily).
    """
    return _parallel_components(
        grid,
        core_mask,
        cfg,
        {
            "edge_rule": "approx",
            "rho": float(rho),
            "exact_leaf_size": exact_leaf_size,
            "structures": structures,
        },
        deadline=deadline,
        memory=memory,
        preunion=preunion,
    )


def _parallel_components(
    grid: Grid,
    core_mask: np.ndarray,
    cfg: Optional[ParallelConfig],
    edge_payload: Dict[str, object],
    *,
    deadline: Optional[Deadline],
    memory: Optional[MemoryBudget],
    preunion=None,
) -> Tuple[np.ndarray, int]:
    cells = core_cells(grid, core_mask)
    n_workers = effective_workers(cfg, len(grid.points), len(cells))
    if n_workers <= 1:
        if edge_payload["edge_rule"] == "exact":
            return exact_components(
                grid,
                core_mask,
                edge_payload["bcp_strategy"],
                deadline=deadline,
                preunion=preunion,
                structures=edge_payload.get("structures"),
            )
        return approx_components(
            grid,
            core_mask,
            edge_payload["rho"],
            edge_payload["exact_leaf_size"],
            deadline=deadline,
            preunion=preunion,
            structures=edge_payload.get("structures"),
        )
    _check_guards(deadline, memory, "components")
    parallel_warm_neighbors(grid, cfg, deadline=deadline, memory=memory)

    # The whole phase runs on dense cell ids (positions in the core-cell
    # insertion order) — the same ids the staged kernel uses inside the
    # workers' chunks.
    index = {c: t for t, c in enumerate(cells)}

    # Pairs already connected by the pre-union seed never need an edge
    # test anywhere — drop them before sharding so neither the payload nor
    # any worker carries them (see cellgraph.candidate_cell_pairs).
    keys, ii, jj = grid.neighbor_cell_pair_arrays(subset=cells.keys())
    if deadline is not None:
        deadline.tick()
    key_id = np.fromiter((index[c] for c in keys), dtype=np.int64, count=len(keys))
    if preunion and len(ii):
        seed_forest = DenseUnionFind(len(index))
        apply_preunion_dense(seed_forest, index, preunion)
        seed_root = seed_forest.roots()[key_id]
        keep = seed_root[ii] != seed_root[jj]
        ii, jj = ii[keep], jj[keep]
    weights = {c: len(idx) for c, idx in cells.items()}
    shards = shard_cells(cells.keys(), n_workers, weights)
    owner = assign_shards(shards)

    payload = _base_payload(grid, "components", deadline, memory)
    payload.update(edge_payload)
    if preunion:
        payload["preunion"] = list(preunion)

    # The stitching pass: one forest over *all* core cells, in the same
    # insertion order the serial path uses, so component labels (assigned
    # by first appearance in id order) come out identical.
    uf = DenseUnionFind(len(index))
    apply_preunion_dense(uf, index, preunion)

    session = None
    if cfg.shm and cfg.backend == "process":
        # Task-ordered index form of the split_pairs layout: per-shard
        # intra blocks first, then boundary chunks, each a contiguous
        # range of the reordered (pair_i, pair_j) arrays — the same pairs
        # in the same orientation and emission order as the pickled path.
        owner_of = np.fromiter(
            (owner[c] for c in keys), dtype=np.int64, count=len(keys)
        )
        si, sj = owner_of[ii], owner_of[jj]
        parts: List[np.ndarray] = []
        ranges: List[Tuple[int, int]] = []
        pos = 0
        for s in range(len(shards)):
            sel = np.nonzero((si == s) & (sj == s))[0]
            if len(sel):
                parts.append(sel)
                ranges.append((pos, pos + len(sel)))
                pos += len(sel)
        boundary_sel = np.nonzero(si != sj)[0]
        for start in range(0, len(boundary_sel), int(cfg.chunk_pairs)):
            chunk = boundary_sel[start:start + int(cfg.chunk_pairs)]
            parts.append(chunk)
            ranges.append((pos, pos + len(chunk)))
            pos += len(chunk)
        order = (
            np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
        )
        n_pairs = len(order)
        session = _open_shm_session(
            cfg, grid, "components", memory,
            {
                "core_mask": np.asarray(core_mask, dtype=bool),
                "pair_i": ii[order],
                "pair_j": jj[order],
            },
            {
                "edge_i": np.full(n_pairs, -1, dtype=np.int64),
                "edge_j": np.full(n_pairs, -1, dtype=np.int64),
            },
        )

    if session is not None:
        session.install(payload)
        tasks: List[object] = [
            (worker.SHM_RANGE, start, stop) for start, stop in ranges
        ]
        _log.debug(
            "components phase: %d pairs in %d shm tasks over %d workers",
            n_pairs, len(tasks), n_workers,
        )
        consume = lambda acked: None  # noqa: E731 - unions land in the slab
    else:
        payload["core_mask"] = core_mask
        pairs = [(keys[i], keys[j]) for i, j in zip(ii.tolist(), jj.tolist())]
        intra, boundary = split_pairs(pairs, owner, len(shards))
        tasks = [block for block in intra if block]
        tasks.extend(chunked(boundary, cfg.chunk_pairs))
        _log.debug(
            "components phase: %d intra lists + %d boundary pairs in %d tasks "
            "over %d workers",
            sum(len(b) for b in intra),
            len(boundary),
            len(tasks),
            n_workers,
        )

        def consume(united) -> None:
            for c1, c2 in united:
                uf.union(index[c1], index[c2])

    try:
        if tasks:
            _fan_out(
                cfg, n_workers, payload, "edges", tasks, consume,
                deadline=deadline, memory=memory,
            )
        if session is not None:
            edge_i = session.out("edge_i")
            edge_j = session.out("edge_j")
            hit = np.nonzero(edge_i >= 0)[0]
            for a, b in zip(
                key_id[edge_i[hit]].tolist(), key_id[edge_j[hit]].tolist()
            ):
                uf.union(a, b)
    finally:
        if session is not None:
            session.close()
    return labels_from_dense(grid, cells, uf)


def parallel_assign_borders(
    grid: Grid,
    core_mask: np.ndarray,
    core_labels: np.ndarray,
    cfg: Optional[ParallelConfig],
    *,
    deadline: Optional[Deadline] = None,
    memory: Optional[MemoryBudget] = None,
) -> Dict[int, Tuple[int, ...]]:
    """Phase-4 border assignment, sharded over the pool (or serial)."""
    n_workers = effective_workers(cfg, len(grid.points), len(grid))
    if n_workers <= 1:
        return assign_borders(grid, core_mask, core_labels, deadline=deadline)
    _check_guards(deadline, memory, "borders")
    parallel_warm_neighbors(grid, cfg, deadline=deadline, memory=memory)
    weights = {c: len(idx) for c, idx in grid.cells.items()}
    shards = shard_cells(grid.cells.keys(), n_workers * OVERSHARD, weights)
    payload = _base_payload(grid, "borders", deadline, memory)
    n = len(grid.points)
    session = _open_shm_session(
        cfg, grid, "borders", memory,
        {
            "core_mask": np.asarray(core_mask, dtype=bool),
            "core_labels": np.asarray(core_labels, dtype=np.int64),
        },
        {
            "border_count": np.zeros(n, dtype=np.int64),
            "border_labels": np.zeros((n, BORDER_SLAB_WIDTH), dtype=np.int64),
        },
    )
    if session is None:
        payload["core_mask"] = core_mask
        payload["core_labels"] = core_labels
        items = shards
    else:
        session.install(payload)
        items = _shard_ranges(shards)
    out: Dict[int, Tuple[int, ...]] = {}
    _log.debug("borders phase: %d shards over %d workers (shm=%s)",
               len(shards), n_workers, session is not None)
    try:
        # In shm mode each result is only the rare slab-overflow remainder
        # (a border point touching > BORDER_SLAB_WIDTH clusters); the dict
        # update handles both modes.
        _fan_out(
            cfg, n_workers, payload, "borders", items,
            lambda result: out.update(result),
            deadline=deadline, memory=memory,
        )
        if session is not None:
            counts = session.out("border_count")
            labels = session.out("border_labels")
            for point in np.nonzero(counts > 0)[0].tolist():
                out[point] = tuple(labels[point, : counts[point]].tolist())
    finally:
        if session is not None:
            session.close()
    return out
