"""Worker-process side of the parallel grid pipeline.

Each pool worker is initialised once per phase with a *payload* dict
carrying the parent's :class:`~repro.grid.cells.Grid` itself — under the
preferred ``fork`` start method the object (including its lazily built,
expensive neighbour-adjacency table, which the parent warms first) is
inherited copy-on-write for free; under ``spawn`` it is pickled once per
worker.  The payload also carries the *remaining* time
budget and the memory limit, from which the worker builds its own
cooperative :class:`~repro.runtime.Deadline` and
:class:`~repro.runtime.MemoryBudget` — budgets are polled inside workers
exactly as they are in the serial hot loops, and a worker that trips one
re-raises the library's own error across the pool boundary (the errors
are pickle-safe; see ``repro.errors``).

Task functions reuse the *serial* implementations (`label_cores`,
`assign_borders`, the cellgraph edge predicates) restricted to a shard's
cells, so there is a single source of truth for the per-cell and per-pair
decisions and serial/parallel drift is impossible by construction.

Under the shared-memory transport (:mod:`repro.parallel.shm`) the payload
carries segment *headers* instead of the grid: the worker attaches
read-only, reconstructs the grid as views (:meth:`Grid.from_soa`), task
items arrive as ``(SHM_RANGE, start, stop)`` ranges over the grid's cell
(or candidate-pair) order, and results are written into the phase's
shared output slabs — the pickled return value shrinks to an ack (or the
rare border-slab overflow).  Slab writes are disjoint per shard and
position-stable, so a retried or re-pooled shard rewrites exactly the
same slots with exactly the same values.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.border import assign_borders
from repro.core.cellgraph import (
    approx_edge_predicate,
    core_cells,
    exact_edge_predicate,
)
from repro.core.edgekernel import apply_preunion_dense, cell_arrays, resolve_edges
from repro.core.labeling import label_cores
from repro.grid.cells import CellCoord, Grid
from repro.runtime.deadline import Deadline
from repro.runtime.memory import MemoryBudget
from repro.utils.unionfind import DenseUnionFind

Pair = Tuple[CellCoord, CellCoord]

#: First element of a shared-memory range item: ``(SHM_RANGE, start, stop)``
#: addresses a contiguous run of the phase's task-order (cell order for
#: cores/borders, reordered candidate-pair order for edges).
SHM_RANGE = "__shm_range__"

#: Per-process context, set by :func:`init_worker` (pool initializer).
_CTX: Optional[Dict[str, object]] = None


def _is_range(item) -> bool:
    return (
        isinstance(item, tuple) and len(item) == 3 and item[0] == SHM_RANGE
    )


def build_context(payload: Dict[str, object], *, in_worker: bool = True) -> Dict[str, object]:
    """Build a task context from a phase payload.

    ``in_worker`` distinguishes a pool worker from the parent process
    re-executing a quarantined shard: injected worker faults (see
    :mod:`repro.runtime.faultinject`) only fire when it is true, because a
    poison shard is by definition one that crashes *workers* but computes
    fine serially.
    """
    grid: Optional[Grid] = payload.get("grid")
    shm_in: Dict[str, np.ndarray] = {}
    shm_out: Dict[str, np.ndarray] = {}
    io_block = None
    if grid is None:
        # Shared-memory transport: attach the published grid and the
        # phase's IO block.  Attaching never copies and never takes
        # ownership — the parent unlinks (see repro.parallel.shm).
        from repro.parallel import shm as shm_transport

        grid = shm_transport.attach_grid(payload["grid_header"])
        io_block = shm_transport.SharedBlock.attach(
            payload["shm_io"], writable=True
        )
        for name, arr in io_block.arrays.items():
            if name.startswith("out_"):
                shm_out[name[4:]] = arr
            else:
                arr.flags.writeable = False
                shm_in[name[3:]] = arr
    time_remaining = payload.get("time_remaining")
    memory_limit_mb = payload.get("memory_limit_mb")
    # Attached segments appear in this process's RSS but were charged to
    # the parent's budget once at publication — subtract them here so an
    # N-worker fleet does not count the shared state N extra times.
    shared_bytes = float(payload.get("shm_shared_bytes") or 0) if in_worker else 0.0
    ctx: Dict[str, object] = {
        "grid": grid,
        "deadline": None if time_remaining is None else Deadline(float(time_remaining)),
        "memory": None if memory_limit_mb is None else MemoryBudget(
            float(memory_limit_mb), shared_bytes=shared_bytes
        ),
        "min_pts": payload.get("min_pts"),
        "phase": payload.get("phase", ""),
        "edge": None,
        "fault_spec": payload.get("fault_spec"),
        "in_worker": bool(in_worker),
        "known_core": payload.get("known_core"),
        "shm_in": shm_in,
        "shm_out": shm_out,
        "shm_io_block": io_block,
    }
    if ctx["known_core"] is None and "known_core" in shm_in:
        ctx["known_core"] = shm_in["known_core"]
    core_mask = payload.get("core_mask")
    if core_mask is None and "core_mask" in shm_in:
        core_mask = shm_in["core_mask"]
    if core_mask is not None:
        ctx["core_mask"] = np.asarray(core_mask, dtype=bool)
        ctx["cells"] = core_cells(grid, ctx["core_mask"])
    core_labels = payload.get("core_labels")
    if core_labels is None and "core_labels" in shm_in:
        core_labels = shm_in["core_labels"]
    if core_labels is not None:
        ctx["core_labels"] = np.asarray(core_labels, dtype=np.int64)
    # Monotone-sweep connectivity seed, restricted (as on the parent side)
    # to pairs whose cells are both core cells of *this* run.
    preunion = payload.get("preunion")
    if preunion:
        cells = ctx["cells"]
        ctx["preunion"] = [
            (c1, c2) for c1, c2 in preunion if c1 in cells and c2 in cells
        ]
    edge_rule = payload.get("edge_rule")
    if edge_rule == "exact":
        structures = payload.get("structures")
        ctx["edge"] = exact_edge_predicate(
            grid,
            ctx["cells"],
            payload["bcp_strategy"],
            structures=dict(structures) if structures else None,
        )
        ctx["reject_eps"] = None
    elif edge_rule == "approx":
        structures = payload.get("structures")
        ctx["edge"] = approx_edge_predicate(
            grid,
            ctx["cells"],
            payload["rho"],
            payload.get("exact_leaf_size"),
            structures=dict(structures) if structures else None,
            deadline=ctx["deadline"],
        )
        ctx["reject_eps"] = grid.eps * (1.0 + float(payload["rho"]))
    return ctx


def init_worker(payload: Dict[str, object]) -> None:
    """Pool initializer: adopt the parent's grid, build per-process guards."""
    global _CTX
    _CTX = build_context(payload, in_worker=True)


def _ctx() -> Dict[str, object]:
    if _CTX is None:
        raise RuntimeError("worker context not initialised; init_worker did not run")
    return _CTX


def _guards() -> Tuple[Optional[Deadline], Optional[MemoryBudget], str]:
    ctx = _ctx()
    return ctx["deadline"], ctx["memory"], str(ctx["phase"])


def adjacency_task(
    cell_block: Sequence[CellCoord],
) -> List[Tuple[CellCoord, List[CellCoord]]]:
    """All-pairs adjacency rows for one block of cells."""
    ctx = _ctx()
    deadline, memory, phase = _guards()
    if deadline is not None:
        deadline.tick()
    grid: Grid = ctx["grid"]
    rows = grid.adjacency_rows(list(cell_block))
    if memory is not None:
        memory.check(phase)
    return list(rows.items())


def _cell_range(ctx: Dict[str, object], start: int, stop: int) -> List[CellCoord]:
    """Resolve a ``(SHM_RANGE, start, stop)`` item against the grid's cell
    order (cached per context — the list is rebuilt once per phase)."""
    keys = ctx.get("_cell_keys")
    if keys is None:
        keys = list(ctx["grid"].cells.keys())
        ctx["_cell_keys"] = keys
    return keys[start:stop]


def cores_task(cell_block) -> object:
    """Core determination for one shard.

    Pickled transport: the shard's ``(point_indices, core_flags)``.
    Shared-memory transport (``(SHM_RANGE, start, stop)`` item): flags are
    written into the shared ``core`` slab — disjoint per shard, so writes
    are idempotent across retries — and only a count is returned.
    """
    ctx = _ctx()
    deadline, memory, phase = _guards()
    grid: Grid = ctx["grid"]
    slab = None
    if _is_range(cell_block):
        slab = ctx["shm_out"]["core"]
        cell_block = _cell_range(ctx, int(cell_block[1]), int(cell_block[2]))
    mask = label_cores(
        grid,
        int(ctx["min_pts"]),
        deadline=deadline,
        cells=cell_block,
        known_core=ctx.get("known_core"),
    )
    if memory is not None:
        memory.check(phase)
    blocks = [grid.points_in(c) for c in cell_block]
    idx = np.concatenate(blocks) if blocks else np.empty(0, dtype=np.int64)
    if slab is not None:
        slab[idx] = mask[idx]
        return int(len(idx))
    return idx, mask[idx]


def _edge_arrays(ctx: Dict[str, object]):
    """Per-phase dense cell arrays for the staged kernel (built once)."""
    arrays = ctx.get("_edge_arrays")
    if arrays is None:
        arrays = ctx["_edge_arrays"] = cell_arrays(
            ctx["grid"].points, ctx["cells"]
        )
    return arrays


def edges_task(pairs) -> object:
    """Resolve a chunk of oriented candidate pairs; return the unions made.

    The chunk runs the staged edge kernel
    (:func:`repro.core.edgekernel.resolve_edges`) against a chunk-local
    forest: vectorised quick-accept/quick-reject passes settle most pairs,
    survivors run the per-pair predicate cheapest-first, and the
    chunk-local connectivity short-circuits redundant tests (for an
    intra-shard chunk this is the full serial short-circuit).  Only the
    unions that *merged* two chunk-local components are emitted — that
    subset spans the same connectivity as the chunk's true edge set, so
    the parent's stitching pass reconstructs the global components
    exactly.

    A monotone-sweep ``preunion`` seed (when present) is folded into the
    chunk-local forest too: pairs its connectivity already covers skip
    their edge tests and are *not* emitted — sound because the parent
    seeds its stitching forest with the very same pairs.

    Shared-memory transport: the item is a ``(SHM_RANGE, start, stop)``
    range of the parent's task-ordered ``pair_i``/``pair_j`` index arrays
    (indices into the core-cell key order), and every union made is
    recorded at the position ``t`` of the pair that caused it in the
    ``edge_i``/``edge_j`` slabs (``-1`` means "no union") —
    position-stable and deterministic (a fresh chunk-local forest makes
    the kernel's schedule a pure function of the chunk), so retries
    rewrite the same slots and a partially written shard is
    indistinguishable from a partially evaluated one.
    """
    ctx = _ctx()
    deadline, memory, phase = _guards()
    edge = ctx["edge"]
    arrays = _edge_arrays(ctx)
    uf = DenseUnionFind(len(arrays))
    apply_preunion_dense(uf, arrays.index, ctx.get("preunion"))
    grid: Grid = ctx["grid"]
    if _is_range(pairs):
        start, stop = int(pairs[1]), int(pairs[2])
        ii = np.asarray(ctx["shm_in"]["pair_i"][start:stop], dtype=np.int64)
        jj = np.asarray(ctx["shm_in"]["pair_j"][start:stop], dtype=np.int64)
        out_i = ctx["shm_out"]["edge_i"]
        out_j = ctx["shm_out"]["edge_j"]
        unions = resolve_edges(
            grid.points, grid.eps, arrays, ii, jj, uf, edge,
            reject_eps=ctx.get("reject_eps"), deadline=deadline,
        )
        for t, a, b in unions:
            out_i[start + t] = a
            out_j[start + t] = b
        if memory is not None:
            memory.check(phase)
        return len(unions)
    index = arrays.index
    ii = np.fromiter((index[c1] for c1, _ in pairs), dtype=np.int64, count=len(pairs))
    jj = np.fromiter((index[c2] for _, c2 in pairs), dtype=np.int64, count=len(pairs))
    unions = resolve_edges(
        grid.points, grid.eps, arrays, ii, jj, uf, edge,
        reject_eps=ctx.get("reject_eps"), deadline=deadline,
    )
    keys = arrays.keys
    out: List[Pair] = [(keys[a], keys[b]) for _, a, b in unions]
    if memory is not None:
        memory.check(phase)
    return out


def borders_task(cell_block) -> List[Tuple[int, Tuple[int, ...]]]:
    """Border assignment for one shard, as ``(point, cluster-ids)`` items.

    Shared-memory transport: each border point's cluster ids land in its
    row of the ``border_labels`` slab and the id count in
    ``border_count`` — the labels row is written *before* the count, so a
    row is visible to the parent only once complete (a shard killed
    mid-write leaves count 0 and the retry rewrites the row).  Points
    touching more clusters than the slab is wide are returned as the
    (tiny, pickled) overflow remainder.
    """
    ctx = _ctx()
    deadline, memory, phase = _guards()
    slab = None
    if _is_range(cell_block):
        slab = (ctx["shm_out"]["border_labels"], ctx["shm_out"]["border_count"])
        cell_block = _cell_range(ctx, int(cell_block[1]), int(cell_block[2]))
    out = assign_borders(
        ctx["grid"],
        ctx["core_mask"],
        ctx["core_labels"],
        deadline=deadline,
        cells=cell_block,
    )
    if memory is not None:
        memory.check(phase)
    if slab is not None:
        labels, counts = slab
        width = labels.shape[1]
        overflow: List[Tuple[int, Tuple[int, ...]]] = []
        for point, cluster_ids in out.items():
            k = len(cluster_ids)
            if k <= width:
                labels[point, :k] = cluster_ids
                counts[point] = k
            else:
                overflow.append((point, cluster_ids))
        return overflow
    return list(out.items())


#: Task-kind dispatch used by the supervised executor.
_TASKS = {
    "adjacency": adjacency_task,
    "cores": cores_task,
    "edges": edges_task,
    "borders": borders_task,
}


def supervised_task(kind: str, seq: int, item):
    """Run one tracked shard: fault check, then dispatch on ``kind``.

    The supervisor submits every shard through this wrapper so each task
    carries a stable ``(phase, seq)`` identity — the address injected
    worker faults (kill / hang / poison) are keyed on, and the unit the
    parent's retry and quarantine bookkeeping tracks.
    """
    ctx = _ctx()
    spec = ctx.get("fault_spec")
    if spec is not None and ctx.get("in_worker", True):
        from repro.runtime import faultinject

        faultinject.trigger_worker_fault(spec, str(ctx["phase"]), int(seq))
    return _TASKS[kind](item)


def make_local_runner(payload: Dict[str, object]):
    """A parent-process shard executor for quarantine / serial requeue.

    Builds the task context lazily (edge predicates are not free) and only
    once per phase, then runs the *same* task functions the workers run —
    a single source of truth, so a quarantined shard's result is
    indistinguishable from a pooled one.  The module-global worker context
    is swapped in around each call and restored after, so parent-side
    execution cannot leak state into a later ``init_worker``.
    """
    state: Dict[str, object] = {}

    def run(kind: str, item):
        global _CTX
        if "ctx" not in state:
            state["ctx"] = build_context(payload, in_worker=False)
        prev = _CTX
        _CTX = state["ctx"]
        try:
            return _TASKS[kind](item)
        finally:
            _CTX = prev

    return run
