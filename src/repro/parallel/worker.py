"""Worker-process side of the parallel grid pipeline.

Each pool worker is initialised once per phase with a *payload* dict
carrying the parent's :class:`~repro.grid.cells.Grid` itself — under the
preferred ``fork`` start method the object (including its lazily built,
expensive neighbour-adjacency table, which the parent warms first) is
inherited copy-on-write for free; under ``spawn`` it is pickled once per
worker.  The payload also carries the *remaining* time
budget and the memory limit, from which the worker builds its own
cooperative :class:`~repro.runtime.Deadline` and
:class:`~repro.runtime.MemoryBudget` — budgets are polled inside workers
exactly as they are in the serial hot loops, and a worker that trips one
re-raises the library's own error across the pool boundary (the errors
are pickle-safe; see ``repro.errors``).

Task functions reuse the *serial* implementations (`label_cores`,
`assign_borders`, the cellgraph edge predicates) restricted to a shard's
cells, so there is a single source of truth for the per-cell and per-pair
decisions and serial/parallel drift is impossible by construction.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.border import assign_borders
from repro.core.cellgraph import (
    approx_edge_predicate,
    core_cells,
    exact_edge_predicate,
)
from repro.core.labeling import label_cores
from repro.grid.cells import CellCoord, Grid
from repro.runtime.deadline import Deadline
from repro.runtime.memory import MemoryBudget
from repro.utils.unionfind import KeyedUnionFind

Pair = Tuple[CellCoord, CellCoord]

#: Per-process context, set by :func:`init_worker` (pool initializer).
_CTX: Optional[Dict[str, object]] = None


def build_context(payload: Dict[str, object], *, in_worker: bool = True) -> Dict[str, object]:
    """Build a task context from a phase payload.

    ``in_worker`` distinguishes a pool worker from the parent process
    re-executing a quarantined shard: injected worker faults (see
    :mod:`repro.runtime.faultinject`) only fire when it is true, because a
    poison shard is by definition one that crashes *workers* but computes
    fine serially.
    """
    grid: Grid = payload["grid"]
    time_remaining = payload.get("time_remaining")
    memory_limit_mb = payload.get("memory_limit_mb")
    ctx: Dict[str, object] = {
        "grid": grid,
        "deadline": None if time_remaining is None else Deadline(float(time_remaining)),
        "memory": None if memory_limit_mb is None else MemoryBudget(float(memory_limit_mb)),
        "min_pts": payload.get("min_pts"),
        "phase": payload.get("phase", ""),
        "edge": None,
        "fault_spec": payload.get("fault_spec"),
        "in_worker": bool(in_worker),
        "known_core": payload.get("known_core"),
    }
    core_mask = payload.get("core_mask")
    if core_mask is not None:
        ctx["core_mask"] = np.asarray(core_mask, dtype=bool)
        ctx["cells"] = core_cells(grid, ctx["core_mask"])
    core_labels = payload.get("core_labels")
    if core_labels is not None:
        ctx["core_labels"] = np.asarray(core_labels, dtype=np.int64)
    # Monotone-sweep connectivity seed, restricted (as on the parent side)
    # to pairs whose cells are both core cells of *this* run.
    preunion = payload.get("preunion")
    if preunion:
        cells = ctx["cells"]
        ctx["preunion"] = [
            (c1, c2) for c1, c2 in preunion if c1 in cells and c2 in cells
        ]
    edge_rule = payload.get("edge_rule")
    if edge_rule == "exact":
        ctx["edge"] = exact_edge_predicate(grid, ctx["cells"], payload["bcp_strategy"])
    elif edge_rule == "approx":
        structures = payload.get("structures")
        ctx["edge"] = approx_edge_predicate(
            grid,
            ctx["cells"],
            payload["rho"],
            payload.get("exact_leaf_size"),
            structures=dict(structures) if structures else None,
            deadline=ctx["deadline"],
        )
    return ctx


def init_worker(payload: Dict[str, object]) -> None:
    """Pool initializer: adopt the parent's grid, build per-process guards."""
    global _CTX
    _CTX = build_context(payload, in_worker=True)


def _ctx() -> Dict[str, object]:
    if _CTX is None:
        raise RuntimeError("worker context not initialised; init_worker did not run")
    return _CTX


def _guards() -> Tuple[Optional[Deadline], Optional[MemoryBudget], str]:
    ctx = _ctx()
    return ctx["deadline"], ctx["memory"], str(ctx["phase"])


def adjacency_task(
    cell_block: Sequence[CellCoord],
) -> List[Tuple[CellCoord, List[CellCoord]]]:
    """All-pairs adjacency rows for one block of cells."""
    ctx = _ctx()
    deadline, memory, phase = _guards()
    if deadline is not None:
        deadline.tick()
    grid: Grid = ctx["grid"]
    rows = grid.adjacency_rows(list(cell_block))
    if memory is not None:
        memory.check(phase)
    return list(rows.items())


def cores_task(cell_block: Sequence[CellCoord]) -> Tuple[np.ndarray, np.ndarray]:
    """Core determination for one shard: ``(point_indices, core_flags)``."""
    ctx = _ctx()
    deadline, memory, phase = _guards()
    grid: Grid = ctx["grid"]
    mask = label_cores(
        grid,
        int(ctx["min_pts"]),
        deadline=deadline,
        cells=cell_block,
        known_core=ctx.get("known_core"),
    )
    if memory is not None:
        memory.check(phase)
    blocks = [grid.points_in(c) for c in cell_block]
    idx = np.concatenate(blocks) if blocks else np.empty(0, dtype=np.int64)
    return idx, mask[idx]


def edges_task(pairs: Sequence[Pair]) -> List[Pair]:
    """Evaluate a chunk of oriented candidate pairs; return the unions made.

    A chunk-local union-find short-circuits the edge test for pairs its
    own emitted edges already connect (for an intra-shard chunk this is
    the full serial short-circuit).  The emitted subset spans the same
    connectivity as the chunk's true edge set, so the parent's stitching
    pass reconstructs the global components exactly.

    A monotone-sweep ``preunion`` seed (when present) is folded into the
    chunk-local forest too: pairs its connectivity already covers skip
    their edge tests and are *not* emitted — sound because the parent
    seeds its stitching forest with the very same pairs.
    """
    ctx = _ctx()
    deadline, memory, phase = _guards()
    edge = ctx["edge"]
    uf = KeyedUnionFind()
    for c1, c2 in ctx.get("preunion") or ():
        uf.union(c1, c2)
    out: List[Pair] = []
    for c1, c2 in pairs:
        if deadline is not None:
            deadline.tick()
        if uf.connected(c1, c2):
            continue
        if edge(c1, c2):
            uf.union(c1, c2)
            out.append((c1, c2))
    if memory is not None:
        memory.check(phase)
    return out


def borders_task(cell_block: Sequence[CellCoord]) -> List[Tuple[int, Tuple[int, ...]]]:
    """Border assignment for one shard, as ``(point, cluster-ids)`` items."""
    ctx = _ctx()
    deadline, memory, phase = _guards()
    out = assign_borders(
        ctx["grid"],
        ctx["core_mask"],
        ctx["core_labels"],
        deadline=deadline,
        cells=cell_block,
    )
    if memory is not None:
        memory.check(phase)
    return list(out.items())


#: Task-kind dispatch used by the supervised executor.
_TASKS = {
    "adjacency": adjacency_task,
    "cores": cores_task,
    "edges": edges_task,
    "borders": borders_task,
}


def supervised_task(kind: str, seq: int, item):
    """Run one tracked shard: fault check, then dispatch on ``kind``.

    The supervisor submits every shard through this wrapper so each task
    carries a stable ``(phase, seq)`` identity — the address injected
    worker faults (kill / hang / poison) are keyed on, and the unit the
    parent's retry and quarantine bookkeeping tracks.
    """
    ctx = _ctx()
    spec = ctx.get("fault_spec")
    if spec is not None and ctx.get("in_worker", True):
        from repro.runtime import faultinject

        faultinject.trigger_worker_fault(spec, str(ctx["phase"]), int(seq))
    return _TASKS[kind](item)


def make_local_runner(payload: Dict[str, object]):
    """A parent-process shard executor for quarantine / serial requeue.

    Builds the task context lazily (edge predicates are not free) and only
    once per phase, then runs the *same* task functions the workers run —
    a single source of truth, so a quarantined shard's result is
    indistinguishable from a pooled one.  The module-global worker context
    is swapped in around each call and restored after, so parent-side
    execution cannot leak state into a later ``init_worker``.
    """
    state: Dict[str, object] = {}

    def run(kind: str, item):
        global _CTX
        if "ctx" not in state:
            state["ctx"] = build_context(payload, in_worker=False)
        prev = _CTX
        _CTX = state["ctx"]
        try:
            return _TASKS[kind](item)
        finally:
            _CTX = prev

    return run
