"""Spatially contiguous sharding of the grid ``T`` for the worker pool.

A *shard* is a block of grid cells handed to one worker task.  Shards are
built by sorting the non-empty cell coordinates lexicographically and
cutting the sorted sequence into runs of roughly equal point count:

* lexicographic order keeps a shard spatially coherent (cells that share a
  prefix of coordinates are neighbours along the last axes), so the search
  structures a worker builds for one cell tend to be reused by the next;
* balancing on *point* count rather than cell count evens out the skewed
  occupancy the seed spreader produces (a few dense cells, many sparse
  ones).

For the component phase, :func:`split_pairs` classifies the candidate
cell pairs emitted by :meth:`Grid.neighbor_cell_pairs` into *intra-shard*
work lists (both endpoints in one shard — the worker may short-circuit
with a local union-find) and *boundary* pairs crossing shards, which are
evaluated in chunks and stitched into the global forest by the parent.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

from repro.grid.cells import CellCoord

Pair = Tuple[CellCoord, CellCoord]


def shard_cells(
    cells: Iterable[CellCoord],
    n_shards: int,
    weights: Mapping[CellCoord, int] | None = None,
) -> List[List[CellCoord]]:
    """Partition ``cells`` into up to ``n_shards`` contiguous blocks.

    ``weights`` (default: 1 per cell) is typically the number of points
    per cell; the greedy cut aims each block at ``total / n_shards``
    weight.  Empty blocks are dropped, so the result may hold fewer than
    ``n_shards`` entries when there are few cells.
    """
    ordered = sorted(cells)
    if n_shards <= 1 or len(ordered) <= 1:
        return [ordered] if ordered else []
    total = sum(1 if weights is None else int(weights[c]) for c in ordered)
    target = max(1.0, total / n_shards)
    shards: List[List[CellCoord]] = []
    block: List[CellCoord] = []
    acc = 0
    remaining = total
    for cell in ordered:
        w = 1 if weights is None else int(weights[cell])
        block.append(cell)
        acc += w
        remaining -= w
        # Cut when the block reached its target, but never strand the tail:
        # leave at least one cell per remaining shard.
        if acc >= target and len(shards) < n_shards - 1 and remaining > 0:
            shards.append(block)
            block, acc = [], 0
    if block:
        shards.append(block)
    return shards


def assign_shards(shards: Sequence[Sequence[CellCoord]]) -> Dict[CellCoord, int]:
    """Map each cell coordinate to the index of its shard."""
    owner: Dict[CellCoord, int] = {}
    for sid, block in enumerate(shards):
        for cell in block:
            owner[cell] = sid
    return owner


def split_pairs(
    pairs: Iterable[Pair],
    owner: Mapping[CellCoord, int],
    n_shards: int,
) -> Tuple[List[List[Pair]], List[Pair]]:
    """Split candidate pairs into per-shard intra lists and boundary pairs.

    Pair orientation is preserved exactly as emitted by
    :meth:`Grid.neighbor_cell_pairs` — the approximate edge rule is only
    deterministic per *oriented* pair, and serial/parallel equivalence
    depends on both paths asking the same oriented questions.
    """
    intra: List[List[Pair]] = [[] for _ in range(n_shards)]
    boundary: List[Pair] = []
    for c1, c2 in pairs:
        s1 = owner[c1]
        if s1 == owner[c2]:
            intra[s1].append((c1, c2))
        else:
            boundary.append((c1, c2))
    return intra, boundary


def chunked(items: Sequence, size: int) -> List[Sequence]:
    """Split a sequence into chunks of at most ``size`` elements."""
    if size <= 0:
        raise ValueError(f"chunk size must be positive; got {size}")
    return [items[i:i + size] for i in range(0, len(items), size)]
