"""The runtime's wall-clock source.

Every deadline in the library reads time through :func:`now` instead of
calling :func:`time.monotonic` directly.  The indirection exists for one
reason: testability.  The fault-injection harness
(:mod:`repro.runtime.faultinject`) installs a hook here to simulate clock
skips deterministically, which is how CI proves that every algorithm
honours its ``time_budget`` without actually burning wall-clock time.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

#: Optional transformation applied to every clock reading.  ``None`` means
#: the real monotonic clock is returned untouched.  Installed/removed by the
#: fault-injection harness only.
_hook: Optional[Callable[[float], float]] = None


def now() -> float:
    """Current monotonic time in seconds (possibly fault-adjusted)."""
    t = time.monotonic()
    if _hook is not None:
        t = _hook(t)
    return t


def set_fault_hook(hook: Optional[Callable[[float], float]]) -> None:
    """Install (or with ``None`` remove) the clock fault hook."""
    global _hook
    _hook = hook
