"""Cooperative deadlines (cancellation tokens).

A :class:`Deadline` is created once per run from a ``time_budget`` in
seconds and threaded through the hot loops of every algorithm.  Loops call
:meth:`Deadline.check` at natural work boundaries (one grid cell, one
core-cell pair, one range query, one distance-matrix chunk); when the
budget is exhausted the check raises
:class:`~repro.errors.TimeoutExceeded` — the reproduction's analogue of
the paper's 12-hour cut-off (Section 5.3), now honoured uniformly by all
five exact algorithms and the rho-approximate one rather than only by the
expansion baselines.

A check is a single monotonic-clock read, which is orders of magnitude
cheaper than the numpy work done between two checks; see
``benchmarks/bench_runtime_overhead.py`` for the measured overhead.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import TimeoutExceeded
from repro.runtime import clock

#: Iterations between clock reads in :meth:`Deadline.tick`.
_TICK_STRIDE = 32


class Deadline:
    """A wall-clock budget that hot loops poll cooperatively.

    Parameters
    ----------
    budget:
        Seconds allowed from ``start``.  ``None`` means unbounded: every
        check is a no-op that never raises.
    start:
        Clock reading the budget counts from (default: now).
    """

    __slots__ = ("budget", "start", "_ticks")

    def __init__(self, budget: Optional[float], *, start: Optional[float] = None) -> None:
        self.budget = None if budget is None else float(budget)
        self.start = clock.now() if start is None else float(start)
        self._ticks = 0

    @classmethod
    def unbounded(cls) -> "Deadline":
        """A deadline that never expires."""
        return cls(None)

    def elapsed(self) -> float:
        """Seconds since the deadline started."""
        return clock.now() - self.start

    def remaining(self) -> Optional[float]:
        """Seconds left (may be negative); ``None`` when unbounded."""
        if self.budget is None:
            return None
        return self.budget - self.elapsed()

    def expired(self) -> bool:
        """True iff the budget has run out."""
        return self.budget is not None and self.elapsed() > self.budget

    def check(self) -> None:
        """Raise :class:`TimeoutExceeded` iff the budget has run out."""
        if self.budget is None:
            return
        elapsed = clock.now() - self.start
        if elapsed > self.budget:
            raise TimeoutExceeded(elapsed, self.budget)

    def tick(self) -> None:
        """A strided :meth:`check` for fine-grained hot loops.

        Reads the clock only every :data:`_TICK_STRIDE` calls, so loops
        whose per-iteration work is comparable to a clock read (one sparse
        grid cell, one core-cell pair) can still poll the deadline without
        measurable overhead.  The stride bounds cancellation latency by 32
        work units — microseconds, far inside the promptness tolerance.
        """
        if self.budget is None:
            return
        self._ticks += 1
        if self._ticks % _TICK_STRIDE:
            return
        self.check()

    def __repr__(self) -> str:
        if self.budget is None:
            return "Deadline(unbounded)"
        return f"Deadline(budget={self.budget:g}s, elapsed={self.elapsed():.3f}s)"


def tightest(*deadlines: Optional["Deadline"]) -> Optional["Deadline"]:
    """The deadline that expires first among ``deadlines``.

    ``None`` entries and unbounded deadlines are skipped; with no bounded
    deadline at all, ``None`` is returned.  The winner is returned *as is*
    (not copied), so its clock keeps running from its original start —
    which is what lets a service hand queued work a token created at
    admission time: the queue wait has already consumed part of the
    budget by the time the work executes.
    """
    best: Optional[Deadline] = None
    best_expiry = float("inf")
    for dl in deadlines:
        if dl is None or dl.budget is None:
            continue
        expiry = dl.start + dl.budget
        if expiry < best_expiry:
            best, best_expiry = dl, expiry
    return best


def as_deadline(
    time_budget: Optional[float] = None,
    deadline: Optional[Deadline] = None,
) -> Optional[Deadline]:
    """Normalise the ``(time_budget, deadline)`` argument pair.

    Algorithm entry points accept both a plain ``time_budget`` in seconds
    (the historical interface) and a ready-made :class:`Deadline` (so a
    caller such as :func:`repro.runtime.run_resilient` can share one token
    across phases).  An explicit ``deadline`` wins; otherwise a fresh one
    is started from ``time_budget``; with neither, ``None`` is returned
    and all checks are skipped.
    """
    if deadline is not None:
        return deadline
    if time_budget is not None:
        return Deadline(time_budget)
    return None
