"""Phase-level checkpoint/resume for the grid algorithms.

The paper's exact and rho-approximate algorithms share a four-phase
pipeline (Section 3.2 / 4.4):

1. ``grid`` — the grid ``T`` is imposed (deterministic, cheap to rebuild);
2. ``cores`` — the labeling process fixed the core mask;
3. ``components`` — the core-cell graph is connected (the expensive part);
4. ``borders`` — border points are assigned.

A :class:`CheckpointStore` persists the outputs of each completed phase to
one ``.npz`` file, written atomically (temp file + ``os.replace``) so a
kill mid-write never destroys the previous checkpoint.  A resumed run
validates a fingerprint of the input points and the parameters before
trusting the file; corrupt or mismatched checkpoints are *recoverable* —
the loader raises :class:`~repro.errors.CheckpointError`, and the pipeline
logs a WARNING and recomputes from scratch.

The parameter fingerprint includes the requested ``workers`` count: a
checkpoint written by a parallel run is only resumed by an invocation
requesting the same parallelism, so a resume never silently mixes shard
layouts with serial state (phases are whole-output snapshots either way,
but the fingerprint keeps provenance honest and reproducible).  The
*supervision* knobs (``max_shard_retries``, ``shard_timeout``,
``quarantine``, ``max_pool_respawns``) deliberately do **not** join the
fingerprint: they only change how failures are recovered, never the phase
outputs — a supervised run's result is byte-identical to the serial one —
so checkpoints written under different retry policies are interchangeable.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Callable, Dict, Mapping, Optional, Tuple

import numpy as np

from repro.errors import CheckpointError
from repro.utils.log import get_logger

_log = get_logger("runtime.checkpoint")

#: Pipeline phases in completion order.
PHASES: Tuple[str, ...] = ("grid", "cores", "components", "borders")

_FORMAT = "repro.checkpoint/v1"

#: Optional post-save corrupter installed by the fault-injection harness.
_corrupt_hook: Optional[Callable[[str], None]] = None


def set_fault_hook(hook: Optional[Callable[[str], None]]) -> None:
    """Install (or with ``None`` remove) the checkpoint corruption hook."""
    global _corrupt_hook
    _corrupt_hook = hook


def phase_index(phase: str) -> int:
    """Position of ``phase`` in the pipeline (raises on unknown names)."""
    try:
        return PHASES.index(phase)
    except ValueError:
        raise CheckpointError(f"unknown checkpoint phase {phase!r}; expected one of {PHASES}")


def fingerprint_points(points: np.ndarray) -> str:
    """Content hash binding a checkpoint to one exact input array."""
    arr = np.ascontiguousarray(points)
    h = hashlib.sha256()
    h.update(str(arr.shape).encode())
    h.update(str(arr.dtype).encode())
    h.update(arr.tobytes())
    return h.hexdigest()


def _flatten_borders(borders: Mapping[int, Tuple[int, ...]]):
    pts, counts, cids = [], [], []
    for idx in sorted(borders):
        member_cids = borders[idx]
        pts.append(int(idx))
        counts.append(len(member_cids))
        cids.extend(int(c) for c in member_cids)
    return (
        np.asarray(pts, dtype=np.int64),
        np.asarray(counts, dtype=np.int64),
        np.asarray(cids, dtype=np.int64),
    )


def _unflatten_borders(pts, counts, cids) -> Dict[int, Tuple[int, ...]]:
    out: Dict[int, Tuple[int, ...]] = {}
    pos = 0
    for idx, count in zip(pts, counts):
        out[int(idx)] = tuple(int(c) for c in cids[pos:pos + count])
        pos += count
    if pos != len(cids):
        raise CheckpointError("border membership arrays are inconsistent")
    return out


class CheckpointStore:
    """One checkpoint file holding the latest completed phase of a run."""

    def __init__(self, path: str) -> None:
        self.path = str(path)

    def exists(self) -> bool:
        return os.path.exists(self.path)

    def clear(self) -> None:
        """Delete the checkpoint file (idempotent)."""
        try:
            os.remove(self.path)
        except FileNotFoundError:
            pass

    # ------------------------------------------------------------------ save

    def save(
        self,
        phase: str,
        fingerprint: str,
        params: Mapping[str, object],
        *,
        core_mask: Optional[np.ndarray] = None,
        core_labels: Optional[np.ndarray] = None,
        n_components: Optional[int] = None,
        borders: Optional[Mapping[int, Tuple[int, ...]]] = None,
    ) -> None:
        """Atomically persist the state as of the end of ``phase``."""
        idx = phase_index(phase)
        header = {
            "format": _FORMAT,
            "phase": phase,
            "fingerprint": fingerprint,
            "params": dict(params),
        }
        arrays: Dict[str, np.ndarray] = {
            "header": np.frombuffer(json.dumps(header).encode(), dtype=np.uint8),
        }
        if idx >= phase_index("cores"):
            if core_mask is None:
                raise CheckpointError(f"phase {phase!r} requires core_mask")
            arrays["core_mask"] = np.asarray(core_mask, dtype=bool)
        if idx >= phase_index("components"):
            if core_labels is None or n_components is None:
                raise CheckpointError(f"phase {phase!r} requires core_labels/n_components")
            arrays["core_labels"] = np.asarray(core_labels, dtype=np.int64)
            arrays["n_components"] = np.asarray([int(n_components)], dtype=np.int64)
        if idx >= phase_index("borders"):
            if borders is None:
                raise CheckpointError(f"phase {phase!r} requires borders")
            b_pts, b_counts, b_cids = _flatten_borders(borders)
            arrays["border_points"] = b_pts
            arrays["border_counts"] = b_counts
            arrays["border_cids"] = b_cids

        tmp = f"{self.path}.tmp.{os.getpid()}"
        try:
            with open(tmp, "wb") as fh:
                np.savez_compressed(fh, **arrays)
            os.replace(tmp, self.path)
        finally:
            if os.path.exists(tmp):  # pragma: no cover - only on write failure
                os.remove(tmp)
        _log.debug("checkpoint saved at phase %r -> %s", phase, self.path)
        if _corrupt_hook is not None:
            _corrupt_hook(self.path)

    # ------------------------------------------------------------------ load

    def load(self) -> Optional[Dict[str, object]]:
        """Read the checkpoint; ``None`` if absent, raises on corruption."""
        if not self.exists():
            return None
        try:
            with np.load(self.path) as data:
                header = json.loads(bytes(data["header"]).decode())
                if header.get("format") != _FORMAT:
                    raise CheckpointError(
                        f"unrecognised checkpoint format: {header.get('format')!r}"
                    )
                phase = header["phase"]
                idx = phase_index(phase)
                state: Dict[str, object] = {
                    "phase": phase,
                    "fingerprint": header["fingerprint"],
                    "params": header["params"],
                }
                if idx >= phase_index("cores"):
                    state["core_mask"] = data["core_mask"].astype(bool)
                if idx >= phase_index("components"):
                    state["core_labels"] = data["core_labels"].astype(np.int64)
                    state["n_components"] = int(data["n_components"][0])
                if idx >= phase_index("borders"):
                    state["borders"] = _unflatten_borders(
                        data["border_points"], data["border_counts"], data["border_cids"]
                    )
                return state
        except CheckpointError:
            raise
        except Exception as exc:  # zip/json/key errors -> one recoverable type
            raise CheckpointError(f"corrupt checkpoint {self.path!r}: {exc}") from exc

    def load_matching(
        self, fingerprint: str, params: Mapping[str, object]
    ) -> Optional[Dict[str, object]]:
        """Load iff the checkpoint belongs to this exact run, else ``None``.

        Corruption and mismatches degrade to a fresh start with a WARNING —
        a stale or damaged checkpoint must never fail an otherwise healthy
        run.
        """
        try:
            state = self.load()
        except CheckpointError as exc:
            _log.warning("ignoring unusable checkpoint: %s", exc)
            return None
        if state is None:
            return None
        if state["fingerprint"] != fingerprint:
            _log.warning(
                "checkpoint %s was built from different input data; recomputing",
                self.path,
            )
            return None
        if state["params"] != dict(params):
            _log.warning(
                "checkpoint %s was built with different parameters %r; recomputing",
                self.path,
                state["params"],
            )
            return None
        _log.info("resuming from checkpoint %s at phase %r", self.path, state["phase"])
        return state
