"""Memory budgets: up-front footprint estimates plus RSS polling.

Two complementary guards, both raising
:class:`~repro.errors.MemoryBudgetExceeded`:

* **estimates** — before a phase allocates, the pipeline charges a closed-
  form footprint estimate (grid arrays, neighbour lists, distance-matrix
  chunks) against the budget, so a run that *cannot* fit fails in
  milliseconds instead of after thrashing;
* **polls** — at phase boundaries the guard reads the process RSS and
  raises if it crossed the budget, catching estimation error and
  allocations the estimates do not model.

RSS is read from ``/proc/self/status`` (Linux) with a
:func:`resource.getrusage` fallback, so no third-party dependency is
needed; platforms where neither works simply skip the polling guard.
"""

from __future__ import annotations

import os
import resource
from typing import Callable, Optional

from repro.errors import MemoryBudgetExceeded
from repro.runtime import clock
from repro.utils.log import get_logger

_log = get_logger("runtime.memory")

#: Optional fake-RSS provider installed by the fault-injection harness.
#: When it returns a number, that value is used instead of the real RSS.
_fault_hook: Optional[Callable[[], Optional[int]]] = None


def set_fault_hook(hook: Optional[Callable[[], Optional[int]]]) -> None:
    """Install (or with ``None`` remove) the RSS fault hook."""
    global _fault_hook
    _fault_hook = hook


try:
    _PAGE_SIZE = os.sysconf("SC_PAGE_SIZE")
except (ValueError, OSError):  # pragma: no cover - exotic platforms
    _PAGE_SIZE = 4096

#: Kept-open handle on /proc/self/statm: rewind+read is ~3x cheaper than
#: open+read per poll, and procfs reads always reflect the current state.
_statm = None


def _read_statm() -> Optional[int]:
    global _statm
    try:
        if _statm is None:
            _statm = open("/proc/self/statm", "rb")
        _statm.seek(0)
        return int(_statm.read().split()[1]) * _PAGE_SIZE
    except (OSError, IndexError, ValueError):
        if _statm is not None:
            try:
                _statm.close()
            except OSError:  # pragma: no cover
                pass
            _statm = None
        return None


def current_rss() -> int:
    """Resident set size of this process in bytes (0 if unknown)."""
    if _fault_hook is not None:
        fake = _fault_hook()
        if fake is not None:
            return int(fake)
    rss = _read_statm()
    if rss is not None:
        return rss
    try:
        with open("/proc/self/status") as fh:
            for line in fh:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) * 1024
    except OSError:
        pass
    try:
        # ru_maxrss is the *peak* RSS in KiB on Linux — an over-estimate of
        # the current footprint, which errs on the safe side for a guard.
        return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024
    except (ValueError, OSError):  # pragma: no cover - exotic platforms
        return 0


def estimate_grid_bytes(n: int, d: int) -> int:
    """Rough footprint of :class:`repro.grid.cells.Grid` over ``(n, d)`` points.

    Counts the float64 point array, the int64 cell-coordinate array, the
    per-cell index arrays (8 bytes/point) and dictionary overhead.  The
    constant is deliberately generous — the guard should trip *before* the
    allocation, not after.
    """
    return 16 * n * d + 96 * n + 4096


def estimate_pairwise_chunk_bytes(n_cols: int, chunk_rows: int = 512) -> int:
    """Footprint of one chunked pairwise distance block (float64)."""
    return 8 * chunk_rows * max(n_cols, 1) + 4096


class MemoryBudget:
    """A per-run memory budget, in bytes, over the process RSS.

    Parameters
    ----------
    limit_mb:
        Budget in megabytes.  ``None`` disables both guards (every call
        becomes a no-op), mirroring ``Deadline(None)``.
    shared_bytes:
        Bytes of shared-memory segments this process *attached* (did not
        allocate).  Subtracted from every RSS reading: the segment owner
        charged the budget once at publication, and a mapped segment shows
        up in the RSS of every attacher even though the physical pages
        exist once fleet-wide.  Without the correction each worker would
        re-count every segment and an N-worker run would appear to cost
        N copies of state that was shared precisely to avoid N copies.
    """

    __slots__ = ("limit_bytes", "shared_bytes", "_last_poll")

    #: Minimum seconds between RSS polls in :meth:`check`.  The polling
    #: guard exists to catch runaway growth on *long* runs; phases shorter
    #: than this cannot move the RSS meaningfully, and skipping their
    #: polls keeps the guard's overhead invisible on millisecond workloads
    #: (estimates via :meth:`charge_estimate` are never rate-limited).
    POLL_INTERVAL = 0.05

    def __init__(
        self, limit_mb: Optional[float], *, shared_bytes: float = 0
    ) -> None:
        self.limit_bytes = None if limit_mb is None else float(limit_mb) * 1e6
        self.shared_bytes = max(0.0, float(shared_bytes or 0))
        self._last_poll = clock.now()

    @classmethod
    def unbounded(cls) -> "MemoryBudget":
        return cls(None)

    def charge_estimate(self, n_bytes: int, phase: str = "") -> None:
        """Fail fast when a phase's estimated footprint overshoots the budget.

        The estimate is charged against the *headroom* left above the
        current RSS, so a process already near its budget cannot start a
        large phase.
        """
        if self.limit_bytes is None:
            return
        projected = self._effective_rss() + n_bytes
        if projected > self.limit_bytes:
            raise MemoryBudgetExceeded(projected, self.limit_bytes, phase or "estimate")

    def check(self, phase: str = "") -> None:
        """Poll the process RSS and raise if it crossed the budget."""
        if self.limit_bytes is None:
            return
        now = clock.now()
        if now - self._last_poll < self.POLL_INTERVAL:
            return
        self._last_poll = now
        rss = self._effective_rss()
        if rss > self.limit_bytes:
            raise MemoryBudgetExceeded(rss, self.limit_bytes, phase)

    def _effective_rss(self) -> float:
        """Process RSS minus attached shared segments (counted by their owner)."""
        return max(0.0, current_rss() - self.shared_bytes)

    def __repr__(self) -> str:
        if self.limit_bytes is None:
            return "MemoryBudget(unbounded)"
        return f"MemoryBudget(limit={self.limit_bytes / 1e6:.1f}MB)"


def as_memory_budget(
    memory_budget_mb: Optional[float] = None,
    memory: Optional[MemoryBudget] = None,
) -> Optional[MemoryBudget]:
    """Normalise the ``(memory_budget_mb, memory)`` argument pair."""
    if memory is not None:
        return memory
    if memory_budget_mb is not None:
        return MemoryBudget(memory_budget_mb)
    return None
