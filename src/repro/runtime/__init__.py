"""Resilient execution runtime: deadlines, memory guards, checkpoints.

The paper's Section 5.3 message — exact baselines can blow past any time
budget, while the approximation is provably bounded — turned into
machinery every algorithm in the library runs through:

* :class:`Deadline` — a cooperative cancellation token polled in every
  algorithm's hot loops, making ``time_budget`` mean the same thing for
  all of them;
* :class:`MemoryBudget` — up-front footprint estimates plus RSS polling
  at phase boundaries;
* :class:`CheckpointStore` — phase-level checkpoint/resume for the grid
  pipeline (grid -> cores -> components -> borders);
* :func:`run_resilient` / :class:`ResiliencePolicy` — the degradation
  cascade exact -> rho-approximate -> subsampled, justified by the
  Sandwich Theorem (Theorem 3);
* :func:`inject_faults` — deterministic clock skips, allocation failures
  and checkpoint corruption, so all of the above is testable in CI.

See ``docs/ROBUSTNESS.md`` for the full story.
"""

from __future__ import annotations

from repro.runtime.checkpoint import PHASES, CheckpointStore, fingerprint_points
from repro.runtime.deadline import Deadline, as_deadline, tightest
from repro.runtime.faultinject import FaultPlan, inject_faults
from repro.runtime.memory import MemoryBudget, as_memory_budget, current_rss

__all__ = [
    "Deadline",
    "as_deadline",
    "tightest",
    "MemoryBudget",
    "as_memory_budget",
    "current_rss",
    "CheckpointStore",
    "PHASES",
    "fingerprint_points",
    "FaultPlan",
    "inject_faults",
    "ResiliencePolicy",
    "run_resilient",
    "sampled_dbscan",
    "TIERS",
    "tier_guarantee",
]


def __getattr__(name: str):
    # run_resilient depends on the algorithm modules, which themselves
    # import the runtime submodules above; resolving it lazily keeps the
    # package importable from either direction.
    if name in ("ResiliencePolicy", "run_resilient", "sampled_dbscan", "TIERS", "tier_guarantee"):
        from repro.runtime import resilient

        return getattr(resilient, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
