"""The degradation cascade: exact -> rho-approximate -> subsampled.

The paper's practical message, operationalised.  Exact DBSCAN baselines
can blow past any reasonable time budget (the "did not terminate within 12
hours" markers of Section 5.3), while the Sandwich Theorem (Theorem 3)
guarantees that rho-approximate DBSCAN is a *provably bounded* stand-in
for the exact result.  That makes "degrade to the approximation instead of
dying" a correctness-backed strategy:

* **tier 1 — exact**: the Theorem 2 grid algorithm under the time and
  memory budgets;
* **tier 2 — approx**: rho-approximate DBSCAN (Theorem 4) under fresh
  budgets; its clusters sandwich the exact ones between DBSCAN(eps) and
  DBSCAN(eps(1+rho));
* **tier 3 — sampled**: a DBSCAN++-style run (Jang & Jiang, 2019) —
  rho-approximate DBSCAN over a uniform subsample fixes the core
  structure, then every remaining point joins the clusters of sampled
  core points within ``eps``.  Heuristic (no sandwich guarantee), but its
  cost is bounded by the sample size, so as the final tier it runs
  *without* budgets and is guaranteed to return.

:func:`run_resilient` walks the tiers, records every failed attempt plus
the tier finally taken in ``Clustering.meta["resilience"]``, and emits a
WARNING per degradation so operators can see why a run degraded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.algorithms.approx import approx_dbscan
from repro.algorithms.exact_grid import exact_grid_dbscan
from repro.core.border import assign_borders
from repro.core.params import ApproxParams
from repro.core.result import Clustering, build_clustering, empty_clustering
from repro.errors import (
    MemoryBudgetExceeded,
    ParameterError,
    TimeoutExceeded,
    WorkerPoolError,
)
from repro.grid.cells import Grid
from repro.runtime.deadline import Deadline
from repro.runtime.memory import MemoryBudget
from repro.utils.log import get_logger
from repro.utils.rng import make_rng
from repro.utils.validation import as_points

_log = get_logger("runtime.resilient")

#: Tier names in degradation order.
TIERS: Tuple[str, ...] = ("exact", "approx", "sampled")

#: Sandwich-Theorem caveat recorded per tier (see docs/ROBUSTNESS.md).
_GUARANTEES: Dict[str, str] = {
    "exact": "exact DBSCAN result (Problem 1, Theorem 2)",
    "approx": (
        "rho-approximate DBSCAN (Theorem 4): by the Sandwich Theorem "
        "(Theorem 3) every DBSCAN(eps) cluster is contained in a returned "
        "cluster and every returned cluster is contained in a "
        "DBSCAN(eps*(1+rho)) cluster"
    ),
    "sampled": (
        "DBSCAN++-style subsampled heuristic: cores computed on a uniform "
        "sample, remaining points attached to sampled cores within eps; "
        "no sandwich guarantee"
    ),
}


def tier_guarantee(tier: str) -> str:
    """The quality guarantee recorded for ``tier`` (one of :data:`TIERS`).

    Public accessor so other layers (the service's degradation ladder,
    docs tooling) can stamp the same Sandwich-Theorem caveats into their
    response metadata without duplicating the wording.
    """
    if tier not in _GUARANTEES:
        raise ParameterError(f"unknown resilience tier {tier!r}; choose from {TIERS}")
    return _GUARANTEES[tier]


@dataclass(frozen=True)
class ResiliencePolicy:
    """How :func:`run_resilient` degrades under pressure.

    Parameters
    ----------
    time_budget:
        Wall-clock budget in seconds granted to *each* budgeted tier
        (``None`` = unbounded; the cascade then only degrades on memory
        pressure).
    memory_budget_mb:
        RSS budget per budgeted tier (``None`` = unguarded).
    rho:
        Approximation constant for the ``approx`` and ``sampled`` tiers.
    sample_size:
        Maximum number of points the ``sampled`` tier clusters directly.
    tiers:
        The cascade, in order; each entry one of ``("exact", "approx",
        "sampled")``.  The final tier runs without budgets so the cascade
        always returns.
    seed:
        Seed for the subsampling RNG (fixed default keeps reruns
        deterministic).
    checkpoint:
        Optional checkpoint path handed to the budgeted grid tiers, so an
        interrupted run resumes mid-pipeline.
    workers:
        Optional worker-process count (or a
        :class:`~repro.parallel.ParallelConfig`) handed to the grid tiers
        (``exact`` and ``approx``); deadlines and memory budgets are
        polled cooperatively inside the workers, so the cascade degrades
        just as promptly under a parallel run.
    """

    time_budget: Optional[float] = None
    memory_budget_mb: Optional[float] = None
    rho: float = 0.001
    sample_size: int = 2000
    tiers: Tuple[str, ...] = TIERS
    seed: Optional[int] = 0
    checkpoint: Optional[str] = None
    workers: Optional[object] = None

    def __post_init__(self) -> None:
        if not self.tiers:
            raise ParameterError("a resilience policy needs at least one tier")
        unknown = [t for t in self.tiers if t not in TIERS]
        if unknown:
            raise ParameterError(f"unknown resilience tiers {unknown}; choose from {TIERS}")
        if int(self.sample_size) < 1:
            raise ParameterError(f"sample_size must be >= 1; got {self.sample_size}")


def run_resilient(
    points,
    eps: float,
    min_pts: int,
    policy: Optional[ResiliencePolicy] = None,
) -> Clustering:
    """Cluster under budgets, degrading instead of dying.

    Walks ``policy.tiers`` in order; a tier that raises
    :class:`~repro.errors.TimeoutExceeded`,
    :class:`~repro.errors.MemoryBudgetExceeded` or
    :class:`~repro.errors.WorkerPoolError` (a parallel tier whose worker
    pool failed beyond the supervisor's retry / respawn budgets) is logged
    as a WARNING and the next tier is tried with fresh budgets.  The final tier runs
    unbudgeted, so with the default cascade this function always returns a
    labelled :class:`~repro.core.result.Clustering`.  The returned
    ``meta["resilience"]`` names the tier taken, the failed attempts, and
    the quality guarantee (including the Sandwich-Theorem caveat for the
    ``approx`` tier).
    """
    policy = policy or ResiliencePolicy()
    # Validate eps/min_pts once up front so parameter errors surface even
    # for the empty input (and before any tier spends budget).
    params = ApproxParams(eps, min_pts, policy.rho)
    pts = as_points(points, allow_empty=True)
    if len(pts) == 0:
        result = empty_clustering(
            meta={"algorithm": "resilient", "eps": params.eps, "min_pts": params.min_pts}
        )
        result.meta["resilience"] = {
            "tier": policy.tiers[0],
            "attempts": [],
            "guarantee": "empty input: the empty clustering is exact",
        }
        return result

    attempts: List[Dict[str, object]] = []
    for position, tier in enumerate(policy.tiers):
        final_tier = position == len(policy.tiers) - 1
        # The last tier is the safety net: it runs unbudgeted, because a
        # budget there would turn "degraded" into "dead".
        deadline = None if final_tier else Deadline(policy.time_budget)
        memory = None if final_tier else MemoryBudget(policy.memory_budget_mb)
        try:
            result = _run_tier(tier, pts, params, policy, deadline, memory)
        except (TimeoutExceeded, MemoryBudgetExceeded, WorkerPoolError) as exc:
            _log.warning(
                "resilient run: tier %r failed (%s: %s); degrading to %s",
                tier,
                type(exc).__name__,
                exc,
                policy.tiers[position + 1] if not final_tier else "nothing",
            )
            attempt: Dict[str, object] = {
                "tier": tier,
                "error": type(exc).__name__,
                "detail": str(exc),
            }
            if isinstance(exc, WorkerPoolError) and exc.stats is not None:
                attempt["supervisor"] = exc.stats
            attempts.append(attempt)
            if final_tier:
                raise
            continue
        if attempts:
            _log.warning(
                "resilient run degraded to tier %r after %d failed attempt(s)",
                tier,
                len(attempts),
            )
        result.meta["resilience"] = {
            "tier": tier,
            "attempts": attempts,
            "guarantee": _GUARANTEES[tier],
            "policy": {
                "time_budget": policy.time_budget,
                "memory_budget_mb": policy.memory_budget_mb,
                "rho": params.rho,
                "sample_size": int(policy.sample_size),
                "tiers": list(policy.tiers),
                "workers": repr(policy.workers),
            },
        }
        # Surface the winning tier's supervisor ledger (retries, quarantined
        # shards, pool respawns) next to the attempt history, so one dict
        # tells the whole recovery story of the run.
        supervisor = result.meta.get("supervisor")
        if supervisor is not None:
            result.meta["resilience"]["supervisor"] = supervisor
        return result
    raise AssertionError("unreachable: the final tier either returned or re-raised")


def _run_tier(
    tier: str,
    pts: np.ndarray,
    params: ApproxParams,
    policy: ResiliencePolicy,
    deadline: Optional[Deadline],
    memory: Optional[MemoryBudget],
) -> Clustering:
    if tier == "exact":
        return exact_grid_dbscan(
            pts,
            params.eps,
            params.min_pts,
            deadline=deadline,
            memory=memory,
            checkpoint=policy.checkpoint,
            workers=policy.workers,
        )
    if tier == "approx":
        return approx_dbscan(
            pts,
            params.eps,
            params.min_pts,
            rho=params.rho,
            deadline=deadline,
            memory=memory,
            workers=policy.workers,
        )
    return sampled_dbscan(
        pts,
        params.eps,
        params.min_pts,
        rho=params.rho,
        sample_size=policy.sample_size,
        seed=policy.seed,
        deadline=deadline,
        memory=memory,
    )


def sampled_dbscan(
    points,
    eps: float,
    min_pts: int,
    rho: float = 0.001,
    sample_size: int = 2000,
    seed=None,
    *,
    deadline: Optional[Deadline] = None,
    memory: Optional[MemoryBudget] = None,
) -> Clustering:
    """DBSCAN++-style clustering over a uniform subsample.

    Runs rho-approximate DBSCAN on ``min(n, sample_size)`` uniformly
    sampled points to fix the core structure, then assigns *every*
    remaining point to the clusters of sampled core points within ``eps``
    (the border rule of Section 2.2 applied to the whole dataset).
    ``min_pts`` is scaled by the sampling rate — density in the sample is
    proportionally thinner — and the scaled value is recorded in ``meta``.
    """
    params = ApproxParams(eps, min_pts, rho)
    pts = as_points(points, allow_empty=True)
    n = len(pts)
    if n == 0:
        return empty_clustering(
            meta={"algorithm": "sampled", "eps": params.eps, "min_pts": params.min_pts}
        )
    m = min(n, int(sample_size))
    rng = make_rng(seed)
    sample_idx = np.sort(rng.choice(n, size=m, replace=False))
    sampled_min_pts = max(1, int(round(params.min_pts * (m / n))))

    sub = approx_dbscan(
        pts[sample_idx],
        params.eps,
        sampled_min_pts,
        rho=params.rho,
        deadline=deadline,
        memory=memory,
    )

    core_mask = np.zeros(n, dtype=bool)
    core_mask[sample_idx[sub.core_mask]] = True
    core_labels = np.full(n, -1, dtype=np.int64)
    core_labels[sample_idx] = sub.labels

    grid = Grid(pts, params.eps)
    borders = assign_borders(grid, core_mask, core_labels, deadline=deadline)
    return build_clustering(
        n,
        core_mask,
        core_labels,
        borders,
        meta={
            "algorithm": "sampled",
            "eps": params.eps,
            "min_pts": params.min_pts,
            "rho": params.rho,
            "sample_size": m,
            "sampled_min_pts": sampled_min_pts,
            "n_clusters_on_sample": sub.n_clusters,
        },
    )
