"""The resilient grid pipeline shared by OurExact and OurApprox.

Both of the paper's grid algorithms run the same four phases (grid ->
cores -> components -> borders); only the component rule differs (BCP for
Theorem 2, approximate range counts for Theorem 4).  This module owns that
control flow once, and is where the robustness guarantees attach:

* the :class:`~repro.runtime.Deadline` is polled inside every phase's hot
  loop *and* at each phase boundary;
* the :class:`~repro.runtime.MemoryBudget` charges an up-front grid
  estimate and polls the RSS at every phase boundary;
* when a :class:`~repro.runtime.CheckpointStore` is attached, each
  completed phase is persisted before the next begins, and a rerun resumes
  from the latest phase whose output is on disk (corrupt or mismatched
  checkpoints degrade to a fresh start with a WARNING);
* when a :class:`~repro.parallel.ParallelConfig` is attached, the cores /
  components / borders phases fan out over a *supervised* worker pool
  (:mod:`repro.parallel`) that recovers from worker crashes and hangs
  (shard retry, quarantine, pool respawn — see
  :mod:`repro.parallel.supervisor`), checkpoints stay phase-granular, and
  the worker count joins the checkpoint parameters so resumes never mix
  shard layouts.  Supervisor recovery actions for the whole run are
  recorded under ``meta["supervisor"]``.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.core.result import Clustering, build_clustering
from repro.grid.cells import Grid
from repro.parallel.executor import (
    ParallelConfig,
    effective_workers,
    parallel_assign_borders,
    parallel_label_cores,
    parallel_warm_neighbors,
)
from repro.parallel.supervisor import collect_stats
from repro.runtime.checkpoint import CheckpointStore, fingerprint_points, phase_index
from repro.runtime.deadline import Deadline
from repro.runtime.memory import MemoryBudget, estimate_grid_bytes
from repro.utils.log import get_logger

_log = get_logger("runtime.pipeline")

#: ``connect(grid, core_mask, deadline, parallel) -> (core_labels, n_components)``
ConnectFn = Callable[
    [Grid, np.ndarray, Optional[Deadline], Optional[ParallelConfig]],
    Tuple[np.ndarray, int],
]


def run_grid_pipeline(
    pts: np.ndarray,
    eps: float,
    min_pts: int,
    connect: ConnectFn,
    meta: Dict[str, object],
    *,
    deadline: Optional[Deadline] = None,
    memory: Optional[MemoryBudget] = None,
    checkpoint: Optional[CheckpointStore] = None,
    parallel: Optional[ParallelConfig] = None,
) -> Clustering:
    """Run the four-phase grid pipeline and assemble the result.

    ``meta`` must already contain the algorithm identity and parameters;
    the pipeline adds ``grid_cells``, ``workers`` (the *effective* worker
    count — 1 when the serial fallback applied) and (when a resume
    happened) ``resumed_from_phase``.

    ``parallel`` fans the cores / components / borders phases out over a
    worker pool (serial when ``None``); the requested worker count is part
    of the checkpoint parameters, so a resume never silently mixes shard
    layouts produced under a different parallel configuration.
    """
    workers = 1 if parallel is None else int(parallel.workers)
    state: Optional[Dict[str, object]] = None
    fingerprint = ""
    if checkpoint is not None:
        fingerprint = fingerprint_points(pts)
        ckpt_params = {
            "algorithm": str(meta.get("algorithm", "")),
            "eps": float(eps),
            "min_pts": int(min_pts),
            "rho": float(meta["rho"]) if "rho" in meta else None,
            "workers": workers,
        }
        state = checkpoint.load_matching(fingerprint, ckpt_params)

    def reached(phase: str) -> bool:
        return state is not None and phase_index(str(state["phase"])) >= phase_index(phase)

    def persist(phase: str, **kwargs) -> None:
        if checkpoint is not None and not reached(phase):
            checkpoint.save(phase, fingerprint, ckpt_params, **kwargs)

    # All four phases run under one ambient supervisor-stats ledger: the
    # parallel executor's retries / quarantines / respawns accumulate here
    # without widening the ConnectFn signature (see repro.parallel.supervisor).
    with collect_stats() as sup_stats:
        # Phase 1: impose the grid T (deterministic; always rebuilt — it is
        # the one phase cheaper to recompute than to serialise).
        if memory is not None:
            memory.charge_estimate(estimate_grid_bytes(len(pts), pts.shape[1]), "grid")
        grid = Grid(pts, eps)
        _log.debug("grid built: %d non-empty cells for %d points", len(grid), len(pts))
        # On all-pairs grids the adjacency build is the dominant serial cost
        # of a parallel run — shard it over the pool before the phases start
        # (a no-op on offset-probe grids and under serial fallback).
        parallel_warm_neighbors(grid, parallel, deadline=deadline, memory=memory)
        if deadline is not None:
            deadline.check()
        if memory is not None:
            memory.check("grid")
        persist("grid")

        # Phase 2: the labeling process -> core mask.
        if reached("cores"):
            core_mask = np.asarray(state["core_mask"], dtype=bool)
            _log.debug("labeling restored from checkpoint: %d core points", int(core_mask.sum()))
        else:
            core_mask = parallel_label_cores(
                grid, min_pts, parallel, deadline=deadline, memory=memory
            )
            _log.debug("labeling done: %d core points", int(core_mask.sum()))
            persist("cores", core_mask=core_mask)
        if deadline is not None:
            deadline.check()
        if memory is not None:
            memory.check("cores")

        # Phase 3: connect the core-cell graph (Lemma 1 components).
        if reached("components"):
            core_labels = np.asarray(state["core_labels"], dtype=np.int64)
            k = int(state["n_components"])
            _log.debug("graph connectivity restored from checkpoint: %d components", k)
        else:
            core_labels, k = connect(grid, core_mask, deadline, parallel)
            _log.debug("graph connectivity done: %d components", k)
            persist("components", core_mask=core_mask, core_labels=core_labels, n_components=k)
        if deadline is not None:
            deadline.check()
        if memory is not None:
            memory.check("components")

        # Phase 4: assign border points.
        if reached("borders"):
            borders = dict(state["borders"])
            _log.debug(
                "border assignment restored from checkpoint: %d border points", len(borders)
            )
        else:
            borders = parallel_assign_borders(
                grid, core_mask, core_labels, parallel, deadline=deadline, memory=memory
            )
            _log.debug("border assignment done: %d border points", len(borders))
            persist(
                "borders",
                core_mask=core_mask,
                core_labels=core_labels,
                n_components=k,
                borders=borders,
            )
        if memory is not None:
            memory.check("borders")

    meta = dict(meta)
    meta["grid_cells"] = len(grid)
    if parallel is not None and parallel.supervise:
        meta["supervisor"] = sup_stats.as_dict()
    # Record the *effective* worker count: 1 when the serial fallback
    # kicked in (small n, or fewer cells than workers), else the pool size.
    meta["workers"] = effective_workers(parallel, len(pts), len(grid))
    if state is not None:
        meta["resumed_from_phase"] = str(state["phase"])
    return build_clustering(len(pts), core_mask, core_labels, borders, meta=meta)
