"""The resilient grid pipeline shared by OurExact and OurApprox.

Both of the paper's grid algorithms run the same four phases (grid ->
cores -> components -> borders); only the component rule differs (BCP for
Theorem 2, approximate range counts for Theorem 4).  This module owns that
control flow once, and is where the robustness guarantees attach:

* the :class:`~repro.runtime.Deadline` is polled inside every phase's hot
  loop *and* at each phase boundary;
* the :class:`~repro.runtime.MemoryBudget` charges an up-front grid
  estimate and polls the RSS at every phase boundary;
* when a :class:`~repro.runtime.CheckpointStore` is attached, each
  completed phase is persisted before the next begins, and a rerun resumes
  from the latest phase whose output is on disk (corrupt or mismatched
  checkpoints degrade to a fresh start with a WARNING);
* when a :class:`~repro.parallel.ParallelConfig` is attached, the cores /
  components / borders phases fan out over a *supervised* worker pool
  (:mod:`repro.parallel`) that recovers from worker crashes and hangs
  (shard retry, quarantine, pool respawn — see
  :mod:`repro.parallel.supervisor`), checkpoints stay phase-granular, and
  the worker count joins the checkpoint parameters so resumes never mix
  shard layouts.  Supervisor recovery actions for the whole run are
  recorded under ``meta["supervisor"]``.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from contextlib import ExitStack
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.result import Clustering, build_clustering
from repro.errors import ParameterError
from repro.grid import counters
from repro.grid.cells import CellCoord, Grid
from repro.parallel import shm as shm_transport
from repro.parallel.executor import (
    ParallelConfig,
    effective_workers,
    parallel_assign_borders,
    parallel_label_cores,
    parallel_warm_neighbors,
)
from repro.parallel.supervisor import collect_stats
from repro.runtime.checkpoint import CheckpointStore, fingerprint_points, phase_index
from repro.runtime.deadline import Deadline
from repro.runtime.memory import MemoryBudget, estimate_grid_bytes
from repro.utils.log import get_logger

_log = get_logger("runtime.pipeline")

#: ``connect(grid, core_mask, deadline, parallel) -> (core_labels, n_components)``
ConnectFn = Callable[
    [Grid, np.ndarray, Optional[Deadline], Optional[ParallelConfig]],
    Tuple[np.ndarray, int],
]


@dataclass
class PipelineHooks:
    """Reuse and observation hooks for :func:`run_grid_pipeline`.

    This is the seam :class:`repro.engine.ClusteringEngine` plugs into —
    every field defaults to "no effect", so a hook-less run is byte-for-byte
    the classic pipeline.

    Parameters
    ----------
    grid:
        A prebuilt :class:`~repro.grid.cells.Grid` over *exactly* the run's
        points and ``eps`` (validated); phase 1 adopts it instead of
        rebuilding.
    core_mask:
        A precomputed core mask for *exactly* this ``(eps, min_pts)``;
        phase 2 adopts it instead of labeling.
    known_core:
        Monotone lower bound on the core mask (e.g. the mask of a smaller
        ``eps``); forwarded to
        :func:`~repro.parallel.executor.parallel_label_cores`.  Ignored
        when ``core_mask`` is given.
    preunion:
        Cell pairs already known to be in the same component of the
        core-cell graph (see :func:`repro.core.cellgraph.apply_preunion`).
        The pipeline only carries this — the algorithm's connect closure
        consumes it.
    structures:
        Warm per-cell search structures for the connect closure — Lemma 5
        hierarchies for the approximate rule, kd-trees / Voronoi diagrams
        for the exact ``kdtree``/``voronoi`` strategies; carried like
        ``preunion`` and updated in place with lazily built entries so the
        engine can harvest them.
    on_phase:
        Callback ``(phase_name, value)`` fired after each phase completes
        with the phase's product (``grid``, ``core_mask``,
        ``(core_labels, k)``, ``borders``) — the engine's harvesting hook.
    """

    grid: Optional[Grid] = None
    core_mask: Optional[np.ndarray] = None
    known_core: Optional[np.ndarray] = None
    preunion: Optional[List[Tuple[CellCoord, CellCoord]]] = None
    structures: Optional[Dict[CellCoord, object]] = None
    on_phase: Optional[Callable[[str, object], None]] = None

    def emit(self, phase: str, value: object) -> None:
        if self.on_phase is not None:
            self.on_phase(phase, value)


def run_grid_pipeline(
    pts: np.ndarray,
    eps: float,
    min_pts: int,
    connect: ConnectFn,
    meta: Dict[str, object],
    *,
    deadline: Optional[Deadline] = None,
    memory: Optional[MemoryBudget] = None,
    checkpoint: Optional[CheckpointStore] = None,
    parallel: Optional[ParallelConfig] = None,
    hooks: Optional[PipelineHooks] = None,
) -> Clustering:
    """Run the four-phase grid pipeline and assemble the result.

    ``meta`` must already contain the algorithm identity and parameters;
    the pipeline adds ``grid_cells``, ``workers`` (the *effective* worker
    count — 1 when the serial fallback applied), ``phase_seconds`` (the
    wall-clock spent per phase) and (when a resume happened)
    ``resumed_from_phase``.

    ``parallel`` fans the cores / components / borders phases out over a
    worker pool (serial when ``None``); the requested worker count is part
    of the checkpoint parameters, so a resume never silently mixes shard
    layouts produced under a different parallel configuration.

    ``hooks`` (see :class:`PipelineHooks`) lets a caller donate prebuilt
    phase products and harvest the run's — the clustering engine's seam.
    """
    if hooks is None:
        hooks = PipelineHooks()
    workers = 1 if parallel is None else int(parallel.workers)
    state: Optional[Dict[str, object]] = None
    fingerprint = ""
    if checkpoint is not None:
        fingerprint = fingerprint_points(pts)
        ckpt_params = {
            "algorithm": str(meta.get("algorithm", "")),
            "eps": float(eps),
            "min_pts": int(min_pts),
            "rho": float(meta["rho"]) if "rho" in meta else None,
            "workers": workers,
        }
        state = checkpoint.load_matching(fingerprint, ckpt_params)

    def reached(phase: str) -> bool:
        return state is not None and phase_index(str(state["phase"])) >= phase_index(phase)

    def persist(phase: str, **kwargs) -> None:
        if checkpoint is not None and not reached(phase):
            checkpoint.save(phase, fingerprint, ckpt_params, **kwargs)

    # All four phases run under one ambient supervisor-stats ledger: the
    # parallel executor's retries / quarantines / respawns accumulate here
    # without widening the ConnectFn signature (see repro.parallel.supervisor).
    phase_seconds: Dict[str, float] = {}
    counters_before = counters.snapshot()
    with ExitStack() as cleanup, collect_stats() as sup_stats:
        # Phase 1: impose the grid T (deterministic; rebuilt unless a warm
        # grid is donated — it is the one phase cheaper to recompute than
        # to serialise, but free to adopt from a structure cache).
        mark = perf_counter()
        if hooks.grid is not None:
            grid = _adopt_grid(hooks.grid, pts, eps)
            _log.debug("grid adopted from hooks: %d non-empty cells", len(grid))
        else:
            if memory is not None:
                memory.charge_estimate(estimate_grid_bytes(len(pts), pts.shape[1]), "grid")
            grid = Grid(pts, eps)
            _log.debug("grid built: %d non-empty cells for %d points", len(grid), len(pts))
            # This run owns the grid, so it owns any shared-memory
            # publication the shm transport makes for it: unlink on every
            # exit path (success, budget verdict, KeyboardInterrupt) so no
            # /dev/shm entry can outlive the run.  Donated grids are the
            # engine's — the structure cache unlinks those on eviction.
            cleanup.callback(shm_transport.unpublish_grid, grid)
        # On all-pairs grids the adjacency build is the dominant serial cost
        # of a parallel run — shard it over the pool before the phases start
        # (a no-op on offset-probe grids, warm grids and serial fallback).
        parallel_warm_neighbors(grid, parallel, deadline=deadline, memory=memory)
        if deadline is not None:
            deadline.check()
        if memory is not None:
            memory.check("grid")
        persist("grid")
        hooks.emit("grid", grid)
        phase_seconds["grid"] = perf_counter() - mark

        # Phase 2: the labeling process -> core mask.
        mark = perf_counter()
        if reached("cores"):
            core_mask = np.asarray(state["core_mask"], dtype=bool)
            _log.debug("labeling restored from checkpoint: %d core points", int(core_mask.sum()))
        elif hooks.core_mask is not None:
            core_mask = np.asarray(hooks.core_mask, dtype=bool)
            if core_mask.shape != (len(pts),):
                raise ParameterError(
                    f"hooks.core_mask has shape {core_mask.shape}; expected ({len(pts)},)"
                )
            _log.debug("labeling adopted from hooks: %d core points", int(core_mask.sum()))
            persist("cores", core_mask=core_mask)
        else:
            core_mask = parallel_label_cores(
                grid, min_pts, parallel,
                deadline=deadline, memory=memory, known_core=hooks.known_core,
            )
            _log.debug("labeling done: %d core points", int(core_mask.sum()))
            persist("cores", core_mask=core_mask)
        if deadline is not None:
            deadline.check()
        if memory is not None:
            memory.check("cores")
        hooks.emit("cores", core_mask)
        phase_seconds["cores"] = perf_counter() - mark

        # Phase 3: connect the core-cell graph (Lemma 1 components).
        mark = perf_counter()
        if reached("components"):
            core_labels = np.asarray(state["core_labels"], dtype=np.int64)
            k = int(state["n_components"])
            _log.debug("graph connectivity restored from checkpoint: %d components", k)
        else:
            core_labels, k = connect(grid, core_mask, deadline, parallel)
            _log.debug("graph connectivity done: %d components", k)
            persist("components", core_mask=core_mask, core_labels=core_labels, n_components=k)
        if deadline is not None:
            deadline.check()
        if memory is not None:
            memory.check("components")
        hooks.emit("components", (core_labels, k))
        phase_seconds["components"] = perf_counter() - mark

        # Phase 4: assign border points.
        mark = perf_counter()
        if reached("borders"):
            borders = dict(state["borders"])
            _log.debug(
                "border assignment restored from checkpoint: %d border points", len(borders)
            )
        else:
            borders = parallel_assign_borders(
                grid, core_mask, core_labels, parallel, deadline=deadline, memory=memory
            )
            _log.debug("border assignment done: %d border points", len(borders))
            persist(
                "borders",
                core_mask=core_mask,
                core_labels=core_labels,
                n_components=k,
                borders=borders,
            )
        if memory is not None:
            memory.check("borders")
        hooks.emit("borders", borders)
        phase_seconds["borders"] = perf_counter() - mark

    meta = dict(meta)
    meta["grid_cells"] = len(grid)
    meta["phase_seconds"] = phase_seconds
    # Kernel work this run triggered in this process (parallel runs only
    # see the parent's share — worker processes keep their own registries).
    kernel_counters = counters.delta_since(counters_before)
    if kernel_counters:
        meta["kernel_counters"] = kernel_counters
    if parallel is not None and parallel.supervise:
        meta["supervisor"] = sup_stats.as_dict()
    # Record the *effective* worker count: 1 when the serial fallback
    # kicked in (small n, or fewer cells than workers), else the pool size.
    meta["workers"] = effective_workers(parallel, len(pts), len(grid))
    if state is not None:
        meta["resumed_from_phase"] = str(state["phase"])
    return build_clustering(len(pts), core_mask, core_labels, borders, meta=meta)


def _adopt_grid(grid: Grid, pts: np.ndarray, eps: float) -> Grid:
    """Validate a donated grid against this run's inputs before adopting it."""
    if grid.eps != float(eps):
        raise ParameterError(
            f"hooks.grid was built for eps={grid.eps}; this run uses eps={eps}"
        )
    if grid.points.shape != np.shape(pts):
        raise ParameterError(
            f"hooks.grid covers points of shape {grid.points.shape}; "
            f"this run clusters shape {np.shape(pts)}"
        )
    if grid.points is not pts and not np.array_equal(grid.points, pts):
        raise ParameterError("hooks.grid was built over different points")
    return grid
