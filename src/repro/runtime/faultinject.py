"""Deterministic fault injection for the resilient runtime.

None of the robustness machinery — deadlines, memory guards, checkpoint
recovery, the degradation cascade — is trustworthy unless it can be
exercised in CI without real 12-hour runs, real OOM kills, or real ``kill
-9``.  This module makes every failure mode injectable under a context
manager:

>>> from repro.runtime.faultinject import inject_faults
>>> with inject_faults(clock_skew=3600.0, skew_after=10):
...     dbscan(points, eps, min_pts, time_budget=5.0)   # raises promptly
Traceback (most recent call last):
TimeoutExceeded: ...

Faults supported:

* **clock skips** — after ``skew_after`` clock reads, the runtime clock
  jumps forward by ``clock_skew`` seconds, so any active
  :class:`~repro.runtime.Deadline` sees its budget exhausted at the very
  next check;
* **allocation failures** — from the ``memory_fail_after``-th RSS poll
  onwards, :func:`repro.runtime.memory.current_rss` reports an absurdly
  large footprint, tripping any active
  :class:`~repro.runtime.MemoryBudget`;
* **checkpoint corruption** — every checkpoint file is damaged right
  after being written (truncated or overwritten with garbage), exercising
  the recover-from-corruption path of the resume logic;
* **worker faults** — shards of the supervised parallel pipeline
  (:mod:`repro.parallel.supervisor`), addressed as ``(phase, shard_seq)``,
  can be made to **kill** their worker process (``os._exit``, the
  observable shape of an OOM kill or segfault), **hang** it
  (a long sleep the supervisor's soft timeout must catch), or be
  **poisoned** (raise on every worker attempt while computing fine in the
  parent — the quarantine path's reason to exist).  Kill and hang fire a
  bounded number of times, coordinated across processes through token
  files in a temp directory, so the retry that follows recovery succeeds
  deterministically.

Injection is process-global (the hooks live in the respective modules)
but strictly scoped to the ``with`` block, re-entrant use is rejected, and
all faults are counted on the returned plan for assertions.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence, Tuple

from repro.runtime import checkpoint as checkpoint_mod
from repro.runtime import clock as clock_mod
from repro.runtime import memory as memory_mod

#: Fake RSS reported once allocation failure triggers (4 EiB).
_HUGE_RSS = 1 << 62

#: Exit status used for injected worker kills (the kernel OOM killer's
#: SIGKILL shows up as 137 = 128 + 9).
_KILL_STATUS = 137

ShardAddr = Tuple[str, int]


class InjectedWorkerFault(RuntimeError):
    """The failure raised by a poisoned shard inside a worker process."""


@dataclass(frozen=True)
class WorkerFaultSpec:
    """Picklable description of worker faults, shipped in phase payloads.

    The executor snapshots the active plan's spec into every pool payload
    (:func:`worker_fault_spec`), so the spec crosses the process boundary
    under both ``fork`` and ``spawn``.  ``token_dir`` holds the once-only
    coordination files for kill / hang faults; poison needs none — it is
    deterministic on purpose and fires on every *worker* attempt.
    """

    kill_shards: Tuple[ShardAddr, ...] = ()
    hang_shards: Tuple[ShardAddr, ...] = ()
    poison_shards: Tuple[ShardAddr, ...] = ()
    times: int = 1
    hang_seconds: float = 30.0
    token_dir: str = ""


def _claim(spec: WorkerFaultSpec, name: str, phase: str, seq: int) -> bool:
    """Atomically claim one of the fault's ``times`` firings (cross-process)."""
    for i in range(max(1, int(spec.times))):
        path = os.path.join(spec.token_dir, f"{name}-{phase}-{seq}-{i}")
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            continue
        os.close(fd)
        return True
    return False


def trigger_worker_fault(spec: WorkerFaultSpec, phase: str, seq: int) -> None:
    """Fire any fault addressed at ``(phase, seq)``; called from workers only."""
    addr = (phase, int(seq))
    if addr in spec.kill_shards and _claim(spec, "kill", phase, seq):
        os._exit(_KILL_STATUS)
    if addr in spec.hang_shards and _claim(spec, "hang", phase, seq):
        time.sleep(spec.hang_seconds)
    if addr in spec.poison_shards:
        raise InjectedWorkerFault(
            f"injected poison: shard {seq} of phase {phase!r} always fails in workers"
        )


def worker_fault_spec() -> Optional[WorkerFaultSpec]:
    """The active plan's worker-fault spec (``None`` outside injection)."""
    if _active is None or _active.worker_faults is None:
        return None
    return _active.worker_faults


@dataclass
class FaultPlan:
    """An active set of injected faults plus hit counters."""

    clock_skew: float = 0.0
    skew_after: int = 0
    memory_fail_after: Optional[int] = None
    corrupt_checkpoints: bool = False
    corruption_mode: str = "truncate"  # or "garbage"
    worker_faults: Optional[WorkerFaultSpec] = None

    clock_reads: int = field(default=0, init=False)
    memory_polls: int = field(default=0, init=False)
    checkpoints_corrupted: int = field(default=0, init=False)

    def worker_faults_fired(self, name: Optional[str] = None) -> int:
        """Count of claimed kill/hang firings (from the shared token dir).

        ``name`` filters to ``"kill"`` or ``"hang"``; poison firings are
        unbounded by design and not counted here.
        """
        spec = self.worker_faults
        if spec is None or not spec.token_dir or not os.path.isdir(spec.token_dir):
            return 0
        tokens = os.listdir(spec.token_dir)
        if name is not None:
            tokens = [t for t in tokens if t.startswith(f"{name}-")]
        return len(tokens)

    # ------------------------------------------------------------- hooks

    def _clock_hook(self, t: float) -> float:
        self.clock_reads += 1
        if self.clock_skew and self.clock_reads > self.skew_after:
            return t + self.clock_skew
        return t

    def _memory_hook(self) -> Optional[int]:
        self.memory_polls += 1
        if self.memory_fail_after is not None and self.memory_polls >= self.memory_fail_after:
            return _HUGE_RSS
        return None

    def _checkpoint_hook(self, path: str) -> None:
        if not self.corrupt_checkpoints:
            return
        self.checkpoints_corrupted += 1
        if self.corruption_mode == "garbage":
            with open(path, "wb") as fh:
                fh.write(b"\x00corrupt checkpoint\x00" * 7)
        else:
            size = os.path.getsize(path)
            with open(path, "r+b") as fh:
                fh.truncate(max(size // 2, 1))


_active: Optional[FaultPlan] = None

#: Journal appends observed by :func:`maybe_crash_after_journal_write`
#: since process start (the env-driven crash hook is 1-based on this).
_journal_appends = 0


def maybe_crash_after_journal_write(fh=None) -> None:
    """Env-driven ``kill -9`` equivalent for registry-journal appends.

    The restart oracle needs a server that dies *mid-journal-write*, and
    the server under test is a subprocess — a ``with inject_faults(...)``
    block in the test process cannot reach it.  Two environment variables
    stage the crash instead:

    * ``REPRO_FAULT_JOURNAL_CRASH=N`` — ``os._exit(137)`` (the observable
      shape of ``kill -9``) immediately after the N-th journal append of
      the process;
    * ``REPRO_FAULT_JOURNAL_TORN=1`` — additionally flush half of a fake
      journal record (no CRC match, no trailing newline) before dying, so
      the survivor file ends in a genuinely torn write the next load must
      truncate and quarantine.

    Called by :meth:`repro.service.store.FileStore.append` with the open
    journal handle; a no-op unless the variables are set.
    """
    global _journal_appends
    spec = os.environ.get("REPRO_FAULT_JOURNAL_CRASH")
    if not spec:
        return
    try:
        after = int(spec)
    except ValueError:
        return
    _journal_appends += 1
    if _journal_appends < after:
        return
    if os.environ.get("REPRO_FAULT_JOURNAL_TORN") and fh is not None:
        fh.write('00000000 {"op":"register","name":"torn-mid-wr')
        fh.flush()
        os.fsync(fh.fileno())
    os._exit(_KILL_STATUS)


@contextmanager
def inject_faults(
    *,
    clock_skew: float = 0.0,
    skew_after: int = 0,
    memory_fail_after: Optional[int] = None,
    corrupt_checkpoints: bool = False,
    corruption_mode: str = "truncate",
    kill_shards: Sequence[ShardAddr] = (),
    hang_shards: Sequence[ShardAddr] = (),
    poison_shards: Sequence[ShardAddr] = (),
    shard_fault_times: int = 1,
    hang_seconds: float = 30.0,
) -> Iterator[FaultPlan]:
    """Inject the given faults for the duration of the ``with`` block.

    Parameters
    ----------
    clock_skew:
        Seconds the runtime clock jumps forward (0 disables).
    skew_after:
        Number of clock reads before the jump applies (0 = immediately).
    memory_fail_after:
        RSS poll number (1-based) from which allocation failure is
        simulated; ``None`` disables.
    corrupt_checkpoints:
        Damage every checkpoint file immediately after it is written.
    corruption_mode:
        ``"truncate"`` (cut the file in half) or ``"garbage"`` (overwrite
        with non-npz bytes).
    kill_shards:
        ``(phase, shard_seq)`` addresses whose worker calls ``os._exit``
        (the shape of an OOM kill); fires ``shard_fault_times`` times.
    hang_shards:
        Addresses whose worker sleeps ``hang_seconds`` (exercises the
        supervisor's soft timeout); fires ``shard_fault_times`` times.
    poison_shards:
        Addresses that raise on *every* worker attempt while computing
        normally in the parent — the quarantine path's test vector.
    shard_fault_times:
        Total firings per kill/hang address, coordinated across worker
        processes, so the post-recovery retry deterministically succeeds.
    hang_seconds:
        Sleep length of a hung shard (should exceed the shard timeout
        under test by a wide margin).
    """
    global _active
    if _active is not None:
        raise RuntimeError("fault injection does not nest")
    if corruption_mode not in ("truncate", "garbage"):
        raise ValueError(f"unknown corruption_mode {corruption_mode!r}")
    worker_faults = None
    token_dir = None
    if kill_shards or hang_shards or poison_shards:
        token_dir = tempfile.mkdtemp(prefix="repro-faultinject-")
        worker_faults = WorkerFaultSpec(
            kill_shards=tuple((str(p), int(s)) for p, s in kill_shards),
            hang_shards=tuple((str(p), int(s)) for p, s in hang_shards),
            poison_shards=tuple((str(p), int(s)) for p, s in poison_shards),
            times=int(shard_fault_times),
            hang_seconds=float(hang_seconds),
            token_dir=token_dir,
        )
    plan = FaultPlan(
        clock_skew=clock_skew,
        skew_after=skew_after,
        memory_fail_after=memory_fail_after,
        corrupt_checkpoints=corrupt_checkpoints,
        corruption_mode=corruption_mode,
        worker_faults=worker_faults,
    )
    _active = plan
    if clock_skew:
        clock_mod.set_fault_hook(plan._clock_hook)
    if memory_fail_after is not None:
        memory_mod.set_fault_hook(plan._memory_hook)
    if corrupt_checkpoints:
        checkpoint_mod.set_fault_hook(plan._checkpoint_hook)
    try:
        yield plan
    finally:
        _active = None
        clock_mod.set_fault_hook(None)
        memory_mod.set_fault_hook(None)
        checkpoint_mod.set_fault_hook(None)
        if token_dir is not None:
            shutil.rmtree(token_dir, ignore_errors=True)
