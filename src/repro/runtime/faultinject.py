"""Deterministic fault injection for the resilient runtime.

None of the robustness machinery — deadlines, memory guards, checkpoint
recovery, the degradation cascade — is trustworthy unless it can be
exercised in CI without real 12-hour runs, real OOM kills, or real ``kill
-9``.  This module makes every failure mode injectable under a context
manager:

>>> from repro.runtime.faultinject import inject_faults
>>> with inject_faults(clock_skew=3600.0, skew_after=10):
...     dbscan(points, eps, min_pts, time_budget=5.0)   # raises promptly
Traceback (most recent call last):
TimeoutExceeded: ...

Faults supported:

* **clock skips** — after ``skew_after`` clock reads, the runtime clock
  jumps forward by ``clock_skew`` seconds, so any active
  :class:`~repro.runtime.Deadline` sees its budget exhausted at the very
  next check;
* **allocation failures** — from the ``memory_fail_after``-th RSS poll
  onwards, :func:`repro.runtime.memory.current_rss` reports an absurdly
  large footprint, tripping any active
  :class:`~repro.runtime.MemoryBudget`;
* **checkpoint corruption** — every checkpoint file is damaged right
  after being written (truncated or overwritten with garbage), exercising
  the recover-from-corruption path of the resume logic.

Injection is process-global (the hooks live in the respective modules)
but strictly scoped to the ``with`` block, re-entrant use is rejected, and
all faults are counted on the returned plan for assertions.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.runtime import checkpoint as checkpoint_mod
from repro.runtime import clock as clock_mod
from repro.runtime import memory as memory_mod

#: Fake RSS reported once allocation failure triggers (4 EiB).
_HUGE_RSS = 1 << 62


@dataclass
class FaultPlan:
    """An active set of injected faults plus hit counters."""

    clock_skew: float = 0.0
    skew_after: int = 0
    memory_fail_after: Optional[int] = None
    corrupt_checkpoints: bool = False
    corruption_mode: str = "truncate"  # or "garbage"

    clock_reads: int = field(default=0, init=False)
    memory_polls: int = field(default=0, init=False)
    checkpoints_corrupted: int = field(default=0, init=False)

    # ------------------------------------------------------------- hooks

    def _clock_hook(self, t: float) -> float:
        self.clock_reads += 1
        if self.clock_skew and self.clock_reads > self.skew_after:
            return t + self.clock_skew
        return t

    def _memory_hook(self) -> Optional[int]:
        self.memory_polls += 1
        if self.memory_fail_after is not None and self.memory_polls >= self.memory_fail_after:
            return _HUGE_RSS
        return None

    def _checkpoint_hook(self, path: str) -> None:
        if not self.corrupt_checkpoints:
            return
        self.checkpoints_corrupted += 1
        if self.corruption_mode == "garbage":
            with open(path, "wb") as fh:
                fh.write(b"\x00corrupt checkpoint\x00" * 7)
        else:
            size = os.path.getsize(path)
            with open(path, "r+b") as fh:
                fh.truncate(max(size // 2, 1))


_active: Optional[FaultPlan] = None


@contextmanager
def inject_faults(
    *,
    clock_skew: float = 0.0,
    skew_after: int = 0,
    memory_fail_after: Optional[int] = None,
    corrupt_checkpoints: bool = False,
    corruption_mode: str = "truncate",
) -> Iterator[FaultPlan]:
    """Inject the given faults for the duration of the ``with`` block.

    Parameters
    ----------
    clock_skew:
        Seconds the runtime clock jumps forward (0 disables).
    skew_after:
        Number of clock reads before the jump applies (0 = immediately).
    memory_fail_after:
        RSS poll number (1-based) from which allocation failure is
        simulated; ``None`` disables.
    corrupt_checkpoints:
        Damage every checkpoint file immediately after it is written.
    corruption_mode:
        ``"truncate"`` (cut the file in half) or ``"garbage"`` (overwrite
        with non-npz bytes).
    """
    global _active
    if _active is not None:
        raise RuntimeError("fault injection does not nest")
    if corruption_mode not in ("truncate", "garbage"):
        raise ValueError(f"unknown corruption_mode {corruption_mode!r}")
    plan = FaultPlan(
        clock_skew=clock_skew,
        skew_after=skew_after,
        memory_fail_after=memory_fail_after,
        corrupt_checkpoints=corrupt_checkpoints,
        corruption_mode=corruption_mode,
    )
    _active = plan
    if clock_skew:
        clock_mod.set_fault_hook(plan._clock_hook)
    if memory_fail_after is not None:
        memory_mod.set_fault_hook(plan._memory_hook)
    if corrupt_checkpoints:
        checkpoint_mod.set_fault_hook(plan._checkpoint_hook)
    try:
        yield plan
    finally:
        _active = None
        clock_mod.set_fault_hook(None)
        memory_mod.set_fault_hook(None)
        checkpoint_mod.set_fault_hook(None)
