"""Lloyd's k-means with k-means++ seeding.

Implemented as the contrast baseline for the paper's opening claim
(Section 1, Figure 1): "the main advantage of density-based clustering
over methods such as k-means is its capability of discovering clusters
with arbitrary shapes (while k-means typically returns ball-like
clusters)".  ``examples/arbitrary_shapes.py`` and the test suite make the
claim executable: on snakes/rings DBSCAN recovers the generating
components while k-means cuts across them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ParameterError
from repro.geometry import distance as dm
from repro.utils.rng import SeedLike, make_rng
from repro.utils.validation import as_points


@dataclass(frozen=True)
class KMeansResult:
    """Fitted k-means model."""

    centers: np.ndarray
    labels: np.ndarray
    inertia: float
    n_iter: int

    @property
    def k(self) -> int:
        return len(self.centers)


def kmeans(
    points,
    k: int,
    *,
    max_iter: int = 100,
    tol: float = 1e-6,
    seed: SeedLike = None,
) -> KMeansResult:
    """Cluster ``points`` into ``k`` ball-like groups (Lloyd's algorithm)."""
    pts = as_points(points)
    if not 1 <= k <= len(pts):
        raise ParameterError(f"k must be in [1, {len(pts)}]; got {k}")
    rng = make_rng(seed)
    centers = _plus_plus_init(pts, k, rng)

    labels = np.zeros(len(pts), dtype=np.int64)
    for iteration in range(1, max_iter + 1):
        sq = dm.pairwise_sq_dists(pts, centers)
        labels = np.argmin(sq, axis=1)
        new_centers = centers.copy()
        for j in range(k):
            members = pts[labels == j]
            if len(members):
                new_centers[j] = members.mean(axis=0)
            else:
                # Re-seed an empty cluster at the worst-served point.
                new_centers[j] = pts[int(np.argmax(sq.min(axis=1)))]
        shift = float(np.abs(new_centers - centers).max())
        centers = new_centers
        if shift <= tol:
            break

    sq = dm.pairwise_sq_dists(pts, centers)
    labels = np.argmin(sq, axis=1)
    inertia = float(sq[np.arange(len(pts)), labels].sum())
    return KMeansResult(centers=centers, labels=labels, inertia=inertia, n_iter=iteration)


def _plus_plus_init(pts: np.ndarray, k: int, rng: np.random.Generator) -> np.ndarray:
    """k-means++ seeding: spread the initial centers out proportionally to
    squared distance from the chosen set."""
    centers = np.empty((k, pts.shape[1]))
    centers[0] = pts[int(rng.integers(0, len(pts)))]
    closest_sq = dm.sq_dists_to_point(pts, centers[0])
    for j in range(1, k):
        total = float(closest_sq.sum())
        if total <= 0:
            centers[j:] = centers[0]
            break
        probs = closest_sq / total
        centers[j] = pts[int(rng.choice(len(pts), p=probs))]
        closest_sq = np.minimum(closest_sq, dm.sq_dists_to_point(pts, centers[j]))
    return centers


def purity(labels: np.ndarray, provenance: np.ndarray) -> float:
    """Mean per-cluster majority share against generator provenance.

    Used to score how well a clustering recovers the generating
    components; noise points (label -1) count as their own singletons.
    """
    labels = np.asarray(labels)
    provenance = np.asarray(provenance)
    if labels.shape != provenance.shape:
        raise ParameterError("labels and provenance must have the same shape")
    total = 0
    correct = 0
    for label in np.unique(labels):
        members = provenance[labels == label]
        if label == -1:
            # Each noise point trivially pure.
            total += len(members)
            correct += len(members)
            continue
        counts = np.bincount(members[members >= 0]) if (members >= 0).any() else []
        majority = int(np.max(counts)) if len(counts) else 0
        total += len(members)
        correct += majority
    return correct / total if total else 1.0
