"""Fully-approximate DBSCAN: approximate core determination as well.

The SIGMOD'15 algorithm keeps Definition 1 exact — core status is decided
with true eps-ball counts — and only approximates the core-cell graph.
The journal version of this work (Gan & Tao, TODS 2017) additionally lets
the *core test itself* use an approximate count, which removes the last
non-Lemma-5 distance computations from the pipeline.

Here a point is labeled core when an approximate range count (Lemma 5
structure over the whole dataset) reaches ``MinPts``.  The count lies in
``[|B(p, eps)|, |B(p, eps(1+rho))|]``, so

* every exact core point stays core, and
* every reported core point is a core point of DBSCAN(eps(1+rho)).

Consequently the output is still sandwiched between exact DBSCAN at eps
and at eps(1+rho) — the Theorem 3 guarantee survives with both
relaxations, which the property tests verify.
"""

from __future__ import annotations

import numpy as np

from repro.core.border import assign_borders
from repro.core.cellgraph import approx_components
from repro.core.params import ApproxParams
from repro.core.result import Clustering, build_clustering
from repro.grid.cells import Grid
from repro.grid.hierarchy import FlatHierarchy
from repro.utils.validation import as_points


def approx_core_mask(
    points: np.ndarray, eps: float, min_pts: int, rho: float, deadline=None
) -> np.ndarray:
    """Approximate core labeling via one whole-dataset Lemma 5 structure.

    All ``n`` core-ness tests resolve through a single batched
    :meth:`FlatHierarchy.count_many` call; an optional ``deadline`` is
    polled inside that call's frontier loop.
    """
    structure = FlatHierarchy(points, eps, rho)
    return structure.count_many(points, deadline=deadline) >= min_pts


def approx_dbscan_full(
    points,
    eps: float,
    min_pts: int,
    rho: float = 0.001,
) -> Clustering:
    """rho-approximate DBSCAN with approximate core determination.

    Same pipeline as :func:`repro.algorithms.approx.approx_dbscan`, with
    the exact labeling process replaced by :func:`approx_core_mask`.
    """
    params = ApproxParams(eps, min_pts, rho)
    pts = as_points(points)
    core_mask = approx_core_mask(pts, params.eps, params.min_pts, params.rho)
    grid = Grid(pts, params.eps)
    core_labels, _k = approx_components(grid, core_mask, params.rho)
    borders = assign_borders(grid, core_mask, core_labels)
    return build_clustering(
        len(pts),
        core_mask,
        core_labels,
        borders,
        meta={
            "algorithm": "approx_full",
            "eps": params.eps,
            "min_pts": params.min_pts,
            "rho": params.rho,
        },
    )
