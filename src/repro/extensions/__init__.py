"""Extensions beyond the SIGMOD'15 paper.

* stability profiling over eps (the OPTICS-flavoured Figure 6 discussion);
* a full OPTICS implementation with DBSCAN extraction;
* the TODS'17 fully-approximate variant (approximate core labeling);
* a k-means baseline for the Figure 1 arbitrary-shapes claim.
"""

from repro.extensions.approx_cores import approx_core_mask, approx_dbscan_full
from repro.extensions.kmeans import KMeansResult, kmeans, purity
from repro.extensions.optics import (
    OPTICSResult,
    extract_dbscan,
    optics,
    reachability_profile,
)
from repro.extensions.stability import (
    Plateau,
    cluster_count_profile,
    plateaus,
    suggest_eps,
)

__all__ = [
    "approx_dbscan_full",
    "approx_core_mask",
    "cluster_count_profile",
    "plateaus",
    "suggest_eps",
    "Plateau",
    "optics",
    "extract_dbscan",
    "reachability_profile",
    "OPTICSResult",
    "kmeans",
    "purity",
    "KMeansResult",
]
