"""OPTICS: Ordering Points To Identify the Clustering Structure.

The paper leans on OPTICS (Ankerst, Breunig, Kriegel & Sander, SIGMOD'99
— its reference [2]) twice: for the observation that "there is a
comfortable range of eps that will yield good DBSCAN clusters", and for
the view that different eps values expose the data at different
granularities (the Figure 6 discussion).  This module implements OPTICS
so those claims are executable:

* :func:`optics` computes the cluster ordering with core- and
  reachability-distances, using the same kd-tree substrate as KDD96;
* :func:`extract_dbscan` re-derives a DBSCAN clustering from the ordering
  for any ``eps' <= eps`` — one OPTICS run answers a whole eps sweep;
* :func:`reachability_profile` renders the classic reachability plot as
  text.

The extraction reproduces DBSCAN's clusters exactly on core points (a
property test in the suite); border points follow the ordering's
first-reached assignment, as in the original OPTICS paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import heapq

import numpy as np

from repro.core.params import DBSCANParams
from repro.core.result import Clustering, build_clustering
from repro.errors import ParameterError
from repro.geometry import distance as dm
from repro.index.kdtree import KDTree
from repro.utils.validation import as_points

UNDEFINED = np.inf


@dataclass(frozen=True)
class OPTICSResult:
    """The cluster ordering.

    ``order[i]`` is the index of the i-th point in the ordering;
    ``reachability[j]`` / ``core_distance[j]`` are per *point index* (not
    per position), with ``inf`` meaning undefined.
    """

    points: np.ndarray
    order: np.ndarray
    reachability: np.ndarray
    core_distance: np.ndarray
    eps: float
    min_pts: int

    @property
    def n(self) -> int:
        return len(self.points)


def optics(points, eps: float, min_pts: int) -> OPTICSResult:
    """Compute the OPTICS ordering with generating radius ``eps``."""
    params = DBSCANParams(eps, min_pts)
    pts = as_points(points)
    n = len(pts)
    tree = KDTree(pts)

    reach = np.full(n, UNDEFINED)
    core_dist = np.full(n, UNDEFINED)
    processed = np.zeros(n, dtype=bool)
    order: List[int] = []

    # Precompute neighbourhoods lazily; each point is expanded once.
    def neighborhood(i: int) -> Tuple[np.ndarray, np.ndarray]:
        idx = tree.range_query(pts[i], params.eps)
        sq = dm.sq_dists_to_point(pts[idx], pts[i])
        return idx, np.sqrt(sq)

    for start in range(n):
        if processed[start]:
            continue
        idx, dist = neighborhood(start)
        processed[start] = True
        order.append(start)
        core_dist[start] = _core_distance(dist, params.min_pts)
        if not np.isfinite(core_dist[start]):
            continue
        # Expand around `start` with a priority queue keyed by the current
        # best reachability; stale entries are skipped on pop.
        seeds: List[Tuple[float, int]] = []
        _update(seeds, idx, dist, core_dist[start], reach, processed)
        while seeds:
            r, j = heapq.heappop(seeds)
            if processed[j] or r > reach[j]:
                continue
            jdx, jdist = neighborhood(j)
            processed[j] = True
            order.append(j)
            core_dist[j] = _core_distance(jdist, params.min_pts)
            if np.isfinite(core_dist[j]):
                _update(seeds, jdx, jdist, core_dist[j], reach, processed)

    return OPTICSResult(
        points=pts,
        order=np.asarray(order, dtype=np.int64),
        reachability=reach,
        core_distance=core_dist,
        eps=params.eps,
        min_pts=params.min_pts,
    )


def _core_distance(dist: np.ndarray, min_pts: int) -> float:
    if len(dist) < min_pts:
        return UNDEFINED
    return float(np.partition(dist, min_pts - 1)[min_pts - 1])


def _update(seeds, idx, dist, core_distance, reach, processed):
    new_reach = np.maximum(dist, core_distance)
    for j, r in zip(idx, new_reach):
        j = int(j)
        if processed[j]:
            continue
        if r < reach[j]:
            reach[j] = float(r)
            heapq.heappush(seeds, (float(r), j))


def extract_dbscan(result: OPTICSResult, eps: float) -> Clustering:
    """DBSCAN clustering at radius ``eps' <= eps`` from an OPTICS ordering.

    The ExtractDBSCAN-Clustering procedure of the OPTICS paper: walk the
    ordering; a reachability above eps' starts a new cluster whenever the
    point's own core-distance is within eps', otherwise marks noise.
    Core points receive exactly DBSCAN's clusters; border points join the
    cluster through which the ordering first reached them.
    """
    if eps > result.eps * (1 + 1e-12):
        raise ParameterError(
            f"extraction radius {eps} exceeds the OPTICS generating radius {result.eps}"
        )
    n = result.n
    # The same inflated decision boundary as every distance kernel
    # (dm.sq_radius), in true-distance form: reachability and core
    # distances are stored unsquared.
    limit = float(np.sqrt(dm.sq_radius(eps)))
    labels = np.full(n, -1, dtype=np.int64)
    core_mask = np.zeros(n, dtype=bool)
    cluster_id = -1
    for j in result.order:
        if result.reachability[j] > limit:
            if result.core_distance[j] <= limit:
                cluster_id += 1
                labels[j] = cluster_id
            else:
                labels[j] = -1
        else:
            labels[j] = cluster_id
        if result.core_distance[j] <= limit:
            core_mask[j] = True

    borders = {
        int(i): (int(labels[i]),)
        for i in range(n)
        if labels[i] >= 0 and not core_mask[i]
    }
    core_labels = np.where(core_mask, labels, -1)
    return build_clustering(
        n,
        core_mask,
        core_labels,
        borders,
        meta={
            "algorithm": "optics_extract",
            "eps": float(eps),
            "min_pts": result.min_pts,
            "generating_eps": result.eps,
        },
    )


def reachability_profile(
    result: OPTICSResult,
    width: int = 72,
    height: int = 12,
    cap: Optional[float] = None,
) -> str:
    """ASCII reachability plot (valleys = clusters, peaks = separators)."""
    reach = result.reachability[result.order].copy()
    finite = reach[np.isfinite(reach)]
    top = cap if cap is not None else (finite.max() * 1.05 if len(finite) else 1.0)
    reach[~np.isfinite(reach)] = top
    # Downsample to `width` columns by max-pooling (preserves separators).
    cols = np.array_split(reach, min(width, len(reach)))
    heights = np.array([c.max() for c in cols]) / top
    rows = []
    for level in range(height, 0, -1):
        threshold = level / height
        rows.append("".join("#" if h >= threshold else " " for h in heights))
    rows.append("-" * len(heights))
    return "\n".join(rows)
