"""Cluster-stability profiling over eps (an OPTICS-flavoured extension).

Section 4.2 and Figure 6 of the paper discuss how the "right" eps is one
whose clustering is insensitive to small perturbation: an eps sitting just
below a merge distance is a *bad* parameter (their epsilon_3), and the
OPTICS paper is cited for the view that sweeping eps exposes the cluster
structure at all granularities.

This module operationalises that discussion: sweep eps, record the number
of clusters, extract the plateaus (maximal eps ranges with a constant
cluster count), and recommend the midpoint of a long plateau — a stable
parameter for which rho-approximate DBSCAN provably matches exact DBSCAN
for every rho below the plateau's relative width.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Tuple

import numpy as np

from repro.algorithms.approx import approx_dbscan
from repro.errors import ParameterError

ClusterCounter = Callable[[np.ndarray, float, int], int]


def _default_counter(points: np.ndarray, eps: float, min_pts: int) -> int:
    # The sweep only needs cluster counts, so the linear-time approximate
    # algorithm with a tiny rho is the right engine.
    return approx_dbscan(points, eps, min_pts, rho=0.001).n_clusters


@dataclass(frozen=True)
class Plateau:
    """A maximal eps range over which the cluster count is constant."""

    eps_lo: float
    eps_hi: float
    n_clusters: int

    @property
    def relative_width(self) -> float:
        """``(hi - lo) / lo`` — the rho head-room this plateau offers."""
        return (self.eps_hi - self.eps_lo) / self.eps_lo if self.eps_lo > 0 else np.inf

    @property
    def midpoint(self) -> float:
        return 0.5 * (self.eps_lo + self.eps_hi)


def cluster_count_profile(
    points: np.ndarray,
    min_pts: int,
    eps_values: Sequence[float],
    counter: ClusterCounter = _default_counter,
) -> Tuple[Tuple[float, int], ...]:
    """``(eps, n_clusters)`` along the sweep."""
    if len(eps_values) == 0:
        raise ParameterError("eps_values must be non-empty")
    return tuple(
        (float(eps), counter(points, float(eps), min_pts)) for eps in eps_values
    )


def plateaus(profile: Sequence[Tuple[float, int]]) -> Tuple[Plateau, ...]:
    """Merge consecutive sweep samples with equal cluster counts."""
    out = []
    start = 0
    for i in range(1, len(profile) + 1):
        if i == len(profile) or profile[i][1] != profile[start][1]:
            out.append(
                Plateau(profile[start][0], profile[i - 1][0], profile[start][1])
            )
            start = i
    return tuple(out)


def suggest_eps(
    points: np.ndarray,
    min_pts: int,
    eps_values: Sequence[float],
    *,
    min_clusters: int = 2,
    counter: ClusterCounter = _default_counter,
) -> Optional[Plateau]:
    """The widest plateau with at least ``min_clusters`` clusters, or None.

    Its midpoint is a stable eps: by the sandwich theorem, rho-approximate
    DBSCAN there returns the exact clusters for any
    ``rho < plateau.relative_width / 2`` (the inflated radius stays inside
    the plateau).
    """
    profile = cluster_count_profile(points, min_pts, eps_values, counter=counter)
    candidates = [p for p in plateaus(profile) if p.n_clusters >= min_clusters]
    if not candidates:
        return None
    return max(candidates, key=lambda p: p.eps_hi - p.eps_lo)
