"""The USEC problem and the Lemma 4 reduction to DBSCAN.

**Unit-Spherical Emptiness Checking (USEC)**: given a set of points
``S_pt`` and a set of balls ``S_ball`` of identical radius in ``R^d``,
decide whether any point is covered by any ball (Section 2.3).

USEC in 3D is widely believed to require ``Ω(n^{4/3})`` time, and for
``d >= 5`` it is Hopcroft hard (Lemma 3, Erickson).  Lemma 4 of the paper
turns any DBSCAN algorithm into a USEC solver at ``O(n)`` extra cost:

1. let ``P`` be the union of ``S_pt`` and the ball centres;
2. run DBSCAN on ``P`` with ``eps`` = the balls' radius and ``MinPts = 1``;
3. answer *yes* iff some point of ``S_pt`` shares a cluster with some
   centre.

This module makes the reduction executable: :func:`usec_via_dbscan` wires
an arbitrary DBSCAN implementation through the reduction, and
:func:`usec_brute` is the obvious quadratic oracle the tests compare
against.  Together they constitute a machine-checked proof-of-concept of
Theorem 1's reduction direction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.result import Clustering
from repro.errors import DataError, ParameterError
from repro.geometry import distance as dm
from repro.utils.rng import SeedLike, make_rng
from repro.utils.validation import as_points

#: Type of the DBSCAN black box ``A`` of Lemma 4.
DBSCANSolver = Callable[[np.ndarray, float, int], Clustering]


@dataclass(frozen=True)
class USECInstance:
    """A USEC instance: query points, equal-radius ball centres, the radius."""

    points: np.ndarray
    centers: np.ndarray
    radius: float

    def __post_init__(self) -> None:
        points = as_points(self.points)
        centers = as_points(self.centers)
        if points.shape[1] != centers.shape[1]:
            raise DataError("points and centers must share dimensionality")
        if self.radius <= 0:
            raise ParameterError(f"radius must be positive; got {self.radius}")
        object.__setattr__(self, "points", points)
        object.__setattr__(self, "centers", centers)

    @property
    def size(self) -> int:
        """The instance size ``n = |S_pt| + |S_ball|``."""
        return len(self.points) + len(self.centers)


def usec_brute(instance: USECInstance) -> bool:
    """Quadratic USEC oracle: check all point/ball pairs directly."""
    return dm.any_within(instance.points, instance.centers, instance.radius)


def usec_via_dbscan(instance: USECInstance, solver: DBSCANSolver) -> bool:
    """Solve USEC through the Lemma 4 reduction with ``solver`` as the black box.

    The black box must solve the exact DBSCAN problem (Problem 1); the
    reduction then answers USEC in ``T(n) + O(n)`` total time.
    """
    merged = np.vstack([instance.points, instance.centers])
    clustering = solver(merged, instance.radius, 1)
    labels = clustering.labels
    n_pt = len(instance.points)
    point_clusters = set(labels[:n_pt].tolist())
    center_clusters = set(labels[n_pt:].tolist())
    point_clusters.discard(-1)
    center_clusters.discard(-1)
    return not point_clusters.isdisjoint(center_clusters)


def random_instance(
    n_points: int,
    n_balls: int,
    d: int,
    radius: float,
    *,
    domain: float = 100.0,
    seed: SeedLike = None,
) -> USECInstance:
    """Uniform random USEC instance in ``[0, domain]^d``.

    Choosing ``radius`` around ``domain / n^{1/d}`` yields a healthy mix of
    yes- and no-instances.
    """
    rng = make_rng(seed)
    pts = rng.uniform(0.0, domain, size=(n_points, d))
    centers = rng.uniform(0.0, domain, size=(n_balls, d))
    return USECInstance(pts, centers, radius)


def planted_instance(
    n_points: int,
    n_balls: int,
    d: int,
    radius: float,
    *,
    answer: bool,
    domain: float = 100.0,
    seed: SeedLike = None,
) -> USECInstance:
    """Instance with a known answer.

    ``answer=True`` plants one point strictly inside a ball;
    ``answer=False`` pushes every point at least ``radius`` away from every
    centre by rejection sampling.
    """
    rng = make_rng(seed)
    centers = rng.uniform(0.0, domain, size=(n_balls, d))
    pts = np.empty((n_points, d))
    filled = 0
    while filled < n_points:
        batch = rng.uniform(0.0, domain, size=(max(64, n_points), d))
        sq = dm.pairwise_sq_dists(batch, centers)
        # Keep a safety margin so floating-point noise cannot flip the answer.
        far = np.sqrt(sq.min(axis=1)) > radius * 1.001
        good = batch[far]
        take = min(len(good), n_points - filled)
        pts[filled:filled + take] = good[:take]
        filled += take
    if answer:
        target = int(rng.integers(0, n_balls))
        direction = rng.normal(size=d)
        direction /= np.linalg.norm(direction)
        pts[int(rng.integers(0, n_points))] = (
            centers[target] + direction * radius * float(rng.uniform(0.0, 0.9))
        )
    return USECInstance(pts, centers, radius)
