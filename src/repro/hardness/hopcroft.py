"""Hopcroft's problem — the root of the paper's lower-bound chain.

**Hopcroft's problem**: given points and lines in the plane, decide whether
any point lies on any line (Section 2.3).  It is widely believed to require
``Ω(n^{4/3})`` time; Erickson proved that bound for a broad class of
algorithms, and proved that USEC in dimension ``d >= 5`` is *Hopcroft hard*
(Lemma 3).  Chained with Lemma 4 this yields Theorem 1: a DBSCAN algorithm
beating ``n^{4/3}`` for ``d >= 5`` would crack Hopcroft's problem.

This module supplies instance types and brute-force deciders (the baselines
a sub-``n^{4/3}`` algorithm would have to beat), plus
:func:`lift_incidence` — the classical *lifting map* that turns
point-on-circle questions into point-on-plane questions.  The lifting map
is the geometric heart of the equivalence between "flat" incidence problems
(Hopcroft) and "spherical" ones (USEC); the full Erickson reduction
additionally needs infinitesimal algebraic perturbations that no
floating-point implementation can honour, so the asymptotic transfer lives
in the cited papers while the code preserves — and the tests verify — the
exact geometric identity underneath it.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import DataError
from repro.utils.rng import SeedLike, make_rng


@dataclass(frozen=True)
class Line:
    """The line ``a*x + b*y + c = 0`` (not both ``a`` and ``b`` zero)."""

    a: float
    b: float
    c: float

    def __post_init__(self) -> None:
        if self.a == 0 and self.b == 0:
            raise DataError("a line needs a non-zero normal vector")

    def evaluate(self, x: float, y: float) -> float:
        return self.a * x + self.b * y + self.c

    def contains(self, x: float, y: float, tol: float = 0.0) -> bool:
        value = self.evaluate(x, y)
        scale = max(abs(self.a), abs(self.b), abs(self.c), 1.0)
        return abs(value) <= tol * scale


@dataclass(frozen=True)
class HopcroftInstance:
    """Points and lines in the plane."""

    points: np.ndarray  # (n, 2)
    lines: Tuple[Line, ...]

    def __post_init__(self) -> None:
        points = np.asarray(self.points, dtype=np.float64)
        if points.ndim != 2 or points.shape[1] != 2:
            raise DataError("Hopcroft points must have shape (n, 2)")
        object.__setattr__(self, "points", points)
        object.__setattr__(self, "lines", tuple(self.lines))

    @property
    def size(self) -> int:
        return len(self.points) + len(self.lines)


def hopcroft_brute(instance: HopcroftInstance, tol: float = 1e-9) -> bool:
    """Decide incidence by checking every point/line pair.

    Floating-point instances need a relative tolerance; pass ``tol=0`` for
    instances constructed with exactly representable coordinates.
    """
    pts = instance.points
    for line in instance.lines:
        values = line.a * pts[:, 0] + line.b * pts[:, 1] + line.c
        scale = max(abs(line.a), abs(line.b), abs(line.c), 1.0)
        if (np.abs(values) <= tol * scale).any():
            return True
    return False


def hopcroft_exact_int(
    points: Sequence[Tuple[int, int]],
    lines: Sequence[Tuple[int, int, int]],
) -> bool:
    """Exact incidence for integer points/lines via rational arithmetic."""
    for a, b, c in lines:
        fa, fb, fc = Fraction(a), Fraction(b), Fraction(c)
        for x, y in points:
            if fa * x + fb * y + fc == 0:
                return True
    return False


# --------------------------------------------------------------------------
# The lifting map: circles <-> planes
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class Circle:
    """The circle with centre ``(cx, cy)`` and radius ``r > 0``."""

    cx: float
    cy: float
    r: float

    def __post_init__(self) -> None:
        if self.r <= 0:
            raise DataError("circle radius must be positive")

    def contains_on_boundary(self, x: float, y: float, tol: float = 0.0) -> bool:
        value = (x - self.cx) ** 2 + (y - self.cy) ** 2 - self.r * self.r
        scale = max(self.r * self.r, 1.0)
        return abs(value) <= tol * scale


@dataclass(frozen=True)
class Plane3D:
    """The plane ``u*x + v*y + w*z + t = 0`` in 3D."""

    u: float
    v: float
    w: float
    t: float

    def evaluate(self, p) -> float:
        return self.u * p[0] + self.v * p[1] + self.w * p[2] + self.t


def lift_point(x: float, y: float) -> Tuple[float, float, float]:
    """The lifting map ``(x, y) -> (x, y, x^2 + y^2)`` onto the paraboloid."""
    return (x, y, x * x + y * y)


def lift_circle(circle: Circle) -> Plane3D:
    """Image of a circle under the lifting map.

    Expanding ``(x-cx)^2 + (y-cy)^2 = r^2`` with ``z = x^2 + y^2`` gives
    ``z - 2*cx*x - 2*cy*y + (cx^2 + cy^2 - r^2) = 0`` — a plane.  A point
    lies **on** the circle iff its lift lies **on** the plane (and inside
    the disk iff the lift lies below it), which is the exact identity that
    lets spherical incidence problems trade places with flat ones.
    """
    return Plane3D(
        u=-2.0 * circle.cx,
        v=-2.0 * circle.cy,
        w=1.0,
        t=circle.cx * circle.cx + circle.cy * circle.cy - circle.r * circle.r,
    )


def lift_incidence(
    points: np.ndarray, circles: Sequence[Circle]
) -> Tuple[np.ndarray, List[Plane3D]]:
    """Lift a point-on-circle instance to a point-on-plane instance in 3D.

    Returns the lifted points (shape ``(n, 3)``) and planes; for every pair
    ``(i, j)``: point ``i`` is on circle ``j``  <=>  lifted point ``i`` is
    on plane ``j`` (an exact algebraic identity, verified in the tests with
    rational arithmetic).
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[1] != 2:
        raise DataError("points must have shape (n, 2)")
    lifted = np.column_stack([points[:, 0], points[:, 1], (points ** 2).sum(axis=1)])
    planes = [lift_circle(c) for c in circles]
    return lifted, planes


# --------------------------------------------------------------------------
# Instance generators
# --------------------------------------------------------------------------

def random_instance(
    n_points: int,
    n_lines: int,
    *,
    incident: bool,
    domain: float = 100.0,
    seed: SeedLike = None,
) -> HopcroftInstance:
    """Random instance with a planted answer.

    ``incident=True`` plants one exact incidence (integer coordinates so
    floating point cannot lose it); ``incident=False`` nudges every point
    off every line onto half-integer coordinates, which integer lines
    cannot hit.
    """
    rng = make_rng(seed)
    pts = rng.integers(-int(domain), int(domain), size=(n_points, 2)).astype(np.float64)
    lines = []
    for _i in range(n_lines):
        a, b = 0, 0
        while a == 0 and b == 0:
            a, b = int(rng.integers(-9, 10)), int(rng.integers(-9, 10))
        c = int(rng.integers(-int(domain), int(domain)))
        lines.append(Line(float(a), float(b), float(c)))
    if incident:
        line = lines[int(rng.integers(0, n_lines))]
        # An integer-friendly point on the line a x + b y + c = 0.
        if line.b != 0:
            x = float(int(rng.integers(-10, 11)) * int(line.b))
            y = -(line.a * x + line.c) / line.b
        else:
            y = float(int(rng.integers(-10, 11)))
            x = -(line.b * y + line.c) / line.a
        pts[int(rng.integers(0, n_points))] = (x, y)
        return HopcroftInstance(pts, tuple(lines))
    # Ensure a strict no-instance: re-perturb any point whose residual
    # against some line is not comfortably positive.
    instance = HopcroftInstance(pts, tuple(lines))
    while True:
        residuals = _residual_matrix(instance)
        bad = np.nonzero(residuals.min(axis=1) < 1e-6)[0]
        if len(bad) == 0:
            return instance
        pts[bad] += rng.uniform(0.25, 0.75, size=(len(bad), 2))
        instance = HopcroftInstance(pts, tuple(lines))


def _residual_matrix(instance: HopcroftInstance) -> np.ndarray:
    """|a x + b y + c| / hypot(a, b) for every (point, line) pair."""
    pts = instance.points
    out = np.empty((len(pts), len(instance.lines)))
    for j, line in enumerate(instance.lines):
        norm = float(np.hypot(line.a, line.b))
        out[:, j] = np.abs(line.a * pts[:, 0] + line.b * pts[:, 1] + line.c) / norm
    return out
