"""Grid-accelerated USEC solving.

The brute-force USEC oracle costs O(|S_pt| * |S_ball|); this module adds
the practical counterpart used by the larger hardness benchmarks: bucket
the ball centres in a grid of side ``r / sqrt(d)`` and test each point
only against centres in eps-neighbouring cells — the same spatial-hashing
idea the DBSCAN algorithms use.  (No contradiction with Theorem 1: the
lower bound is worst-case; on random instances spatial hashing wins big.)
"""

from __future__ import annotations

import numpy as np

from repro.geometry import distance as dm
from repro.grid.cells import Grid
from repro.hardness.usec import USECInstance


def usec_grid(instance: USECInstance) -> bool:
    """Decide USEC by hashing the centres into a grid.

    Exact (no approximation): every (point, centre) pair within the
    radius lies in eps-neighbouring cells of the centre grid, so no
    qualifying pair is missed.
    """
    centers = instance.centers
    points = instance.points
    radius = instance.radius
    grid = Grid(centers, radius)
    sq_limit = radius * radius

    # Candidate-centre cells per query cell are found by a direct
    # vectorised box-distance comparison against the (few) non-empty
    # centre cells — query cells are generally not centre cells, so the
    # grid's own neighbour machinery does not apply.
    center_cells = list(grid.cells.items())
    cell_coords = np.asarray([c for c, _idx in center_cells], dtype=np.int64)
    cell_points = [idx for _c, idx in center_cells]

    coords = np.floor(points / grid.side).astype(np.int64)
    order = np.lexsort(coords.T[::-1])
    start = 0
    while start < len(points):
        stop = start
        while stop < len(points) and np.array_equal(coords[order[stop]], coords[order[start]]):
            stop += 1
        base = coords[order[start]]
        gaps = np.maximum(np.abs(cell_coords - base) - 1, 0) * grid.side
        near = np.nonzero(np.einsum("ij,ij->i", gaps, gaps) <= sq_limit * (1 + 1e-9))[0]
        if len(near):
            candidates = np.concatenate([cell_points[j] for j in near])
            group = points[order[start:stop]]
            sq = dm.pairwise_sq_dists(group, centers[candidates])
            if (sq <= sq_limit).any():
                return True
        start = stop
    return False
