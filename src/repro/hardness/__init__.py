"""Executable hardness machinery: USEC, Hopcroft's problem, and Lemma 4."""

from repro.hardness.hopcroft import (
    Circle,
    HopcroftInstance,
    Line,
    Plane3D,
    hopcroft_brute,
    hopcroft_exact_int,
    lift_circle,
    lift_incidence,
    lift_point,
)
from repro.hardness.usec import (
    USECInstance,
    planted_instance,
    random_instance,
    usec_brute,
    usec_via_dbscan,
)

__all__ = [
    "USECInstance",
    "usec_brute",
    "usec_via_dbscan",
    "random_instance",
    "planted_instance",
    "HopcroftInstance",
    "Line",
    "Circle",
    "Plane3D",
    "hopcroft_brute",
    "hopcroft_exact_int",
    "lift_point",
    "lift_circle",
    "lift_incidence",
]
