"""Bichromatic Closest Pair (BCP).

Given two point sets ``A`` (red) and ``B`` (blue), find the pair
``(a, b) in A x B`` minimising the Euclidean distance.  This is the
primitive the paper's exact algorithm (Section 3.2) uses to decide whether
two epsilon-neighbouring core cells are joined by an edge of the core-cell
graph ``G``.

Three strategies are provided:

``brute``
    Chunked vectorised scan of the full distance matrix; ``O(|A| |B|)``.
    This is also the reference oracle in tests.

``divide2d``
    Classic divide-and-conquer over the merged set for ``d = 2``,
    ``O(m log m)`` — mirrors the well-known 2D bound cited in Section 2.3.

``kdtree``
    Nearest-neighbour queries from each point of the smaller set into a
    kd-tree on the larger set.  This mirrors how Gunawan's 2D algorithm
    computes edges with nearest-neighbour search, generalised to any ``d``.

:func:`bcp` picks a sensible default; :func:`bcp_within` answers the
decision version ("is the BCP distance <= eps?") with early termination,
which is all the exact DBSCAN algorithm actually needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.errors import DataError, ParameterError
from repro.geometry import distance as dm
from repro.grid import counters
from repro.index.kdtree import KDTree


@dataclass(frozen=True)
class BCPResult:
    """Outcome of a bichromatic-closest-pair computation.

    ``index_a`` / ``index_b`` are row indices into the two input arrays;
    ``distance`` is the true (non-squared) Euclidean distance.
    """

    index_a: int
    index_b: int
    distance: float

    @property
    def pair(self) -> Tuple[int, int]:
        return (self.index_a, self.index_b)


_STRATEGIES = ("auto", "brute", "divide2d", "kdtree")


def bcp(a: np.ndarray, b: np.ndarray, strategy: str = "auto") -> BCPResult:
    """Compute the bichromatic closest pair of ``a`` and ``b``."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[1]:
        raise DataError("BCP inputs must be 2-D arrays with matching dimensionality")
    if len(a) == 0 or len(b) == 0:
        raise DataError("BCP inputs must be non-empty")
    if strategy not in _STRATEGIES:
        raise ParameterError(f"unknown BCP strategy {strategy!r}; choose from {_STRATEGIES}")

    if strategy == "auto":
        strategy = _pick_strategy(a, b)
    if strategy == "brute":
        return _bcp_brute(a, b)
    if strategy == "divide2d":
        if a.shape[1] != 2:
            raise ParameterError("divide2d strategy requires 2-D points")
        return _bcp_divide2d(a, b)
    return _bcp_kdtree(a, b)


def bcp_within(
    a: np.ndarray,
    b: np.ndarray,
    eps: float,
    strategy: str = "auto",
) -> bool:
    """Decision version: is there a pair within distance ``eps``?

    Every strategy terminates early here: the ``brute`` path short-circuits
    on the first qualifying chunk (in clustered data that almost always
    fires immediately), and the ``kdtree`` path passes
    ``bound_sq = sq_radius(eps)`` into :meth:`KDTree.nearest` — subtrees
    that cannot beat the bound are pruned and the scan returns on the
    first point found within ``eps``, instead of computing the full BCP
    and only then comparing.  ``auto`` resolves through
    :func:`_pick_strategy`, so large instances get the short-circuiting
    kd-tree path.  Only ``divide2d`` still computes the full BCP (its
    recursion offers no per-pair exit).
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if strategy not in _STRATEGIES:
        raise ParameterError(f"unknown BCP strategy {strategy!r}; choose from {_STRATEGIES}")
    if strategy == "auto":
        strategy = _pick_strategy(a, b)
    if strategy == "brute":
        return dm.any_within(a, b, eps)
    if strategy == "kdtree":
        if len(a) == 0 or len(b) == 0:
            raise DataError("BCP inputs must be non-empty")
        if len(a) <= len(b):
            small, large = a, b
        else:
            small, large = b, a
        tree = KDTree(large)
        sq_eps = dm.sq_radius(eps)
        for i, p in enumerate(small):
            j, _sq = tree.nearest(p, bound_sq=sq_eps)
            if j >= 0:
                counters.add("bcp_early_exit")
                counters.add("bcp_decision_queries", i + 1)
                return True
        counters.add("bcp_decision_queries", len(small))
        return False
    d = bcp(a, b, strategy=strategy).distance
    return d * d <= dm.sq_radius(eps)


def _pick_strategy(a: np.ndarray, b: np.ndarray) -> str:
    # The matrix scan wins until the product of sizes gets large; beyond
    # that, per-point nearest-neighbour queries into a kd-tree win.
    if len(a) * len(b) <= 250_000:
        return "brute"
    return "kdtree"


def _bcp_brute(a: np.ndarray, b: np.ndarray) -> BCPResult:
    best = np.inf
    best_pair = (0, 0)
    for rows, block in dm.iter_chunked_sq_dists(a, b):
        flat = int(np.argmin(block))
        i, j = divmod(flat, block.shape[1])
        if block[i, j] < best:
            best = float(block[i, j])
            best_pair = (rows.start + i, j)
    return BCPResult(best_pair[0], best_pair[1], float(np.sqrt(best)))


def _bcp_kdtree(a: np.ndarray, b: np.ndarray) -> BCPResult:
    # Build the tree on the larger set, query from the smaller one.
    if len(a) <= len(b):
        small, large, swapped = a, b, False
    else:
        small, large, swapped = b, a, True
    tree = KDTree(large)
    best = np.inf
    best_pair = (0, 0)
    for i, p in enumerate(small):
        j, sq = tree.nearest(p, bound_sq=best)
        if j >= 0 and sq < best:
            best = sq
            best_pair = (i, j)
    i, j = best_pair
    if swapped:
        i, j = j, i
    return BCPResult(i, j, float(np.sqrt(best)))


def _bcp_divide2d(a: np.ndarray, b: np.ndarray) -> BCPResult:
    """Divide-and-conquer BCP in the plane.

    Merge the two sets with colour tags, sort by x, recurse, and scan the
    middle strip sorted by y with the classic constant-neighbour argument.
    Only opposite-colour pairs are considered.
    """
    pts = np.vstack([a, b])
    colours = np.concatenate([np.zeros(len(a), dtype=np.int8), np.ones(len(b), dtype=np.int8)])
    order = np.lexsort((pts[:, 1], pts[:, 0]))
    pts = pts[order]
    colours = colours[order]
    original = order  # original[i] = row in the stacked array

    best_sq, pair = _divide2d_rec(pts, colours, np.arange(len(pts)))
    if pair is None:
        # One colour class is empty after filtering (cannot happen for valid
        # inputs, but keep the brute fallback for safety).
        return _bcp_brute(a, b)
    i_loc, j_loc = pair
    gi, gj = int(original[i_loc]), int(original[j_loc])
    if colours[i_loc] == 1:
        gi, gj = gj, gi
    # Map stacked indices back into per-array indices.
    idx_a = gi if gi < len(a) else gj
    idx_b = (gj if gj >= len(a) else gi) - len(a)
    return BCPResult(int(idx_a), int(idx_b), float(np.sqrt(best_sq)))


def _divide2d_rec(
    pts: np.ndarray, colours: np.ndarray, idx: np.ndarray
) -> Tuple[float, Optional[Tuple[int, int]]]:
    if len(idx) <= 32:
        return _strip_scan(pts, colours, idx[np.argsort(pts[idx, 1], kind="stable")], np.inf, None)
    mid = len(idx) // 2
    split_x = pts[idx[mid], 0]
    left_sq, left_pair = _divide2d_rec(pts, colours, idx[:mid])
    right_sq, right_pair = _divide2d_rec(pts, colours, idx[mid:])
    if left_sq <= right_sq:
        best_sq, pair = left_sq, left_pair
    else:
        best_sq, pair = right_sq, right_pair
    # Strip around the split line.
    if np.isfinite(best_sq):
        width = np.sqrt(best_sq)
        in_strip = idx[np.abs(pts[idx, 0] - split_x) <= width]
    else:
        in_strip = idx
    strip = in_strip[np.argsort(pts[in_strip, 1], kind="stable")]
    return _strip_scan(pts, colours, strip, best_sq, pair)


def _strip_scan(
    pts: np.ndarray,
    colours: np.ndarray,
    strip: np.ndarray,
    best_sq: float,
    pair: Optional[Tuple[int, int]],
) -> Tuple[float, Optional[Tuple[int, int]]]:
    ys = pts[strip, 1]
    for i in range(len(strip)):
        for j in range(i + 1, len(strip)):
            dy = ys[j] - ys[i]
            if dy * dy >= best_sq:
                break
            if colours[strip[i]] != colours[strip[j]]:
                d = dm.sq_dist(pts[strip[i]], pts[strip[j]])
                if d < best_sq:
                    best_sq = d
                    pair = (int(strip[i]), int(strip[j]))
    return best_sq, pair
