"""2D Delaunay triangulation and Voronoi-based nearest neighbour.

Gunawan's 2D algorithm (Section 2.2) answers the nearest-neighbour queries
of its edge computation "after building a Voronoi diagram for each core
cell".  This module supplies that substrate:

* :class:`Delaunay2D` — incremental Bowyer-Watson triangulation (the dual
  of the Voronoi diagram);
* :class:`VoronoiNN` — exact nearest-neighbour queries by greedy walking
  on the Delaunay graph: repeatedly step to any neighbour closer to the
  query; on a Delaunay triangulation the walk can only stop at the true
  nearest vertex.

The implementation favours clarity and robustness over asymptotics: point
insertion scans all triangles for the bad-circumcircle set, giving
O(n) per insertion (O(n^2) total).  The paper's usage is per *core cell*,
where point counts are modest; the library's general-purpose kd-tree
remains the default for large inputs.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, FrozenSet, List, Set, Tuple

import numpy as np

from repro.errors import DataError
from repro.geometry import distance as dm

Triangle = Tuple[int, int, int]


def _incircle_det(pa, pb, pc, pd) -> float:
    """Float in-circle determinant (positive = pd inside, for CCW abc)."""
    ax, ay = pa[0] - pd[0], pa[1] - pd[1]
    bx, by = pb[0] - pd[0], pb[1] - pd[1]
    cx, cy = pc[0] - pd[0], pc[1] - pd[1]
    return (
        (ax * ax + ay * ay) * (bx * cy - by * cx)
        - (bx * bx + by * by) * (ax * cy - ay * cx)
        + (cx * cx + cy * cy) * (ax * by - ay * bx)
    )


def _incircle_det_exact(pa, pb, pc, pd) -> float:
    """Exact-sign in-circle determinant via rational arithmetic."""
    ax, ay = Fraction(float(pa[0])) - Fraction(float(pd[0])), Fraction(float(pa[1])) - Fraction(float(pd[1]))
    bx, by = Fraction(float(pb[0])) - Fraction(float(pd[0])), Fraction(float(pb[1])) - Fraction(float(pd[1]))
    cx, cy = Fraction(float(pc[0])) - Fraction(float(pd[0])), Fraction(float(pc[1])) - Fraction(float(pd[1]))
    det = (
        (ax * ax + ay * ay) * (bx * cy - by * cx)
        - (bx * bx + by * by) * (ax * cy - ay * cx)
        + (cx * cx + cy * cy) * (ax * by - ay * bx)
    )
    return -1.0 if det < 0 else (1.0 if det > 0 else 0.0)


def _orient_det(pa, pb, pc) -> float:
    return (pb[0] - pa[0]) * (pc[1] - pa[1]) - (pb[1] - pa[1]) * (pc[0] - pa[0])


def _orient_det_exact(pa, pb, pc) -> float:
    det = (
        (Fraction(float(pb[0])) - Fraction(float(pa[0])))
        * (Fraction(float(pc[1])) - Fraction(float(pa[1])))
        - (Fraction(float(pb[1])) - Fraction(float(pa[1])))
        * (Fraction(float(pc[0])) - Fraction(float(pa[0])))
    )
    return -1.0 if det < 0 else (1.0 if det > 0 else 0.0)


class Delaunay2D:
    """Delaunay triangulation of a 2D point set (Bowyer-Watson).

    Duplicate points are collapsed onto their first occurrence; perfectly
    collinear inputs degenerate to an edge path (handled by keeping the
    super-triangle during construction).
    """

    def __init__(self, points: np.ndarray) -> None:
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[1] != 2:
            raise DataError("Delaunay2D requires an (n, 2) array")
        if len(points) == 0:
            raise DataError("Delaunay2D requires at least one point")
        self.points = points
        self._dedupe()
        self._build()

    def _dedupe(self) -> None:
        # Collapse points closer than float comparisons can resolve: two
        # vertices separated by less than ~1e-12 of the bounding-box scale
        # would create distance "plateaus" the greedy NN walk cannot cross.
        extent = float(np.max(self.points.max(axis=0) - self.points.min(axis=0)))
        scale = max(extent, float(np.abs(self.points).max()), 1e-300)
        quantum = scale * 1e-12
        seen: Dict[Tuple[int, int], int] = {}
        alias = np.empty(len(self.points), dtype=np.int64)
        order: List[int] = []
        for i, (x, y) in enumerate(self.points):
            key = (int(round(float(x) / quantum)), int(round(float(y) / quantum)))
            if key in seen:
                alias[i] = seen[key]
            else:
                seen[key] = i
                alias[i] = i
                order.append(i)
        self.alias = alias           #: representative index per input point
        self._distinct = order       # indices of distinct points

    def _build(self) -> None:
        pts = self.points
        distinct = self._distinct
        # Super-triangle comfortably containing everything.
        lo = pts[distinct].min(axis=0)
        hi = pts[distinct].max(axis=0)
        center = (lo + hi) / 2.0
        radius = max(float(np.max(hi - lo)), 1.0) * 16.0
        n = len(pts)
        super_pts = np.array([
            [center[0] - 2 * radius, center[1] - radius],
            [center[0] + 2 * radius, center[1] - radius],
            [center[0], center[1] + 2 * radius],
        ])
        self._all = np.vstack([pts, super_pts])
        s0, s1, s2 = n, n + 1, n + 2

        triangles: Set[FrozenSet[int]] = {frozenset((s0, s1, s2))}
        for i in distinct:
            bad = [t for t in triangles if self._in_circumcircle(t, i)]
            # Boundary of the bad-triangle cavity: edges appearing once.
            edge_count: Dict[FrozenSet[int], int] = {}
            for tri in bad:
                a, b, c = sorted(tri)
                for edge in (frozenset((a, b)), frozenset((b, c)), frozenset((a, c))):
                    edge_count[edge] = edge_count.get(edge, 0) + 1
            triangles.difference_update(bad)
            for edge, count in edge_count.items():
                if count == 1:
                    triangles.add(frozenset(edge | {i}))

        # Drop triangles touching the super-vertices.
        supers = {s0, s1, s2}
        self._triangles: List[Triangle] = [
            tuple(sorted(t)) for t in triangles if not (t & supers)
        ]
        # Vertex adjacency over real points; keep super-edges out but make
        # sure hull points remain connected through real triangles.
        adj: Dict[int, Set[int]] = {i: set() for i in distinct}
        for t in triangles:
            real = sorted(t - supers)
            for a in real:
                for b in real:
                    if a != b:
                        adj[a].add(b)
        self._adjacency = adj

    def _in_circumcircle(self, tri: FrozenSet[int], i: int) -> bool:
        a, b, c = tri
        pa, pb, pc = self._all[a], self._all[b], self._all[c]
        pd = self._all[i]
        det = _incircle_det(pa, pb, pc, pd)
        # Adaptive exactness: when the float determinant sits inside its
        # roundoff band, redo the computation in exact rational arithmetic
        # (Python floats convert to Fractions losslessly).
        scale = max(
            abs(pa[0] - pd[0]), abs(pa[1] - pd[1]),
            abs(pb[0] - pd[0]), abs(pb[1] - pd[1]),
            abs(pc[0] - pd[0]), abs(pc[1] - pd[1]), 1e-300,
        )
        if abs(det) <= 1e-12 * scale ** 4:
            det = _incircle_det_exact(pa, pb, pc, pd)
        orientation = _orient_det(pa, pb, pc)
        if abs(orientation) <= 1e-12 * scale ** 2:
            orientation = _orient_det_exact(pa, pb, pc)
        if orientation < 0:
            det = -det
        return det > 0

    @property
    def triangles(self) -> List[Triangle]:
        """Triangles over the real (non-super) vertices."""
        return list(self._triangles)

    def neighbors(self, i: int) -> Set[int]:
        """Delaunay-adjacent distinct vertices of point ``i``."""
        return self._adjacency[int(self.alias[i])]


class VoronoiNN:
    """Exact nearest-neighbour queries via greedy Delaunay walking."""

    def __init__(self, points: np.ndarray) -> None:
        self._delaunay = Delaunay2D(points)
        self.points = self._delaunay.points
        self._start = int(self._delaunay.alias[0])
        # Fewer than 3 distinct points, or a fully collinear set, leaves no
        # real triangles; fall back to a scan there.
        self._degenerate = not self._delaunay._triangles

    def nearest(self, q: np.ndarray) -> Tuple[int, float]:
        """Return ``(index, squared_distance)`` of the closest point to ``q``.

        Greedy walk: from the current vertex move to any Delaunay
        neighbour strictly closer to ``q``; a vertex with no closer
        neighbour is the global nearest (a classical Delaunay property).
        """
        q = np.asarray(q, dtype=np.float64)
        pts = self.points
        if self._degenerate:
            sq = dm.sq_dists_to_point(pts, q)
            idx = int(np.argmin(sq))
            return idx, float(sq[idx])
        current = self._start
        current_sq = dm.sq_dist(pts[current], q)
        improved = True
        while improved:
            improved = False
            for nb in self._delaunay.neighbors(current):
                sq = dm.sq_dist(pts[nb], q)
                if sq < current_sq:
                    current, current_sq = nb, sq
                    improved = True
                    break
        return current, current_sq

    def nearest_within(self, q: np.ndarray, eps: float) -> bool:
        """True iff the nearest point lies within ``eps`` of ``q``."""
        _idx, sq = self.nearest(q)
        return sq <= dm.sq_radius(eps)
