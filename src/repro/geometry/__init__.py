"""Geometric primitives: distance kernels and bichromatic closest pair."""

from repro.geometry.bcp import BCPResult, bcp, bcp_within
from repro.geometry.distance import dist, sq_dist

__all__ = ["bcp", "bcp_within", "BCPResult", "dist", "sq_dist"]
