"""Euclidean distance kernels.

Every distance computation in the library goes through this module.  All
comparisons against the DBSCAN radius use *squared* distances to avoid
square roots; public helpers expose both squared and true distances.

The pairwise kernels are vectorised with numpy and chunked so that a query
against a large block never materialises an oversized intermediate matrix.
"""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

from repro import config

#: Fallback number of matrix entries a single chunk of a pairwise
#: computation may hold; ``REPRO_CHUNK_BUDGET`` overrides it (see
#: :func:`repro.config.chunk_budget`).
_CHUNK_BUDGET = 4_000_000


def _chunk_budget() -> int:
    """The effective chunk budget (environment override included)."""
    return config.chunk_budget()


#: Relative slack applied to every "within eps" decision boundary.  The
#: expanded pairwise form and the diff-form tree kernels round differently
#: on pairs lying *exactly* on the boundary (points ``0.3`` apart against
#: ``eps = 0.3`` give ``0.09`` in one and ``0.09000000000000002`` in the
#: other), so comparing both against the bare ``eps**2`` lets two exact
#: algorithms disagree.  A shared, slightly inflated boundary — ~10^4 ULPs,
#: far above either kernel's rounding error and far below any meaningful
#: distance difference — keeps every decision identical.
_BOUNDARY_SLACK = 1e-12


def sq_radius(radius: float) -> float:
    """Squared decision boundary for "within ``radius``" tests.

    Every kernel in the library compares squared distances against this
    value (never against the bare ``radius**2``) so that boundary pairs get
    the same verdict no matter which kernel evaluated them.
    """
    return radius * radius * (1.0 + _BOUNDARY_SLACK)


def sq_dist(p: np.ndarray, q: np.ndarray) -> float:
    """Squared Euclidean distance between two points."""
    diff = np.asarray(p, dtype=np.float64) - np.asarray(q, dtype=np.float64)
    return float(np.dot(diff, diff))


def dist(p: np.ndarray, q: np.ndarray) -> float:
    """Euclidean distance between two points."""
    return float(np.sqrt(sq_dist(p, q)))


def sq_dists_to_point(points: np.ndarray, q: np.ndarray) -> np.ndarray:
    """Squared distances from every row of ``points`` to the point ``q``."""
    diff = np.asarray(points, dtype=np.float64) - np.asarray(q, dtype=np.float64)
    return np.einsum("ij,ij->i", diff, diff)


def pairwise_sq_dists(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Full ``(len(a), len(b))`` matrix of squared distances.

    Uses the expanded form ``|a|^2 + |b|^2 - 2 a.b`` which is much faster
    than broadcasting differences for moderate sizes, with a clip to guard
    against tiny negative values from floating-point cancellation.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    a_sq = np.einsum("ij,ij->i", a, a)
    b_sq = np.einsum("ij,ij->i", b, b)
    out = a_sq[:, None] + b_sq[None, :] - 2.0 * (a @ b.T)
    np.maximum(out, 0.0, out=out)
    return out


def iter_chunked_sq_dists(
    a: np.ndarray, b: np.ndarray
) -> Iterator[Tuple[slice, np.ndarray]]:
    """Yield ``(row_slice, block)`` pairs covering the pairwise matrix of a x b.

    Each ``block`` is the squared-distance sub-matrix for the rows of ``a``
    selected by ``row_slice`` against all of ``b``.  Memory stays bounded by
    the module chunk budget regardless of input sizes.
    """
    rows = max(1, _chunk_budget() // max(1, len(b)))
    for start in range(0, len(a), rows):
        stop = min(start + rows, len(a))
        yield slice(start, stop), pairwise_sq_dists(a[start:stop], b)


def count_within(a: np.ndarray, b: np.ndarray, radius: float) -> np.ndarray:
    """For each row of ``a``, the number of rows of ``b`` within ``radius``."""
    limit = sq_radius(radius)
    counts = np.empty(len(a), dtype=np.int64)
    for rows, block in iter_chunked_sq_dists(a, b):
        counts[rows] = (block <= limit).sum(axis=1)
    return counts


def any_within(a: np.ndarray, b: np.ndarray, radius: float) -> bool:
    """True iff some pair ``(a_i, b_j)`` lies within ``radius``."""
    limit = sq_radius(radius)
    for _rows, block in iter_chunked_sq_dists(a, b):
        if (block <= limit).any():
            return True
    return False


def min_sq_dist_between(a: np.ndarray, b: np.ndarray) -> float:
    """Smallest squared distance over all pairs ``(a_i, b_j)``."""
    best = np.inf
    for _rows, block in iter_chunked_sq_dists(a, b):
        block_min = block.min()
        if block_min < best:
            best = float(block_min)
    return best
