"""repro — a full reproduction of Gan & Tao, SIGMOD 2015:
"DBSCAN Revisited: Mis-Claim, Un-Fixability, and Approximation".

Highlights
----------
* :func:`repro.dbscan` — exact DBSCAN with every algorithm the paper
  evaluates (the new grid+BCP algorithm of Theorem 2, KDD96, CIT08,
  Gunawan's 2D algorithm, and a brute-force oracle).
* :func:`repro.approx_dbscan` — rho-approximate DBSCAN (Theorem 4),
  expected linear time, with the sandwich quality guarantee of Theorem 3.
* :func:`repro.run_resilient` — the degradation cascade of
  :mod:`repro.runtime`: exact under budget, else rho-approximate, else a
  subsampled run — degrade, don't die (see docs/ROBUSTNESS.md).
* :mod:`repro.parallel` — the sharded multiprocessing pipeline behind the
  ``workers=`` argument: identical output, near-linear speedups on the
  grid algorithms (see docs/PARALLEL.md).
* :class:`repro.ClusteringEngine` — a reusable per-dataset service:
  structures (grids, indexes, core masks, Lemma 5 hierarchies) are cached
  across calls, and multi-eps parameter sweeps run incrementally with
  byte-identical outputs (see docs/PERFORMANCE.md).
* :mod:`repro.hardness` — executable Lemma 4: the reduction that makes any
  fast DBSCAN algorithm solve the USEC problem.
* :mod:`repro.data` — the seed-spreader generator of Section 5.1 and
  synthetic stand-ins for the paper's real datasets.
* :mod:`repro.evaluation` — cluster-set comparison, maximum-legal-rho
  sweeps (Figure 10), collapsing-radius search, timing harness.
"""

from repro.api import (
    EXACT_ALGORITHMS,
    ResiliencePolicy,
    approx_dbscan,
    dbscan,
    run_resilient,
    sampled_dbscan,
)
from repro.core.params import ApproxParams, DBSCANParams
from repro.core.result import NOISE, Clustering
from repro.engine import ClusteringEngine, StructureCache
from repro.parallel import ParallelConfig
from repro.errors import (
    AlgorithmError,
    CheckpointError,
    DataError,
    MemoryBudgetExceeded,
    ParameterError,
    ReproError,
    TimeoutExceeded,
)
from repro.runtime import Deadline, MemoryBudget

__version__ = "1.1.0"

__all__ = [
    "dbscan",
    "approx_dbscan",
    "run_resilient",
    "sampled_dbscan",
    "ResiliencePolicy",
    "ClusteringEngine",
    "StructureCache",
    "Deadline",
    "MemoryBudget",
    "ParallelConfig",
    "Clustering",
    "DBSCANParams",
    "ApproxParams",
    "NOISE",
    "EXACT_ALGORITHMS",
    "ReproError",
    "ParameterError",
    "DataError",
    "AlgorithmError",
    "TimeoutExceeded",
    "MemoryBudgetExceeded",
    "CheckpointError",
    "__version__",
]
