"""Generic utilities: union-find, RNG plumbing, input validation."""

from repro.utils.unionfind import KeyedUnionFind, UnionFind
from repro.utils.rng import make_rng

__all__ = ["UnionFind", "KeyedUnionFind", "make_rng"]
