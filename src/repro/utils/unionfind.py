"""Disjoint-set (union-find) structure.

Used to compute the connected components of the core-cell graph ``G``
(Lemma 1 of the paper): each core cell is an element, each graph edge a
``union``, and the final components are the clusters' core-point groups.

Implements union by rank with full path compression, giving the usual
near-constant amortised cost per operation.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List


class UnionFind:
    """Union-find over dense integer elements ``0..n-1``."""

    def __init__(self, n: int) -> None:
        if n < 0:
            raise ValueError(f"n must be non-negative; got {n}")
        self._parent = list(range(n))
        self._rank = [0] * n
        self._count = n

    def __len__(self) -> int:
        return len(self._parent)

    @property
    def n_components(self) -> int:
        """Number of disjoint sets currently held."""
        return self._count

    def find(self, x: int) -> int:
        """Return the representative of ``x``'s set (with path compression)."""
        parent = self._parent
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    def union(self, x: int, y: int) -> bool:
        """Merge the sets of ``x`` and ``y``; return True if they were distinct."""
        rx, ry = self.find(x), self.find(y)
        if rx == ry:
            return False
        if self._rank[rx] < self._rank[ry]:
            rx, ry = ry, rx
        self._parent[ry] = rx
        if self._rank[rx] == self._rank[ry]:
            self._rank[rx] += 1
        self._count -= 1
        return True

    def connected(self, x: int, y: int) -> bool:
        """True iff ``x`` and ``y`` are in the same set."""
        return self.find(x) == self.find(y)

    def components(self) -> List[List[int]]:
        """Return all sets as lists of elements, ordered by smallest member."""
        groups: Dict[int, List[int]] = {}
        for x in range(len(self._parent)):
            groups.setdefault(self.find(x), []).append(x)
        return sorted(groups.values(), key=lambda members: members[0])


class KeyedUnionFind:
    """Union-find over arbitrary hashable keys (e.g. grid-cell coordinates)."""

    def __init__(self, keys: Iterable[Hashable] = ()) -> None:
        self._ids: Dict[Hashable, int] = {}
        self._uf = UnionFind(0)
        for key in keys:
            self.add(key)

    def __len__(self) -> int:
        return len(self._ids)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._ids

    @property
    def n_components(self) -> int:
        return self._uf.n_components

    def add(self, key: Hashable) -> int:
        """Register ``key`` (idempotent) and return its dense id."""
        if key in self._ids:
            return self._ids[key]
        idx = len(self._ids)
        self._ids[key] = idx
        self._uf._parent.append(idx)
        self._uf._rank.append(0)
        self._uf._count += 1
        return idx

    def find(self, key: Hashable) -> int:
        """Root id of the set containing ``key`` (must be registered)."""
        return self._uf.find(self._ids[key])

    def union(self, a: Hashable, b: Hashable) -> bool:
        """Merge the sets of keys ``a`` and ``b`` (registering them if new)."""
        return self._uf.union(self.add(a), self.add(b))

    def connected(self, a: Hashable, b: Hashable) -> bool:
        if a not in self._ids or b not in self._ids:
            return False
        return self._uf.connected(self._ids[a], self._ids[b])

    def component_labels(self) -> Dict[Hashable, int]:
        """Map every key to a dense component label in ``0..k-1``.

        Labels are assigned in order of first appearance of each component's
        earliest-added key, making the output deterministic.
        """
        labels: Dict[Hashable, int] = {}
        root_label: Dict[int, int] = {}
        for key, idx in self._ids.items():
            root = self._uf.find(idx)
            if root not in root_label:
                root_label[root] = len(root_label)
            labels[key] = root_label[root]
        return labels
