"""Disjoint-set (union-find) structures.

Used to compute the connected components of the core-cell graph ``G``
(Lemma 1 of the paper): each core cell is an element, each graph edge a
``union``, and the final components are the clusters' core-point groups.

Three implementations share the same semantics:

* :class:`UnionFind` — dense integer elements backed by Python lists, the
  original general-purpose structure;
* :class:`KeyedUnionFind` — arbitrary hashable keys (grid-cell
  coordinates) layered over :class:`UnionFind`; the compatibility shim the
  parallel stitching layer and the legacy per-pair edge loop use;
* :class:`DenseUnionFind` — numpy parent/rank arrays over dense ids with
  *batched* operations (``union_many``, ``roots``) for the staged edge
  kernel (:mod:`repro.core.edgekernel`), where whole stages of candidate
  pairs are settled with a handful of array passes.

All implement union by rank with full path compression, giving the usual
near-constant amortised cost per operation.  Component labels are always
assigned by first appearance in element/insertion order, which is what
makes every consumer's output deterministic.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List

import numpy as np


class UnionFind:
    """Union-find over dense integer elements ``0..n-1``."""

    def __init__(self, n: int) -> None:
        if n < 0:
            raise ValueError(f"n must be non-negative; got {n}")
        self._parent = list(range(n))
        self._rank = [0] * n
        self._count = n

    def __len__(self) -> int:
        return len(self._parent)

    @property
    def n_components(self) -> int:
        """Number of disjoint sets currently held."""
        return self._count

    def add(self) -> int:
        """Append a fresh singleton element; return its id."""
        idx = len(self._parent)
        self._parent.append(idx)
        self._rank.append(0)
        self._count += 1
        return idx

    def find(self, x: int) -> int:
        """Return the representative of ``x``'s set (with path compression)."""
        parent = self._parent
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    def union(self, x: int, y: int) -> bool:
        """Merge the sets of ``x`` and ``y``; return True if they were distinct."""
        rx, ry = self.find(x), self.find(y)
        if rx == ry:
            return False
        if self._rank[rx] < self._rank[ry]:
            rx, ry = ry, rx
        self._parent[ry] = rx
        if self._rank[rx] == self._rank[ry]:
            self._rank[rx] += 1
        self._count -= 1
        return True

    def connected(self, x: int, y: int) -> bool:
        """True iff ``x`` and ``y`` are in the same set."""
        return self.find(x) == self.find(y)

    def components(self) -> List[List[int]]:
        """Return all sets as lists of elements, ordered by smallest member."""
        groups: Dict[int, List[int]] = {}
        for x in range(len(self._parent)):
            groups.setdefault(self.find(x), []).append(x)
        return sorted(groups.values(), key=lambda members: members[0])


class KeyedUnionFind:
    """Union-find over arbitrary hashable keys (e.g. grid-cell coordinates)."""

    def __init__(self, keys: Iterable[Hashable] = ()) -> None:
        self._ids: Dict[Hashable, int] = {}
        self._uf = UnionFind(0)
        for key in keys:
            self.add(key)

    def __len__(self) -> int:
        return len(self._ids)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._ids

    @property
    def n_components(self) -> int:
        return self._uf.n_components

    def add(self, key: Hashable) -> int:
        """Register ``key`` (idempotent) and return its dense id."""
        idx = self._ids.get(key)
        if idx is None:
            idx = self._ids[key] = self._uf.add()
        return idx

    def find(self, key: Hashable) -> int:
        """Root id of the set containing ``key`` (must be registered)."""
        return self._uf.find(self._ids[key])

    def union(self, a: Hashable, b: Hashable) -> bool:
        """Merge the sets of keys ``a`` and ``b`` (registering them if new)."""
        return self._uf.union(self.add(a), self.add(b))

    def connected(self, a: Hashable, b: Hashable) -> bool:
        if a not in self._ids or b not in self._ids:
            return False
        return self._uf.connected(self._ids[a], self._ids[b])

    def component_labels(self) -> Dict[Hashable, int]:
        """Map every key to a dense component label in ``0..k-1``.

        Labels are assigned in order of first appearance of each component's
        earliest-added key, making the output deterministic.
        """
        labels: Dict[Hashable, int] = {}
        root_label: Dict[int, int] = {}
        for key, idx in self._ids.items():
            root = self._uf.find(idx)
            if root not in root_label:
                root_label[root] = len(root_label)
            labels[key] = root_label[root]
        return labels


class DenseUnionFind:
    """Array-backed union-find over dense ids ``0..n-1`` with batched ops.

    The hot structure of the staged edge kernel: ``parent`` / ``rank`` are
    numpy int64 arrays, whole edge batches merge through
    :meth:`union_many`, and :meth:`roots` resolves every element's
    representative in a few vectorised pointer-jumping passes — the
    operation behind the kernel's "drop pairs an earlier stage already
    connected" filters.  Component labels come out identical to
    :class:`KeyedUnionFind` over keys registered in id order: both assign
    labels by first appearance.
    """

    __slots__ = ("_parent", "_rank", "_count")

    def __init__(self, n: int) -> None:
        if n < 0:
            raise ValueError(f"n must be non-negative; got {n}")
        self._parent = np.arange(n, dtype=np.int64)
        self._rank = np.zeros(n, dtype=np.int64)
        self._count = int(n)

    def __len__(self) -> int:
        return len(self._parent)

    @property
    def n_components(self) -> int:
        """Number of disjoint sets currently held."""
        return self._count

    def find(self, x: int) -> int:
        """Representative of ``x``'s set (with full path compression)."""
        parent = self._parent
        root = x
        while parent[root] != root:
            root = int(parent[root])
        while parent[x] != root:
            parent[x], x = root, int(parent[x])
        return root

    def union(self, x: int, y: int) -> bool:
        """Merge the sets of ``x`` and ``y``; return True if they were distinct."""
        rx, ry = self.find(x), self.find(y)
        if rx == ry:
            return False
        rank = self._rank
        if rank[rx] < rank[ry]:
            rx, ry = ry, rx
        self._parent[ry] = rx
        if rank[rx] == rank[ry]:
            rank[rx] += 1
        self._count -= 1
        return True

    def connected(self, x: int, y: int) -> bool:
        """True iff ``x`` and ``y`` are in the same set."""
        return self.find(x) == self.find(y)

    def union_many(self, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        """Merge every pair ``(xs[t], ys[t])`` in order.

        Returns a boolean mask marking the pairs whose union actually
        merged two distinct sets — the spanning subset of the batch, which
        is what parallel workers report back to the stitching pass.
        """
        if len(xs) != len(ys):
            raise ValueError(f"batch lengths differ: {len(xs)} vs {len(ys)}")
        merged = np.zeros(len(xs), dtype=bool)
        xs_list = np.asarray(xs, dtype=np.int64).tolist()
        ys_list = np.asarray(ys, dtype=np.int64).tolist()
        for t, (x, y) in enumerate(zip(xs_list, ys_list)):
            merged[t] = self.union(x, y)
        return merged

    def roots(self) -> np.ndarray:
        """Every element's representative, as one array (fully compressed).

        Vectorised pointer jumping: each pass squares the pointer depth,
        so the loop runs ``O(log depth)`` times regardless of ``n``.  The
        result is written back into ``parent``, so subsequent scalar finds
        run on a fully compressed forest.
        """
        p = self._parent
        while True:
            pp = p[p]
            if np.array_equal(pp, p):
                break
            p = pp
        self._parent = p
        return p

    def component_labels(self) -> np.ndarray:
        """Dense component label per element, ``0..k-1``.

        Labels are assigned by first appearance in element order — exactly
        the order :meth:`KeyedUnionFind.component_labels` produces for
        keys registered in id order.
        """
        roots = self.roots()
        if len(roots) == 0:
            return np.empty(0, dtype=np.int64)
        uniq, first = np.unique(roots, return_index=True)
        order = np.argsort(first, kind="stable")
        label_of_root = np.empty(len(self._parent), dtype=np.int64)
        label_of_root[uniq[order]] = np.arange(len(uniq), dtype=np.int64)
        return label_of_root[roots]
