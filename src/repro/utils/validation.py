"""Input validation helpers shared across the library."""

from __future__ import annotations

import numpy as np

from repro.errors import DataError, ParameterError


def as_points(points, *, copy: bool = False, allow_empty: bool = False) -> np.ndarray:
    """Coerce ``points`` into a 2-D float64 array of shape ``(n, d)``.

    Accepts any array-like (lists of tuples, numpy arrays, ...).  A 1-D input
    of length ``n`` is interpreted as ``n`` one-dimensional points.  Raises
    :class:`~repro.errors.DataError` on non-finite coordinates or arrays
    with more than two axes.  An empty input (``n == 0``) is rejected by
    default — internal machinery (grids, indexes, BCP) requires at least
    one point — but public entry points that treat the empty point set as a
    legal degenerate workload pass ``allow_empty=True``.
    """
    if copy:
        arr = np.array(points, dtype=np.float64)
    else:
        arr = np.asarray(points, dtype=np.float64)
    if arr.ndim == 1:
        arr = arr.reshape(-1, 1)
    if arr.ndim != 2:
        raise DataError(f"points must be a 2-D array of shape (n, d); got ndim={arr.ndim}")
    if arr.shape[0] == 0 and not allow_empty:
        raise DataError("points must contain at least one point")
    if arr.shape[1] == 0 and arr.shape[0] > 0:
        raise DataError("points must have at least one dimension")
    if not np.isfinite(arr).all():
        raise DataError("points contain NaN or infinite coordinates")
    return arr


def check_eps(eps: float) -> float:
    """Validate the DBSCAN radius parameter."""
    eps = float(eps)
    if not np.isfinite(eps) or eps <= 0:
        raise ParameterError(f"eps must be a positive finite number; got {eps!r}")
    return eps


def check_min_pts(min_pts: int) -> int:
    """Validate the DBSCAN density threshold."""
    if not float(min_pts).is_integer():
        raise ParameterError(f"min_pts must be an integer; got {min_pts!r}")
    min_pts = int(min_pts)
    if min_pts < 1:
        raise ParameterError(f"min_pts must be >= 1; got {min_pts}")
    return min_pts


def check_rho(rho: float) -> float:
    """Validate the approximation parameter of rho-approximate DBSCAN."""
    rho = float(rho)
    if not np.isfinite(rho) or rho <= 0:
        raise ParameterError(f"rho must be a positive finite number; got {rho!r}")
    return rho
