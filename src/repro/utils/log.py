"""Library logging.

All modules log through children of the ``"repro"`` logger, which carries
a ``NullHandler`` so the library stays silent unless the application
configures logging.  Enable diagnostics with e.g.::

    import logging
    logging.basicConfig(level=logging.DEBUG)
    logging.getLogger("repro").setLevel(logging.DEBUG)

The algorithms emit per-phase DEBUG records (grid construction, core
labeling, graph connectivity, border assignment) with the counts a user
needs to understand a slow run.
"""

from __future__ import annotations

import logging

logging.getLogger("repro").addHandler(logging.NullHandler())


def get_logger(name: str) -> logging.Logger:
    """Return the ``repro.<name>`` logger."""
    return logging.getLogger(f"repro.{name}")
