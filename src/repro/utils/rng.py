"""Random-number-generator plumbing.

All stochastic code in the library (data generators, randomised algorithms)
accepts a ``seed`` argument and routes it through :func:`make_rng` so that
every experiment is reproducible bit-for-bit from a single integer.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator]


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a numpy Generator from an int seed, an existing Generator, or None."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, n: int) -> list:
    """Derive ``n`` independent child generators from ``rng``."""
    return [np.random.default_rng(s) for s in rng.integers(0, 2**63 - 1, size=n)]
