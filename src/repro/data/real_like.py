"""Synthetic stand-ins for the paper's three real datasets (Section 5.1).

The paper evaluates on PAMAP2 (4D PCA of wearable-sensor streams, 3.85m
points), Farm (5D VZ-features of a satellite image, 3.63m points) and
Household (7D electricity readings, 2.05m points).  None of these can be
bundled here, so each generator below synthesises data through the *same
kind of pipeline* that produced the original:

* :func:`pamap2_like` simulates multi-activity inertial-sensor streams and
  projects them to 4D with PCA — a few elongated, anisotropic dense
  regions (one per activity) plus transition noise;
* :func:`farm_like` renders a synthetic multi-region satellite image and
  extracts genuine VZ patch features reduced to 5D (see
  :mod:`repro.data.vz`);
* :func:`household_like` simulates appliance-state mixtures with daily
  cycles over 7 attributes — unbalanced cluster densities, as in the real
  consumption data.

All generators return points scaled into the paper's normalised domain
``[0, 1e5]^d`` so every experiment script can use the paper's eps grids
unchanged.  Cardinalities are arguments: the paper's multi-million defaults
are impractical in pure Python, and DESIGN.md documents the scaling.
"""

from __future__ import annotations

import numpy as np

from repro import config
from repro.data import vz
from repro.errors import ParameterError
from repro.utils.rng import SeedLike, make_rng


def pamap2_like(n: int, seed: SeedLike = None) -> np.ndarray:
    """4D activity-monitoring stand-in (paper dataset: PAMAP2).

    Simulates 9 raw IMU channels (3 accelerometer, 3 gyroscope, 3
    magnetometer) over a schedule of activities — each activity is a
    characteristic oscillatory regime — then applies PCA to 4 components
    and rescales, exactly as the paper preprocessed PAMAP2.
    """
    if n < 10:
        raise ParameterError("n must be >= 10")
    rng = make_rng(seed)
    activities = [
        # (frequency, amplitude, baseline-scale) per activity regime
        (0.6, 0.4, 0.2),   # lying
        (1.1, 0.9, 0.5),   # walking
        (2.3, 1.8, 0.8),   # running
        (1.7, 1.2, 0.6),   # cycling
        (0.9, 0.7, 1.1),   # housework
        (3.1, 2.4, 0.9),   # rope jumping
    ]
    n_channels = 9
    segments = []
    remaining = n
    while remaining > 0:
        freq, amp, base_scale = activities[int(rng.integers(0, len(activities)))]
        length = int(min(remaining, rng.integers(n // 20 + 2, n // 6 + 4)))
        t = np.arange(length)[:, None]
        phases = rng.uniform(0, 2 * np.pi, size=n_channels)[None, :]
        channel_freq = freq * rng.uniform(0.8, 1.2, size=n_channels)[None, :]
        baseline = rng.normal(0.0, base_scale, size=n_channels)[None, :]
        signal = (
            baseline
            + amp * np.sin(2 * np.pi * channel_freq * t / 50.0 + phases)
            + rng.normal(0.0, 0.08, size=(length, n_channels))
        )
        # Slow sensor drift within the segment.
        signal += np.linspace(0, rng.normal(0, 0.05), length)[:, None]
        segments.append(signal)
        remaining -= length
    raw = np.vstack(segments)[:n]
    projected, _components = vz.pca(raw, 4)
    return vz.rescale_to_domain(projected, config.DOMAIN_SIZE)


def farm_like(n: int, seed: SeedLike = None, patch_size: int = 3) -> np.ndarray:
    """5D VZ-feature stand-in (paper dataset: Farm).

    Renders a synthetic satellite image just large enough to yield ``n``
    interior pixels, computes true VZ patch features, reduces them to 5
    principal components, and rescales.
    """
    if n < 10:
        raise ParameterError("n must be >= 10")
    rng = make_rng(seed)
    half = patch_size // 2
    side = int(np.ceil(np.sqrt(n))) + 2 * half + 1
    image = vz.synthetic_satellite_image(side, side, n_regions=10, seed=rng)
    features = vz.vz_features(image, patch_size=patch_size)
    if len(features) < n:
        raise ParameterError("internal: image produced too few features")
    take = rng.permutation(len(features))[:n]
    projected, _components = vz.pca(features[take], 5)
    return vz.rescale_to_domain(projected, config.DOMAIN_SIZE)


def household_like(n: int, seed: SeedLike = None) -> np.ndarray:
    """7D electric-consumption stand-in (paper dataset: Household).

    Seven attributes mirroring the UCI schema: global active power, global
    reactive power, voltage, intensity, and three sub-meterings.  Samples
    come from a mixture of household states (night, baseline, cooking,
    laundry, heating, everything-on) with state-dependent correlations and
    measurement noise — unbalanced dense modes plus sparse in-between
    readings.
    """
    if n < 10:
        raise ParameterError("n must be >= 10")
    rng = make_rng(seed)
    # state: (weight, active, reactive, voltage, sub1, sub2, sub3)
    states = [
        (0.30, 0.3, 0.05, 241.0, 0.0, 0.3, 5.0),    # night
        (0.25, 1.2, 0.12, 240.0, 1.0, 1.2, 6.5),    # baseline day
        (0.15, 3.5, 0.22, 238.0, 28.0, 2.0, 7.0),   # cooking
        (0.12, 2.6, 0.18, 238.5, 1.5, 32.0, 7.5),   # laundry
        (0.12, 4.8, 0.28, 236.5, 2.0, 2.5, 17.0),   # heating / AC
        (0.06, 7.2, 0.35, 234.0, 30.0, 33.0, 18.0), # everything on
    ]
    weights = np.array([s[0] for s in states])
    weights = weights / weights.sum()
    choices = rng.choice(len(states), size=n, p=weights)
    out = np.empty((n, 7))
    time_of_day = rng.uniform(0, 24, size=n)
    daily = 0.15 * np.sin(2 * np.pi * time_of_day / 24.0)
    for s, (_w, active, reactive, voltage, sub1, sub2, sub3) in enumerate(states):
        mask = choices == s
        m = int(mask.sum())
        if m == 0:
            continue
        active_s = active * (1 + 0.08 * rng.normal(size=m)) + daily[mask]
        reactive_s = reactive * (1 + 0.15 * rng.normal(size=m))
        voltage_s = voltage - 0.8 * active_s + rng.normal(0, 0.7, size=m)
        intensity = active_s * 4.2 + rng.normal(0, 0.2, size=m)
        out[mask, 0] = active_s
        out[mask, 1] = np.abs(reactive_s)
        out[mask, 2] = voltage_s
        out[mask, 3] = np.abs(intensity)
        out[mask, 4] = np.abs(sub1 * (1 + 0.1 * rng.normal(size=m)))
        out[mask, 5] = np.abs(sub2 * (1 + 0.1 * rng.normal(size=m)))
        out[mask, 6] = np.abs(sub3 * (1 + 0.1 * rng.normal(size=m)))
    # A sprinkle of transitional readings between states (measurement noise).
    n_trans = max(1, n // 50)
    rows = rng.integers(0, n, size=n_trans)
    out[rows] += rng.normal(0, out.std(axis=0) * 0.8, size=(n_trans, 7))
    return vz.rescale_to_domain(out, config.DOMAIN_SIZE)


REAL_LIKE_GENERATORS = {
    "pamap2": pamap2_like,
    "farm": farm_like,
    "household": household_like,
}
