"""The seed-spreader synthetic generator (Section 5.1, Figure 8).

A "random walk with restart": a spreader moves about ``[0, 1e5]^d`` and
spits out points around its current location.

* It carries a counter initialised to ``c_reset``; each step emits one
  point uniformly in the ball of radius ``r_vicinity`` (100 in the paper)
  around the current location and decrements the counter.
* When the counter hits 0, the spreader shifts by ``r_shift`` (``50 d`` in
  the paper) in a random direction and the counter resets.
* Before every step, with probability ``p_restart`` the spreader jumps to
  a uniformly random location (starting a new cluster); a restart is
  forced on the first step.
* After ``n (1 - f_noise)`` steps, ``n * f_noise`` uniform noise points
  are appended.

Defaults reproduce the paper: ``p_restart = 10 / (n (1 - f_noise))`` so
that about 10 restarts (clusters) occur, and ``f_noise = 1e-4``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro import config
from repro.errors import ParameterError
from repro.utils.rng import SeedLike, make_rng


@dataclass(frozen=True)
class SeedSpreaderDataset:
    """A generated dataset plus its ground-truth provenance.

    ``restart_ids`` records, for each non-noise point, which restart
    (i.e. intended cluster) produced it; noise points get ``-1``.  This is
    generator provenance — DBSCAN may merge or split these groups
    depending on ``eps``.
    """

    points: np.ndarray
    restart_ids: np.ndarray
    n_noise: int
    params: dict = field(default_factory=dict)

    @property
    def n(self) -> int:
        return len(self.points)

    @property
    def dim(self) -> int:
        return self.points.shape[1]

    @property
    def n_restarts(self) -> int:
        ids = self.restart_ids
        return int(ids.max()) + 1 if len(ids) and ids.max() >= 0 else 0


def seed_spreader(
    n: int,
    d: int,
    *,
    domain: float = config.DOMAIN_SIZE,
    restart_probability: Optional[float] = None,
    noise_fraction: float = config.SS_NOISE_FRACTION,
    counter_reset: int = config.SS_COUNTER_RESET,
    shift_radius: Optional[float] = None,
    vicinity_radius: float = config.SS_VICINITY_RADIUS,
    seed: SeedLike = None,
) -> SeedSpreaderDataset:
    """Generate a seed-spreader dataset with the paper's defaults.

    Parameters
    ----------
    n:
        Target cardinality (clustered points + noise).
    d:
        Dimensionality.
    restart_probability:
        Defaults to ``10 / (n (1 - noise_fraction))`` — about 10 restarts.
    shift_radius:
        Defaults to the paper's ``50 d``.
    """
    if n < 1:
        raise ParameterError(f"n must be >= 1; got {n}")
    if d < 1:
        raise ParameterError(f"d must be >= 1; got {d}")
    if not 0.0 <= noise_fraction < 1.0:
        raise ParameterError(f"noise_fraction must be in [0, 1); got {noise_fraction}")
    if counter_reset < 1:
        raise ParameterError(f"counter_reset must be >= 1; got {counter_reset}")
    rng = make_rng(seed)

    n_noise = int(round(n * noise_fraction))
    n_cluster = n - n_noise
    if n_cluster < 1:
        raise ParameterError("noise_fraction leaves no clustered points")
    if restart_probability is None:
        restart_probability = min(1.0, config.SS_EXPECTED_RESTARTS / n_cluster)
    if shift_radius is None:
        shift_radius = 50.0 * d

    points = np.empty((n_cluster, d))
    restart_ids = np.empty(n_cluster, dtype=np.int64)
    location = np.zeros(d)
    counter = 0
    restart_id = -1

    restart_draws = rng.uniform(size=n_cluster)
    for step in range(n_cluster):
        if step == 0 or restart_draws[step] < restart_probability:
            location = rng.uniform(0.0, domain, size=d)
            counter = counter_reset
            restart_id += 1
        if counter == 0:
            location = location + _random_direction(rng, d) * shift_radius
            counter = counter_reset
        points[step] = location + _uniform_in_ball(rng, d) * vicinity_radius
        restart_ids[step] = restart_id
        counter -= 1

    if n_noise:
        noise = rng.uniform(0.0, domain, size=(n_noise, d))
        points = np.vstack([points, noise])
        restart_ids = np.concatenate([restart_ids, np.full(n_noise, -1, dtype=np.int64)])

    return SeedSpreaderDataset(
        points=points,
        restart_ids=restart_ids,
        n_noise=n_noise,
        params={
            "n": n,
            "d": d,
            "domain": domain,
            "restart_probability": restart_probability,
            "noise_fraction": noise_fraction,
            "counter_reset": counter_reset,
            "shift_radius": shift_radius,
            "vicinity_radius": vicinity_radius,
        },
    )


def figure8_dataset(seed: SeedLike = 8) -> SeedSpreaderDataset:
    """The small 2D visualisation dataset of Figure 8 (n = 1000, 4 restarts).

    The paper fixes n = 1000 and reports 4 restarts.  To reproduce the
    figure's long snake-shaped clusters at this tiny cardinality, the
    spreader shifts more often (``counter_reset = 10``) and farther
    (``shift_radius = 2000``) than the large-scale defaults — with the
    paper's defaults a 1000-point run moves at most a few hundred units
    inside the 1e5-wide domain and every cluster degenerates to a dot.
    """
    return seed_spreader(
        1000,
        2,
        restart_probability=4.0 / 1000.0,
        noise_fraction=0.0,
        counter_reset=10,
        shift_radius=2000.0,
        vicinity_radius=400.0,
        seed=seed,
    )


def _random_direction(rng: np.random.Generator, d: int) -> np.ndarray:
    """Uniform unit vector in R^d."""
    while True:
        v = rng.normal(size=d)
        norm = np.linalg.norm(v)
        if norm > 1e-12:
            return v / norm


def _uniform_in_ball(rng: np.random.Generator, d: int) -> np.ndarray:
    """Uniform point in the d-dimensional unit ball."""
    direction = _random_direction(rng, d)
    radius = rng.uniform() ** (1.0 / d)
    return direction * radius
