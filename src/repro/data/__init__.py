"""Data generation: the seed spreader, real-dataset stand-ins, 2D shapes, IO."""

from repro.data.io import load_points, save_points
from repro.data.real_like import (
    REAL_LIKE_GENERATORS,
    farm_like,
    household_like,
    pamap2_like,
)
from repro.data.seed_spreader import SeedSpreaderDataset, figure8_dataset, seed_spreader
from repro.data.shapes import gaussian_blobs, rings, snakes, two_moons

__all__ = [
    "seed_spreader",
    "figure8_dataset",
    "SeedSpreaderDataset",
    "pamap2_like",
    "farm_like",
    "household_like",
    "REAL_LIKE_GENERATORS",
    "two_moons",
    "rings",
    "snakes",
    "gaussian_blobs",
    "load_points",
    "save_points",
]
