"""VZ (Varma-Zisserman) patch features and a tiny PCA.

The paper's *Farm* dataset consists of the VZ-features of a satellite
image of a farm: VZ-feature clustering — representing each pixel by the
raw vector of intensities in the patch around it — is a standard approach
to colour/texture segmentation (Varma & Zisserman, "Texture
classification: are filter banks necessary?", CVPR 2003).

We cannot ship the proprietary IKONOS image, so :mod:`repro.data.real_like`
synthesises a multi-region textured image and runs it through the *same*
feature pipeline implemented here: patch extraction followed by PCA down to
the paper's 5 dimensions.  Only the raw pixels are synthetic; the feature
code path is the paper's.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import DataError, ParameterError
from repro.utils.rng import SeedLike, make_rng


def synthetic_satellite_image(
    height: int,
    width: int,
    n_regions: int = 8,
    texture_scale: float = 0.08,
    seed: SeedLike = None,
) -> np.ndarray:
    """A synthetic "satellite photo": Voronoi land-use regions with texture.

    Returns an ``(height, width, 3)`` float array in ``[0, 1]``.  Each
    region (field, road, water, ...) gets a base colour and a
    characteristic oscillatory texture so that VZ features separate the
    regions the way crop fields separate in the real image.
    """
    if height < 4 or width < 4:
        raise ParameterError("image must be at least 4x4")
    if n_regions < 2:
        raise ParameterError("need at least 2 regions")
    rng = make_rng(seed)
    seeds_yx = rng.uniform(0, 1, size=(n_regions, 2)) * (height, width)
    base_colors = rng.uniform(0.15, 0.85, size=(n_regions, 3))
    tex_freq = rng.uniform(0.2, 1.2, size=n_regions)
    tex_angle = rng.uniform(0, np.pi, size=n_regions)

    ys, xs = np.mgrid[0:height, 0:width]
    coords = np.stack([ys.ravel(), xs.ravel()], axis=1).astype(np.float64)
    sq = ((coords[:, None, :] - seeds_yx[None, :, :]) ** 2).sum(axis=2)
    region = np.argmin(sq, axis=1).reshape(height, width)

    image = np.empty((height, width, 3))
    for r in range(n_regions):
        mask = region == r
        if not mask.any():
            continue
        yy, xx = np.nonzero(mask)
        phase = (np.cos(tex_angle[r]) * yy + np.sin(tex_angle[r]) * xx) * tex_freq[r]
        texture = texture_scale * np.sin(phase)
        image[yy, xx, :] = np.clip(base_colors[r][None, :] + texture[:, None], 0.0, 1.0)
    image += rng.normal(0.0, 0.01, size=image.shape)  # sensor noise
    return np.clip(image, 0.0, 1.0)


def vz_features(image: np.ndarray, patch_size: int = 3) -> np.ndarray:
    """Raw patch-vector features: one row per interior pixel.

    Each feature is the concatenation of the ``patch_size x patch_size``
    neighbourhood across all channels, giving
    ``patch_size^2 * channels`` dimensions.
    """
    image = np.asarray(image, dtype=np.float64)
    if image.ndim == 2:
        image = image[:, :, None]
    if image.ndim != 3:
        raise DataError("image must be (H, W) or (H, W, C)")
    if patch_size < 1 or patch_size % 2 == 0:
        raise ParameterError("patch_size must be a positive odd integer")
    h, w, c = image.shape
    half = patch_size // 2
    if h < patch_size or w < patch_size:
        raise DataError("image smaller than the patch")
    rows = []
    for dy in range(-half, half + 1):
        for dx in range(-half, half + 1):
            rows.append(
                image[half + dy: h - half + dy, half + dx: w - half + dx, :]
            )
    stacked = np.concatenate(rows, axis=2)  # (h', w', patch^2 * c)
    return stacked.reshape(-1, patch_size * patch_size * c)


def pca(X: np.ndarray, k: int) -> Tuple[np.ndarray, np.ndarray]:
    """Principal component analysis via SVD.

    Returns ``(projected, components)`` where ``projected`` has shape
    ``(n, k)`` and ``components`` has shape ``(k, d)``.
    """
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2:
        raise DataError("PCA input must be 2-D")
    k = int(k)
    if not 1 <= k <= X.shape[1]:
        raise ParameterError(f"k must be in [1, {X.shape[1]}]; got {k}")
    centered = X - X.mean(axis=0)
    # Economy SVD of the (possibly tall) matrix; components are right
    # singular vectors.
    _u, _s, vt = np.linalg.svd(centered, full_matrices=False)
    components = vt[:k]
    return centered @ components.T, components


def rescale_to_domain(X: np.ndarray, domain: float) -> np.ndarray:
    """Affinely map each column into ``[0, domain]`` (constant columns to 0)."""
    X = np.asarray(X, dtype=np.float64)
    lo = X.min(axis=0)
    hi = X.max(axis=0)
    span = np.where(hi > lo, hi - lo, 1.0)
    return (X - lo) / span * domain
