"""Classic 2D shape datasets for examples and tests.

These mirror the paper's Figure 1 motivation: density-based clustering
finds arbitrarily shaped clusters (snakes, rings, moons) where k-means-like
methods fail.  All generators return ``(points, labels)`` where ``labels``
is the generating component of each point (``-1`` for noise) — provenance,
not a DBSCAN ground truth.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import ParameterError
from repro.utils.rng import SeedLike, make_rng


def two_moons(
    n: int,
    noise: float = 0.05,
    separation: float = 0.5,
    seed: SeedLike = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """The classic interleaved half-circles."""
    if n < 2:
        raise ParameterError("n must be >= 2")
    rng = make_rng(seed)
    n1 = n // 2
    n2 = n - n1
    t1 = rng.uniform(0, np.pi, size=n1)
    t2 = rng.uniform(0, np.pi, size=n2)
    upper = np.column_stack([np.cos(t1), np.sin(t1)])
    lower = np.column_stack([1.0 - np.cos(t2), separation - np.sin(t2)])
    pts = np.vstack([upper, lower]) + rng.normal(0, noise, size=(n, 2))
    labels = np.concatenate([np.zeros(n1, dtype=np.int64), np.ones(n2, dtype=np.int64)])
    return pts, labels


def rings(
    n: int,
    radii: Tuple[float, ...] = (1.0, 2.0, 3.0),
    noise: float = 0.04,
    seed: SeedLike = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Concentric rings (the paper's right example of Figure 1 in spirit)."""
    if n < len(radii):
        raise ParameterError("n must be at least the number of rings")
    rng = make_rng(seed)
    per = np.full(len(radii), n // len(radii))
    per[: n - per.sum()] += 1
    pieces, labels = [], []
    for k, (r, m) in enumerate(zip(radii, per)):
        theta = rng.uniform(0, 2 * np.pi, size=m)
        ring = np.column_stack([r * np.cos(theta), r * np.sin(theta)])
        pieces.append(ring + rng.normal(0, noise, size=(m, 2)))
        labels.append(np.full(m, k, dtype=np.int64))
    return np.vstack(pieces), np.concatenate(labels)


def gaussian_blobs(
    n: int,
    centers: np.ndarray,
    spread: float = 1.0,
    noise_fraction: float = 0.0,
    domain: float = 20.0,
    seed: SeedLike = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Isotropic Gaussian blobs plus optional uniform noise."""
    centers = np.asarray(centers, dtype=np.float64)
    if centers.ndim != 2:
        raise ParameterError("centers must be (k, d)")
    if not 0.0 <= noise_fraction < 1.0:
        raise ParameterError("noise_fraction must be in [0, 1)")
    rng = make_rng(seed)
    n_noise = int(round(n * noise_fraction))
    n_blob = n - n_noise
    k, d = centers.shape
    which = rng.integers(0, k, size=n_blob)
    pts = centers[which] + rng.normal(0, spread, size=(n_blob, d))
    labels = which.astype(np.int64)
    if n_noise:
        pts = np.vstack([pts, rng.uniform(0, domain, size=(n_noise, d))])
        labels = np.concatenate([labels, np.full(n_noise, -1, dtype=np.int64)])
    return pts, labels


def snakes(
    n: int,
    n_snakes: int = 4,
    length: float = 10.0,
    thickness: float = 0.15,
    seed: SeedLike = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Winding snake-shaped clusters (the paper's left example of Figure 1)."""
    if n_snakes < 1:
        raise ParameterError("n_snakes must be >= 1")
    rng = make_rng(seed)
    per = np.full(n_snakes, n // n_snakes)
    per[: n - per.sum()] += 1
    # One horizontal band per snake so the snakes wind but never touch
    # (the paper's left Figure 1 shows four separate snakes).
    band = 4.0
    pieces, labels = [], []
    for k in range(n_snakes):
        m = int(per[k])
        t = np.sort(rng.uniform(0, 1, size=m))
        amp = rng.uniform(0.6, band / 2 - 4 * thickness)
        freq = rng.uniform(1.5, 3.0)
        phase = rng.uniform(0, 2 * np.pi)
        x = rng.uniform(0, 2) + t * length
        y = band * k + band / 2 + amp * np.sin(2 * np.pi * freq * t + phase)
        pts = np.column_stack([x, y]) + rng.normal(0, thickness, size=(m, 2))
        pieces.append(pts)
        labels.append(np.full(m, k, dtype=np.int64))
    return np.vstack(pieces), np.concatenate(labels)
