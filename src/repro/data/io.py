"""Point-set persistence: a tiny CSV/NPY loader-saver used by the CLI."""

from __future__ import annotations

import os

import numpy as np

from repro.errors import DataError
from repro.utils.validation import as_points


def save_points(points: np.ndarray, path: str) -> None:
    """Save a point set; format chosen by extension (.npy or .csv/.txt)."""
    pts = as_points(points)
    ext = os.path.splitext(path)[1].lower()
    if ext == ".npy":
        np.save(path, pts)
    elif ext in (".csv", ".txt"):
        np.savetxt(path, pts, delimiter=",", fmt="%.10g")
    else:
        raise DataError(f"unsupported extension {ext!r}; use .npy, .csv or .txt")


def load_points(path: str) -> np.ndarray:
    """Load a point set saved by :func:`save_points` (or compatible files)."""
    if not os.path.exists(path):
        raise DataError(f"no such file: {path}")
    ext = os.path.splitext(path)[1].lower()
    if ext == ".npy":
        return as_points(np.load(path))
    if ext in (".csv", ".txt"):
        return as_points(np.loadtxt(path, delimiter=","))
    raise DataError(f"unsupported extension {ext!r}; use .npy, .csv or .txt")
