"""Point-set persistence: CSV/NPY loading with hardened ingestion.

Real datasets arrive dirty — sensor dropouts write ``NaN``, truncated
downloads leave ragged lines, exports mix header text into data files.
:func:`load_points` screens every row before the library sees it and
resolves bad rows according to ``on_bad_rows``:

* ``"raise"`` (default) — fail fast with a structured
  :class:`~repro.errors.InvalidDataError` naming the offending rows and
  the reason each was rejected;
* ``"drop"`` — log a WARNING and cluster the good rows only;
* ``"quarantine"`` — like ``"drop"``, but additionally write the rejected
  rows verbatim to a ``<path>.quarantine.csv`` sidecar (one ``# reason``
  comment per row) so no datum is silently destroyed.  Each load claims a
  fresh sidecar (``.quarantine-1.csv``, ``-2``, ...) instead of clobbering
  the previous run's evidence.

A row is *bad* when it contains a non-numeric field, has a different
width than the first parseable row, or holds a non-finite coordinate
(``nan``/``inf``).  A file whose every row is bad always raises,
regardless of mode — an empty point set is never a sane reading of a
non-empty file.
"""

from __future__ import annotations

import hashlib
import math
import os
import threading
from collections import OrderedDict
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import DataError, InvalidDataError
from repro.utils.log import get_logger
from repro.utils.validation import as_points

_log = get_logger("data.io")

#: Valid ``on_bad_rows`` modes, in documentation order.
BAD_ROW_MODES: Tuple[str, ...] = ("raise", "drop", "quarantine")

#: Parsed files retained by the content-fingerprint cache (LRU).
PARSE_CACHE_MAX = 16

# Content-fingerprint parse cache: re-registering the same file (or the
# service reloading its catalog after a restart) must not pay the
# row-by-row screening again, and must *never* write a second quarantine
# sidecar for rows the first load already preserved.  Keyed by the
# sha256 of the raw bytes — a renamed copy of the file hits, an edited
# file (even same mtime/size) misses.
_parse_cache: "OrderedDict[str, Tuple[np.ndarray, tuple, Optional[str]]]" = OrderedDict()
_parse_cache_lock = threading.Lock()


def content_fingerprint(path: str) -> str:
    """sha256 of the file's raw bytes (streamed; the parse-cache key)."""
    digest = hashlib.sha256()
    with open(path, "rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def clear_parse_cache() -> None:
    """Drop every cached parse (tests; long-lived processes never need to)."""
    with _parse_cache_lock:
        _parse_cache.clear()


def save_points(points: np.ndarray, path: str) -> None:
    """Save a point set; format chosen by extension (.npy or .csv/.txt)."""
    pts = as_points(points)
    ext = os.path.splitext(path)[1].lower()
    if ext == ".npy":
        np.save(path, pts)
    elif ext in (".csv", ".txt"):
        np.savetxt(path, pts, delimiter=",", fmt="%.10g")
    else:
        raise DataError(f"unsupported extension {ext!r}; use .npy, .csv or .txt")


def _parse_csv(path: str) -> Tuple[List[List[float]], List[Tuple[int, str, str]]]:
    """Parse a delimited text file row by row.

    Returns ``(good_rows, bad_rows)`` where each bad row is
    ``(1-based line number, raw line, reason)``.  The expected width is
    fixed by the first parseable row, matching what ``np.loadtxt`` would
    have inferred on a clean file.
    """
    good: List[List[float]] = []
    bad: List[Tuple[int, str, str]] = []
    width = None
    with open(path, "r", encoding="utf-8", errors="replace") as fh:
        for lineno, raw in enumerate(fh, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            fields = [f.strip() for f in line.split(",")]
            try:
                values = [float(f) for f in fields]
            except ValueError:
                bad.append((lineno, line, "non-numeric field"))
                continue
            if width is not None and len(values) != width:
                bad.append(
                    (lineno, line, f"expected {width} columns, got {len(values)}")
                )
                continue
            if not all(math.isfinite(v) for v in values):
                bad.append((lineno, line, "non-finite coordinate (nan/inf)"))
                continue
            if width is None:
                width = len(values)
            good.append(values)
    return good, bad


def _screen_array(arr: np.ndarray) -> Tuple[np.ndarray, List[Tuple[int, str, str]]]:
    """Split an ``.npy`` array into finite rows and bad-row records."""
    arr = np.asarray(arr, dtype=np.float64)
    if arr.ndim == 1:
        arr = arr.reshape(-1, 1)
    if arr.ndim != 2:
        raise DataError(f"points must be a 2-D array of shape (n, d); got ndim={arr.ndim}")
    finite = np.isfinite(arr).all(axis=1)
    bad = [
        (int(i) + 1, ",".join(f"{v!r}" for v in arr[i]), "non-finite coordinate (nan/inf)")
        for i in np.flatnonzero(~finite)
    ]
    return arr[finite], bad


def _quarantine_path(path: str, run: int = 0) -> str:
    if run == 0:
        return path + ".quarantine.csv"
    return f"{path}.quarantine-{run}.csv"


def _write_quarantine(path: str, bad: List[Tuple[int, str, str]]) -> str:
    # Each load gets its own sidecar: O_EXCL claims the first unused
    # suffix, so a rerun never overwrites the previous run's evidence
    # (and concurrent loaders of the same file cannot race on one name).
    for run in range(10_000):
        side = _quarantine_path(path, run)
        try:
            fd = os.open(side, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
        except FileExistsError:
            continue
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            fh.write("# rows rejected while loading %s\n" % os.path.basename(path))
            for lineno, line, reason in bad:
                fh.write(f"# line {lineno}: {reason}\n")
                fh.write(line + "\n")
        return side
    raise DataError(  # pragma: no cover - ten thousand sidecars is pathological
        f"{path}: could not find an unused quarantine sidecar name after 10000 tries"
    )


def load_points(path: str, *, on_bad_rows: str = "raise", cache: bool = False) -> np.ndarray:
    """Load a point set saved by :func:`save_points` (or compatible files).

    ``on_bad_rows`` selects the policy for rows that fail screening (see
    the module docstring): ``"raise"`` (default), ``"drop"`` or
    ``"quarantine"``.  Raises :class:`~repro.errors.InvalidDataError` in
    ``"raise"`` mode, or whenever *no* valid row survives.

    ``cache=True`` consults the content-fingerprint parse cache: a file
    whose raw bytes were already parsed by this process is answered from
    memory — no re-screening, and crucially no *second* quarantine
    sidecar for bad rows the first load already preserved.  The policy
    still applies on a hit (``"raise"`` raises for a cached file with bad
    rows); only the parsing and the sidecar write are skipped.  Off by
    default: one-shot CLI runs gain nothing from it, and callers that
    expect a fresh sidecar per load (the PR 3 ingestion contract) keep
    that behaviour.
    """
    if on_bad_rows not in BAD_ROW_MODES:
        raise DataError(
            f"unknown on_bad_rows mode {on_bad_rows!r}; choose from {BAD_ROW_MODES}"
        )
    if not os.path.exists(path):
        raise DataError(f"no such file: {path}")

    fingerprint = None
    cached_side = None
    cache_hit = False
    if cache:
        fingerprint = content_fingerprint(path)
        with _parse_cache_lock:
            hit = _parse_cache.get(fingerprint)
            if hit is not None:
                _parse_cache.move_to_end(fingerprint)
                good_arr, bad, cached_side = hit
                bad = list(bad)
                cache_hit = True

    if not cache_hit:
        ext = os.path.splitext(path)[1].lower()
        if ext == ".npy":
            good_arr, bad = _screen_array(np.load(path))
        elif ext in (".csv", ".txt"):
            good, bad = _parse_csv(path)
            good_arr = np.asarray(good, dtype=np.float64)
        else:
            raise DataError(f"unsupported extension {ext!r}; use .npy, .csv or .txt")

    if bad:
        reasons = [f"line {lineno}: {reason}" for lineno, _, reason in bad]
        rows = [line for _, line, _ in bad]
        if on_bad_rows == "raise" or len(good_arr) == 0:
            raise InvalidDataError(
                f"{path}: {len(bad)} invalid row(s)"
                + ("; no valid rows remain" if len(good_arr) == 0 else ""),
                bad_rows=rows,
                reasons=reasons,
            )
        if on_bad_rows == "quarantine":
            if cache_hit and cached_side is not None:
                _log.info(
                    "%s: %d invalid row(s) already quarantined to %s by an "
                    "earlier load of the same content; not writing a new sidecar",
                    path, len(bad), cached_side,
                )
            else:
                cached_side = _write_quarantine(path, bad)
                _log.warning(
                    "%s: quarantined %d invalid row(s) to %s; clustering %d valid row(s)",
                    path,
                    len(bad),
                    cached_side,
                    len(good_arr),
                )
        else:
            _log.warning(
                "%s: dropped %d invalid row(s) (%s%s); clustering %d valid row(s)",
                path,
                len(bad),
                "; ".join(reasons[:3]),
                "; ..." if len(reasons) > 3 else "",
                len(good_arr),
            )

    points = as_points(good_arr, allow_empty=False)
    if cache and fingerprint is not None:
        with _parse_cache_lock:
            _parse_cache[fingerprint] = (points, tuple(bad), cached_side)
            _parse_cache.move_to_end(fingerprint)
            while len(_parse_cache) > PARSE_CACHE_MAX:
                _parse_cache.popitem(last=False)
    return points
