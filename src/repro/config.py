"""Paper constants and reproduction-scale configuration.

The SIGMOD'15 evaluation (Table 1 and Section 5.1) fixes a normalised data
domain of ``[0, 1e5]`` per dimension, ``MinPts = 100``, cardinalities from
100k to 10m, dimensionalities 3/5/7, ``eps`` swept from 5000 up to each
dataset's *collapsing radius*, and ``rho`` in ``{0.001, 0.01, ..., 0.1}``.

The authors ran C++ on a 3.2 GHz machine; this reproduction is pure Python,
so the benchmark harness scales cardinality down by default while keeping
every other parameter paper-faithful.  Set the environment variable
``REPRO_SCALE`` to a positive float to raise (or lower) the workload sizes:
``REPRO_SCALE=1`` keeps the fast defaults, ``REPRO_SCALE=10`` multiplies all
benchmark cardinalities by ten, and so on.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.errors import ConfigError

#: Extent of the normalised data domain used throughout the paper: every
#: coordinate lies in ``[0, DOMAIN_SIZE]`` (Section 5.1).
DOMAIN_SIZE = 100_000.0

#: MinPts used for every experiment except the 2D visualisation (Section 5.1).
PAPER_MINPTS = 100

#: MinPts for the 2D visualisation experiment of Figure 9 (Section 5.2).
FIG9_MINPTS = 20

#: The default approximation parameter recommended by the paper (Section 5.2).
DEFAULT_RHO = 0.001

#: The rho grid of Table 1.
PAPER_RHO_GRID = (0.001, 0.01, 0.02, 0.03, 0.04, 0.05, 0.06, 0.07, 0.08, 0.09, 0.1)

#: Smallest eps of every sweep (Table 1).
PAPER_EPS_MIN = 5000.0

#: Cardinalities of Table 1 (synthetic data), at paper scale.
PAPER_CARDINALITIES = (100_000, 500_000, 1_000_000, 2_000_000, 5_000_000, 10_000_000)

#: Default synthetic cardinality of Table 1 (bold): 2 million points.
PAPER_DEFAULT_N = 2_000_000

#: Dimensionalities of Table 1.
PAPER_DIMENSIONS = (3, 5, 7)

#: Seed-spreader constants of Section 5.1.
SS_COUNTER_RESET = 100
SS_VICINITY_RADIUS = 100.0
SS_NOISE_FRACTION = 1.0 / 10_000
SS_EXPECTED_RESTARTS = 10

#: eps values of the Figure 9 visual-comparison experiment.
FIG9_EPS_VALUES = (5000.0, 11300.0, 12200.0)

#: rho values of the Figure 9 visual-comparison experiment.
FIG9_RHO_VALUES = (0.001, 0.01, 0.1)


def _env_int(name: str, default: int, minimum: int) -> int:
    """Strictly parsed integer environment default.

    Unset (or empty) falls back to ``default``; anything set but
    unparsable or below ``minimum`` raises
    :class:`~repro.errors.ConfigError` naming the variable, so a broken
    deployment fails loudly at call time instead of silently running with
    a surprise fallback.
    """
    raw = os.environ.get(name)
    if raw is None or raw.strip() == "":
        return default
    try:
        value = int(raw)
    except ValueError:
        raise ConfigError(
            f"invalid {name}={raw!r}: expected an integer >= {minimum}"
        ) from None
    if value < minimum:
        raise ConfigError(f"invalid {name}={raw!r}: must be >= {minimum}")
    return value


def _env_float(name: str, default: Optional[float], minimum: float) -> Optional[float]:
    """Strictly parsed float environment default (``None`` when unset)."""
    raw = os.environ.get(name)
    if raw is None or raw.strip() == "":
        return default
    try:
        value = float(raw)
    except ValueError:
        raise ConfigError(
            f"invalid {name}={raw!r}: expected a number > {minimum:g}"
        ) from None
    if not value > minimum or value != value:  # NaN fails both comparisons
        raise ConfigError(f"invalid {name}={raw!r}: must be > {minimum:g}")
    return value


def default_workers() -> int:
    """Default worker-process count from the ``REPRO_WORKERS`` env variable.

    ``1`` (the safe serial default) when unset; public entry points fall
    back to this whenever ``workers=None`` is passed, so a deployment can
    turn the fleet parallel without touching call sites.  A set-but-invalid
    value (``"abc"``, ``0``, negative) raises
    :class:`~repro.errors.ConfigError`.
    """
    return _env_int("REPRO_WORKERS", 1, 1)


def parallel_min_points() -> int:
    """Serial-fallback threshold from ``REPRO_PARALLEL_MIN_POINTS``.

    Below this cardinality the parallel layer runs serially — pool startup
    and payload pickling dwarf the work on small inputs.  The environment
    override exists so CI can set it to 0 and force every run through the
    sharded path.  A set-but-invalid value raises
    :class:`~repro.errors.ConfigError`.
    """
    return _env_int("REPRO_PARALLEL_MIN_POINTS", 4096, 0)


def max_shard_retries() -> int:
    """Per-shard retry budget from ``REPRO_MAX_SHARD_RETRIES`` (default 2).

    The supervised executor retries a failed or requeued shard this many
    times (with exponential backoff + jitter) before quarantining it — see
    :mod:`repro.parallel.supervisor`.
    """
    return _env_int("REPRO_MAX_SHARD_RETRIES", 2, 0)


def shard_timeout() -> Optional[float]:
    """Per-shard soft timeout in seconds from ``REPRO_SHARD_TIMEOUT``.

    ``None`` when unset: the supervisor then derives the hang threshold
    from the run's deadline (or a conservative built-in default).
    """
    return _env_float("REPRO_SHARD_TIMEOUT", None, 0.0)


def default_shm():
    """Shared-memory transport default from ``REPRO_SHM``.

    ``False`` when unset (pickled transport, the pre-PR-7 behaviour);
    ``on``/``true``/``1``/``yes`` force the zero-copy path, ``off``/
    ``false``/``0``/``no`` force pickling, and ``auto`` tries shared
    memory but falls back to pickling if publication fails (no
    ``/dev/shm``, segment quota).  Anything else raises
    :class:`~repro.errors.ConfigError` naming the variable.
    """
    raw = os.environ.get("REPRO_SHM")
    if raw is None or raw.strip() == "":
        return False
    value = raw.strip().lower()
    if value in ("on", "true", "1", "yes"):
        return True
    if value in ("off", "false", "0", "no"):
        return False
    if value == "auto":
        return "auto"
    raise ConfigError(
        f"invalid REPRO_SHM={raw!r}: expected on/off/auto (or true/false/1/0/yes/no)"
    )


def default_backend() -> str:
    """Fan-out backend default from ``REPRO_BACKEND``.

    ``process`` (the multiprocessing pool) when unset; ``thread`` runs the
    phase tasks on an in-process thread pool — zero-copy by construction
    and the right choice when the GIL-releasing numpy kernels dominate and
    pickling was the only parallelism cost.  Anything else raises
    :class:`~repro.errors.ConfigError`.
    """
    raw = os.environ.get("REPRO_BACKEND")
    if raw is None or raw.strip() == "":
        return "process"
    value = raw.strip().lower()
    if value in ("process", "thread"):
        return value
    raise ConfigError(
        f"invalid REPRO_BACKEND={raw!r}: expected 'process' or 'thread'"
    )


def chunk_budget() -> int:
    """Pairwise-kernel chunk budget from ``REPRO_CHUNK_BUDGET``.

    The number of matrix entries one chunk of a pairwise distance
    computation may hold (see :mod:`repro.geometry.distance`); the default
    of 4 million float64 entries keeps a chunk around 32 MB.  Lower it on
    memory-starved deployments, raise it when the default chunking shows
    up in profiles.  A set-but-invalid value (``"abc"``, ``0``, negative)
    raises :class:`~repro.errors.ConfigError` naming the variable.
    """
    return _env_int("REPRO_CHUNK_BUDGET", 4_000_000, 1)


def scale_factor() -> float:
    """Workload multiplier taken from the ``REPRO_SCALE`` environment variable."""
    raw = os.environ.get("REPRO_SCALE", "1")
    try:
        value = float(raw)
    except ValueError:
        return 1.0
    return value if value > 0 else 1.0


def scaled(n: int, *, base_divisor: int = 100) -> int:
    """Scale a paper cardinality down to reproduction size.

    ``n`` is the paper's cardinality; the default divisor of 100 maps the
    paper's 2m-point default to 20k points, which a pure-Python run handles
    in seconds.  ``REPRO_SCALE`` multiplies the result.
    """
    value = int(n / base_divisor * scale_factor())
    return max(value, 100)
