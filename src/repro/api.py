"""Public entry points of the library.

Three calls cover the paper's headline functionality plus the resilient
runtime:

>>> from repro import dbscan, approx_dbscan, run_resilient
>>> result = dbscan(points, eps=0.3, min_pts=10)          # exact (Theorem 2)
>>> result = approx_dbscan(points, eps=0.3, min_pts=10, rho=0.001)  # Theorem 4
>>> result = run_resilient(points, eps=0.3, min_pts=10)   # degrade, don't die

``dbscan`` also exposes every exact algorithm the paper evaluates through
its ``algorithm`` argument, so benchmark code and curious users can compare
them directly.  ``time_budget`` is honoured *uniformly*: every algorithm
polls a cooperative :class:`~repro.runtime.Deadline` in its hot loops and
raises :class:`~repro.errors.TimeoutExceeded` promptly (historically only
the expansion baselines did).
"""

from __future__ import annotations

from typing import Optional

from repro.algorithms.approx import approx_dbscan
from repro.algorithms.brute import brute_dbscan
from repro.algorithms.cit08 import cit08_dbscan
from repro.algorithms.exact_grid import exact_grid_dbscan, gunawan_2d_dbscan
from repro.algorithms.kdd96 import kdd96_dbscan
from repro.core.result import Clustering, empty_clustering
from repro.errors import ParameterError
from repro.parallel.executor import (
    ParallelConfig,
    WorkersLike,
    as_parallel_config,
    with_transport,
)
from repro.runtime.deadline import as_deadline
from repro.runtime.memory import as_memory_budget
from repro.runtime.resilient import ResiliencePolicy, run_resilient, sampled_dbscan
from repro.utils.validation import as_points

#: Names accepted by :func:`dbscan`'s ``algorithm`` argument.
EXACT_ALGORITHMS = ("grid", "kdd96", "cit08", "brute", "gunawan2d")


def dbscan(
    points,
    eps: float,
    min_pts: int,
    algorithm: str = "grid",
    time_budget: Optional[float] = None,
    *,
    memory_budget_mb: Optional[float] = None,
    checkpoint: Optional[str] = None,
    workers: WorkersLike = None,
    shm: object = None,
    engine=None,
) -> Clustering:
    """Exact DBSCAN (Problem 1) with a selectable algorithm.

    Parameters
    ----------
    points:
        Array-like of shape ``(n, d)``.  An empty input is a legal
        degenerate workload: the result is the empty clustering (no
        clusters, no points) rather than an error.
    eps, min_pts:
        The DBSCAN parameters of Definition 1.
    algorithm:
        ``"grid"``
            the paper's new exact algorithm (Section 3.2, Theorem 2) —
            recommended default;
        ``"kdd96"``
            the original 1996 algorithm over an R-tree;
        ``"cit08"``
            the grid-accelerated 2008 baseline;
        ``"gunawan2d"``
            Gunawan's O(n log n) algorithm (2-D inputs only);
        ``"brute"``
            the O(n^2) reference implementation.
    time_budget:
        Optional per-run cut-off in seconds, honoured by **every**
        algorithm (raises :class:`~repro.errors.TimeoutExceeded`).
    memory_budget_mb:
        Optional RSS budget in megabytes, polled at phase boundaries
        (raises :class:`~repro.errors.MemoryBudgetExceeded`).
    checkpoint:
        Optional path to a ``.npz`` checkpoint file.  Supported by the
        grid-pipeline algorithms (``"grid"`` and ``"gunawan2d"``): each
        completed phase is persisted, and an identical invocation resumes
        from the last completed phase.
    workers:
        Optional worker-process count (or a
        :class:`~repro.parallel.ParallelConfig`).  Supported by the
        grid-pipeline algorithms (``"grid"`` and ``"gunawan2d"``), whose
        phases shard across a *supervised* multiprocessing pool with
        output identical to the serial run; explicitly requesting more
        than one worker for any other algorithm raises
        :class:`~repro.errors.ParameterError`.  Defaults to the
        ``REPRO_WORKERS`` environment variable (see
        :func:`repro.config.default_workers`); the environment default is
        silently ignored by algorithms that cannot parallelise.  The
        supervisor recovers from crashed workers (pool respawn), hung
        shards (soft timeouts) and repeatedly failing shards (retry with
        backoff, then quarantined serial re-execution) — pass a
        :class:`~repro.parallel.ParallelConfig` to tune
        ``max_shard_retries``, ``shard_timeout``, ``quarantine`` and
        ``max_pool_respawns``, or ``supervise=False`` for the bare pool.
        Recovery actions are recorded in ``result.meta["supervisor"]``.
    shm:
        Transport for parallel runs: ``True`` ships the grid and the
        result slabs through ``multiprocessing.shared_memory`` (zero-copy;
        see :mod:`repro.parallel.shm`), ``False`` pickles, ``"auto"``
        tries shared memory and falls back.  ``None`` (default) keeps the
        config's own setting (the ``REPRO_SHM`` environment default).
        Meaningless — and ignored — for serial runs.
    engine:
        Optional :class:`~repro.engine.ClusteringEngine` built over these
        same points.  The call is answered through the engine's structure
        cache (warm grids, indexes and core masks are reused; the output
        is byte-identical to the engine-less call).  Incompatible with
        ``checkpoint`` — phase-level resume and structure donation would
        fight over the same phases — and the points must match the
        engine's dataset.

    Returns
    -------
    Clustering
        The unique DBSCAN result: clusters (with multi-membership border
        points), a primary label array, and the core mask.
    """
    pts = as_points(points, allow_empty=True)
    if len(pts) == 0:
        if algorithm not in EXACT_ALGORITHMS:
            raise ParameterError(
                f"unknown algorithm {algorithm!r}; choose from {EXACT_ALGORITHMS}"
            )
        return empty_clustering(
            meta={"algorithm": algorithm, "eps": float(eps), "min_pts": int(min_pts)}
        )
    deadline = as_deadline(time_budget)
    memory = as_memory_budget(memory_budget_mb)
    cfg = with_transport(as_parallel_config(workers), shm=shm)
    if cfg is not None and algorithm not in ("grid", "gunawan2d"):
        if workers is None:
            # The multi-worker request came from the REPRO_WORKERS
            # environment default, not the caller: fall back to serial
            # instead of making the env var poison non-grid algorithms.
            cfg = None
        else:
            raise ParameterError(
                f"algorithm {algorithm!r} does not support workers > 1; "
                "only the grid-pipeline algorithms ('grid', 'gunawan2d') "
                "parallelise"
            )
    # cfg is already resolved (env default included); pass 1 when serial so
    # the callee does not consult the environment a second time.
    resolved_workers: WorkersLike = cfg if cfg is not None else 1
    if engine is not None:
        if checkpoint is not None:
            raise ParameterError(
                "checkpoint cannot be combined with engine=; run either a "
                "resumable one-shot call or a cached engine call"
            )
        if not engine.matches(pts):
            raise ParameterError(
                "engine was built over a different dataset than the points "
                "passed to dbscan(); build a ClusteringEngine over these points"
            )
        return engine.dbscan(
            eps, min_pts, algorithm=algorithm, deadline=deadline,
            memory_budget_mb=memory_budget_mb, workers=resolved_workers,
        )
    if algorithm == "grid":
        return exact_grid_dbscan(
            pts, eps, min_pts, deadline=deadline, memory=memory,
            checkpoint=checkpoint, workers=resolved_workers,
        )
    if algorithm == "kdd96":
        return kdd96_dbscan(pts, eps, min_pts, deadline=deadline, memory=memory)
    if algorithm == "cit08":
        return cit08_dbscan(pts, eps, min_pts, deadline=deadline, memory=memory)
    if algorithm == "gunawan2d":
        return gunawan_2d_dbscan(
            pts, eps, min_pts, deadline=deadline,
            memory_budget_mb=memory_budget_mb, checkpoint=checkpoint,
            workers=resolved_workers,
        )
    if algorithm == "brute":
        return brute_dbscan(pts, eps, min_pts, deadline=deadline, memory=memory)
    raise ParameterError(
        f"unknown algorithm {algorithm!r}; choose from {EXACT_ALGORITHMS}"
    )


__all__ = [
    "dbscan",
    "approx_dbscan",
    "run_resilient",
    "sampled_dbscan",
    "ResiliencePolicy",
    "ParallelConfig",
    "EXACT_ALGORITHMS",
]
