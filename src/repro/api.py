"""Public entry points of the library.

Two calls cover the paper's headline functionality:

>>> from repro import dbscan, approx_dbscan
>>> result = dbscan(points, eps=0.3, min_pts=10)          # exact (Theorem 2)
>>> result = approx_dbscan(points, eps=0.3, min_pts=10, rho=0.001)  # Theorem 4

``dbscan`` also exposes every exact algorithm the paper evaluates through
its ``algorithm`` argument, so benchmark code and curious users can compare
them directly.
"""

from __future__ import annotations

from typing import Optional

from repro.algorithms.approx import approx_dbscan
from repro.algorithms.brute import brute_dbscan
from repro.algorithms.cit08 import cit08_dbscan
from repro.algorithms.exact_grid import exact_grid_dbscan, gunawan_2d_dbscan
from repro.algorithms.kdd96 import kdd96_dbscan
from repro.core.result import Clustering
from repro.errors import ParameterError

#: Names accepted by :func:`dbscan`'s ``algorithm`` argument.
EXACT_ALGORITHMS = ("grid", "kdd96", "cit08", "brute", "gunawan2d")


def dbscan(
    points,
    eps: float,
    min_pts: int,
    algorithm: str = "grid",
    time_budget: Optional[float] = None,
) -> Clustering:
    """Exact DBSCAN (Problem 1) with a selectable algorithm.

    Parameters
    ----------
    points:
        Array-like of shape ``(n, d)``.
    eps, min_pts:
        The DBSCAN parameters of Definition 1.
    algorithm:
        ``"grid"``
            the paper's new exact algorithm (Section 3.2, Theorem 2) —
            recommended default;
        ``"kdd96"``
            the original 1996 algorithm over an R-tree;
        ``"cit08"``
            the grid-accelerated 2008 baseline;
        ``"gunawan2d"``
            Gunawan's O(n log n) algorithm (2-D inputs only);
        ``"brute"``
            the O(n^2) reference implementation.
    time_budget:
        Optional per-run cut-off in seconds (honoured by the
        expansion-based baselines, which can be extremely slow — this is
        the point of the paper).

    Returns
    -------
    Clustering
        The unique DBSCAN result: clusters (with multi-membership border
        points), a primary label array, and the core mask.
    """
    if algorithm == "grid":
        return exact_grid_dbscan(points, eps, min_pts)
    if algorithm == "kdd96":
        return kdd96_dbscan(points, eps, min_pts, time_budget=time_budget)
    if algorithm == "cit08":
        return cit08_dbscan(points, eps, min_pts, time_budget=time_budget)
    if algorithm == "gunawan2d":
        return gunawan_2d_dbscan(points, eps, min_pts)
    if algorithm == "brute":
        return brute_dbscan(points, eps, min_pts)
    raise ParameterError(
        f"unknown algorithm {algorithm!r}; choose from {('grid',) + EXACT_ALGORITHMS[1:]}"
    )


__all__ = ["dbscan", "approx_dbscan", "EXACT_ALGORITHMS"]
