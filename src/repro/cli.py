"""Command-line interface: ``python -m repro <command>`` or ``repro-dbscan``.

Commands
--------
generate
    Produce a dataset (seed spreader, real-dataset stand-ins, 2D shapes)
    and save it to .npy/.csv.
cluster
    Run any of the paper's algorithms on a saved dataset and print a
    summary (optionally save labels).
compare
    Run two algorithms and report whether they returned the same clusters.
legal-rho
    Compute the maximum legal rho at one eps (the Figure 10 quantity).
collapse
    Find the dataset's collapsing radius (Section 5.1).
serve
    Run the clustering service: line-delimited JSON requests over stdio
    (default) or localhost TCP, with admission control, request
    coalescing and graceful degradation (see docs/SERVICE.md).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

import numpy as np

from repro import config
from repro.api import EXACT_ALGORITHMS, dbscan
from repro.algorithms.approx import approx_dbscan
from repro.data import io as data_io
from repro.data import real_like, seed_spreader as ss_mod, shapes
from repro.errors import (
    ConfigError,
    DataError,
    MemoryBudgetExceeded,
    ReproError,
    ServiceError,
    TimeoutExceeded,
    WorkerPoolError,
)
from repro.evaluation import collapsing_radius, confusion_summary, max_legal_rho

_ALL_ALGORITHMS = EXACT_ALGORITHMS + ("approx",)

# Exit-code taxonomy (documented in docs/API.md): scripts driving the CLI
# can tell a bad flag from bad data from an exhausted budget without
# parsing stderr.
EXIT_OK = 0
EXIT_ERROR = 2  # any other library error (parameters, checkpoints, ...)
EXIT_CONFIG = 3  # invalid configuration (flags or REPRO_* environment)
EXIT_DATA = 4  # unreadable or invalid input data
EXIT_BUDGET = 5  # time or memory budget exhausted
EXIT_POOL = 6  # worker pool failed beyond the supervisor's recovery budget
EXIT_SERVICE = 7  # service refused or lost the request (overload, quarantine)


def _parallel_workers(args):
    """The ``workers=`` argument for the run: an int/None, or a full config.

    Plain ``--workers N`` passes the integer through (the executor applies
    env defaults).  Any supervision flag promotes it to a
    :class:`~repro.parallel.ParallelConfig` carrying the retry policy.
    """
    overrides = {}
    if getattr(args, "max_shard_retries", None) is not None:
        overrides["max_shard_retries"] = args.max_shard_retries
    if getattr(args, "shard_timeout", None) is not None:
        overrides["shard_timeout"] = args.shard_timeout
    if getattr(args, "no_quarantine", False):
        overrides["quarantine"] = False
    if getattr(args, "shm", None) is not None:
        overrides["shm"] = args.shm
    if getattr(args, "backend", None) is not None:
        overrides["backend"] = args.backend
    if not overrides:
        return args.workers
    from repro.parallel import ParallelConfig

    workers = args.workers if args.workers is not None else config.default_workers()
    return ParallelConfig(workers=workers, **overrides)


def _run_algorithm(args, points):
    workers = _parallel_workers(args)
    engine = None
    if getattr(args, "engine_cache", False):
        if getattr(args, "resilience", False):
            raise ConfigError(
                "--engine-cache cannot be combined with --resilience: the "
                "degradation cascade manages its own attempts"
            )
        from repro.engine import ClusteringEngine

        engine = ClusteringEngine(points, workers=workers)
    if getattr(args, "resilience", False):
        from repro.runtime.resilient import ResiliencePolicy, run_resilient

        policy = ResiliencePolicy(
            time_budget=args.time_budget,
            memory_budget_mb=args.memory_budget_mb,
            rho=args.rho,
            checkpoint=args.checkpoint,
            workers=workers,
        )
        return run_resilient(points, args.eps, args.min_pts, policy)
    if args.algorithm == "approx":
        return approx_dbscan(
            points,
            args.eps,
            args.min_pts,
            rho=args.rho,
            time_budget=args.time_budget,
            memory_budget_mb=args.memory_budget_mb,
            checkpoint=args.checkpoint,
            workers=workers,
            engine=engine,
        )
    return dbscan(
        points,
        args.eps,
        args.min_pts,
        algorithm=args.algorithm,
        time_budget=args.time_budget,
        memory_budget_mb=args.memory_budget_mb,
        checkpoint=args.checkpoint,
        workers=workers,
        engine=engine,
    )


def _cmd_generate(args) -> int:
    if args.kind == "ss":
        ds = ss_mod(args.n, args.d, seed=args.seed)
        points = ds.points
    elif args.kind in real_like.REAL_LIKE_GENERATORS:
        points = real_like.REAL_LIKE_GENERATORS[args.kind](args.n, seed=args.seed)
    elif args.kind == "moons":
        points, _labels = shapes.two_moons(args.n, seed=args.seed)
    elif args.kind == "rings":
        points, _labels = shapes.rings(args.n, seed=args.seed)
    elif args.kind == "snakes":
        points, _labels = shapes.snakes(args.n, seed=args.seed)
    else:  # pragma: no cover - argparse restricts choices
        raise ReproError(f"unknown dataset kind {args.kind}")
    data_io.save_points(points, args.output)
    print(f"wrote {len(points)} x {points.shape[1]} points to {args.output}")
    return 0


def _cmd_cluster(args) -> int:
    points = data_io.load_points(args.input, on_bad_rows=args.on_bad_rows)
    result = _run_algorithm(args, points)
    print(result.summary())
    if getattr(args, "profile", False):
        phase_seconds = result.meta.get("phase_seconds")
        if phase_seconds:
            from repro.evaluation.timing import format_profile

            extra = {}
            cache_stats = result.meta.get("engine_cache")
            if cache_stats:
                extra.update({f"cache {k}": v for k, v in cache_stats.items()})
            kernel_counters = result.meta.get("kernel_counters")
            if kernel_counters:
                extra.update(
                    {f"kernel {k}": v for k, v in sorted(kernel_counters.items())}
                )
            print(format_profile(phase_seconds, extra=extra or None))
        else:
            print(f"no phase profile: algorithm {args.algorithm!r} does not "
                  "run the grid pipeline")
    resilience = result.meta.get("resilience")
    if resilience:
        print(f"resilience: served by tier {resilience['tier']!r} "
              f"after {len(resilience['attempts'])} degradation(s)")
        for attempt in resilience["attempts"]:
            print(f"  - tier {attempt['tier']!r} failed: {attempt['error']}")
    if args.labels_out:
        np.savetxt(args.labels_out, result.labels, fmt="%d")
        print(f"labels written to {args.labels_out}")
    if args.result_out:
        from repro.core.serialize import save_clustering

        save_clustering(result, args.result_out)
        print(f"result written to {args.result_out}")
    return 0


def _cmd_suggest_eps(args) -> int:
    from repro.extensions.stability import suggest_eps

    points = data_io.load_points(args.input)
    sweep = np.linspace(args.lo, args.hi, args.steps)
    plateau = suggest_eps(points, args.min_pts, sweep)
    if plateau is None:
        print("no stable multi-cluster eps range found in the sweep")
        return 1
    print(
        f"stable plateau: eps in [{plateau.eps_lo:g}, {plateau.eps_hi:g}] "
        f"-> {plateau.n_clusters} clusters"
    )
    print(f"suggested eps: {plateau.midpoint:g} "
          f"(rho head-room ~{plateau.relative_width / 2:.3f})")
    return 0


def _cmd_optics(args) -> int:
    from repro.extensions.optics import optics, reachability_profile

    points = data_io.load_points(args.input)
    result = optics(points, args.eps, args.min_pts)
    print(f"OPTICS ordering of {result.n} points (eps={args.eps:g}, "
          f"MinPts={args.min_pts})")
    print(reachability_profile(result))
    return 0


def _cmd_compare(args) -> int:
    points = data_io.load_points(args.input)
    budget = args.time_budget
    first = dbscan(points, args.eps, args.min_pts, algorithm=args.first,
                   time_budget=budget, workers=args.workers)
    if args.second == "approx":
        second = approx_dbscan(points, args.eps, args.min_pts, rho=args.rho,
                               time_budget=budget, workers=args.workers)
    else:
        second = dbscan(points, args.eps, args.min_pts, algorithm=args.second,
                        time_budget=budget, workers=args.workers)
    print(f"{args.first}: {first.summary()}")
    print(f"{args.second}: {second.summary()}")
    print(confusion_summary(first, second))
    return 0


def _cmd_legal_rho(args) -> int:
    points = data_io.load_points(args.input)
    rho = max_legal_rho(points, args.eps, args.min_pts)
    print(f"maximum legal rho at eps={args.eps:g}: {rho:g}")
    return 0


def _cmd_report(args) -> int:
    from repro.evaluation import report as report_mod

    return report_mod.main([args.output] if args.output else [])


def _cmd_collapse(args) -> int:
    points = data_io.load_points(args.input)
    radius = collapsing_radius(points, args.min_pts, lo=args.lo)
    print(f"collapsing radius: {radius:.1f}")
    return 0


def _cmd_serve(args) -> int:
    import asyncio
    import signal

    from repro.service import AdmissionPolicy, ClusteringService, DatasetRegistry
    from repro.service.metrics import serve_metrics
    from repro.service.store import open_store

    policy = AdmissionPolicy(
        max_queue=args.max_queue,
        max_concurrency=args.max_concurrency,
        default_time_budget=args.time_budget,
        default_rho=args.rho,
        sample_size=args.sample_size,
        memory_budget_mb=args.memory_budget_mb,
        retry_attempts=args.retry_attempts,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown=args.breaker_cooldown,
        fair=not args.no_fair,
        tenant_max_queue=args.tenant_max_queue,
        tenant_max_inflight=args.tenant_max_inflight,
        drain_timeout=args.drain_timeout,
    )
    registry = DatasetRegistry(
        tenant_quota_mb=args.tenant_quota_mb,
        workers=args.workers,
        store=open_store(args.store_dir),
        warm_on_recover=args.warm_on_recover,
    )
    for note in registry.recovered:
        print(f"recovery: {note}", file=sys.stderr)
    if registry.store.persistent:
        print(
            f"recovered {len(registry)} dataset(s) from {args.store_dir}",
            file=sys.stderr,
        )
    service = ClusteringService(registry, policy)
    for spec in args.tenant_weight or ():
        name, _, weight = spec.partition("=")
        if not name or not weight:
            raise ConfigError(f"--tenant-weight takes NAME=WEIGHT; got {spec!r}")
        try:
            registry.configure_tenant(name, weight=float(weight))
        except ValueError:
            raise ConfigError(f"--tenant-weight weight must be a number; got {spec!r}")
    for spec in args.dataset or ():
        name, _, path = spec.partition("=")
        if not name or not path:
            raise ConfigError(f"--dataset takes NAME=PATH; got {spec!r}")
        info = service.register(name, path=path, on_bad_rows=args.on_bad_rows)
        print(
            f"registered dataset {name!r}: {info['n']} x {info['d']} points",
            file=sys.stderr,
        )

    def install_sigterm(loop) -> None:
        # SIGTERM starts the drain protocol: refuse new work, let
        # in-flight requests finish inside the drain budget, flush the
        # journal, exit 0.  A second SIGTERM during the drain still only
        # drains once (the event is already set when it finishes).
        def on_sigterm() -> None:
            asyncio.ensure_future(service.drain())

        try:
            loop.add_signal_handler(signal.SIGTERM, on_sigterm)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass  # platforms without signal-handler support

    async def maybe_metrics():
        if args.metrics_port is None:
            return None
        server = await serve_metrics(service, args.host, args.metrics_port)
        sockname = server.sockets[0].getsockname()
        print(
            f"metrics on http://{sockname[0]}:{sockname[1]}/metrics",
            file=sys.stderr, flush=True,
        )
        return server

    async def run_tcp() -> None:
        install_sigterm(asyncio.get_running_loop())
        metrics_server = await maybe_metrics()
        server = await service.serve_tcp(args.host, args.port)
        sockname = server.sockets[0].getsockname()
        # The banner goes to stderr so stdout stays a pure response
        # stream if anyone pipes it; tests parse the port from it.
        print(f"serving on {sockname[0]}:{sockname[1]}", file=sys.stderr, flush=True)
        async with server:
            await service.shutdown_event().wait()
        if metrics_server is not None:
            metrics_server.close()
            await metrics_server.wait_closed()

    async def run_stdio() -> None:
        install_sigterm(asyncio.get_running_loop())
        metrics_server = await maybe_metrics()
        await service.serve_stdio()
        if metrics_server is not None:
            metrics_server.close()
            await metrics_server.wait_closed()

    try:
        if args.port is not None:
            asyncio.run(run_tcp())
        else:
            asyncio.run(run_stdio())
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        pass
    finally:
        service.close()
        registry.close()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-dbscan",
        description="DBSCAN Revisited (SIGMOD'15) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a dataset")
    gen.add_argument("kind", choices=("ss", "pamap2", "farm", "household", "moons", "rings", "snakes"))
    gen.add_argument("output", help="output path (.npy, .csv or .txt)")
    gen.add_argument("-n", type=int, default=10_000, help="cardinality")
    gen.add_argument("-d", type=int, default=3, help="dimensionality (ss only)")
    gen.add_argument("--seed", type=int, default=None)
    gen.set_defaults(func=_cmd_generate)

    def add_common(p, with_algorithm=True):
        p.add_argument("input", help="dataset path (.npy, .csv or .txt)")
        p.add_argument("--eps", type=float, required=True)
        p.add_argument("--min-pts", dest="min_pts", type=int, default=config.PAPER_MINPTS)
        if with_algorithm:
            p.add_argument("--rho", type=float, default=config.DEFAULT_RHO)

    clu = sub.add_parser("cluster", help="cluster a dataset")
    add_common(clu)
    clu.add_argument("--algorithm", choices=_ALL_ALGORITHMS, default="approx")
    clu.add_argument("--labels-out", dest="labels_out", default=None)
    clu.add_argument("--result-out", dest="result_out", default=None,
                     help="save the full result (.json or .npz)")
    clu.add_argument("--time-budget", dest="time_budget", type=float, default=None,
                     help="per-run cut-off in seconds (TimeoutExceeded past it)")
    clu.add_argument("--memory-budget-mb", dest="memory_budget_mb", type=float,
                     default=None, help="RSS budget in megabytes")
    clu.add_argument("--checkpoint", default=None,
                     help=".npz checkpoint path for phase-level resume "
                          "(grid/gunawan2d/approx)")
    clu.add_argument("--workers", type=int, default=None,
                     help="worker processes for the grid-pipeline "
                          "algorithms (grid/gunawan2d/approx); default "
                          "$REPRO_WORKERS or 1")
    clu.add_argument("--shm", choices=("on", "off", "auto"), default=None,
                     help="transport for parallel runs: 'on' ships the grid "
                          "and result slabs through shared memory (zero "
                          "copy), 'off' pickles, 'auto' tries shared memory "
                          "and falls back (default $REPRO_SHM or off)")
    clu.add_argument("--backend", choices=("process", "thread"), default=None,
                     help="parallel pool backend: forked worker processes "
                          "(supervised; the default) or threads (zero-copy "
                          "by construction, no crash isolation; default "
                          "$REPRO_BACKEND or process)")
    clu.add_argument("--on-bad-rows", dest="on_bad_rows",
                     choices=data_io.BAD_ROW_MODES, default="raise",
                     help="policy for invalid input rows (non-numeric, "
                          "ragged or non-finite): fail fast, drop them, or "
                          "quarantine them to a sidecar file")
    clu.add_argument("--max-shard-retries", dest="max_shard_retries",
                     type=int, default=None,
                     help="worker-shard retry budget before quarantine "
                          "(default $REPRO_MAX_SHARD_RETRIES or 2)")
    clu.add_argument("--shard-timeout", dest="shard_timeout",
                     type=float, default=None,
                     help="seconds before an in-flight shard is declared "
                          "hung and its pool respawned (default: derived "
                          "from the time budget)")
    clu.add_argument("--no-quarantine", dest="no_quarantine",
                     action="store_true",
                     help="disable serial re-execution of repeatedly "
                          "failing shards; exhausted retries then fail "
                          "the run (exit code 6)")
    clu.add_argument("--resilience", action="store_true",
                     help="run the degradation cascade instead of one "
                          "algorithm: exact under budget, else "
                          "rho-approximate, else subsampled")
    clu.add_argument("--engine-cache", dest="engine_cache", action="store_true",
                     help="answer the run through a ClusteringEngine "
                          "structure cache (grids, indexes and core masks "
                          "are reused across calls in this process; output "
                          "is byte-identical)")
    clu.add_argument("--profile", action="store_true",
                     help="print a per-phase timing breakdown (and cache "
                          "statistics with --engine-cache) after the summary")
    clu.set_defaults(func=_cmd_cluster)

    sug = sub.add_parser("suggest-eps", help="find a stable eps plateau")
    sug.add_argument("input")
    sug.add_argument("--min-pts", dest="min_pts", type=int, default=config.PAPER_MINPTS)
    sug.add_argument("--lo", type=float, default=1000.0)
    sug.add_argument("--hi", type=float, default=50_000.0)
    sug.add_argument("--steps", type=int, default=12)
    sug.set_defaults(func=_cmd_suggest_eps)

    opt = sub.add_parser("optics", help="OPTICS reachability profile")
    add_common(opt, with_algorithm=False)
    opt.set_defaults(func=_cmd_optics)

    rep = sub.add_parser("report", help="run the quick experiment battery")
    rep.add_argument("output", nargs="?", default=None,
                     help="optional markdown output path")
    rep.set_defaults(func=_cmd_report)

    cmp_ = sub.add_parser("compare", help="compare two algorithms")
    add_common(cmp_)
    cmp_.add_argument("--first", choices=EXACT_ALGORITHMS, default="grid")
    cmp_.add_argument("--second", choices=_ALL_ALGORITHMS, default="approx")
    cmp_.add_argument("--time-budget", dest="time_budget", type=float, default=None,
                     help="per-algorithm cut-off in seconds")
    cmp_.add_argument("--workers", type=int, default=None,
                     help="worker processes for grid-pipeline algorithms")
    cmp_.set_defaults(func=_cmd_compare)

    lr = sub.add_parser("legal-rho", help="maximum legal rho at one eps")
    add_common(lr, with_algorithm=False)
    lr.set_defaults(func=_cmd_legal_rho)

    srv = sub.add_parser(
        "serve",
        help="serve clustering requests (line-delimited JSON, stdio or TCP)",
    )
    srv.add_argument("--port", type=int, default=None,
                     help="listen on localhost TCP instead of stdio "
                          "(0 = pick a free port; the bound address is "
                          "printed to stderr)")
    srv.add_argument("--host", default="127.0.0.1",
                     help="TCP bind address (default: localhost only)")
    srv.add_argument("--dataset", action="append", metavar="NAME=PATH",
                     help="pre-register a dataset at startup (repeatable)")
    srv.add_argument("--on-bad-rows", dest="on_bad_rows",
                     choices=data_io.BAD_ROW_MODES, default="raise",
                     help="bad-row policy for --dataset files")
    srv.add_argument("--max-queue", dest="max_queue", type=int, default=32,
                     help="outstanding-request bound; excess requests are "
                          "shed with a structured overload error")
    srv.add_argument("--max-concurrency", dest="max_concurrency", type=int,
                     default=2, help="engine executions running at once")
    srv.add_argument("--time-budget", dest="time_budget", type=float,
                     default=None,
                     help="default per-request deadline in seconds")
    srv.add_argument("--memory-budget-mb", dest="memory_budget_mb", type=float,
                     default=None,
                     help="service RSS budget; high memory pressure degrades "
                          "requests to the sampled tier")
    srv.add_argument("--rho", type=float, default=config.DEFAULT_RHO,
                     help="rho used when the ladder degrades an exact request")
    srv.add_argument("--sample-size", dest="sample_size", type=int,
                     default=2000, help="point budget of the sampled tier")
    srv.add_argument("--tenant-quota-mb", dest="tenant_quota_mb", type=float,
                     default=None,
                     help="per-tenant structure-cache byte quota in MB")
    srv.add_argument("--retry-attempts", dest="retry_attempts", type=int,
                     default=2,
                     help="dispatch attempts per execution on transient "
                          "worker-pool failures")
    srv.add_argument("--breaker-threshold", dest="breaker_threshold", type=int,
                     default=3,
                     help="consecutive infrastructure failures that "
                          "quarantine a dataset")
    srv.add_argument("--breaker-cooldown", dest="breaker_cooldown", type=float,
                     default=30.0,
                     help="seconds before a quarantined dataset gets a "
                          "half-open probe")
    srv.add_argument("--workers", type=int, default=None,
                     help="worker processes per engine execution")
    srv.add_argument("--store-dir", dest="store_dir", default=None,
                     help="persist the dataset catalog (snapshot + "
                          "append-only journal + payload files) under this "
                          "directory; a restart with the same directory "
                          "recovers every dataset and tenant config")
    srv.add_argument("--warm-on-recover", dest="warm_on_recover",
                     action="store_true",
                     help="rebuild each recovered dataset's journaled "
                          "warm-eps grids before serving (slower start, "
                          "no cold first request)")
    srv.add_argument("--no-fair", dest="no_fair", action="store_true",
                     help="use the legacy FIFO execution gate instead of "
                          "weighted fair queueing (benchmark baseline)")
    srv.add_argument("--tenant-weight", dest="tenant_weight",
                     action="append", metavar="NAME=WEIGHT",
                     help="fair-queueing weight for a tenant (repeatable; "
                          "default 1.0; persisted when --store-dir is set)")
    srv.add_argument("--tenant-max-queue", dest="tenant_max_queue",
                     type=int, default=None,
                     help="default per-tenant bound on queued requests "
                          "(per-tenant overrides via the 'tenant' op)")
    srv.add_argument("--tenant-max-inflight", dest="tenant_max_inflight",
                     type=int, default=None,
                     help="default per-tenant bound on concurrently "
                          "executing requests")
    srv.add_argument("--drain-timeout", dest="drain_timeout", type=float,
                     default=30.0,
                     help="seconds SIGTERM gives in-flight requests to "
                          "finish before the journal is flushed and the "
                          "process exits 0")
    srv.add_argument("--metrics-port", dest="metrics_port", type=int,
                     default=None,
                     help="serve GET /metrics (Prometheus text) and "
                          "/healthz on this localhost port (0 = pick a "
                          "free port, printed to stderr)")
    srv.set_defaults(func=_cmd_serve)

    col = sub.add_parser("collapse", help="find the collapsing radius")
    col.add_argument("input")
    col.add_argument("--min-pts", dest="min_pts", type=int, default=config.PAPER_MINPTS)
    col.add_argument("--lo", type=float, default=1.0)
    col.set_defaults(func=_cmd_collapse)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Run one CLI command and translate failures into exit codes.

    Exit codes
    ----------
    - ``0`` — success.
    - ``2`` — any other library error (bad parameters, checkpoint
      problems, ...); also argparse's own usage-error code.
    - ``3`` — invalid configuration: a malformed ``REPRO_*`` environment
      variable or flag value (:class:`~repro.errors.ConfigError`).
    - ``4`` — unreadable or invalid input data, including rows rejected
      by ``--on-bad-rows raise`` (:class:`~repro.errors.DataError` /
      :class:`~repro.errors.InvalidDataError`).
    - ``5`` — a time or memory budget was exhausted
      (:class:`~repro.errors.TimeoutExceeded`,
      :class:`~repro.errors.MemoryBudgetExceeded`).
    - ``6`` — the parallel worker pool failed beyond the supervisor's
      retry / respawn budgets with quarantine disabled
      (:class:`~repro.errors.WorkerPoolError`).
    - ``7`` — the clustering service refused or lost the request:
      load shedding (:class:`~repro.errors.ServiceOverloadError`), an
      open circuit breaker
      (:class:`~repro.errors.DatasetQuarantinedError`), or an unknown
      dataset (:class:`~repro.errors.UnknownDatasetError`).  Requests
      answered over the wire carry the same taxonomy as structured
      ``error.code`` fields instead of exit codes.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        # Fail fast on malformed fleet-wide knobs: the chunk budget is
        # only read deep inside the chunked kernels, which not every
        # workload reaches — validating here keeps the exit-3 contract
        # uniform across commands.
        config.chunk_budget()
        return args.func(args)
    except ConfigError as exc:
        print(f"configuration error: {exc}", file=sys.stderr)
        return EXIT_CONFIG
    except DataError as exc:
        print(f"data error: {exc}", file=sys.stderr)
        return EXIT_DATA
    except (TimeoutExceeded, MemoryBudgetExceeded) as exc:
        print(f"budget exhausted: {exc}", file=sys.stderr)
        return EXIT_BUDGET
    except WorkerPoolError as exc:
        print(f"worker pool failed: {exc}", file=sys.stderr)
        return EXIT_POOL
    except ServiceError as exc:
        print(f"service error: {exc}", file=sys.stderr)
        return EXIT_SERVICE
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_ERROR


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
