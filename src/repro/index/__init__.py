"""Spatial indexes: kd-tree and STR-packed R-tree."""

from repro.index.kdtree import KDTree
from repro.index.rtree import RTree

__all__ = ["KDTree", "RTree"]
