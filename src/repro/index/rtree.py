"""An R-tree with Sort-Tile-Recursive (STR) bulk loading.

The original KDD'96 DBSCAN implementation answered its region queries from
an R*-tree.  This module provides a faithful substrate: a packed R-tree
whose leaves are built by the STR algorithm (Leutenegger et al.), with ball
range queries used by the KDD96 baseline.  Compared to the kd-tree it
illustrates the paper's point that *no* index choice rescues the original
algorithm from its Theta(n^2) worst case — both substrates are offered so
the benchmark can show the behaviour is index-independent.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.errors import DataError
from repro.geometry import distance as dm

_DEFAULT_FANOUT = 16


class RTree:
    """Packed STR R-tree over a static point set.

    Internal representation: one array of bounding boxes per tree level,
    plus fan-out bookkeeping.  Level 0 holds the points themselves (grouped
    into leaf pages); higher levels hold the minimum bounding rectangles of
    the level below.
    """

    __slots__ = ("points", "_order", "_levels", "_fanout")

    def __init__(self, points: np.ndarray, fanout: int = _DEFAULT_FANOUT) -> None:
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2:
            raise DataError("RTree requires a 2-D array of points")
        if len(points) == 0:
            raise DataError("RTree requires at least one point")
        if fanout < 2:
            raise DataError("fanout must be >= 2")
        self.points = points
        self._fanout = fanout
        self._order = _str_sort(points, fanout)
        self._levels = self._pack(points[self._order])

    def _pack(self, sorted_pts: np.ndarray) -> List[np.ndarray]:
        """Build MBR arrays for every level above the leaf pages."""
        fanout = self._fanout
        n = len(sorted_pts)
        n_leaves = -(-n // fanout)
        lows = np.empty((n_leaves, sorted_pts.shape[1]))
        highs = np.empty_like(lows)
        for i in range(n_leaves):
            page = sorted_pts[i * fanout:(i + 1) * fanout]
            lows[i] = page.min(axis=0)
            highs[i] = page.max(axis=0)
        levels = [np.stack([lows, highs], axis=1)]  # shape (m, 2, d)
        while len(levels[-1]) > 1:
            below = levels[-1]
            m = -(-len(below) // fanout)
            lows = np.empty((m, below.shape[2]))
            highs = np.empty_like(lows)
            for i in range(m):
                group = below[i * fanout:(i + 1) * fanout]
                lows[i] = group[:, 0].min(axis=0)
                highs[i] = group[:, 1].max(axis=0)
            levels.append(np.stack([lows, highs], axis=1))
        return levels

    def range_query(self, q: np.ndarray, radius: float) -> np.ndarray:
        """Indices (into the original array) of points within ``radius`` of ``q``."""
        q = np.asarray(q, dtype=np.float64)
        limit = dm.sq_radius(radius)
        fanout = self._fanout
        top = len(self._levels) - 1
        hits: List[np.ndarray] = []
        stack = [(top, i) for i in range(len(self._levels[top]))]
        while stack:
            level, node = stack.pop()
            box = self._levels[level][node]
            if _min_sq_to_box(q, box[0], box[1]) > limit:
                continue
            if level == 0:
                start = node * fanout
                stop = min(start + fanout, len(self.points))
                seg = self._order[start:stop]
                sq = dm.sq_dists_to_point(self.points[seg], q)
                hits.append(seg[sq <= limit])
            else:
                start = node * fanout
                stop = min(start + fanout, len(self._levels[level - 1]))
                stack.extend((level - 1, child) for child in range(start, stop))
        if not hits:
            return np.empty(0, dtype=np.int64)
        return np.sort(np.concatenate(hits))

    def count_within(self, q: np.ndarray, radius: float, cap: int = -1) -> int:
        """Number of points within ``radius`` of ``q`` (early exit at ``cap``)."""
        q = np.asarray(q, dtype=np.float64)
        limit = dm.sq_radius(radius)
        fanout = self._fanout
        top = len(self._levels) - 1
        total = 0
        stack = [(top, i) for i in range(len(self._levels[top]))]
        while stack:
            level, node = stack.pop()
            box = self._levels[level][node]
            if _min_sq_to_box(q, box[0], box[1]) > limit:
                continue
            if level == 0:
                start = node * fanout
                stop = min(start + fanout, len(self.points))
                seg = self._order[start:stop]
                sq = dm.sq_dists_to_point(self.points[seg], q)
                total += int((sq <= limit).sum())
                if 0 <= cap <= total:
                    return total
            else:
                start = node * fanout
                stop = min(start + fanout, len(self._levels[level - 1]))
                stack.extend((level - 1, child) for child in range(start, stop))
        return total


def _str_sort(points: np.ndarray, fanout: int) -> np.ndarray:
    """Return a permutation ordering points into STR tiles.

    Recursively sorts by each coordinate in turn, slicing into vertical
    "slabs" sized so that the final runs fill leaf pages of ``fanout``
    points.
    """
    n, d = points.shape
    order = np.arange(n)
    return _str_rec(points, order, 0, d, fanout)


def _str_rec(points: np.ndarray, idx: np.ndarray, axis: int, d: int, fanout: int) -> np.ndarray:
    if axis == d - 1 or len(idx) <= fanout:
        return idx[np.argsort(points[idx, axis], kind="stable")]
    n = len(idx)
    n_pages = -(-n // fanout)
    remaining_axes = d - axis
    # Number of slabs along this axis: the (d-axis)-th root of the page count.
    n_slabs = max(1, int(np.ceil(n_pages ** (1.0 / remaining_axes))))
    slab_size = -(-n // n_slabs)
    idx = idx[np.argsort(points[idx, axis], kind="stable")]
    pieces = [
        _str_rec(points, idx[s:s + slab_size], axis + 1, d, fanout)
        for s in range(0, n, slab_size)
    ]
    return np.concatenate(pieces)


def _min_sq_to_box(q: np.ndarray, low: np.ndarray, high: np.ndarray) -> float:
    """Squared distance from point ``q`` to the axis-aligned box [low, high]."""
    delta = np.maximum(low - q, 0.0) + np.maximum(q - high, 0.0)
    return float(np.dot(delta, delta))
