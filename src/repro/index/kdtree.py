"""A kd-tree for points in any fixed dimensionality.

This is the spatial-index substrate used by

* the KDD96 baseline (each of its ``n`` range queries is answered here), and
* the nearest-neighbour BCP strategy (Gunawan computes core-cell edges with
  nearest-neighbour search; we generalise with a kd-tree instead of the 2D
  Voronoi diagram, which answers the same queries in ``O(log n)`` expected
  time for well-distributed data).

The tree is built by recursive median splits on the widest-spread axis and
stores points in leaf buckets; queries run iteratively over an explicit
stack, so deep trees cannot hit Python's recursion limit.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.errors import DataError
from repro.geometry import distance as dm

_LEAF_SIZE = 32


class KDTree:
    """Static kd-tree over a fixed array of points.

    Parameters
    ----------
    points:
        Array of shape ``(n, d)``.  The tree keeps a reference (no copy);
        do not mutate the array afterwards.
    leaf_size:
        Maximum number of points stored in a leaf bucket.
    """

    __slots__ = (
        "points", "_idx", "_split_dim", "_split_val", "_left", "_right",
        "_start", "_stop", "_root",
    )

    def __init__(self, points: np.ndarray, leaf_size: int = _LEAF_SIZE) -> None:
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2:
            raise DataError("KDTree requires a 2-D array of points")
        if len(points) == 0:
            raise DataError("KDTree requires at least one point")
        if leaf_size < 1:
            raise DataError("leaf_size must be >= 1")
        self.points = points
        self._idx = np.arange(len(points))
        # Node storage (grown dynamically during the build).
        self._split_dim: List[int] = []
        self._split_val: List[float] = []
        self._left: List[int] = []
        self._right: List[int] = []
        self._start: List[int] = []
        self._stop: List[int] = []
        self._root = self._build(0, len(points), leaf_size)

    # ------------------------------------------------------------------ build

    def _new_node(self) -> int:
        self._split_dim.append(-1)
        self._split_val.append(0.0)
        self._left.append(-1)
        self._right.append(-1)
        self._start.append(0)
        self._stop.append(0)
        return len(self._split_dim) - 1

    def _build(self, start: int, stop: int, leaf_size: int) -> int:
        node = self._new_node()
        self._start[node] = start
        self._stop[node] = stop
        count = stop - start
        if count <= leaf_size:
            return node
        seg = self._idx[start:stop]
        coords = self.points[seg]
        spreads = coords.max(axis=0) - coords.min(axis=0)
        dim = int(np.argmax(spreads))
        if spreads[dim] == 0.0:
            # All points coincide; keep as a (possibly large) leaf.
            return node
        mid = count // 2
        order = np.argpartition(coords[:, dim], mid)
        self._idx[start:stop] = seg[order]
        split_val = float(self.points[self._idx[start + mid], dim])
        self._split_dim[node] = dim
        self._split_val[node] = split_val
        self._left[node] = self._build(start, start + mid, leaf_size)
        self._right[node] = self._build(start + mid, stop, leaf_size)
        return node

    def _is_leaf(self, node: int) -> bool:
        return self._split_dim[node] == -1

    # ---------------------------------------------------------------- queries

    def range_query(self, q: np.ndarray, radius: float) -> np.ndarray:
        """Indices of all points within Euclidean ``radius`` of ``q``."""
        q = np.asarray(q, dtype=np.float64)
        limit = dm.sq_radius(radius)
        hits: List[np.ndarray] = []
        stack = [(self._root, 0.0)]
        while stack:
            node, min_sq = stack.pop()
            if min_sq > limit:
                continue
            if self._is_leaf(node):
                seg = self._idx[self._start[node]:self._stop[node]]
                sq = dm.sq_dists_to_point(self.points[seg], q)
                hits.append(seg[sq <= limit])
                continue
            dim, val = self._split_dim[node], self._split_val[node]
            delta = q[dim] - val
            # The child on q's side keeps the parent's bound; the other side
            # adds the axis gap (a valid lower bound on the box distance).
            gap = delta * delta
            if delta < 0:
                stack.append((self._left[node], min_sq))
                stack.append((self._right[node], max(min_sq, gap)))
            else:
                stack.append((self._right[node], min_sq))
                stack.append((self._left[node], max(min_sq, gap)))
        if not hits:
            return np.empty(0, dtype=np.int64)
        return np.sort(np.concatenate(hits))

    def range_query_batch(self, queries: np.ndarray, radius: float) -> List[np.ndarray]:
        """Range queries for many points at once: one result array per row.

        Equivalent to ``[self.range_query(q, radius) for q in queries]``
        (each result sorted ascending) but traverses the tree once with the
        whole active query set: every node costs one vectorised partition
        pass over the queries that reach it instead of one Python-level
        visit per query — the kernel behind the KDD96 batched frontier
        expansion.
        """
        queries = np.asarray(queries, dtype=np.float64)
        if queries.ndim != 2:
            raise DataError("range_query_batch requires a 2-D array of queries")
        limit = dm.sq_radius(radius)
        n_q = len(queries)
        hits: List[List[np.ndarray]] = [[] for _ in range(n_q)]
        if n_q == 0:
            return []
        stack: List[Tuple[int, np.ndarray, np.ndarray]] = [
            (self._root, np.arange(n_q), np.zeros(n_q))
        ]
        while stack:
            node, qidx, min_sq = stack.pop()
            if self._is_leaf(node):
                seg = self._idx[self._start[node]:self._stop[node]]
                leaf_pts = self.points[seg]
                # Difference-form distances, bit-identical to the
                # sq_dists_to_point kernel of the single-query path, chunked
                # so a degenerate (all-coincident) giant leaf stays bounded.
                rows = max(1, 2_000_000 // max(len(seg) * queries.shape[1], 1))
                for start in range(0, len(qidx), rows):
                    part_idx = qidx[start:start + rows]
                    diff = queries[part_idx][:, None, :] - leaf_pts[None, :, :]
                    block = np.einsum("qld,qld->ql", diff, diff)
                    within = block <= limit
                    counts = within.sum(axis=1)
                    # np.nonzero is row-major, so the matched columns arrive
                    # already grouped by query row; split by the row counts.
                    matched = seg[np.nonzero(within)[1]]
                    for row, part in enumerate(
                        np.split(matched, np.cumsum(counts[:-1]))
                    ):
                        if len(part):
                            hits[part_idx[row]].append(part)
                continue
            dim, val = self._split_dim[node], self._split_val[node]
            delta = queries[qidx, dim] - val
            gap = delta * delta
            # The child on each query's side keeps that query's bound; the
            # other side adds the axis gap.  Queries whose bound exceeds the
            # radius are pruned here, so the active set only shrinks.
            far_sq = np.maximum(min_sq, gap)
            on_left = delta < 0
            left_sq = np.where(on_left, min_sq, far_sq)
            right_sq = np.where(on_left, far_sq, min_sq)
            keep = left_sq <= limit
            if keep.any():
                stack.append((self._left[node], qidx[keep], left_sq[keep]))
            keep = right_sq <= limit
            if keep.any():
                stack.append((self._right[node], qidx[keep], right_sq[keep]))
        out: List[np.ndarray] = []
        for parts in hits:
            if not parts:
                out.append(np.empty(0, dtype=np.int64))
            elif len(parts) == 1:
                out.append(np.sort(parts[0]))
            else:
                out.append(np.sort(np.concatenate(parts)))
        return out

    def count_within(self, q: np.ndarray, radius: float, cap: int = -1) -> int:
        """Number of points within ``radius`` of ``q``.

        When ``cap >= 0`` the search stops as soon as the running count
        reaches ``cap`` (DBSCAN's core test only needs ``count >= MinPts``).
        """
        q = np.asarray(q, dtype=np.float64)
        limit = dm.sq_radius(radius)
        total = 0
        stack = [(self._root, 0.0)]
        while stack:
            node, min_sq = stack.pop()
            if min_sq > limit:
                continue
            if self._is_leaf(node):
                seg = self._idx[self._start[node]:self._stop[node]]
                sq = dm.sq_dists_to_point(self.points[seg], q)
                total += int((sq <= limit).sum())
                if 0 <= cap <= total:
                    return total
                continue
            dim, val = self._split_dim[node], self._split_val[node]
            delta = q[dim] - val
            gap = delta * delta
            if delta < 0:
                stack.append((self._right[node], max(min_sq, gap)))
                stack.append((self._left[node], min_sq))
            else:
                stack.append((self._left[node], max(min_sq, gap)))
                stack.append((self._right[node], min_sq))
        return total

    def nearest(self, q: np.ndarray, bound_sq: float = np.inf) -> Tuple[int, float]:
        """Nearest neighbour of ``q``: ``(index, squared_distance)``.

        ``bound_sq`` primes the search with an externally known bound (used
        by the BCP driver to prune across many queries); if nothing beats
        the bound the result is ``(-1, inf)``.
        """
        q = np.asarray(q, dtype=np.float64)
        best = float(bound_sq)
        best_idx = -1
        stack = [(self._root, 0.0)]
        while stack:
            node, min_sq = stack.pop()
            if min_sq >= best:
                continue
            if self._is_leaf(node):
                seg = self._idx[self._start[node]:self._stop[node]]
                sq = dm.sq_dists_to_point(self.points[seg], q)
                i = int(np.argmin(sq))
                if sq[i] < best:
                    best = float(sq[i])
                    best_idx = int(seg[i])
                continue
            dim, val = self._split_dim[node], self._split_val[node]
            delta = q[dim] - val
            gap = delta * delta
            if delta < 0:
                stack.append((self._right[node], max(min_sq, gap)))
                stack.append((self._left[node], min_sq))
            else:
                stack.append((self._left[node], max(min_sq, gap)))
                stack.append((self._right[node], min_sq))
        return best_idx, best

    def k_nearest(self, q: np.ndarray, k: int) -> List[Tuple[int, float]]:
        """The ``k`` nearest neighbours of ``q`` as ``(index, sq_dist)`` pairs,
        ordered by increasing distance (ties broken by index)."""
        import heapq

        q = np.asarray(q, dtype=np.float64)
        k = min(k, len(self.points))
        heap: List[Tuple[float, int]] = []  # max-heap via negated distances
        stack = [(self._root, 0.0)]
        while stack:
            node, min_sq = stack.pop()
            if len(heap) == k and min_sq >= -heap[0][0]:
                continue
            if self._is_leaf(node):
                seg = self._idx[self._start[node]:self._stop[node]]
                sq = dm.sq_dists_to_point(self.points[seg], q)
                for i in np.argsort(sq):
                    d = float(sq[i])
                    if len(heap) < k:
                        heapq.heappush(heap, (-d, int(seg[i])))
                    elif d < -heap[0][0]:
                        heapq.heapreplace(heap, (-d, int(seg[i])))
                    else:
                        break
                continue
            dim, val = self._split_dim[node], self._split_val[node]
            delta = q[dim] - val
            gap = delta * delta
            if delta < 0:
                stack.append((self._right[node], max(min_sq, gap)))
                stack.append((self._left[node], min_sq))
            else:
                stack.append((self._left[node], max(min_sq, gap)))
                stack.append((self._right[node], min_sq))
        out = [(idx, -neg) for neg, idx in heap]
        out.sort(key=lambda item: (item[1], item[0]))
        return out
