"""A dynamic R*-tree built by one-at-a-time insertion.

The original KDD'96 DBSCAN implementation ran its region queries against
an R*-tree (Beckmann et al., SIGMOD 1990) built incrementally — unlike
:mod:`repro.index.rtree`'s STR bulk loading, which produces unrealistically
well-packed pages.  This index reproduces the dynamic behaviour:

* **ChooseSubtree**: descend into the child needing the least overlap
  enlargement at leaf level, least area enlargement above (the R* rule);
* **Split**: the R* topological split — choose the axis minimising total
  margin, then the distribution minimising overlap (ties: area).

Forced reinsertion (the remaining R* ingredient) trades code complexity
for a few percent of query performance and is intentionally omitted; the
class documents this as its one simplification.

The KDD96 baseline accepts ``index="rstar"`` to use this tree, so the
benchmark can demonstrate that the Theta(n^2) behaviour of the original
algorithm is not an artefact of bulk loading.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.errors import DataError
from repro.geometry import distance as dm

_MAX_ENTRIES = 16
_MIN_ENTRIES = 6  # ~40% of max, the R* recommendation


class _Node:
    __slots__ = ("leaf", "entries", "low", "high")

    def __init__(self, leaf: bool) -> None:
        self.leaf = leaf
        #: leaf: list of point indices; inner: list of child _Node
        self.entries: List = []
        self.low: Optional[np.ndarray] = None
        self.high: Optional[np.ndarray] = None


class RStarTree:
    """Dynamic R*-tree over points, grown by insertion."""

    def __init__(self, points: np.ndarray, shuffle_seed: Optional[int] = None) -> None:
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or len(points) == 0:
            raise DataError("RStarTree requires a non-empty (n, d) array")
        self.points = points
        self._root = _Node(leaf=True)
        order = np.arange(len(points))
        if shuffle_seed is not None:
            order = np.random.default_rng(shuffle_seed).permutation(order)
        for i in order:
            self.insert(int(i))

    # ---------------------------------------------------------------- insert

    def insert(self, i: int) -> None:
        """Insert point ``i`` (an index into the construction array)."""
        p = self.points[i]
        split = self._insert_rec(self._root, i, p)
        if split is not None:
            # Root overflow: grow the tree by one level.
            old_root = self._root
            new_root = _Node(leaf=False)
            new_root.entries = [old_root, split]
            _recompute_box(new_root, self.points)
            self._root = new_root

    def _insert_rec(self, node: _Node, i: int, p: np.ndarray) -> Optional[_Node]:
        _grow_box(node, p)
        if node.leaf:
            node.entries.append(i)
            if len(node.entries) > _MAX_ENTRIES:
                return self._split(node)
            return None
        child = self._choose_subtree(node, p)
        overflow = self._insert_rec(child, i, p)
        if overflow is not None:
            node.entries.append(overflow)
            if len(node.entries) > _MAX_ENTRIES:
                return self._split(node)
        return None

    def _choose_subtree(self, node: _Node, p: np.ndarray) -> _Node:
        children = node.entries
        if children[0].leaf:
            # Minimise overlap enlargement (R* leaf-level rule).
            best, best_key = None, None
            for child in children:
                enlarged_low = np.minimum(child.low, p)
                enlarged_high = np.maximum(child.high, p)
                overlap_before = sum(
                    _overlap(child.low, child.high, other.low, other.high)
                    for other in children if other is not child
                )
                overlap_after = sum(
                    _overlap(enlarged_low, enlarged_high, other.low, other.high)
                    for other in children if other is not child
                )
                key = (
                    overlap_after - overlap_before,
                    _volume(enlarged_low, enlarged_high) - _volume(child.low, child.high),
                    _volume(child.low, child.high),
                )
                if best_key is None or key < best_key:
                    best, best_key = child, key
            return best
        # Inner levels: minimise area enlargement.
        best, best_key = None, None
        for child in children:
            enlarged = _volume(np.minimum(child.low, p), np.maximum(child.high, p))
            key = (enlarged - _volume(child.low, child.high), _volume(child.low, child.high))
            if best_key is None or key < best_key:
                best, best_key = child, key
        return best

    def _split(self, node: _Node) -> _Node:
        """R* topological split; mutates ``node`` and returns its new sibling."""
        points = self.points
        entries = node.entries
        if node.leaf:
            boxes = [(points[i], points[i]) for i in entries]
        else:
            boxes = [(child.low, child.high) for child in entries]
        d = len(boxes[0][0])

        # 1. Choose the split axis: minimal total margin over candidate
        #    distributions of entries sorted by low then by high value.
        best_axis, best_axis_margin = 0, None
        for axis in range(d):
            margin = 0.0
            for key in (0, 1):
                order = sorted(range(len(entries)), key=lambda e: boxes[e][key][axis])
                for k in range(_MIN_ENTRIES, len(entries) - _MIN_ENTRIES + 1):
                    left = [boxes[order[j]] for j in range(k)]
                    right = [boxes[order[j]] for j in range(k, len(entries))]
                    margin += _margin(left) + _margin(right)
            if best_axis_margin is None or margin < best_axis_margin:
                best_axis, best_axis_margin = axis, margin

        # 2. On that axis, choose the distribution with minimal overlap
        #    (ties: minimal total area).
        best = None
        best_key = None
        for key in (0, 1):
            order = sorted(range(len(entries)), key=lambda e: boxes[e][key][best_axis])
            for k in range(_MIN_ENTRIES, len(entries) - _MIN_ENTRIES + 1):
                left_idx = order[:k]
                right_idx = order[k:]
                l_low, l_high = _bounds([boxes[j] for j in left_idx])
                r_low, r_high = _bounds([boxes[j] for j in right_idx])
                candidate_key = (
                    _overlap(l_low, l_high, r_low, r_high),
                    _volume(l_low, l_high) + _volume(r_low, r_high),
                )
                if best_key is None or candidate_key < best_key:
                    best_key = candidate_key
                    best = (left_idx, right_idx)

        left_idx, right_idx = best
        sibling = _Node(leaf=node.leaf)
        sibling.entries = [entries[j] for j in right_idx]
        node.entries = [entries[j] for j in left_idx]
        _recompute_box(node, points)
        _recompute_box(sibling, points)
        return sibling

    # --------------------------------------------------------------- queries

    def range_query(self, q: np.ndarray, radius: float) -> np.ndarray:
        """Indices of points within Euclidean ``radius`` of ``q``."""
        q = np.asarray(q, dtype=np.float64)
        limit = dm.sq_radius(radius)
        hits: List[int] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.low is None:
                continue
            if _min_sq_to_box(q, node.low, node.high) > limit:
                continue
            if node.leaf:
                idx = np.asarray(node.entries, dtype=np.int64)
                sq = dm.sq_dists_to_point(self.points[idx], q)
                hits.extend(idx[sq <= limit].tolist())
            else:
                stack.extend(node.entries)
        return np.array(sorted(hits), dtype=np.int64)

    # ------------------------------------------------------------ inspection

    def height(self) -> int:
        h, node = 1, self._root
        while not node.leaf:
            node = node.entries[0]
            h += 1
        return h

    def node_count(self) -> int:
        count, stack = 0, [self._root]
        while stack:
            node = stack.pop()
            count += 1
            if not node.leaf:
                stack.extend(node.entries)
        return count

    def check_invariants(self) -> None:
        """Validate bounding boxes and fanout bounds (used by tests)."""
        def rec(node: _Node, is_root: bool) -> Tuple[np.ndarray, np.ndarray, int]:
            if not is_root and not (len(node.entries) <= _MAX_ENTRIES):
                raise AssertionError("node overflow")
            if node.leaf:
                pts = self.points[np.asarray(node.entries, dtype=np.int64)]
                low, high = pts.min(axis=0), pts.max(axis=0)
                depth = 1
            else:
                child_boxes = [rec(c, False) for c in node.entries]
                depths = {b[2] for b in child_boxes}
                if len(depths) != 1:
                    raise AssertionError("unbalanced tree")
                low = np.min([b[0] for b in child_boxes], axis=0)
                high = np.max([b[1] for b in child_boxes], axis=0)
                depth = child_boxes[0][2] + 1
            if not (np.allclose(low, node.low) and np.allclose(high, node.high)):
                raise AssertionError("stale bounding box")
            return low, high, depth

        rec(self._root, True)


def _volume(low: np.ndarray, high: np.ndarray) -> float:
    return float(np.prod(high - low))


def _margin(boxes) -> float:
    low, high = _bounds(boxes)
    return float((high - low).sum())


def _bounds(boxes) -> Tuple[np.ndarray, np.ndarray]:
    low = np.min([b[0] for b in boxes], axis=0)
    high = np.max([b[1] for b in boxes], axis=0)
    return low, high


def _overlap(a_low, a_high, b_low, b_high) -> float:
    inter = np.minimum(a_high, b_high) - np.maximum(a_low, b_low)
    if (inter <= 0).any():
        return 0.0
    return float(np.prod(inter))


def _grow_box(node: _Node, p: np.ndarray) -> None:
    if node.low is None:
        node.low = p.copy()
        node.high = p.copy()
    else:
        node.low = np.minimum(node.low, p)
        node.high = np.maximum(node.high, p)


def _recompute_box(node: _Node, points: np.ndarray) -> None:
    if node.leaf:
        pts = points[np.asarray(node.entries, dtype=np.int64)]
        node.low = pts.min(axis=0)
        node.high = pts.max(axis=0)
    else:
        node.low = np.min([c.low for c in node.entries], axis=0)
        node.high = np.max([c.high for c in node.entries], axis=0)


def _min_sq_to_box(q: np.ndarray, low: np.ndarray, high: np.ndarray) -> float:
    delta = np.maximum(low - q, 0.0) + np.maximum(q - high, 0.0)
    return float(np.dot(delta, delta))
