"""The reusable clustering engine: shared structures, incremental sweeps.

One dataset, many requests: :class:`ClusteringEngine` keeps every
expensive precomputation (grids, spatial indexes, core masks, Lemma 5
hierarchies) in a :class:`StructureCache` keyed by dataset fingerprint and
parameters, and :meth:`ClusteringEngine.sweep` reuses monotone work across
an ascending multi-eps sweep.  Outputs are byte-identical to the one-shot
entry points — see ``docs/PERFORMANCE.md``.
"""

from repro.engine.cache import StructureCache, default_cache, estimate_structure_bytes
from repro.engine.core import SWEEP_ALGORITHMS, ClusteringEngine
from repro.engine.sweep import approx_carry_ok, ascending_order, preunion_pairs

__all__ = [
    "ClusteringEngine",
    "StructureCache",
    "default_cache",
    "estimate_structure_bytes",
    "SWEEP_ALGORITHMS",
    "ascending_order",
    "approx_carry_ok",
    "preunion_pairs",
]
