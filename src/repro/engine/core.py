""":class:`ClusteringEngine` — one dataset, many clustering requests.

The engine owns a point set and serves repeated clustering calls over it,
reusing everything that does not depend on the changing parameters:

* every structure (grid, spatial index, Lemma 5 hierarchies, core masks)
  is built at most once per process via a :class:`~repro.engine.cache.\
StructureCache` keyed by ``(dataset_fingerprint, kind, params)``;
* :meth:`sweep` runs an incremental multi-eps sweep that carries the
  previous step's monotone products forward (see
  :mod:`repro.engine.sweep` for the correctness argument);
* parallel runs profit transparently — warm structures ride to workers
  through the existing payload plumbing of :mod:`repro.parallel`.

Every engine result is **byte-identical** to the corresponding one-shot
:func:`repro.dbscan` / :func:`repro.approx_dbscan` call: the reuse seams
(:class:`~repro.runtime.pipeline.PipelineHooks`) only donate values the
pipeline would have recomputed identically.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.result import Clustering, empty_clustering
from repro.engine.cache import StructureCache, default_cache
from repro.engine.sweep import approx_carry_ok, ascending_order, preunion_pairs
from repro.errors import ParameterError
from repro.grid.cells import Grid
from repro.runtime.checkpoint import fingerprint_points
from repro.runtime.deadline import Deadline, as_deadline
from repro.runtime.memory import as_memory_budget
from repro.runtime.pipeline import PipelineHooks
from repro.utils.validation import as_points

#: Algorithms :meth:`ClusteringEngine.sweep` supports (the grid-pipeline
#: family, where the monotone carry-forward applies).
SWEEP_ALGORITHMS = ("grid", "approx")


class ClusteringEngine:
    """A reusable clustering service over one fixed dataset.

    Parameters
    ----------
    points:
        Array-like of shape ``(n, d)``.  The engine keeps the validated
        array; do not mutate it afterwards (the dataset fingerprint, and
        with it every cache key, assumes the data is frozen).
    cache:
        The :class:`~repro.engine.cache.StructureCache` to use; defaults
        to the process-global cache, so independent engines over the same
        dataset share structures (the fingerprint keys keep different
        datasets apart).
    workers:
        Default ``workers`` argument for every call that does not pass its
        own (same semantics as :func:`repro.dbscan`).

    Examples
    --------
    >>> engine = ClusteringEngine(points)
    >>> one = engine.dbscan(eps=0.3, min_pts=10)        # cold: builds grid
    >>> two = engine.dbscan(eps=0.3, min_pts=20)        # warm: reuses grid
    >>> many = engine.sweep([0.1, 0.2, 0.4], min_pts=10)  # incremental
    """

    def __init__(self, points, *, cache: Optional[StructureCache] = None, workers=None) -> None:
        self.points = as_points(points, allow_empty=True)
        self.fingerprint = fingerprint_points(self.points)
        self.cache = cache if cache is not None else default_cache()
        self.workers = workers
        # Thread-safe run ledger: how many clustering executions this engine
        # actually performed, per algorithm.  The service layer's coalescing
        # tests read it to prove N identical concurrent requests executed
        # exactly once.
        self._runs_lock = threading.Lock()
        self._runs: Dict[str, int] = {}

    def _record_run(self, algorithm: str) -> None:
        with self._runs_lock:
            self._runs[algorithm] = self._runs.get(algorithm, 0) + 1

    def run_counts(self) -> Dict[str, int]:
        """Snapshot of executed runs per algorithm (thread-safe)."""
        with self._runs_lock:
            return dict(self._runs)

    @property
    def runs_executed(self) -> int:
        """Total clustering executions this engine performed."""
        with self._runs_lock:
            return sum(self._runs.values())

    def __repr__(self) -> str:
        return (
            f"ClusteringEngine(n={len(self.points)}, "
            f"d={self.points.shape[1] if self.points.ndim == 2 else '?'}, "
            f"fingerprint={self.fingerprint[:12]!r})"
        )

    # ------------------------------------------------------------ plumbing

    def _key(self, kind: str, *params) -> Tuple:
        return (self.fingerprint, kind) + params

    def matches(self, points) -> bool:
        """True when ``points`` is (or equals) the engine's dataset."""
        pts = as_points(points, allow_empty=True)
        if pts is self.points:
            return True
        return pts.shape == self.points.shape and bool(np.array_equal(pts, self.points))

    def grid(self, eps: float) -> Grid:
        """The cached grid ``T`` for ``eps`` (built on first use)."""
        eps = float(eps)
        return self.cache.get_or_build(
            self._key("grid", eps), lambda: Grid(self.points, eps)
        )

    def index(self, kind: str = "rtree"):
        """The cached spatial index for the expansion baselines."""
        if kind == "rtree":
            from repro.index.rtree import RTree

            build = lambda: RTree(self.points)  # noqa: E731
        elif kind == "rstar":
            from repro.index.rstar import RStarTree

            build = lambda: RStarTree(self.points)  # noqa: E731
        elif kind == "kdtree":
            from repro.index.kdtree import KDTree

            build = lambda: KDTree(self.points)  # noqa: E731
        else:
            raise ParameterError(
                f"unknown index {kind!r}; choose from ('rtree', 'rstar', 'kdtree')"
            )
        return self.cache.get_or_build(self._key("index", kind), build)

    # ----------------------------------------------------------- execution

    def dbscan(
        self,
        eps: float,
        min_pts: int,
        algorithm: str = "grid",
        *,
        time_budget: Optional[float] = None,
        deadline: Optional[Deadline] = None,
        memory_budget_mb: Optional[float] = None,
        workers=None,
        shm: object = None,
        bcp_strategy: str = "auto",
        index: str = "rtree",
    ) -> Clustering:
        """Exact DBSCAN through the engine's structure cache.

        Mirrors :func:`repro.dbscan` (same algorithms, same output, byte
        for byte); the grid-pipeline algorithms reuse the cached grid and
        core mask, ``kdd96`` reuses the cached spatial index, and the
        remaining baselines simply delegate.
        """
        if len(self.points) == 0:
            return empty_clustering(
                meta={"algorithm": algorithm, "eps": float(eps), "min_pts": int(min_pts)}
            )
        workers = self.workers if workers is None else workers
        if algorithm in ("grid", "gunawan2d"):
            return self._run_grid(
                eps, min_pts, algorithm=algorithm, bcp_strategy=bcp_strategy,
                time_budget=time_budget, deadline=deadline,
                memory_budget_mb=memory_budget_mb, workers=workers, shm=shm,
            )
        if algorithm == "kdd96":
            from repro.algorithms.kdd96 import kdd96_dbscan

            self._record_run(algorithm)
            return kdd96_dbscan(
                self.points, eps, min_pts, index=index,
                time_budget=time_budget, deadline=deadline,
                memory=as_memory_budget(memory_budget_mb),
                tree=self.index(index),
            )
        if algorithm == "cit08":
            from repro.algorithms.cit08 import cit08_dbscan

            self._record_run(algorithm)
            return cit08_dbscan(
                self.points, eps, min_pts, time_budget=time_budget,
                deadline=deadline, memory=as_memory_budget(memory_budget_mb),
            )
        if algorithm == "brute":
            from repro.algorithms.brute import brute_dbscan

            self._record_run(algorithm)
            return brute_dbscan(
                self.points, eps, min_pts, time_budget=time_budget,
                deadline=deadline, memory=as_memory_budget(memory_budget_mb),
            )
        raise ParameterError(
            f"unknown algorithm {algorithm!r}; choose from "
            "('grid', 'gunawan2d', 'kdd96', 'cit08', 'brute')"
        )

    def approx_dbscan(
        self,
        eps: float,
        min_pts: int,
        rho: float = 0.001,
        exact_leaf_size: Optional[int] = None,
        *,
        time_budget: Optional[float] = None,
        deadline: Optional[Deadline] = None,
        memory_budget_mb: Optional[float] = None,
        workers=None,
        shm: object = None,
    ) -> Clustering:
        """rho-approximate DBSCAN through the engine's structure cache.

        Byte-identical to :func:`repro.approx_dbscan`; reuses the cached
        grid, core mask and (on repeated identical calls) the per-cell
        Lemma 5 structures.
        """
        if len(self.points) == 0:
            return empty_clustering(
                meta={
                    "algorithm": "approx", "eps": float(eps),
                    "min_pts": int(min_pts), "rho": float(rho),
                }
            )
        workers = self.workers if workers is None else workers
        return self._run_grid(
            eps, min_pts, algorithm="approx", rho=rho,
            exact_leaf_size=exact_leaf_size, time_budget=time_budget,
            deadline=deadline, memory_budget_mb=memory_budget_mb,
            workers=workers, shm=shm,
        )

    def sweep(
        self,
        eps_list: Sequence[float],
        min_pts: int,
        *,
        algorithm: str = "grid",
        rho: float = 0.001,
        exact_leaf_size: Optional[int] = None,
        time_budget: Optional[float] = None,
        memory_budget_mb: Optional[float] = None,
        workers=None,
        shm: object = None,
    ) -> List[Clustering]:
        """Cluster the dataset at every ``eps`` of ``eps_list`` incrementally.

        The sweep computes in ascending ``eps`` order (results come back in
        the caller's order) so each step can reuse the previous step's
        monotone products — the core mask as a ``known_core`` lower bound
        and, when sound, the previous connectivity as a pre-union seed (for
        ``algorithm="approx"`` the seed is dropped whenever
        ``eps < prev_eps * (1 + rho)``; see :mod:`repro.engine.sweep`).

        Every element of the returned list is byte-identical to a fresh
        :func:`repro.dbscan` / :func:`repro.approx_dbscan` call at that
        ``eps``.  ``time_budget`` covers the *whole* sweep.
        """
        if algorithm not in SWEEP_ALGORITHMS:
            raise ParameterError(
                f"sweep supports algorithms {SWEEP_ALGORITHMS}; got {algorithm!r}"
            )
        order = ascending_order(eps_list)
        results: List[Optional[Clustering]] = [None] * len(order)
        if len(self.points) == 0:
            for pos in order:
                results[pos] = (
                    self.approx_dbscan(eps_list[pos], min_pts, rho, exact_leaf_size)
                    if algorithm == "approx"
                    else self.dbscan(eps_list[pos], min_pts)
                )
            return results
        deadline = as_deadline(time_budget)
        prev_eps: Optional[float] = None
        prev_result: Optional[Clustering] = None
        for pos in order:
            eps = float(eps_list[pos])
            known_core = None
            preunion = None
            if prev_result is not None:
                known_core = prev_result.core_mask
                if algorithm == "grid" or approx_carry_ok(prev_eps, eps, rho):
                    preunion = preunion_pairs(prev_result, self.grid(eps))
            result = self._run_grid(
                eps, min_pts,
                algorithm="approx" if algorithm == "approx" else "grid",
                rho=rho, exact_leaf_size=exact_leaf_size,
                deadline=deadline, memory_budget_mb=memory_budget_mb,
                workers=self.workers if workers is None else workers, shm=shm,
                known_core=known_core, preunion=preunion,
            )
            results[pos] = result
            prev_eps, prev_result = eps, result
        return results

    # ------------------------------------------------------------ internal

    def _run_grid(
        self,
        eps: float,
        min_pts: int,
        *,
        algorithm: str,
        bcp_strategy: str = "auto",
        rho: Optional[float] = None,
        exact_leaf_size: Optional[int] = None,
        time_budget: Optional[float] = None,
        deadline: Optional[Deadline] = None,
        memory_budget_mb: Optional[float] = None,
        workers=None,
        shm: object = None,
        known_core: Optional[np.ndarray] = None,
        preunion=None,
    ) -> Clustering:
        """One grid-pipeline run wired through the cache.

        Donates the cached grid and (when present) the cached core mask,
        harvests whatever the run produced back into the cache, and passes
        the monotone-sweep seeds straight through to the pipeline hooks.
        """
        eps = float(eps)
        min_pts = int(min_pts)
        self._record_run(algorithm)
        grid = self.grid(eps)
        cores_key = self._key("cores", eps, min_pts)
        core_mask = self.cache.get(cores_key)
        harvested: Dict[str, object] = {}
        hooks = PipelineHooks(
            grid=grid,
            core_mask=core_mask,
            known_core=None if core_mask is not None else known_core,
            preunion=preunion,
            on_phase=lambda phase, value: harvested.__setitem__(phase, value),
        )
        structures_key = None
        fresh_structures = False
        if algorithm != "approx":
            # The exact edge predicates keep per-cell search structures
            # (kd-trees / Voronoi diagrams) for the strategies that build
            # them — cache those exactly like the Lemma 5 structures, so
            # warm service requests stop rebuilding trees.  The pairwise
            # BCP modes keep no per-cell state; nothing to cache there.
            strategy = bcp_strategy
            if algorithm == "gunawan2d" and strategy == "auto":
                strategy = "kdtree"
            if strategy in ("kdtree", "voronoi"):
                structures_key = self._key(
                    "exact_structures", eps, min_pts, strategy
                )
                structures = self.cache.get(structures_key)
                fresh_structures = structures is None
                hooks.structures = {} if fresh_structures else structures
        if algorithm == "approx":
            structures_key = self._key(
                "structures", eps, min_pts, float(rho), exact_leaf_size
            )
            structures = self.cache.get(structures_key)
            fresh_structures = structures is None
            hooks.structures = {} if fresh_structures else structures

            from repro.algorithms.approx import approx_dbscan

            result = approx_dbscan(
                self.points, eps, min_pts, rho, exact_leaf_size,
                time_budget=time_budget, deadline=deadline,
                memory_budget_mb=memory_budget_mb, workers=workers, shm=shm,
                hooks=hooks,
            )
        elif algorithm == "gunawan2d":
            from repro.algorithms.exact_grid import gunawan_2d_dbscan

            result = gunawan_2d_dbscan(
                self.points, eps, min_pts, edges=(
                    "kdtree" if bcp_strategy == "auto" else bcp_strategy
                ),
                time_budget=time_budget, deadline=deadline,
                memory_budget_mb=memory_budget_mb, workers=workers, shm=shm,
                hooks=hooks,
            )
        else:
            from repro.algorithms.exact_grid import exact_grid_dbscan

            result = exact_grid_dbscan(
                self.points, eps, min_pts, bcp_strategy=bcp_strategy,
                time_budget=time_budget, deadline=deadline,
                memory_budget_mb=memory_budget_mb, workers=workers, shm=shm,
                hooks=hooks,
            )
        # Harvest: the run's products are exactly what a later call (or the
        # next sweep step) would rebuild — put them where it will look.
        if core_mask is None and "cores" in harvested:
            mask = harvested["cores"]
            self.cache.insert(cores_key, mask, nbytes=mask.nbytes)
        if fresh_structures and hooks.structures:
            self.cache.insert(structures_key, hooks.structures)
        result.meta["engine_cache"] = self.cache.stats()
        return result
