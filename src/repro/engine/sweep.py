"""Monotone carry-forward logic for incremental multi-eps sweeps.

Everything the engine reuses between consecutive sweep steps is justified
by the monotonicity underlying the Sandwich Theorem (Theorem 3):

* **core status** — ``|B(p, eps)|`` only grows with ``eps``, so a point
  that is core at ``eps_1 <= eps_2`` is core at ``eps_2``.  The previous
  step's core mask is therefore a sound ``known_core`` lower bound for the
  labeling phase (both the exact and the approximate algorithm label cores
  *exactly*).

* **exact connectivity** — if two core points are in the same exact
  cluster at ``eps_1``, they are in the same exact cluster at any
  ``eps_2 >= eps_1`` (density-reachability only gains witnesses).  The
  cells holding them therefore lie in the same component of the core-cell
  graph at ``eps_2``, so the previous step's per-cluster cell chains can be
  pre-unioned (:func:`repro.core.cellgraph.apply_preunion`) and skip their
  BCP tests.

* **approximate connectivity** — a rho-approximate cluster at ``eps_1``
  is contained in an *exact* cluster at ``eps_1 (1 + rho)`` (Theorem 3),
  which is contained in an exact cluster at any ``eps_2 >= eps_1 (1+rho)``,
  which is contained in a rho-approximate cluster at ``eps_2``.  Hence
  carrying approximate connectivity forward is sound **only when**
  ``eps_2 >= eps_1 (1 + rho)`` — :func:`approx_carry_ok` is that gate, and
  the engine simply drops the preunion seed for closer-spaced steps
  (the core-mask carry stays valid regardless).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.core.result import Clustering
from repro.errors import ParameterError
from repro.grid.cells import CellCoord, Grid

Pair = Tuple[CellCoord, CellCoord]


def ascending_order(eps_list: Sequence[float]) -> List[int]:
    """Positions of ``eps_list`` sorted by value (stable), smallest first.

    The sweep computes in this order so every step can reuse the previous
    (smaller-eps) step's monotone products, and scatters the results back
    into the caller's original order.
    """
    if len(eps_list) == 0:
        raise ParameterError("eps_list must not be empty")
    values = [float(e) for e in eps_list]
    for e in values:
        if not e > 0:
            raise ParameterError(f"every eps must be positive; got {e}")
    return sorted(range(len(values)), key=lambda i: values[i])


def approx_carry_ok(prev_eps: float, eps: float, rho: float) -> bool:
    """True when approximate connectivity at ``prev_eps`` implies
    connectivity at ``eps`` (the Theorem 3 containment chain closes)."""
    return eps >= prev_eps * (1.0 + rho)


def preunion_pairs(prev: Clustering, grid: Grid) -> List[Pair]:
    """Cell pairs of ``grid`` known connected from a previous sweep step.

    For each cluster of ``prev``, the cells of ``grid`` covering the
    cluster's *core* points all belong to one component of the current
    core-cell graph (see the module docstring for when a caller may rely
    on this).  A chain of consecutive-cell pairs per cluster is the
    cheapest seed spanning that knowledge — ``k`` distinct cells produce
    ``k - 1`` pairs.

    Only core points are used: border points may sit in cells with no core
    point at all, and carry no connectivity of their own.
    """
    core_idx = np.nonzero(prev.core_mask)[0]
    if len(core_idx) == 0:
        return []
    # One unique pass over (label, cell-coord) rows replaces the per-point
    # Python loop: rows come out lexicographically sorted, so each
    # cluster's distinct cells are contiguous and chaining them is a pair
    # per consecutive same-label row.
    rows = np.concatenate(
        [prev.labels[core_idx][:, None], grid.point_cells[core_idx]], axis=1
    )
    uniq = np.unique(rows, axis=0)
    if len(uniq) < 2:
        return []
    same_label = np.nonzero(uniq[1:, 0] == uniq[:-1, 0])[0]
    cells = list(map(tuple, uniq[:, 1:].tolist()))
    return [(cells[i], cells[i + 1]) for i in same_label.tolist()]
