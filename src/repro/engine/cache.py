"""The shared structure cache behind :class:`repro.engine.ClusteringEngine`.

The paper's algorithms all precompute *structures* — the grid ``T`` with
side ``eps / sqrt(d)``, spatial indexes for the expansion baselines, the
Lemma 5 counting hierarchies of the approximation — and then answer the
actual clustering question from them.  A service that clusters the same
dataset under many parameter settings rebuilds those structures over and
over; this module makes each of them a cacheable value keyed by

``(dataset_fingerprint, structure_kind, params...)``

so every structure is built **at most once per process** and found again by
any later request — including requests issued while parallel workers are
active, since the cache lives in the parent and workers inherit warm
structures through the existing payload plumbing.

Eviction is LRU with two independent caps: an entry-count cap and a
byte-budget cap.  When a :class:`~repro.runtime.MemoryBudget` is attached,
the byte budget additionally tracks the run-time memory guard: the cache
never holds more than half the budget's limit, and sheds entries when the
process RSS crosses the limit's high-water mark — structure caching must
never be the reason a budgeted run dies.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.errors import ParameterError
from repro.runtime.memory import MemoryBudget, current_rss, estimate_grid_bytes

#: Fraction of an attached memory budget the cache may occupy.
_BUDGET_SHARE = 0.5

#: RSS fraction of the budget limit above which the cache sheds entries.
_RSS_HIGH_WATER = 0.9


def _release_shared(value: object) -> None:
    """Unlink a cached structure's shared-memory publication, if any.

    Engine-donated grids can carry a live ``repro.parallel.shm`` segment
    (published once, reused by every run that hits the cache entry).  The
    cache is that grid's owner of record, so eviction — and
    :meth:`StructureCache.clear` — must unlink the segment or it would
    survive until interpreter exit.  Duck-typed on purpose: the cache must
    not import the parallel layer for a cleanup hook.
    """
    publication = getattr(value, "_shm_publication", None)
    if publication is not None:
        try:
            publication.close()
        except Exception:  # pragma: no cover - cleanup must never raise
            pass


def estimate_structure_bytes(value: object) -> int:
    """Best-effort footprint estimate for a cached structure.

    Exact accounting is impossible for Python object graphs; the estimates
    here only need to be good enough for *relative* eviction decisions and
    to keep the byte caps meaningful.  Unknown objects cost a nominal 1 KB
    so a cache of unestimatable values still honours its entry cap.
    """
    # Grid: points + per-cell index arrays + dict overhead.
    points = getattr(value, "points", None)
    if points is not None and hasattr(value, "eps") and hasattr(value, "cells"):
        return estimate_grid_bytes(len(points), points.shape[1])
    # Flat Lemma 5 hierarchies account for their own arrays exactly.  This
    # check must precede the generic points-array branch below — the flat
    # structure also exposes ``points``, but its footprint is its CSR
    # arrays, not a multiple of the point block.
    nbytes = getattr(value, "nbytes", None)
    if nbytes is not None and not isinstance(value, np.ndarray):
        return int(nbytes) + 512
    # Spatial indexes (KDTree / RTree / RStarTree) keep a point reference
    # plus node bookkeeping of the same order.
    if points is not None and isinstance(points, np.ndarray):
        return 2 * points.nbytes + 4096
    if isinstance(value, np.ndarray):
        return value.nbytes + 128
    if isinstance(value, dict):
        return sum(estimate_structure_bytes(v) for v in value.values()) + 4096
    if isinstance(value, tuple):
        return sum(estimate_structure_bytes(v) for v in value)
    return 1024


class StructureCache:
    """An LRU cache of clustering structures with byte-budget eviction.

    Parameters
    ----------
    max_entries:
        Entry-count cap; the least recently used entry is evicted first.
    max_mb:
        Optional byte cap (estimated; see :func:`estimate_structure_bytes`).
    memory:
        Optional :class:`~repro.runtime.MemoryBudget`.  When set, the
        cache also keeps its estimated footprint under half the budget's
        limit and sheds all but the most recent entry whenever the process
        RSS exceeds 90% of the limit.

    The cache is safe to share between threads (one lock around the map);
    worker *processes* never mutate it — they receive warm structures via
    the phase payloads instead.
    """

    def __init__(
        self,
        max_entries: int = 32,
        max_mb: Optional[float] = None,
        memory: Optional[MemoryBudget] = None,
    ) -> None:
        if int(max_entries) < 1:
            raise ParameterError(f"max_entries must be >= 1; got {max_entries}")
        if max_mb is not None and not float(max_mb) > 0:
            raise ParameterError(f"max_mb must be positive (or None); got {max_mb}")
        self.max_entries = int(max_entries)
        self.max_mb = None if max_mb is None else float(max_mb)
        self.memory = memory
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Tuple, Tuple[object, int]]" = OrderedDict()
        self._bytes = 0

    # -------------------------------------------------------------- lookup

    def get_or_build(
        self,
        key: Tuple,
        builder: Callable[[], object],
        nbytes: Optional[int] = None,
    ) -> object:
        """Return the cached value for ``key``, building it on a miss.

        ``builder`` runs *outside* the lock (structure builds are the
        expensive part and must not serialise unrelated lookups); if two
        threads race on the same key the first stored value wins and the
        loser's build is discarded — builds are deterministic, so either
        value is correct.  ``nbytes`` overrides the footprint estimate.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return entry[0]
            self.misses += 1
        value = builder()
        cost = int(nbytes) if nbytes is not None else estimate_structure_bytes(value)
        with self._lock:
            existing = self._entries.get(key)
            if existing is not None:
                self._entries.move_to_end(key)
                return existing[0]
            self._entries[key] = (value, cost)
            self._bytes += cost
            self._evict_over_caps()
        return value

    def get(self, key: Tuple) -> Optional[object]:
        """The cached value for ``key`` (or None), counted as a hit / miss."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry[0]

    def insert(self, key: Tuple, value: object, nbytes: Optional[int] = None) -> object:
        """Store a ready-made value (a harvested by-product of a run).

        Returns the stored value — the existing entry when ``key`` is
        already present (first store wins, as in :meth:`get_or_build`).
        Does not count as a miss: the preceding :meth:`get` already did.
        """
        cost = int(nbytes) if nbytes is not None else estimate_structure_bytes(value)
        with self._lock:
            existing = self._entries.get(key)
            if existing is not None:
                self._entries.move_to_end(key)
                return existing[0]
            self._entries[key] = (value, cost)
            self._bytes += cost
            self._evict_over_caps()
        return value

    def peek(self, key: Tuple) -> Optional[object]:
        """The cached value for ``key`` (no build, no LRU touch, no stats)."""
        with self._lock:
            entry = self._entries.get(key)
            return None if entry is None else entry[0]

    def __contains__(self, key: Tuple) -> bool:
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # ------------------------------------------------------------ eviction

    def _cap_bytes(self) -> Optional[float]:
        caps = []
        if self.max_mb is not None:
            caps.append(self.max_mb * 1e6)
        if self.memory is not None and self.memory.limit_bytes is not None:
            caps.append(_BUDGET_SHARE * self.memory.limit_bytes)
        return min(caps) if caps else None

    def _evict_over_caps(self) -> None:
        """Evict LRU entries until every cap holds.  Caller holds the lock."""
        cap = self._cap_bytes()
        while len(self._entries) > 1 and (
            len(self._entries) > self.max_entries
            or (cap is not None and self._bytes > cap)
        ):
            self._evict_one()
        if (
            self.memory is not None
            and self.memory.limit_bytes is not None
            and current_rss() > _RSS_HIGH_WATER * self.memory.limit_bytes
        ):
            # RSS pressure: keep only the most recent entry (the one the
            # caller is actively using) and release everything else.
            while len(self._entries) > 1:
                self._evict_one()

    def _evict_one(self) -> None:
        _key, (value, cost) = self._entries.popitem(last=False)
        self._bytes -= cost
        self.evictions += 1
        _release_shared(value)

    def set_budget(self, max_mb: Optional[float]) -> None:
        """Re-cap the byte budget at runtime, evicting down if needed.

        The service registry uses this to apply (and adjust) per-tenant
        quotas on live caches without dropping their warm entries wholesale:
        shrinking the cap sheds LRU entries until the new cap holds.
        """
        if max_mb is not None and not float(max_mb) > 0:
            raise ParameterError(f"max_mb must be positive (or None); got {max_mb}")
        with self._lock:
            self.max_mb = None if max_mb is None else float(max_mb)
            self._evict_over_caps()

    def clear(self) -> None:
        with self._lock:
            for value, _cost in self._entries.values():
                _release_shared(value)
            self._entries.clear()
            self._bytes = 0

    # --------------------------------------------------------------- stats

    def stats(self) -> Dict[str, object]:
        """Counters snapshot: hits / misses / evictions / entries / bytes."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "entries": len(self._entries),
                "estimated_bytes": self._bytes,
            }

    def __repr__(self) -> str:
        s = self.stats()
        return (
            f"StructureCache(entries={s['entries']}/{self.max_entries}, "
            f"hits={s['hits']}, misses={s['misses']}, evictions={s['evictions']})"
        )


#: The process-global default cache shared by engines that do not bring
#: their own (one dataset's structures remain visible to every engine
#: instance over the same points — the fingerprint keeps them apart).
_DEFAULT: Optional[StructureCache] = None
_DEFAULT_LOCK = threading.Lock()


def default_cache() -> StructureCache:
    """The process-wide :class:`StructureCache` (created on first use)."""
    global _DEFAULT
    with _DEFAULT_LOCK:
        if _DEFAULT is None:
            _DEFAULT = StructureCache()
        return _DEFAULT
