"""The labeling process: decide core / non-core for every point (Section 2.2).

Works on the grid ``T`` with cell side ``eps / sqrt(d)``:

* a cell holding at least ``MinPts`` points makes *all* its points core
  (same-cell points are within ``eps`` of each other);
* otherwise each of its points accumulates neighbour counts against the
  cell's eps-neighbour cells, stopping early once the count reaches
  ``MinPts`` (only the predicate ``|B(p, eps)| >= MinPts`` matters).

All distance work is vectorised per (cell, neighbour-cell) pair.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.errors import AlgorithmError, ParameterError
from repro.geometry import distance as dm
from repro.grid.cells import Grid

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.runtime.deadline import Deadline


def _validate_kernel(kernel: str) -> None:
    if kernel not in ("staged", "loop"):
        raise ParameterError(
            f"unknown core kernel {kernel!r}; use 'staged' or 'loop'"
        )


def label_cores(
    grid: Grid,
    min_pts: int,
    *,
    deadline: Optional["Deadline"] = None,
    cells=None,
    known_core: Optional[np.ndarray] = None,
    kernel: str = "staged",
) -> np.ndarray:
    """Boolean core mask for every point of ``grid.points``.

    ``deadline`` (if given) is polled once per cell (loop kernel) or once
    per batched tile (staged kernel), so a labeling pass over a huge grid
    aborts promptly with :class:`~repro.errors.TimeoutExceeded`.

    ``cells`` optionally restricts the pass to an iterable of cell
    coordinates (a *shard*); positions outside those cells stay ``False``.
    The per-cell decision only reads the cell's eps-neighbour cells, so a
    union of shard passes over a partition of the grid equals the full
    pass — this is what :mod:`repro.parallel` fans out over workers.

    ``known_core`` optionally marks points *already known* to be core — a
    sound lower bound, e.g. the core mask of a smaller ``eps`` at the same
    ``MinPts`` (``|B(p, eps)|`` is monotone in ``eps``, the Sandwich
    Theorem's Theorem 3 ingredient).  Known points skip the counting pass;
    a cell whose points are all known skips its neighbour scan entirely.
    The returned mask is identical to a run without the hint.

    ``kernel`` selects the staged batched implementation
    (:func:`repro.core.corekernel.label_cores_staged`, the default) or the
    per-cell reference loop (``"loop"``); both produce byte-identical
    masks.
    """
    if grid.side > grid.eps / np.sqrt(grid.dim) * (1.0 + 1e-9):
        raise AlgorithmError(
            "core labeling requires cell side <= eps/sqrt(d) so that same-cell "
            f"points are within eps (side={grid.side}, eps={grid.eps}, d={grid.dim})"
        )
    _validate_kernel(kernel)
    if kernel == "staged":
        from repro.core.corekernel import label_cores_staged

        return label_cores_staged(
            grid, min_pts, deadline=deadline, cells=cells, known_core=known_core
        )
    points = grid.points
    sq_eps = dm.sq_radius(grid.eps)
    core = np.zeros(len(points), dtype=bool)
    if cells is not None:
        work = ((tuple(c), grid.points_in(c)) for c in cells)
    elif known_core is not None and known_core.any():
        # Monotone carry: only cells holding a not-yet-known point can
        # change anything; every other cell's verdict is the hint itself.
        core[:] = known_core
        unknown = np.nonzero(~known_core)[0]
        if len(unknown) == 0:
            return core
        ucells = np.unique(grid.point_cells[unknown], axis=0)
        work = ((tuple(c), grid.points_in(c)) for c in ucells.tolist())
    else:
        work = grid.cells.items()

    for cell, idx in work:
        if deadline is not None:
            deadline.tick()
        if len(idx) >= min_pts:
            core[idx] = True
            continue
        cell_size = len(idx)
        if known_core is not None:
            already = known_core[idx]
            if already.all():
                core[idx] = True
                continue
            if already.any():
                core[idx[already]] = True
                idx = idx[~already]
        # Sparse cell: count neighbours with early termination.  Neighbour
        # cells are processed in batches of a few hundred points so that
        # near-singleton cells (common on thin, spread-out data) do not pay
        # one numpy-call overhead per cell.  Same-cell points are all within
        # eps, so every point starts at the (full) cell occupancy.
        counts = np.full(len(idx), cell_size, dtype=np.int64)
        active = np.arange(len(idx))
        pending: list = []
        pending_size = 0
        done = False
        for ncell in grid.neighbor_cells(cell):
            pending.append(grid.points_in(ncell))
            pending_size += len(pending[-1])
            if pending_size < 256:
                continue
            nidx = np.concatenate(pending)
            pending, pending_size = [], 0
            block = dm.pairwise_sq_dists(points[idx[active]], points[nidx])
            counts[active] += (block <= sq_eps).sum(axis=1)
            active = active[counts[active] < min_pts]
            if len(active) == 0:
                done = True
                break
        if not done and pending:
            nidx = np.concatenate(pending)
            block = dm.pairwise_sq_dists(points[idx[active]], points[nidx])
            counts[active] += (block <= sq_eps).sum(axis=1)
        core[idx] = counts >= min_pts
    return core


def neighbor_counts(grid: Grid, cap: int | None = None) -> np.ndarray:
    """Exact ``|B(p, eps)|`` for every point (optionally capped at ``cap``).

    Used by tests as an oracle and by diagnostics; :func:`label_cores` is
    the faster predicate-only variant.
    """
    if grid.side > grid.eps / np.sqrt(grid.dim) * (1.0 + 1e-9):
        raise AlgorithmError("neighbor_counts requires cell side <= eps/sqrt(d)")
    points = grid.points
    sq_eps = dm.sq_radius(grid.eps)
    counts = np.zeros(len(points), dtype=np.int64)
    for cell, idx in grid.cells.items():
        counts[idx] += len(idx)
        for ncell in grid.neighbor_cells(cell):
            nidx = grid.points_in(ncell)
            block = dm.pairwise_sq_dists(points[idx], points[nidx])
            counts[idx] += (block <= sq_eps).sum(axis=1)
    if cap is not None:
        np.minimum(counts, cap, out=counts)
    return counts
