"""The clustering result model.

DBSCAN's output (Problem 1) is a *unique set of clusters*, where

* every core point belongs to exactly one cluster;
* a border point (non-core point in a cluster) may belong to **several**
  clusters (Lemma 2 of the original KDD'96 paper — point ``o10`` of the
  paper's Figure 2 is the canonical example);
* noise points belong to no cluster.

:class:`Clustering` therefore stores the full cluster sets (frozensets of
point indices) alongside a convenient primary ``labels`` array.  Cluster
ids are canonicalised — clusters are ordered by their smallest member — so
that two results computed by different algorithms compare equal exactly
when they denote the same set of clusters.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

import numpy as np

from repro.errors import AlgorithmError

NOISE = -1


class Clustering:
    """An immutable DBSCAN (or rho-approximate DBSCAN) result.

    Attributes
    ----------
    n:
        Number of input points.
    clusters:
        Tuple of frozensets of point indices, ordered by smallest member.
        This is the paper's set ``C`` — the canonical, comparable artefact.
    labels:
        Primary label per point: a core point gets its unique cluster id,
        a border point the smallest id among its memberships, noise ``-1``.
    core_mask:
        Boolean array marking core points.
    meta:
        Free-form provenance (algorithm name, eps, min_pts, rho, ...).
    """

    __slots__ = ("n", "clusters", "labels", "core_mask", "meta", "_memberships")

    def __init__(
        self,
        n: int,
        clusters: Sequence[Iterable[int]],
        core_mask: np.ndarray,
        meta: Mapping[str, object] | None = None,
    ) -> None:
        self.n = int(n)
        sets = [frozenset(int(i) for i in c) for c in clusters]
        if any(not members for members in sets):
            raise AlgorithmError("clusters must be non-empty")
        canon = sorted(sets, key=min)
        for members in canon:
            if min(members) < 0 or max(members) >= self.n:
                raise AlgorithmError("cluster member index out of range")
        self.clusters: Tuple[frozenset, ...] = tuple(canon)
        self.core_mask = np.asarray(core_mask, dtype=bool)
        if self.core_mask.shape != (self.n,):
            raise AlgorithmError("core_mask must have shape (n,)")
        self.meta: Dict[str, object] = dict(meta or {})

        labels = np.full(self.n, NOISE, dtype=np.int64)
        memberships: Dict[int, List[int]] = {}
        for cid in range(len(self.clusters) - 1, -1, -1):
            for idx in self.clusters[cid]:
                labels[idx] = cid
                memberships.setdefault(idx, []).insert(0, cid)
        # Iterating cluster ids downwards leaves the *smallest* id in labels
        # and builds each membership list in increasing order.
        self.labels = labels
        self._memberships = {
            idx: tuple(cids) for idx, cids in memberships.items() if len(cids) > 1
        }
        self._check_core_uniqueness()

    def _check_core_uniqueness(self) -> None:
        seen: Dict[int, int] = {}
        for cid, members in enumerate(self.clusters):
            for idx in members:
                if self.core_mask[idx]:
                    if idx in seen:
                        raise AlgorithmError(
                            f"core point {idx} appears in clusters {seen[idx]} and {cid}; "
                            "core points must belong to exactly one cluster"
                        )
                    seen[idx] = cid

    # ------------------------------------------------------------ inspection

    @property
    def n_clusters(self) -> int:
        return len(self.clusters)

    @property
    def noise_mask(self) -> np.ndarray:
        """Boolean mask of points belonging to no cluster."""
        return self.labels == NOISE

    @property
    def border_mask(self) -> np.ndarray:
        """Boolean mask of non-core points that belong to some cluster."""
        return (~self.core_mask) & (self.labels != NOISE)

    def memberships_of(self, idx: int) -> Tuple[int, ...]:
        """All cluster ids containing point ``idx`` (empty tuple for noise)."""
        multi = self._memberships.get(int(idx))
        if multi is not None:
            return multi
        label = int(self.labels[idx])
        return () if label == NOISE else (label,)

    def cluster_sizes(self) -> List[int]:
        return [len(c) for c in self.clusters]

    def core_points_of(self, cid: int) -> frozenset:
        """The core points of cluster ``cid`` (the sets ``P(V_i)`` of Lemma 1)."""
        return frozenset(i for i in self.clusters[cid] if self.core_mask[i])

    # ------------------------------------------------------------ comparison

    def same_clusters(self, other: "Clustering") -> bool:
        """True iff both results denote exactly the same set of clusters.

        This is the comparison used throughout Section 5.2 ("returned
        exactly the same clusters as DBSCAN").
        """
        return self.n == other.n and set(self.clusters) == set(other.clusters)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Clustering):
            return NotImplemented
        return self.same_clusters(other) and np.array_equal(self.core_mask, other.core_mask)

    def __hash__(self) -> int:  # results are value objects
        return hash((self.n, self.clusters))

    def __repr__(self) -> str:
        algo = self.meta.get("algorithm", "?")
        return (
            f"Clustering(n={self.n}, clusters={self.n_clusters}, "
            f"noise={int(self.noise_mask.sum())}, cores={int(self.core_mask.sum())}, "
            f"algorithm={algo!r})"
        )

    def summary(self) -> str:
        """Human-readable one-paragraph description."""
        sizes = self.cluster_sizes()
        parts = [
            f"{self.n_clusters} cluster(s) over {self.n} points",
            f"{int(self.core_mask.sum())} core",
            f"{int(self.border_mask.sum())} border",
            f"{int(self.noise_mask.sum())} noise",
        ]
        if sizes:
            parts.append(f"sizes={sizes}")
        return "; ".join(parts)


def build_clustering(
    n: int,
    core_mask: np.ndarray,
    core_labels: np.ndarray,
    border_memberships: Mapping[int, Iterable[int]],
    meta: Mapping[str, object] | None = None,
) -> Clustering:
    """Assemble a :class:`Clustering` from the pieces every algorithm produces.

    ``core_labels`` assigns every core point a dense component id in
    ``0..k-1`` (values at non-core positions are ignored);
    ``border_memberships`` maps border point index -> iterable of component
    ids the point joins.
    """
    k = 0
    clusters: List[set] = []
    core_mask = np.asarray(core_mask, dtype=bool)
    core_idx = np.nonzero(core_mask)[0]
    if len(core_idx):
        k = int(np.max(core_labels[core_idx])) + 1
        clusters = [set() for _ in range(k)]
        for i in core_idx:
            clusters[int(core_labels[i])].add(int(i))
    for idx, cids in border_memberships.items():
        for cid in cids:
            clusters[int(cid)].add(int(idx))
    return Clustering(n, clusters, core_mask, meta=meta)


def empty_clustering(meta: Mapping[str, object] | None = None) -> Clustering:
    """The clustering of the empty point set: no clusters, no points.

    The degenerate-but-legal result public entry points return for
    ``n == 0`` inputs (a service must survive an empty batch).
    """
    return Clustering(0, [], np.zeros(0, dtype=bool), meta=meta)
