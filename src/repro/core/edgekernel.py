"""Staged, batched resolution of the core-cell graph's edge phase.

The component phase of both grid algorithms must decide, for every
eps-neighbouring pair of core cells, whether the pair is an edge of ``G``
(Lemma 1).  The classic implementation walks the candidate pairs in a
Python loop and pays a full per-pair decision — a BCP computation
(Theorem 2) or a batched Lemma 5 probe (Theorem 4) — plus closure-call,
tuple-hash and union-find overhead for *every* pair.  Following the
observation of Wang/Gu/Shun that the edge phase dominates grid DBSCAN and
that only a spanning forest of ``G`` is actually needed, this kernel
settles the bulk of the pairs with three staged, vectorised passes:

* **Stage A — quick accept.**  Two cheap geometric certificates, both
  evaluated for all pairs at once, prove an edge without touching the
  full decision procedure: the cells' *representative* core points lie
  within ``eps`` of each other, or the far corners of the cells' core
  bounding boxes do (every cross pair is then within ``eps``).  Both
  certificates exhibit true edges under the exact rule *and* force a yes
  from the rho-approximate rule (a point within ``eps`` is inside the
  Lemma 5 structure's mandatory-yes band), so accepting them is sound for
  both edge predicates.  Accepted edges are merged into an array-backed
  :class:`~repro.utils.unionfind.DenseUnionFind` in one batch.

* **Stage B — quick reject.**  Pairs whose core bounding boxes are
  separated by more than the rule's no-band radius — ``eps`` exactly,
  ``eps(1+rho)`` approximately — cannot be edges (exact) or are
  guaranteed a no (approximate): one vectorised box-distance pass
  eliminates them without touching a point.

* **Stage C — spanning-forest-aware survivors.**  Only the undecided
  pairs fall through to the per-pair predicate, scheduled cheapest-first
  (ascending ``|c1| * |c2|``, the cost proxy of both BCP and the batched
  probe) with a connectivity re-check before each test: a pair whose
  endpoints an earlier (cheaper) edge already connected contributes
  nothing to the spanning forest and is skipped outright.

Every stage only skips work whose outcome is already determined, so the
resolved component structure — and therefore the final labels, which are
assigned by cell insertion order — is byte-identical to the per-pair
loop's.  The kernel reports its funnel through :mod:`repro.grid.counters`
(``edge_*``), which the pipeline publishes under
``meta["kernel_counters"]``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.geometry import distance as dm
from repro.grid import counters
from repro.grid.cells import CellCoord

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.runtime.deadline import Deadline
    from repro.utils.unionfind import DenseUnionFind

#: Relative slack inflating the quick-reject boundary beyond the shared
#: ``sq_radius`` decision boundary.  Rejection must be strictly
#: conservative: a pair sitting numerically *on* the no-band boundary
#: falls through to the per-pair predicate (stage C) instead of being
#: rejected, so the staged kernel can never disagree with the predicate
#: it is short-circuiting.
_REJECT_SLACK = 1e-9

#: ``(position, i, j)`` for a union that merged two components:
#: ``position`` indexes into the candidate-pair arrays the kernel was
#: given (what shm workers need for position-stable slab writes), ``i`` /
#: ``j`` are the dense cell ids.
Union = Tuple[int, int, int]


@dataclass
class CellArrays:
    """Dense per-core-cell arrays for one edge phase.

    The tuple-keyed ``cells`` dict is consulted once, here; every kernel
    stage afterwards works on dense int ids (positions in ``keys``).
    ``reps`` holds one representative core point per cell (its first, in
    the deterministic per-cell index order), ``lo`` / ``hi`` the
    coordinate-wise bounding box of each cell's *core* points — tighter
    than the grid cell itself wherever the cell is sparsely occupied.
    ``cat`` is the concatenation of all cells' point-index arrays in key
    order (cell ``t`` owns ``cat[offsets[t] : offsets[t] + sizes[t]]``) —
    reused by the vectorised label scatter.
    """

    keys: List[CellCoord]
    index: Dict[CellCoord, int]
    sizes: np.ndarray
    reps: np.ndarray
    lo: np.ndarray
    hi: np.ndarray
    cat: np.ndarray

    def __len__(self) -> int:
        return len(self.keys)


def cell_arrays(points: np.ndarray, cells: Dict[CellCoord, np.ndarray]) -> CellArrays:
    """Build the dense per-cell arrays for ``cells`` (insertion order).

    One concatenation + two ``reduceat`` passes replace any per-cell
    Python work: the bounding boxes of all cells' core points come out of
    a single segmented min/max over the stacked coordinate block.
    """
    keys = list(cells.keys())
    m = len(keys)
    index = {c: t for t, c in enumerate(keys)}
    d = points.shape[1] if points.ndim == 2 else 0
    if m == 0:
        empty = np.empty(0, dtype=np.int64)
        box = np.empty((0, d), dtype=np.float64)
        return CellArrays(
            keys, index, empty, empty.copy(), box, box.copy(), empty.copy()
        )
    sizes = np.fromiter((len(cells[c]) for c in keys), dtype=np.int64, count=m)
    cat = np.concatenate([cells[c] for c in keys])
    offsets = np.zeros(m, dtype=np.int64)
    np.cumsum(sizes[:-1], out=offsets[1:])
    block = points[cat]
    lo = np.minimum.reduceat(block, offsets, axis=0)
    hi = np.maximum.reduceat(block, offsets, axis=0)
    reps = cat[offsets]
    return CellArrays(keys, index, sizes, reps, lo, hi, cat)


def classify_pairs(
    points: np.ndarray,
    eps: float,
    arrays: CellArrays,
    ii: np.ndarray,
    jj: np.ndarray,
    *,
    reject_eps: Optional[float] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Stage A / B verdicts for a batch of candidate pairs, vectorised.

    Returns ``(accept, reject)`` boolean masks over the pairs
    ``(keys[ii[t]], keys[jj[t]])``.  ``accept`` marks proven edges (both
    certificates are sound for the exact *and* the approximate rule);
    ``reject`` marks pairs the edge predicate is guaranteed to answer no
    for — separation beyond ``reject_eps`` (default ``eps``; pass
    ``eps * (1 + rho)`` for the approximate rule's no band).  The masks
    are disjoint; pairs in neither are stage C's survivors.
    """
    sq_accept = dm.sq_radius(eps)
    sq_reject = dm.sq_radius(eps if reject_eps is None else float(reject_eps))
    sq_reject *= 1.0 + _REJECT_SLACK

    rep_diff = points[arrays.reps[ii]] - points[arrays.reps[jj]]
    accept = np.einsum("ij,ij->i", rep_diff, rep_diff) <= sq_accept

    lo_i, hi_i = arrays.lo[ii], arrays.hi[ii]
    lo_j, hi_j = arrays.lo[jj], arrays.hi[jj]
    gap = np.maximum(lo_j - hi_i, 0.0) + np.maximum(lo_i - hi_j, 0.0)
    reject = np.einsum("ij,ij->i", gap, gap) > sq_reject

    if not accept.all():
        # Far-corner certificate: the maximum cross-pair distance is at
        # most eps, so *every* pair qualifies.  Compared against the bare
        # eps^2 (not the slackened boundary) to stay conservative.
        far = np.maximum(hi_j - lo_i, hi_i - lo_j)
        np.bitwise_or(
            accept, np.einsum("ij,ij->i", far, far) <= eps * eps, out=accept
        )
    reject &= ~accept
    return accept, reject


def resolve_edges(
    points: np.ndarray,
    eps: float,
    arrays: CellArrays,
    ii: np.ndarray,
    jj: np.ndarray,
    uf: "DenseUnionFind",
    edge: Callable[[CellCoord, CellCoord], bool],
    *,
    reject_eps: Optional[float] = None,
    deadline: Optional["Deadline"] = None,
) -> List[Union]:
    """Resolve one batch of candidate pairs into ``uf`` — the edge phase.

    Stages A/B settle the bulk of ``(ii, jj)`` with vectorised
    certificates (:func:`classify_pairs`); the survivors run the per-pair
    ``edge`` predicate cheapest-first with a connectivity re-check, so
    pairs made redundant by earlier unions never pay for a test.  Pairs
    whose endpoints ``uf`` already connects (a pre-union carry, or earlier
    batches) are dropped up front by one vectorised root comparison.

    Returns the unions that merged two components, as ``(position, i, j)``
    triples (``position`` indexes the given pair arrays) — the spanning
    subset parallel workers report to the stitching pass; serial callers
    ignore it.  The per-pair orientation handed to ``edge`` is exactly the
    caller's, so deterministic oriented predicates (the Lemma 5 probe)
    answer as they would in the plain loop.
    """
    n_pairs = len(ii)
    counters.add("edge_pairs_total", n_pairs)
    unions: List[Union] = []
    if n_pairs == 0:
        return unions
    if deadline is not None:
        deadline.check()

    pos = np.arange(n_pairs, dtype=np.int64)
    roots = uf.roots()
    keep = roots[ii] != roots[jj]
    if not keep.all():
        counters.add("edge_connected_skip", int(n_pairs - int(keep.sum())))
        ii, jj, pos = ii[keep], jj[keep], pos[keep]

    accept, reject = classify_pairs(
        points, eps, arrays, ii, jj, reject_eps=reject_eps
    )
    counters.add("edge_quick_accept", int(accept.sum()))
    counters.add("edge_quick_reject", int(reject.sum()))
    if accept.any():
        acc_i, acc_j, acc_pos = ii[accept], jj[accept], pos[accept]
        merged = uf.union_many(acc_i, acc_j)
        unions.extend(
            zip(
                acc_pos[merged].tolist(),
                acc_i[merged].tolist(),
                acc_j[merged].tolist(),
            )
        )

    survive = ~(accept | reject)
    n_survivors = int(survive.sum())
    counters.add("edge_survivors", n_survivors)
    if not n_survivors:
        return unions
    si, sj, spos = ii[survive], jj[survive], pos[survive]
    # Cheapest-first: ascending |c1| * |c2|, the cost proxy of both BCP
    # and the batched Lemma 5 probe.  Stable, so equal-cost pairs keep
    # their candidate order and the schedule is deterministic.
    order = np.argsort(arrays.sizes[si] * arrays.sizes[sj], kind="stable")
    si, sj, spos = (
        si[order].tolist(), sj[order].tolist(), spos[order].tolist()
    )
    keys = arrays.keys
    # Funnel accounting: edge_quick_accept + edge_quick_reject +
    # edge_survivors + edge_connected_skip == edge_pairs_total, and
    # edge_survivors == edge_scheduled_skip + edge_predicate_tests.
    tests = hits = skipped = 0
    for a, b, p in zip(si, sj, spos):
        if deadline is not None:
            deadline.tick()
        if uf.connected(a, b):
            skipped += 1
            continue
        tests += 1
        if edge(keys[a], keys[b]):
            hits += 1
            uf.union(a, b)
            unions.append((p, a, b))
    counters.add("edge_scheduled_skip", skipped)
    counters.add("edge_predicate_tests", tests)
    counters.add("edge_predicate_hits", hits)
    return unions


def apply_preunion_dense(
    uf: "DenseUnionFind",
    index: Dict[CellCoord, int],
    preunion,
) -> None:
    """Seed a dense forest with known same-component cell pairs.

    The dense-id analogue of :func:`repro.core.cellgraph.apply_preunion`:
    pairs naming cells outside ``index`` are skipped, and seeding
    same-component pairs never changes the final partition or its labels
    (labels come from id order, fixed at construction).
    """
    if not preunion:
        return
    for c1, c2 in preunion:
        i = index.get(c1)
        j = index.get(c2)
        if i is not None and j is not None:
            uf.union(i, j)
