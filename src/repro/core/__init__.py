"""Shared clustering machinery: parameters, results, labeling, borders, graph."""

from repro.core.params import ApproxParams, DBSCANParams
from repro.core.result import NOISE, Clustering, build_clustering

__all__ = ["ApproxParams", "DBSCANParams", "Clustering", "NOISE", "build_clustering"]
