"""Validated parameter objects for DBSCAN and rho-approximate DBSCAN."""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_eps, check_min_pts, check_rho


@dataclass(frozen=True)
class DBSCANParams:
    """The two parameters of exact DBSCAN (Section 2.1).

    ``eps`` is the radius of the ball ``B(p, eps)``; ``min_pts`` is the
    density threshold: a point is *core* iff its ball covers at least
    ``min_pts`` points of the input (itself included).
    """

    eps: float
    min_pts: int

    def __post_init__(self) -> None:
        object.__setattr__(self, "eps", check_eps(self.eps))
        object.__setattr__(self, "min_pts", check_min_pts(self.min_pts))

    def inflated(self, rho: float) -> "DBSCANParams":
        """Parameters with the radius grown to ``eps * (1 + rho)`` — the upper
        slice of the sandwich theorem (Theorem 3)."""
        return DBSCANParams(self.eps * (1.0 + check_rho(rho)), self.min_pts)


@dataclass(frozen=True)
class ApproxParams:
    """The three parameters of rho-approximate DBSCAN (Section 4.1)."""

    eps: float
    min_pts: int
    rho: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "eps", check_eps(self.eps))
        object.__setattr__(self, "min_pts", check_min_pts(self.min_pts))
        object.__setattr__(self, "rho", check_rho(self.rho))

    @property
    def exact(self) -> DBSCANParams:
        """The exact-DBSCAN parameters at radius ``eps`` (sandwich lower slice)."""
        return DBSCANParams(self.eps, self.min_pts)

    @property
    def exact_inflated(self) -> DBSCANParams:
        """The exact-DBSCAN parameters at radius ``eps(1+rho)`` (upper slice)."""
        return DBSCANParams(self.eps * (1.0 + self.rho), self.min_pts)
