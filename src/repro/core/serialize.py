"""Persistence for clustering results.

Two formats:

* **JSON** — human-readable, complete (clusters, core mask, meta);
* **NPZ** — compact, for large results; reconstructs clusters from the
  labels plus the multi-membership overflow table.

Round-trips preserve cluster-set equality, core masks, and metadata
(numpy values in ``meta`` are converted to plain Python on save).
"""

from __future__ import annotations

import json
import os
from typing import Dict, List

import numpy as np

from repro.core.result import Clustering
from repro.errors import DataError


def _jsonable(value):
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, dict):
        return {k: _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


def to_dict(result: Clustering) -> Dict:
    """Plain-dict representation (the JSON schema)."""
    return {
        "format": "repro.clustering/v1",
        "n": result.n,
        "clusters": [sorted(c) for c in result.clusters],
        "core_mask": result.core_mask.tolist(),
        "meta": _jsonable(result.meta),
    }


def from_dict(payload: Dict) -> Clustering:
    """Inverse of :func:`to_dict`."""
    if payload.get("format") != "repro.clustering/v1":
        raise DataError(f"unrecognised payload format: {payload.get('format')!r}")
    return Clustering(
        payload["n"],
        [set(c) for c in payload["clusters"]],
        np.asarray(payload["core_mask"], dtype=bool),
        meta=payload.get("meta", {}),
    )


def save_clustering(result: Clustering, path: str) -> None:
    """Save to ``.json`` or ``.npz`` (chosen by extension)."""
    ext = os.path.splitext(path)[1].lower()
    if ext == ".json":
        with open(path, "w") as fh:
            json.dump(to_dict(result), fh)
        return
    if ext == ".npz":
        # Labels carry single memberships; the overflow arrays carry the
        # extra (point, cluster) pairs of multi-membership border points.
        overflow_pts: List[int] = []
        overflow_cids: List[int] = []
        for i in range(result.n):
            for cid in result.memberships_of(i)[1:]:
                overflow_pts.append(i)
                overflow_cids.append(cid)
        np.savez_compressed(
            path,
            labels=result.labels,
            core_mask=result.core_mask,
            overflow_points=np.asarray(overflow_pts, dtype=np.int64),
            overflow_clusters=np.asarray(overflow_cids, dtype=np.int64),
            meta=np.frombuffer(
                json.dumps(_jsonable(result.meta)).encode(), dtype=np.uint8
            ),
        )
        return
    raise DataError(f"unsupported extension {ext!r}; use .json or .npz")


def load_clustering(path: str) -> Clustering:
    """Load a result saved by :func:`save_clustering`."""
    if not os.path.exists(path):
        raise DataError(f"no such file: {path}")
    ext = os.path.splitext(path)[1].lower()
    if ext == ".json":
        with open(path) as fh:
            return from_dict(json.load(fh))
    if ext == ".npz":
        with np.load(path) as data:
            labels = data["labels"]
            core_mask = data["core_mask"].astype(bool)
            meta = json.loads(bytes(data["meta"]).decode()) if len(data["meta"]) else {}
            n_clusters = int(labels.max()) + 1 if (labels >= 0).any() else 0
            clusters = [set() for _ in range(n_clusters)]
            for i, label in enumerate(labels):
                if label >= 0:
                    clusters[int(label)].add(int(i))
            for i, cid in zip(data["overflow_points"], data["overflow_clusters"]):
                clusters[int(cid)].add(int(i))
            return Clustering(len(labels), clusters, core_mask, meta=meta)
    raise DataError(f"unsupported extension {ext!r}; use .json or .npz")
