"""Border-point assignment (Section 2.2, "Assigning Border Points").

After the connected components of the core-cell graph fix the clusters'
core points, every non-core point ``q`` joins the cluster of **every** core
point within distance ``eps`` of it — the rule that makes border points
potentially multi-cluster members (Lemma 2 of the original paper).  A
non-core point with no core point in range is noise.

The same exact rule serves rho-approximate DBSCAN: Definition 5's
maximality only requires exactly density-reachable points to be included,
so assigning with the true ``eps`` yields a legal result.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Tuple

import numpy as np

from repro.geometry import distance as dm
from repro.grid.cells import Grid

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.runtime.deadline import Deadline


def assign_borders(
    grid: Grid,
    core_mask: np.ndarray,
    core_labels: np.ndarray,
    *,
    deadline: Optional["Deadline"] = None,
    cells=None,
    kernel: str = "staged",
) -> Dict[int, Tuple[int, ...]]:
    """Map each border point to the sorted tuple of cluster ids it joins.

    ``core_labels`` holds a dense component id for every core point.
    Points with no core point within ``eps`` are simply absent from the
    returned mapping (they are noise).  ``deadline`` is polled per cell
    (loop kernel) or per batched tile (staged kernel).

    ``cells`` optionally restricts the pass to an iterable of cell
    coordinates; the decision for each non-core point only reads its own
    cell's eps-neighbourhood, so shard passes over a partition of the grid
    merge (by plain dict union) into the full assignment.

    ``kernel`` selects the staged batched implementation
    (:func:`repro.core.corekernel.assign_borders_staged`, the default) or
    the per-cell reference loop (``"loop"``).  The staged kernel returns a
    CSR-backed read-only mapping
    (:class:`repro.core.corekernel.BorderAssignments`) that compares equal
    to — and is consumed exactly like — the loop's plain dict.
    """
    from repro.core.labeling import _validate_kernel

    _validate_kernel(kernel)
    if kernel == "staged":
        from repro.core.corekernel import assign_borders_staged

        return assign_borders_staged(
            grid, core_mask, core_labels, deadline=deadline, cells=cells
        )
    points = grid.points
    sq_eps = dm.sq_radius(grid.eps)
    out: Dict[int, Tuple[int, ...]] = {}
    if cells is None:
        work = grid.cells.items()
    else:
        work = ((tuple(c), grid.points_in(c)) for c in cells)

    for cell, idx in work:
        if deadline is not None:
            deadline.tick()
        non_core = idx[~core_mask[idx]]
        if len(non_core) == 0:
            continue
        # Candidate core points: those in the cell itself and in its
        # eps-neighbour cells.
        blocks = [idx[core_mask[idx]]]
        for ncell in grid.neighbor_cells(cell):
            nidx = grid.points_in(ncell)
            blocks.append(nidx[core_mask[nidx]])
        cores = np.concatenate(blocks)
        if len(cores) == 0:
            continue
        core_cids = core_labels[cores]
        sq = dm.pairwise_sq_dists(points[non_core], points[cores])
        within = sq <= sq_eps
        for row, q in enumerate(non_core):
            cids = np.unique(core_cids[within[row]])
            if len(cids):
                out[int(q)] = tuple(int(c) for c in cids)
    return out
