"""Staged, batched kernels for the core-labeling and border phases.

The per-cell reference loops of :mod:`repro.core.labeling` and
:mod:`repro.core.border` pay one Python iteration plus several small numpy
calls per grid cell — which dominates wall-clock on seed-spreader-style
grids where tens of thousands of cells hold only a handful of points each.
Following the phase structure of Wang/Gu/Shun ("Theoretically-Efficient
and Practical Parallel DBSCAN": mark-core -> cluster-core -> cluster-
border), this module settles both phases with staged, vectorised passes
over the grid's dense cell arrays:

* **Stage A — dense quick-accept.**  Cells holding at least ``MinPts``
  points make *all* their points core (same-cell points are within
  ``eps``).  The verdict needs only the cell sizes, so every dense cell in
  the pass is accepted by one vectorised comparison and one index scatter.

* **Stage B — size-classed sparse counting.**  The surviving sparse
  cells' points accumulate neighbour counts against their cells'
  eps-neighbour points.  The (cell, neighbour-cell) CSR adjacency is
  flattened into one per-cell neighbour-point list, the cells are grouped
  into power-of-two size classes (so padding waste stays below 2x), and
  each class runs as tiled, gathered distance blocks with *vectorised
  early retirement*: a point that reaches ``MinPts`` drops out of every
  later tile, and a cell whose points all retired contributes no further
  rows.  ``known_core`` sweep hints are honoured exactly as in the loop —
  known points skip their counting pass.

* **Stage C — batched border assignment.**  Non-core points gather their
  cells' candidate core points (own cell + eps-neighbour cells) through
  the same size-classed padded layout, and the per-point cluster
  memberships come out of one vectorised unique-(point, label) reduction
  into a CSR structure (:class:`BorderAssignments`) that callers consume
  dict-compatibly.

Every stage computes exactly the predicate of the reference loops —
``|B(p, eps)| >= MinPts`` for cores, "every cluster with a core point
within ``eps``" for borders — against the shared
:func:`repro.geometry.distance.sq_radius` decision boundary, so the
results are byte-identical to the loops on every path that runs these
phases (serial pipeline, parallel shard workers on both transports, the
engine sweep's ``known_core`` carry, the resilient cascade, and the
fully-approximate extension).  The kernels report their funnels through
:mod:`repro.grid.counters` (``core_*`` / ``border_*``), which the
pipeline publishes under ``meta["kernel_counters"]`` next to the edge
phase's ``edge_*`` funnel.  Deadlines are polled once per size-class
tile — the batched-loop granularity of the FlatHierarchy frontier
traversal — not per cell.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.geometry import distance as dm
from repro.grid import counters
from repro.grid.cells import CellCoord, Grid, _CSRAdjacency

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.runtime.deadline import Deadline

_EMPTY = np.empty(0, dtype=np.int64)

#: Attribute name under which the per-grid dense arrays are cached on the
#: :class:`Grid` instance.  A grid's cells and adjacency are immutable
#: once built, so the cache never invalidates; shard workers calling the
#: kernel once per shard reuse it instead of rebuilding per task.
_SOA_ATTR = "_corekernel_soa"


@dataclass
class GridSoA:
    """Dense structure-of-arrays view of a grid's cells and adjacency.

    Cell ids are positions in the grid's cell insertion order.  ``cat`` is
    the concatenation of every cell's point-index array in that order
    (cell ``t`` owns ``cat[offsets[t] : offsets[t] + sizes[t]]``);
    ``adj_indptr`` / ``adj_indices`` are the CSR rows of the eps-neighbour
    cell adjacency in the same id space, preserving each row's neighbour
    order.  ``point_sq`` caches every point's squared norm for the
    expanded-form distance tiles.
    """

    keys: List[CellCoord]
    index: Dict[CellCoord, int]
    sizes: np.ndarray
    offsets: np.ndarray
    cat: np.ndarray
    adj_indptr: np.ndarray
    adj_indices: np.ndarray
    point_sq: np.ndarray

    def __len__(self) -> int:
        return len(self.keys)

    def adj_counts(self, ids: np.ndarray) -> np.ndarray:
        return self.adj_indptr[ids + 1] - self.adj_indptr[ids]


def grid_soa(grid: Grid) -> GridSoA:
    """The (cached) dense arrays for ``grid`` — built once per grid."""
    soa = getattr(grid, _SOA_ATTR, None)
    if soa is not None:
        return soa
    keys = list(grid.cells.keys())
    m = len(keys)
    index = {c: t for t, c in enumerate(keys)}
    points = grid.points
    point_sq = np.einsum("ij,ij->i", points, points)
    if m == 0:
        soa = GridSoA(
            keys, index, _EMPTY, _EMPTY.copy(), _EMPTY.copy(),
            np.zeros(1, dtype=np.int64), _EMPTY.copy(), point_sq,
        )
        setattr(grid, _SOA_ATTR, soa)
        return soa
    sizes = np.fromiter(
        (len(idx) for idx in grid.cells.values()), dtype=np.int64, count=m
    )
    offsets = np.zeros(m, dtype=np.int64)
    np.cumsum(sizes[:-1], out=offsets[1:])
    cat = np.concatenate(list(grid.cells.values()))
    adjacency = grid._ensure_adjacency()
    if isinstance(adjacency, _CSRAdjacency) and adjacency.keys == keys:
        adj_indptr = np.asarray(adjacency.indptr, dtype=np.int64)
        adj_indices = np.asarray(adjacency.indices, dtype=np.int64)
    else:
        # All-pairs adjacency (high d) stores per-cell lists in a dict;
        # repack into CSR once — the only per-cell Python work the staged
        # kernels ever do, paid a single time per grid.
        rows = [adjacency[c] for c in keys]
        adj_indptr = np.zeros(m + 1, dtype=np.int64)
        np.cumsum([len(r) for r in rows], out=adj_indptr[1:])
        flat = [index[c] for row in rows for c in row]
        adj_indices = np.asarray(flat, dtype=np.int64)
    soa = GridSoA(
        keys, index, sizes, offsets, cat, adj_indptr, adj_indices, point_sq
    )
    setattr(grid, _SOA_ATTR, soa)
    return soa


def _take_ranges(values: np.ndarray, starts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Concatenate ``values[starts[i] : starts[i] + lengths[i]]``, vectorised.

    The ranges-to-indices expansion that replaces every per-cell
    ``np.concatenate`` loop: one ``repeat`` + one ``arange`` regardless of
    how many ranges are being flattened.
    """
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=values.dtype)
    row = np.repeat(np.arange(len(starts)), lengths)
    prefix = np.zeros(len(starts), dtype=np.int64)
    np.cumsum(lengths[:-1], out=prefix[1:])
    inner = np.arange(total, dtype=np.int64) - prefix[row]
    return values[starts[row] + inner]


def _work_cell_ids(
    grid: Grid,
    soa: GridSoA,
    cells,
    known_core: Optional[np.ndarray],
) -> Tuple[np.ndarray, bool]:
    """Dense ids of the cells one pass must visit, plus the carry flag.

    Mirrors the work-selection of the reference loops: an explicit
    ``cells`` iterable (shard restriction) wins; otherwise a ``known_core``
    carry restricts the pass to cells holding at least one unknown point;
    otherwise every cell is visited.  The carry flag is True exactly when
    the caller must pre-seed the mask with ``known_core`` wholesale.
    """
    if cells is not None:
        ids = [soa.index.get(tuple(c)) for c in cells]
        found = [t for t in ids if t is not None]
        return np.asarray(found, dtype=np.int64), False
    if known_core is not None and known_core.any():
        unknown = np.nonzero(~known_core)[0]
        if len(unknown) == 0:
            return _EMPTY, True
        # point -> dense cell id, inverted from the concatenation layout.
        point_cell = np.empty(len(grid.points), dtype=np.int64)
        point_cell[soa.cat] = np.repeat(
            np.arange(len(soa), dtype=np.int64), soa.sizes
        )
        return np.unique(point_cell[unknown]), True
    return np.arange(len(soa), dtype=np.int64), False


def _size_classes(lengths: np.ndarray) -> Iterator[np.ndarray]:
    """Group positions by the power-of-two class of ``lengths``.

    Rows inside one class are padded to the class *maximum*, so the
    padding waste is bounded by the class width (< 2x).  Classes come out
    in ascending size order; zero-length rows are skipped entirely.
    """
    if len(lengths) == 0:
        return
    cls = np.zeros(len(lengths), dtype=np.int64)
    positive = lengths > 0
    cls[positive] = np.frexp(lengths[positive].astype(np.float64))[1]
    for c in np.unique(cls[positive]):
        yield np.nonzero(cls == c)[0]


def _padded_rows(
    flat: np.ndarray, starts: np.ndarray, lengths: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Pad the CSR rows ``flat[starts[i] : +lengths[i]]`` into a matrix.

    Returns ``(matrix, valid)`` of shape ``(len(starts), max(lengths))``;
    padded slots repeat the row's first entry and are masked out by
    ``valid``.
    """
    width = int(lengths.max())
    col = np.arange(width, dtype=np.int64)
    valid = col[None, :] < lengths[:, None]
    take = starts[:, None] + np.where(valid, col[None, :], 0)
    return flat[take], valid


def _tile_width(active: int, dim: int, remaining: int) -> int:
    """Columns per distance tile, bounded by the shared chunk budget."""
    budget = max(1, dm._chunk_budget() // max(1, active * max(dim, 1)))
    return max(1, min(remaining, budget))


def _gathered_sq_dists(
    points: np.ndarray,
    point_sq: np.ndarray,
    q_idx: np.ndarray,
    nbr_idx: np.ndarray,
) -> np.ndarray:
    """Squared distances between ``points[q_idx[r]]`` and each gathered row.

    The expanded form ``|a|^2 + |b|^2 - 2 a.b`` of
    :func:`repro.geometry.distance.pairwise_sq_dists`, evaluated on a
    row-specific gather (``nbr_idx`` has shape ``(rows, width)``) instead
    of a full cross product.  Decisions are made against the shared
    :func:`~repro.geometry.distance.sq_radius` boundary, whose slack
    absorbs the kernels' rounding differences.
    """
    q = points[q_idx]
    nbr = points[nbr_idx]
    out = (
        point_sq[q_idx][:, None]
        + point_sq[nbr_idx]
        - 2.0 * np.einsum("rd,rwd->rw", q, nbr)
    )
    np.maximum(out, 0.0, out=out)
    return out


# ------------------------------------------------------------ core labeling


def label_cores_staged(
    grid: Grid,
    min_pts: int,
    *,
    deadline: Optional["Deadline"] = None,
    cells=None,
    known_core: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Staged, batched core labeling — byte-identical to the loop.

    See :func:`repro.core.labeling.label_cores` for the contract
    (``cells`` shard restriction, ``known_core`` monotone carry); this
    kernel computes the identical mask with three vectorised stages and
    publishes its funnel through the ``core_*`` counters:

    ``core_points_total == core_dense_points + core_known_points +
    core_counted_points`` over the cells the pass visited, and
    ``core_retired_points <= core_counted_points`` measures how much the
    early-retirement tiles saved.
    """
    points = grid.points
    sq_eps = dm.sq_radius(grid.eps)
    core = np.zeros(len(points), dtype=bool)
    soa = grid_soa(grid)
    work, carry = _work_cell_ids(grid, soa, cells, known_core)
    if carry:
        core[:] = known_core
    counters.add("core_cells_total", len(work))
    if len(work) == 0:
        return core
    if deadline is not None:
        deadline.check()
    work_sizes = soa.sizes[work]
    counters.add("core_points_total", int(work_sizes.sum()))

    # Stage A: dense quick-accept over every visited cell at once.
    dense = work_sizes >= min_pts
    dense_ids = work[dense]
    if len(dense_ids):
        core[_take_ranges(soa.cat, soa.offsets[dense_ids], soa.sizes[dense_ids])] = True
        counters.add("core_dense_cells", len(dense_ids))
        counters.add("core_dense_points", int(soa.sizes[dense_ids].sum()))
    sparse_ids = work[~dense]
    counters.add("core_sparse_cells", len(sparse_ids))
    if len(sparse_ids) == 0:
        return core

    # Queries: the sparse cells' points that still need a counting pass.
    q_all = _take_ranges(soa.cat, soa.offsets[sparse_ids], soa.sizes[sparse_ids])
    q_cell = np.repeat(np.arange(len(sparse_ids)), soa.sizes[sparse_ids])
    if known_core is not None:
        already = known_core[q_all]
        if already.any():
            core[q_all[already]] = True
            counters.add("core_known_points", int(already.sum()))
            q_all, q_cell = q_all[~already], q_cell[~already]
    counters.add("core_counted_points", len(q_all))
    if len(q_all) == 0:
        return core
    # Cells whose points were all known drop out before any neighbour work.
    live = np.unique(q_cell)
    remap = np.full(len(sparse_ids), -1, dtype=np.int64)
    remap[live] = np.arange(len(live))
    q_cell = remap[q_cell]
    live_ids = sparse_ids[live]

    # Flatten the (cell, neighbour-cell) CSR adjacency into one
    # neighbour-point list per live sparse cell.
    nb_cells = _take_ranges(
        soa.adj_indices, soa.adj_indptr[live_ids], soa.adj_counts(live_ids)
    )
    nb_owner = np.repeat(np.arange(len(live_ids)), soa.adj_counts(live_ids))
    nb_sizes = soa.sizes[nb_cells]
    nlen = np.bincount(nb_owner, weights=nb_sizes, minlength=len(live_ids)).astype(np.int64)
    nbr_flat = _take_ranges(soa.cat, soa.offsets[nb_cells], nb_sizes)
    nbr_starts = np.zeros(len(live_ids), dtype=np.int64)
    np.cumsum(nlen[:-1], out=nbr_starts[1:])

    # Queries of one cell are contiguous in ``q_all`` (built per cell, in
    # cell order), so each live cell owns one query range.
    q_counts = np.bincount(q_cell, minlength=len(live_ids)).astype(np.int64)
    q_starts = np.zeros(len(live_ids), dtype=np.int64)
    np.cumsum(q_counts[:-1], out=q_starts[1:])
    verdict = np.zeros(len(q_all), dtype=bool)

    # Upper-bound quick-reject: a sparse cell whose occupancy plus entire
    # neighbourhood stays below ``MinPts`` cannot make any point core —
    # no distance work needed (the loop pays the full scan here).
    ubound = soa.sizes[live_ids] + nlen
    rejected = ubound < min_pts
    if rejected.any():
        counters.add(
            "core_upperbound_reject_points", int(q_counts[rejected].sum())
        )
    needs_work = np.where(rejected, 0, nlen)

    # Stage B: size-classed counting, batched per *cell* — each class is
    # a (cells, max queries/cell, tile) block settled by one batched
    # matmul, with whole cells retiring from later tiles once all their
    # points reach MinPts.
    for rows in _size_classes(needs_work):
        nbr_pad, nbr_valid = _padded_rows(nbr_flat, nbr_starts[rows], nlen[rows])
        q_pad, q_valid = _padded_rows(q_all, q_starts[rows], q_counts[rows])
        q_max = q_pad.shape[1]
        # Counts start at the full cell occupancy (same-cell points are
        # all within eps), exactly like the loop; padded query slots are
        # born retired so they never keep a cell alive.
        count_mat = np.where(
            q_valid, soa.sizes[live_ids[rows]][:, None], np.int64(min_pts)
        )
        active = np.arange(len(rows))
        width = nbr_pad.shape[1]
        pos = 0
        while pos < width and len(active):
            if deadline is not None:
                deadline.check()  # one poll per tile, not per cell
            w = _tile_width(len(active) * q_max, grid.dim, width - pos)
            tile = slice(pos, pos + w)
            nbr_idx = nbr_pad[active][:, tile]
            q_idx = q_pad[active]
            # Expanded-form distances as one batched matmul per tile:
            # (cells, q_max, d) @ (cells, d, w) -> (cells, q_max, w).
            sq = (
                soa.point_sq[q_idx][:, :, None]
                + soa.point_sq[nbr_idx][:, None, :]
                - 2.0 * np.matmul(points[q_idx], points[nbr_idx].transpose(0, 2, 1))
            )
            np.maximum(sq, 0.0, out=sq)
            within = sq <= sq_eps
            within &= nbr_valid[active][:, None, tile]
            count_mat[active] += within.sum(axis=2)
            done = (count_mat[active] >= min_pts).all(axis=1)
            pos += w
            if done.any() and pos < width:
                retired = count_mat[active[done]] >= min_pts
                counters.add("core_retired_points", int((retired & q_valid[active[done]]).sum()))
                counters.add("core_retired_cells", int(done.sum()))
            active = active[~done]
        # Row-major valid entries of the count matrix are exactly the
        # class cells' queries, concatenated in class order.
        q_pos = _take_ranges(
            np.arange(len(q_all), dtype=np.int64), q_starts[rows], q_counts[rows]
        )
        verdict[q_pos] = count_mat[q_valid] >= min_pts
    core[q_all] = verdict
    return core


# ------------------------------------------------------------------ borders


class BorderAssignments:
    """CSR-backed mapping of border point -> sorted tuple of cluster ids.

    The staged border kernel's result: ``points`` holds the assigned
    border point indices (ascending), and point ``points[i]`` joins the
    clusters ``labels[indptr[i] : indptr[i + 1]]`` (each row sorted
    ascending, matching the reference loop's ``np.unique`` output).
    Implements the read-only mapping protocol, so every consumer of the
    classic ``Dict[int, Tuple[int, ...]]`` — ``build_clustering``,
    checkpoint flattening, the worker slab writers, plain ``dict(...)``
    adoption — works unchanged.
    """

    __slots__ = ("points", "indptr", "labels", "_pos")

    def __init__(self, points: np.ndarray, indptr: np.ndarray, labels: np.ndarray) -> None:
        self.points = np.asarray(points, dtype=np.int64)
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.labels = np.asarray(labels, dtype=np.int64)
        self._pos: Optional[Dict[int, int]] = None

    @classmethod
    def empty(cls) -> "BorderAssignments":
        return cls(_EMPTY, np.zeros(1, dtype=np.int64), _EMPTY)

    def _position(self, idx: int) -> int:
        if self._pos is None:
            self._pos = {int(p): i for i, p in enumerate(self.points)}
        return self._pos[int(idx)]

    def __getitem__(self, idx: int) -> Tuple[int, ...]:
        i = self._position(idx)  # raises KeyError for non-border points
        return tuple(
            int(c) for c in self.labels[self.indptr[i]:self.indptr[i + 1]]
        )

    def get(self, idx: int, default=None):
        try:
            return self[idx]
        except KeyError:
            return default

    def __contains__(self, idx) -> bool:
        try:
            self._position(idx)
        except (KeyError, TypeError, ValueError):
            return False
        return True

    def __iter__(self):
        return iter(self.points.tolist())

    def __len__(self) -> int:
        return len(self.points)

    def keys(self):
        return self.points.tolist()

    def values(self):
        return [self[p] for p in self.points.tolist()]

    def items(self):
        return [(p, self[p]) for p in self.points.tolist()]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, BorderAssignments):
            return (
                np.array_equal(self.points, other.points)
                and np.array_equal(self.indptr, other.indptr)
                and np.array_equal(self.labels, other.labels)
            )
        if isinstance(other, dict):
            return dict(self.items()) == other
        return NotImplemented

    def __ne__(self, other: object) -> bool:
        eq = self.__eq__(other)
        return eq if eq is NotImplemented else not eq

    def __hash__(self):  # pragma: no cover - mappings are unhashable
        raise TypeError("BorderAssignments is unhashable (mutable-mapping shaped)")

    def __reduce__(self):
        return (BorderAssignments, (self.points, self.indptr, self.labels))

    def __repr__(self) -> str:
        return f"BorderAssignments({len(self)} border points)"


def assign_borders_staged(
    grid: Grid,
    core_mask: np.ndarray,
    core_labels: np.ndarray,
    *,
    deadline: Optional["Deadline"] = None,
    cells=None,
) -> BorderAssignments:
    """Staged, batched border assignment — dict-identical to the loop.

    See :func:`repro.core.border.assign_borders` for the contract.  The
    funnel partitions cleanly: ``border_points_total == border_assigned +
    border_noise``, where ``border_noise`` includes the
    ``border_no_candidates`` points whose cells hold no candidate core at
    all — the verdict the reference loop leaves implicit by skipping the
    cell.
    """
    points = grid.points
    sq_eps = dm.sq_radius(grid.eps)
    core_mask = np.asarray(core_mask, dtype=bool)
    soa = grid_soa(grid)
    work, _ = _work_cell_ids(grid, soa, cells, None)
    if len(work) == 0:
        return BorderAssignments.empty()
    if deadline is not None:
        deadline.check()

    # Non-core queries per visited cell.
    q_all = _take_ranges(soa.cat, soa.offsets[work], soa.sizes[work])
    q_cell = np.repeat(np.arange(len(work)), soa.sizes[work])
    non_core = ~core_mask[q_all]
    q_all, q_cell = q_all[non_core], q_cell[non_core]
    counters.add("border_points_total", len(q_all))
    if len(q_all) == 0:
        return BorderAssignments.empty()
    live = np.unique(q_cell)
    remap = np.full(len(work), -1, dtype=np.int64)
    remap[live] = np.arange(len(live))
    q_cell = remap[q_cell]
    live_ids = work[live]

    # Candidate cores per live cell: own cores first, then each
    # eps-neighbour cell's cores in adjacency order (order never reaches
    # the output — memberships are reduced to sorted unique labels).
    core_flags = core_mask[soa.cat]
    core_counts = np.zeros(len(soa), dtype=np.int64)
    if len(soa.cat):
        core_counts = np.add.reduceat(core_flags, soa.offsets).astype(np.int64)
        core_counts[soa.sizes == 0] = 0
    core_cat = soa.cat[core_flags]
    core_offsets = np.zeros(len(soa), dtype=np.int64)
    if len(soa) > 1:
        np.cumsum(core_counts[:-1], out=core_offsets[1:])

    adj_counts = soa.adj_counts(live_ids)
    entry_len = adj_counts + 1
    entry_ptr = np.zeros(len(live_ids), dtype=np.int64)
    np.cumsum(entry_len[:-1], out=entry_ptr[1:])
    entries = np.empty(int(entry_len.sum()), dtype=np.int64)
    entries[entry_ptr] = live_ids  # the cell itself leads its row
    rest = np.ones(len(entries), dtype=bool)
    rest[entry_ptr] = False
    entries[rest] = _take_ranges(
        soa.adj_indices, soa.adj_indptr[live_ids], adj_counts
    )
    entry_owner = np.repeat(np.arange(len(live_ids)), entry_len)
    cand_len = np.bincount(
        entry_owner, weights=core_counts[entries], minlength=len(live_ids)
    ).astype(np.int64)
    cand_flat = _take_ranges(core_cat, core_offsets[entries], core_counts[entries])
    cand_starts = np.zeros(len(live_ids), dtype=np.int64)
    np.cumsum(cand_len[:-1], out=cand_starts[1:])

    # Cells with zero candidate cores: every non-core point there is
    # noise — the explicit verdict the counters need to partition.
    empty_cells = cand_len[q_cell] == 0
    if empty_cells.any():
        counters.add("border_no_candidates", int(empty_cells.sum()))
        counters.add("border_noise", int(empty_cells.sum()))
        q_all, q_cell = q_all[~empty_cells], q_cell[~empty_cells]
    if len(q_all) == 0:
        counters.add("border_assigned", 0)
        return BorderAssignments.empty()

    # Stage C: size-classed, tiled candidate scan collecting (point,
    # label) hits; no early exit — every in-range core's label counts.
    hit_q: List[np.ndarray] = []
    hit_lab: List[np.ndarray] = []
    core_label_arr = np.asarray(core_labels, dtype=np.int64)
    for rows in _size_classes(cand_len):
        padmat, valid = _padded_rows(cand_flat, cand_starts[rows], cand_len[rows])
        row_of = np.full(len(live_ids), -1, dtype=np.int64)
        row_of[rows] = np.arange(len(rows))
        sel = np.nonzero(row_of[q_cell] >= 0)[0]
        if len(sel) == 0:
            continue
        q_rows = row_of[q_cell[sel]]
        width = padmat.shape[1]
        pos = 0
        while pos < width:
            if deadline is not None:
                deadline.check()  # one poll per tile, not per cell
            w = _tile_width(len(sel), grid.dim, width - pos)
            tile = slice(pos, pos + w)
            nbr_idx = padmat[q_rows][:, tile]
            within = _gathered_sq_dists(
                points, soa.point_sq, q_all[sel], nbr_idx
            ) <= sq_eps
            within &= valid[q_rows][:, tile]
            r, c = np.nonzero(within)
            if len(r):
                hit_q.append(q_all[sel[r]])
                hit_lab.append(core_label_arr[nbr_idx[r, c]])
            pos += w

    if not hit_q:
        counters.add("border_assigned", 0)
        counters.add("border_noise", len(q_all))
        return BorderAssignments.empty()
    pairs_q = np.concatenate(hit_q)
    pairs_lab = np.concatenate(hit_lab)
    # Unique labels per point: one lexsort + run-length dedup replaces a
    # per-point np.unique call.
    order = np.lexsort((pairs_lab, pairs_q))
    pq, pl = pairs_q[order], pairs_lab[order]
    keep = np.ones(len(pq), dtype=bool)
    keep[1:] = (pq[1:] != pq[:-1]) | (pl[1:] != pl[:-1])
    pq, pl = pq[keep], pl[keep]
    starts = np.nonzero(
        np.concatenate([[True], pq[1:] != pq[:-1]])
    )[0]
    out_points = pq[starts]
    indptr = np.append(starts, len(pq)).astype(np.int64)
    counters.add("border_assigned", len(out_points))
    counters.add("border_noise", int(len(q_all) - len(out_points)))
    return BorderAssignments(out_points, indptr, pl)
