"""The core-cell graph ``G = (V, E)`` and its connected components.

``V`` is the set of *core cells* (cells covering at least one core point).
The paper gives two edge rules:

* **exact** (Sections 2.2 / 3.2): cells ``c1, c2`` are adjacent iff some
  pair of core points ``p1 in c1, p2 in c2`` satisfies
  ``dist(p1, p2) <= eps`` — decided with a Bichromatic Closest Pair
  computation per eps-neighbouring core-cell pair;

* **rho-approximate** (Section 4.4): *yes* if core points within ``eps``
  exist, *no* if none within ``eps(1+rho)``, *don't care* otherwise —
  decided with approximate range-count queries against a Lemma 5 structure
  built on each core cell's core points.

By Lemma 1, the connected components of ``G`` are exactly the clusters
restricted to core points, so both builders return per-core-point component
labels directly.

Both builders resolve the edge phase through the staged, batched kernel of
:mod:`repro.core.edgekernel` by default (``kernel="staged"``): vectorised
quick-accept / quick-reject passes over dense cell ids settle most pairs
without a per-pair decision, and only the survivors run BCP /
:meth:`FlatHierarchy.any_contains`, cheapest-first with a spanning-forest
early exit.  ``kernel="loop"`` keeps the classic per-pair loop — the
reference implementation benchmarks and differential tests compare
against.  Both kernels produce byte-identical labels.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.runtime.deadline import Deadline

from repro.core.edgekernel import apply_preunion_dense, cell_arrays, resolve_edges
from repro.errors import ParameterError
from repro.geometry import distance as dm
from repro.geometry.bcp import bcp_within
from repro.grid.cells import CellCoord, Grid
from repro.grid.hierarchy import FlatHierarchy
from repro.index.kdtree import KDTree
from repro.utils.unionfind import DenseUnionFind, KeyedUnionFind


def core_cells(grid: Grid, core_mask: np.ndarray) -> Dict[CellCoord, np.ndarray]:
    """Map each core cell to the indices of its core points."""
    out: Dict[CellCoord, np.ndarray] = {}
    for cell, idx in grid.cells.items():
        cores = idx[core_mask[idx]]
        if len(cores):
            out[cell] = cores
    return out


def exact_edge_predicate(
    grid: Grid,
    cells: Dict[CellCoord, np.ndarray],
    bcp_strategy: str = "auto",
    structures: Optional[Dict[CellCoord, object]] = None,
):
    """Build the exact edge test ``edge(c1, c2) -> bool`` over core cells.

    The closure is a *pure, deterministic* function of ``(grid, cells)`` —
    the property the parallel layer relies on: any spanning subset of the
    true edges, evaluated in any order by any process, yields the same
    connected components.  Per-cell search structures (kd-trees, Voronoi
    diagrams) are cached inside the closure and reused across calls.

    ``structures`` optionally seeds that per-cell cache — the same seam
    :func:`approx_edge_predicate` offers for Lemma 5 structures, used by
    the clustering engine's :class:`StructureCache` so warm service
    requests stop rebuilding trees.  The dict is updated in place with any
    structures built lazily, letting the caller harvest them afterwards.
    It is ignored by the pairwise ``bcp_strategy`` modes, which keep no
    per-cell state.
    """
    points = grid.points
    if bcp_strategy == "kdtree":
        # Gunawan-style: one search structure per core cell, reused across
        # all of the cell's pairs (instead of a fresh BCP per pair).
        trees: Dict[CellCoord, KDTree] = (
            {} if structures is None else structures  # type: ignore[assignment]
        )
        sq_eps = dm.sq_radius(grid.eps)

        def edge(c1: CellCoord, c2: CellCoord) -> bool:
            # Query from the smaller cell into the larger cell's tree.
            if len(cells[c1]) > len(cells[c2]):
                c1, c2 = c2, c1
            tree = trees.get(c2)
            if tree is None:
                tree = trees[c2] = KDTree(points[cells[c2]])
            for p in points[cells[c1]]:
                idx, _sq = tree.nearest(p, bound_sq=sq_eps)
                if idx >= 0:
                    return True
            return False
    elif bcp_strategy == "voronoi":
        # Gunawan's verbatim 2D machinery: a Voronoi diagram (Delaunay
        # dual) per core cell, nearest neighbours by greedy walking.
        from repro.geometry.delaunay import VoronoiNN

        if grid.dim != 2:
            raise ParameterError("the voronoi edge strategy requires 2-D points")
        diagrams: Dict[CellCoord, VoronoiNN] = (
            {} if structures is None else structures  # type: ignore[assignment]
        )

        def edge(c1: CellCoord, c2: CellCoord) -> bool:
            if len(cells[c1]) > len(cells[c2]):
                c1, c2 = c2, c1
            diagram = diagrams.get(c2)
            if diagram is None:
                diagram = diagrams[c2] = VoronoiNN(points[cells[c2]])
            return any(
                diagram.nearest_within(p, grid.eps) for p in points[cells[c1]]
            )
    else:
        def edge(c1: CellCoord, c2: CellCoord) -> bool:
            return bcp_within(
                points[cells[c1]], points[cells[c2]], grid.eps, strategy=bcp_strategy
            )

    return edge


def approx_edge_predicate(
    grid: Grid,
    cells: Dict[CellCoord, np.ndarray],
    rho: float,
    exact_leaf_size: int | None = None,
    structures: Optional[Dict[CellCoord, FlatHierarchy]] = None,
    deadline: Optional["Deadline"] = None,
):
    """Build the rho-approximate edge test ``edge(c1, c2) -> bool``.

    Queries the Lemma 5 structure of ``c2`` with the core points of ``c1``
    under the paper's yes / no / don't-care contract — *all* of ``c1``'s
    core points in a single batched :meth:`FlatHierarchy.any_contains`
    call, which short-circuits the moment any query is decided yes.  The
    answer for an *oriented* pair is deterministic (the structure build
    is), which is why serial and parallel runs agree exactly as long as
    both evaluate pairs in the orientation
    :meth:`Grid.neighbor_cell_pairs` emits them.

    ``structures`` optionally seeds the per-cell structure cache (the
    serial path pre-builds all of them under the deadline); missing entries
    are built lazily, which is what worker processes do for the cells their
    pair chunks actually touch.  A bounded ``deadline`` is handed to every
    batched query, so even one pathologically large edge test is cancelled
    promptly.
    """
    points = grid.points
    kwargs = {} if exact_leaf_size is None else {"exact_leaf_size": exact_leaf_size}
    cache: Dict[CellCoord, FlatHierarchy] = {} if structures is None else structures

    def edge(c1: CellCoord, c2: CellCoord) -> bool:
        structure = cache.get(c2)
        if structure is None:
            structure = cache[c2] = FlatHierarchy(
                points[cells[c2]], grid.eps, rho, **kwargs
            )
        return structure.any_contains(points[cells[c1]], deadline=deadline)

    return edge


def apply_preunion(
    uf: KeyedUnionFind,
    preunion: Optional[List[Tuple[CellCoord, CellCoord]]],
) -> None:
    """Seed a union-find with pairs already known to be connected in ``G``.

    Each ``preunion`` pair must lie in the same connected component of the
    graph being built (e.g. carried forward from a smaller ``eps`` in a
    monotone sweep — Theorem 3: clusters only merge as ``eps`` grows, so
    same-component pairs stay same-component).  Pairs naming cells absent
    from the forest are skipped: ``KeyedUnionFind.union`` would otherwise
    register them and shift every later component label.  Pre-unioning
    same-component pairs never changes the final partition or its labels,
    because ``component_labels`` orders components by key insertion order,
    which is fixed at construction.
    """
    if not preunion:
        return
    for c1, c2 in preunion:
        if c1 in uf and c2 in uf:
            uf.union(c1, c2)


def candidate_cell_pairs(
    grid: Grid,
    cells: Dict[CellCoord, np.ndarray],
    uf: KeyedUnionFind,
    *,
    seeded: bool,
) -> Iterator[Tuple[CellCoord, CellCoord]]:
    """Neighbour core-cell pairs still worth an edge test.

    Unseeded, this is exactly ``grid.neighbor_cell_pairs`` over the core
    cells.  Seeded (a pre-union carry was applied to ``uf``), pairs whose
    endpoints already share a root are dropped up front by one vectorised
    comparison over a static root snapshot — instead of two
    path-compressing finds and a BCP test per pair.  Dropping them is
    sound: a union between same-component cells is a no-op, so the final
    partition (the transitive closure of the deterministic edge set) is
    unchanged.
    """
    keys, ii, jj = grid.neighbor_cell_pair_arrays(subset=cells.keys())
    if seeded and len(ii):
        root = np.fromiter(
            (uf.find(c) for c in keys), dtype=np.int64, count=len(keys)
        )
        keep = root[ii] != root[jj]
        ii, jj = ii[keep], jj[keep]
    for i, j in zip(ii.tolist(), jj.tolist()):
        yield keys[i], keys[j]


def _staged_components(
    grid: Grid,
    cells: Dict[CellCoord, np.ndarray],
    edge,
    *,
    reject_eps: Optional[float] = None,
    deadline: Optional["Deadline"] = None,
    preunion: Optional[List[Tuple[CellCoord, CellCoord]]] = None,
) -> Tuple[np.ndarray, int]:
    """Run the staged edge kernel over ``cells`` and scatter labels.

    The shared back half of :func:`exact_components` /
    :func:`approx_components` under ``kernel="staged"``: dense per-cell
    arrays, a :class:`DenseUnionFind` seeded with the pre-union carry, one
    :func:`resolve_edges` pass over all candidate pairs, and a single
    vectorised label scatter.  Labels are byte-identical to the per-pair
    loop (see :mod:`repro.core.edgekernel`).
    """
    arrays = cell_arrays(grid.points, cells)
    uf = DenseUnionFind(len(arrays))
    apply_preunion_dense(uf, arrays.index, preunion)
    keys, ii, jj = grid.neighbor_cell_pair_arrays(subset=cells.keys())
    if keys != arrays.keys:  # pragma: no cover - orders coincide in practice
        remap = np.fromiter(
            (arrays.index[c] for c in keys), dtype=np.int64, count=len(keys)
        )
        ii, jj = remap[ii], remap[jj]
    resolve_edges(
        grid.points,
        grid.eps,
        arrays,
        ii,
        jj,
        uf,
        edge,
        reject_eps=reject_eps,
        deadline=deadline,
    )
    labels = np.full(len(grid.points), -1, dtype=np.int64)
    if len(arrays):
        labels[arrays.cat] = np.repeat(uf.component_labels(), arrays.sizes)
    return labels, uf.n_components


def _validate_kernel(kernel: str) -> None:
    if kernel not in ("staged", "loop"):
        raise ParameterError(f"unknown edge kernel {kernel!r}; use 'staged' or 'loop'")


def exact_components(
    grid: Grid,
    core_mask: np.ndarray,
    bcp_strategy: str = "auto",
    *,
    deadline: Optional["Deadline"] = None,
    preunion: Optional[List[Tuple[CellCoord, CellCoord]]] = None,
    structures: Optional[Dict[CellCoord, object]] = None,
    kernel: str = "staged",
) -> Tuple[np.ndarray, int]:
    """Connected components of the exact graph ``G``.

    Returns ``(labels, k)``: a dense component id per point (valid only at
    core positions; ``-1`` elsewhere) and the number of components ``k``.
    ``deadline`` is polled before each per-pair BCP computation, the
    dominant cost of the phase.  ``preunion`` optionally seeds the
    union-find with known-true edges (see :func:`apply_preunion`); seeded
    pairs short-circuit their BCP tests without changing the result.
    ``structures`` seeds the per-cell search-structure cache
    (:func:`exact_edge_predicate`).  ``kernel`` selects the staged batched
    kernel (default) or the reference per-pair loop; both produce
    byte-identical labels.
    """
    _validate_kernel(kernel)
    cells = core_cells(grid, core_mask)
    edge = exact_edge_predicate(grid, cells, bcp_strategy, structures=structures)
    if kernel == "staged":
        return _staged_components(
            grid, cells, edge, deadline=deadline, preunion=preunion
        )
    uf = KeyedUnionFind(cells.keys())
    apply_preunion(uf, preunion)
    for c1, c2 in candidate_cell_pairs(grid, cells, uf, seeded=bool(preunion)):
        if deadline is not None:
            deadline.tick()
        if uf.connected(c1, c2):
            continue
        if edge(c1, c2):
            uf.union(c1, c2)
    return _labels_from_components(grid, cells, uf)


def approx_components(
    grid: Grid,
    core_mask: np.ndarray,
    rho: float,
    exact_leaf_size: int | None = None,
    *,
    deadline: Optional["Deadline"] = None,
    preunion: Optional[List[Tuple[CellCoord, CellCoord]]] = None,
    structures: Optional[Dict[CellCoord, FlatHierarchy]] = None,
    kernel: str = "staged",
) -> Tuple[np.ndarray, int]:
    """Connected components of the rho-approximate graph ``G``.

    For every eps-neighbouring pair of core cells, queries the Lemma 5
    structure of one cell with *all* the core points of the other in one
    batched call; a yes adds the edge.  The resulting components satisfy
    Definition 5 (see the correctness argument in Section 4.4).

    ``preunion`` seeds known-true edges (:func:`apply_preunion`);
    ``structures`` seeds the per-cell Lemma 5 structure map — cells already
    present are not rebuilt, and the map is updated in place so a caller
    (the clustering engine) can keep it warm across runs.  ``kernel``
    selects the staged batched kernel (default) or the reference per-pair
    loop; both produce byte-identical labels.  The staged kernel builds
    Lemma 5 structures *lazily* — only for cells that actually reach a
    per-pair probe — so cells settled entirely by the vectorised stages
    never pay for a structure build.
    """
    _validate_kernel(kernel)
    cells = core_cells(grid, core_mask)
    points = grid.points
    kwargs = {} if exact_leaf_size is None else {"exact_leaf_size": exact_leaf_size}
    if structures is None:
        structures = {}
    edge = approx_edge_predicate(
        grid, cells, rho, exact_leaf_size, structures=structures, deadline=deadline
    )
    if kernel == "staged":
        return _staged_components(
            grid,
            cells,
            edge,
            reject_eps=grid.eps * (1.0 + rho),
            deadline=deadline,
            preunion=preunion,
        )
    uf = KeyedUnionFind(cells.keys())
    apply_preunion(uf, preunion)
    for cell, idx in cells.items():
        if cell in structures:
            continue
        if deadline is not None:
            deadline.tick()
        structures[cell] = FlatHierarchy(points[idx], grid.eps, rho, **kwargs)
    for c1, c2 in candidate_cell_pairs(grid, cells, uf, seeded=bool(preunion)):
        if deadline is not None:
            deadline.tick()
        if uf.connected(c1, c2):
            continue
        if edge(c1, c2):
            uf.union(c1, c2)
    return _labels_from_components(grid, cells, uf)


def labels_from_dense(
    grid: Grid,
    cells: Dict[CellCoord, np.ndarray],
    uf: DenseUnionFind,
) -> Tuple[np.ndarray, int]:
    """Per-point labels from a dense forest over ``cells`` in id order.

    ``uf``'s element ``t`` must be the ``t``-th cell of ``cells`` in
    insertion order — then the labels (first appearance in id order) are
    byte-identical to the keyed path's (first appearance in key insertion
    order).  Used by the parallel stitching pass.
    """
    labels = np.full(len(grid.points), -1, dtype=np.int64)
    if cells:
        cell_label = uf.component_labels()
        sizes = np.fromiter(
            (len(idx) for idx in cells.values()), dtype=np.int64, count=len(cells)
        )
        labels[np.concatenate(list(cells.values()))] = np.repeat(cell_label, sizes)
    return labels, uf.n_components


def _labels_from_components(
    grid: Grid,
    cells: Dict[CellCoord, np.ndarray],
    uf: KeyedUnionFind,
) -> Tuple[np.ndarray, int]:
    """Scatter per-cell component labels onto the point array, vectorised.

    One ``np.repeat`` + fancy-index assignment instead of a Python loop
    over cells — the keyed twin of the dense scatter in
    :func:`_staged_components`.
    """
    labels = np.full(len(grid.points), -1, dtype=np.int64)
    if cells:
        cell_label = uf.component_labels()
        per_cell = np.fromiter(
            (cell_label[c] for c in cells), dtype=np.int64, count=len(cells)
        )
        sizes = np.fromiter(
            (len(idx) for idx in cells.values()), dtype=np.int64, count=len(cells)
        )
        labels[np.concatenate(list(cells.values()))] = np.repeat(per_cell, sizes)
    return labels, uf.n_components


def edge_list_exact(
    grid: Grid, core_mask: np.ndarray, bcp_strategy: str = "auto"
) -> List[Tuple[CellCoord, CellCoord]]:
    """All edges of the exact graph ``G`` (diagnostic / test helper).

    Unlike :func:`exact_components`, no union-find short-circuiting is
    applied, so the full edge set is materialised.
    """
    cells = core_cells(grid, core_mask)
    points = grid.points
    edges = []
    for c1, c2 in grid.neighbor_cell_pairs(subset=cells.keys()):
        if bcp_within(points[cells[c1]], points[cells[c2]], grid.eps, strategy=bcp_strategy):
            edges.append((c1, c2))
    return edges
