"""The core-cell graph ``G = (V, E)`` and its connected components.

``V`` is the set of *core cells* (cells covering at least one core point).
The paper gives two edge rules:

* **exact** (Sections 2.2 / 3.2): cells ``c1, c2`` are adjacent iff some
  pair of core points ``p1 in c1, p2 in c2`` satisfies
  ``dist(p1, p2) <= eps`` — decided with a Bichromatic Closest Pair
  computation per eps-neighbouring core-cell pair;

* **rho-approximate** (Section 4.4): *yes* if core points within ``eps``
  exist, *no* if none within ``eps(1+rho)``, *don't care* otherwise —
  decided with approximate range-count queries against a Lemma 5 structure
  built on each core cell's core points.

By Lemma 1, the connected components of ``G`` are exactly the clusters
restricted to core points, so both builders return per-core-point component
labels directly.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.runtime.deadline import Deadline

from repro.errors import ParameterError
from repro.geometry.bcp import bcp_within
from repro.grid.cells import CellCoord, Grid
from repro.grid.hierarchy import CountingHierarchy
from repro.index.kdtree import KDTree
from repro.utils.unionfind import KeyedUnionFind


def core_cells(grid: Grid, core_mask: np.ndarray) -> Dict[CellCoord, np.ndarray]:
    """Map each core cell to the indices of its core points."""
    out: Dict[CellCoord, np.ndarray] = {}
    for cell, idx in grid.cells.items():
        cores = idx[core_mask[idx]]
        if len(cores):
            out[cell] = cores
    return out


def exact_edge_predicate(
    grid: Grid,
    cells: Dict[CellCoord, np.ndarray],
    bcp_strategy: str = "auto",
):
    """Build the exact edge test ``edge(c1, c2) -> bool`` over core cells.

    The closure is a *pure, deterministic* function of ``(grid, cells)`` —
    the property the parallel layer relies on: any spanning subset of the
    true edges, evaluated in any order by any process, yields the same
    connected components.  Per-cell search structures (kd-trees, Voronoi
    diagrams) are cached inside the closure and reused across calls.
    """
    points = grid.points
    if bcp_strategy == "kdtree":
        # Gunawan-style: one search structure per core cell, reused across
        # all of the cell's pairs (instead of a fresh BCP per pair).
        trees: Dict[CellCoord, KDTree] = {}
        sq_eps = grid.eps * grid.eps * (1.0 + 1e-12)

        def edge(c1: CellCoord, c2: CellCoord) -> bool:
            # Query from the smaller cell into the larger cell's tree.
            if len(cells[c1]) > len(cells[c2]):
                c1, c2 = c2, c1
            tree = trees.get(c2)
            if tree is None:
                tree = trees[c2] = KDTree(points[cells[c2]])
            for p in points[cells[c1]]:
                idx, _sq = tree.nearest(p, bound_sq=sq_eps)
                if idx >= 0:
                    return True
            return False
    elif bcp_strategy == "voronoi":
        # Gunawan's verbatim 2D machinery: a Voronoi diagram (Delaunay
        # dual) per core cell, nearest neighbours by greedy walking.
        from repro.geometry.delaunay import VoronoiNN

        if grid.dim != 2:
            raise ParameterError("the voronoi edge strategy requires 2-D points")
        diagrams: Dict[CellCoord, VoronoiNN] = {}

        def edge(c1: CellCoord, c2: CellCoord) -> bool:
            if len(cells[c1]) > len(cells[c2]):
                c1, c2 = c2, c1
            diagram = diagrams.get(c2)
            if diagram is None:
                diagram = diagrams[c2] = VoronoiNN(points[cells[c2]])
            return any(
                diagram.nearest_within(p, grid.eps) for p in points[cells[c1]]
            )
    else:
        def edge(c1: CellCoord, c2: CellCoord) -> bool:
            return bcp_within(
                points[cells[c1]], points[cells[c2]], grid.eps, strategy=bcp_strategy
            )

    return edge


def approx_edge_predicate(
    grid: Grid,
    cells: Dict[CellCoord, np.ndarray],
    rho: float,
    exact_leaf_size: int | None = None,
    structures: Optional[Dict[CellCoord, CountingHierarchy]] = None,
):
    """Build the rho-approximate edge test ``edge(c1, c2) -> bool``.

    Queries the Lemma 5 structure of ``c2`` with the core points of ``c1``
    under the paper's yes / no / don't-care contract.  The answer for an
    *oriented* pair is deterministic (the structure build is), which is why
    serial and parallel runs agree exactly as long as both evaluate pairs
    in the orientation :meth:`Grid.neighbor_cell_pairs` emits them.

    ``structures`` optionally seeds the per-cell structure cache (the
    serial path pre-builds all of them under the deadline); missing entries
    are built lazily, which is what worker processes do for the cells their
    pair chunks actually touch.
    """
    points = grid.points
    kwargs = {} if exact_leaf_size is None else {"exact_leaf_size": exact_leaf_size}
    cache: Dict[CellCoord, CountingHierarchy] = {} if structures is None else structures

    def edge(c1: CellCoord, c2: CellCoord) -> bool:
        structure = cache.get(c2)
        if structure is None:
            structure = cache[c2] = CountingHierarchy(
                points[cells[c2]], grid.eps, rho, **kwargs
            )
        return any(structure.contains_any(p) for p in points[cells[c1]])

    return edge


def exact_components(
    grid: Grid,
    core_mask: np.ndarray,
    bcp_strategy: str = "auto",
    *,
    deadline: Optional["Deadline"] = None,
) -> Tuple[np.ndarray, int]:
    """Connected components of the exact graph ``G``.

    Returns ``(labels, k)``: a dense component id per point (valid only at
    core positions; ``-1`` elsewhere) and the number of components ``k``.
    ``deadline`` is polled once per candidate cell pair — i.e. before each
    BCP computation, the dominant cost of the phase.
    """
    cells = core_cells(grid, core_mask)
    uf = KeyedUnionFind(cells.keys())
    edge = exact_edge_predicate(grid, cells, bcp_strategy)
    for c1, c2 in grid.neighbor_cell_pairs(subset=cells.keys()):
        if deadline is not None:
            deadline.tick()
        if uf.connected(c1, c2):
            continue
        if edge(c1, c2):
            uf.union(c1, c2)
    return _labels_from_components(grid, cells, uf)


def approx_components(
    grid: Grid,
    core_mask: np.ndarray,
    rho: float,
    exact_leaf_size: int | None = None,
    *,
    deadline: Optional["Deadline"] = None,
) -> Tuple[np.ndarray, int]:
    """Connected components of the rho-approximate graph ``G``.

    For every eps-neighbouring pair of core cells, queries the Lemma 5
    structure of one cell with the core points of the other; a non-zero
    (approximate) count adds the edge.  The resulting components satisfy
    Definition 5 (see the correctness argument in Section 4.4).
    """
    cells = core_cells(grid, core_mask)
    uf = KeyedUnionFind(cells.keys())
    points = grid.points
    kwargs = {} if exact_leaf_size is None else {"exact_leaf_size": exact_leaf_size}
    structures: Dict[CellCoord, CountingHierarchy] = {}
    for cell, idx in cells.items():
        if deadline is not None:
            deadline.tick()
        structures[cell] = CountingHierarchy(points[idx], grid.eps, rho, **kwargs)
    edge = approx_edge_predicate(
        grid, cells, rho, exact_leaf_size, structures=structures
    )
    for c1, c2 in grid.neighbor_cell_pairs(subset=cells.keys()):
        if deadline is not None:
            deadline.tick()
        if uf.connected(c1, c2):
            continue
        if edge(c1, c2):
            uf.union(c1, c2)
    return _labels_from_components(grid, cells, uf)


def _labels_from_components(
    grid: Grid,
    cells: Dict[CellCoord, np.ndarray],
    uf: KeyedUnionFind,
) -> Tuple[np.ndarray, int]:
    cell_label = uf.component_labels()
    labels = np.full(len(grid.points), -1, dtype=np.int64)
    for cell, idx in cells.items():
        labels[idx] = cell_label[cell]
    return labels, uf.n_components


def edge_list_exact(
    grid: Grid, core_mask: np.ndarray, bcp_strategy: str = "auto"
) -> List[Tuple[CellCoord, CellCoord]]:
    """All edges of the exact graph ``G`` (diagnostic / test helper).

    Unlike :func:`exact_components`, no union-find short-circuiting is
    applied, so the full edge set is materialised.
    """
    cells = core_cells(grid, core_mask)
    points = grid.points
    edges = []
    for c1, c2 in grid.neighbor_cell_pairs(subset=cells.keys()):
        if bcp_within(points[cells[c1]], points[cells[c2]], grid.eps, strategy=bcp_strategy):
            edges.append((c1, c2))
    return edges
