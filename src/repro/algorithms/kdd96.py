"""KDD96: the original DBSCAN algorithm (Ester, Kriegel, Sander & Xu).

Seed-expansion DBSCAN answering its region queries from a spatial index —
an STR-packed R-tree by default, matching the original implementation's
R*-tree, or a kd-tree.  The KDD'96 paper claimed ``O(n log n)`` total time;
as the reproduced paper proves, the n range queries actually cost
``Theta(n^2)`` in the worst case regardless of the index (Section 1.1).
"""

from __future__ import annotations

from typing import Optional

from repro.core.params import DBSCANParams
from repro.core.result import Clustering
from repro.algorithms.expansion import expand_dbscan
from repro.errors import ParameterError
from repro.index.kdtree import KDTree
from repro.index.rstar import RStarTree
from repro.index.rtree import RTree
from repro.runtime.deadline import Deadline, as_deadline
from repro.runtime.memory import MemoryBudget
from repro.utils.validation import as_points

_INDEXES = ("rtree", "kdtree", "rstar")


def kdd96_dbscan(
    points,
    eps: float,
    min_pts: int,
    index: str = "rtree",
    time_budget: Optional[float] = None,
    *,
    deadline: Optional[Deadline] = None,
    memory: Optional[MemoryBudget] = None,
    tree=None,
) -> Clustering:
    """The original KDD'96 DBSCAN.

    Parameters
    ----------
    index:
        ``"rtree"`` (STR-packed, default), ``"rstar"`` (dynamically built
        R*-tree — the original implementation's index), or ``"kdtree"``.
        The kd-tree answers the seed expansion through
        :meth:`~repro.index.kdtree.KDTree.range_query_batch`, which
        range-queries a whole frontier round in one vectorised traversal.
    time_budget:
        Optional wall-clock cut-off in seconds (raises
        :class:`~repro.errors.TimeoutExceeded`), mirroring the paper's
        12-hour limit on the slow baselines.  ``deadline`` passes a
        ready-made :class:`~repro.runtime.Deadline` instead; the token also
        covers index construction.
    tree:
        Optional prebuilt index of the kind ``index`` names, built over
        exactly these points.  The reusable-structure path of
        :class:`~repro.engine.ClusteringEngine` passes its cached index
        here to skip construction on warm calls.
    """
    params = DBSCANParams(eps, min_pts)
    pts = as_points(points)
    deadline = as_deadline(time_budget, deadline)
    if deadline is not None:
        deadline.check()
    if index not in _INDEXES:
        raise ParameterError(f"unknown index {index!r}; choose from {_INDEXES}")
    if tree is None:
        if index == "rtree":
            tree = RTree(pts)
        elif index == "rstar":
            # The original implementation's index: a dynamically built R*-tree.
            tree = RStarTree(pts)
        else:
            tree = KDTree(pts)

    def region_query(i: int):
        return tree.range_query(pts[i], params.eps)

    region_query_batch = None
    if isinstance(tree, KDTree):
        def region_query_batch(idx):
            return tree.range_query_batch(pts[idx], params.eps)

    return expand_dbscan(
        pts,
        params,
        region_query,
        algorithm_name="kdd96",
        deadline=deadline,
        memory=memory,
        extra_meta={"index": index},
        region_query_batch=region_query_batch,
    )
