"""OurExact: the paper's new exact DBSCAN algorithm (Section 3.2, Theorem 2).

Pipeline (shared with OurApprox through :mod:`repro.runtime.pipeline`):

1. impose the grid ``T`` with cell side ``eps / sqrt(d)``;
2. run the labeling process to find core points;
3. build the core-cell graph ``G`` with a BCP computation per
   eps-neighbouring core-cell pair;
4. the connected components of ``G`` are the clusters' core points
   (Lemma 1);
5. assign border points.

For ``d = 2`` this *is* Gunawan's ``O(n log n)`` algorithm — pass
``bcp_strategy="kdtree"`` to use nearest-neighbour queries for the edge
computation as his thesis does (the default picks automatically).

All entry points accept a ``time_budget`` (or a ready-made
:class:`~repro.runtime.Deadline`), an optional memory budget, and an
optional checkpoint path for phase-level resume — see
``docs/ROBUSTNESS.md``.
"""

from __future__ import annotations

from typing import Optional

from repro.core.params import DBSCANParams
from repro.core.result import Clustering
from repro.parallel.executor import (
    WorkersLike,
    as_parallel_config,
    parallel_exact_components,
    with_transport,
)
from repro.runtime.checkpoint import CheckpointStore
from repro.runtime.deadline import Deadline, as_deadline
from repro.runtime.memory import MemoryBudget, as_memory_budget
from repro.runtime.pipeline import PipelineHooks, run_grid_pipeline
from repro.utils.log import get_logger
from repro.utils.validation import as_points

_log = get_logger("algorithms.exact_grid")


def exact_grid_dbscan(
    points,
    eps: float,
    min_pts: int,
    bcp_strategy: str = "auto",
    *,
    time_budget: Optional[float] = None,
    deadline: Optional[Deadline] = None,
    memory_budget_mb: Optional[float] = None,
    memory: Optional[MemoryBudget] = None,
    checkpoint: Optional[str] = None,
    workers: WorkersLike = None,
    shm: object = None,
    hooks: Optional[PipelineHooks] = None,
) -> Clustering:
    """Exact DBSCAN via the grid + BCP algorithm of Theorem 2.

    ``time_budget`` (seconds) aborts the run with
    :class:`~repro.errors.TimeoutExceeded`; ``memory_budget_mb`` guards the
    process RSS with :class:`~repro.errors.MemoryBudgetExceeded`;
    ``checkpoint`` names a ``.npz`` file that each completed phase is saved
    to, from which an identical invocation resumes.  ``workers`` (an int
    or a :class:`~repro.parallel.ParallelConfig`) fans the cores /
    components / borders phases out over a process pool; the labeling is
    identical to the serial run (see ``docs/PARALLEL.md``); ``shm``
    overrides the parallel transport (``True`` / ``False`` / ``"auto"``
    for the zero-copy shared-memory path of :mod:`repro.parallel.shm`;
    ``None`` keeps the config's ``REPRO_SHM`` default).  ``hooks``
    donates warm phase products and monotone-sweep seeds
    (:class:`~repro.runtime.pipeline.PipelineHooks`) — the reuse seam of
    :class:`repro.engine.ClusteringEngine`; the output is identical with
    or without them.
    """
    params = DBSCANParams(eps, min_pts)
    pts = as_points(points)
    cfg = with_transport(as_parallel_config(workers), shm=shm)
    guard = as_memory_budget(memory_budget_mb, memory)
    preunion = None if hooks is None else hooks.preunion
    structures = None if hooks is None else hooks.structures

    def connect(grid, core_mask, dl, par):
        return parallel_exact_components(
            grid, core_mask, par, bcp_strategy,
            deadline=dl, memory=guard, preunion=preunion,
            structures=structures,
        )

    return run_grid_pipeline(
        pts,
        params.eps,
        params.min_pts,
        connect,
        meta={
            "algorithm": "exact_grid",
            "eps": params.eps,
            "min_pts": params.min_pts,
            "bcp_strategy": bcp_strategy,
        },
        deadline=as_deadline(time_budget, deadline),
        memory=guard,
        checkpoint=CheckpointStore(checkpoint) if checkpoint else None,
        parallel=cfg,
        hooks=hooks,
    )


def gunawan_2d_dbscan(
    points,
    eps: float,
    min_pts: int,
    edges: str = "kdtree",
    *,
    time_budget: Optional[float] = None,
    deadline: Optional[Deadline] = None,
    memory_budget_mb: Optional[float] = None,
    checkpoint: Optional[str] = None,
    workers: WorkersLike = None,
    shm: object = None,
    hooks: Optional[PipelineHooks] = None,
) -> Clustering:
    """Gunawan's 2D O(n log n) algorithm (d = 2 only).

    ``edges`` selects the per-cell nearest-neighbour machinery for the
    graph computation: ``"voronoi"`` builds a Voronoi diagram (Delaunay
    dual) per core cell exactly as the thesis describes; ``"kdtree"``
    (default) answers the same queries from a kd-tree per cell, which is
    asymptotically equivalent and faster in this pure-Python setting.
    Budget and checkpoint arguments behave as in :func:`exact_grid_dbscan`.
    """
    pts = as_points(points)
    if pts.shape[1] != 2:
        raise ValueError("gunawan_2d_dbscan requires 2-D points")
    if edges not in ("kdtree", "voronoi"):
        raise ValueError(f"edges must be 'kdtree' or 'voronoi'; got {edges!r}")
    result = exact_grid_dbscan(
        pts,
        eps,
        min_pts,
        bcp_strategy=edges,
        time_budget=time_budget,
        deadline=deadline,
        memory_budget_mb=memory_budget_mb,
        checkpoint=checkpoint,
        workers=workers,
        shm=shm,
        hooks=hooks,
    )
    result.meta["algorithm"] = "gunawan2d"
    result.meta["edges"] = edges
    return result
