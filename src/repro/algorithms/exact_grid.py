"""OurExact: the paper's new exact DBSCAN algorithm (Section 3.2, Theorem 2).

Pipeline:

1. impose the grid ``T`` with cell side ``eps / sqrt(d)``;
2. run the labeling process to find core points;
3. build the core-cell graph ``G`` with a BCP computation per
   eps-neighbouring core-cell pair;
4. the connected components of ``G`` are the clusters' core points
   (Lemma 1);
5. assign border points.

For ``d = 2`` this *is* Gunawan's ``O(n log n)`` algorithm — pass
``bcp_strategy="kdtree"`` to use nearest-neighbour queries for the edge
computation as his thesis does (the default picks automatically).
"""

from __future__ import annotations

import numpy as np

from repro.core.border import assign_borders
from repro.core.cellgraph import exact_components
from repro.core.labeling import label_cores
from repro.core.params import DBSCANParams
from repro.core.result import Clustering, build_clustering
from repro.grid.cells import Grid
from repro.utils.log import get_logger
from repro.utils.validation import as_points

_log = get_logger("algorithms.exact_grid")


def exact_grid_dbscan(
    points,
    eps: float,
    min_pts: int,
    bcp_strategy: str = "auto",
) -> Clustering:
    """Exact DBSCAN via the grid + BCP algorithm of Theorem 2."""
    params = DBSCANParams(eps, min_pts)
    pts = as_points(points)
    grid = Grid(pts, params.eps)
    _log.debug("grid built: %d non-empty cells for %d points", len(grid), len(pts))
    core_mask = label_cores(grid, params.min_pts)
    _log.debug("labeling done: %d core points", int(core_mask.sum()))
    core_labels, k = exact_components(grid, core_mask, bcp_strategy=bcp_strategy)
    _log.debug("graph connectivity done: %d components", k)
    borders = assign_borders(grid, core_mask, core_labels)
    _log.debug("border assignment done: %d border points", len(borders))
    return build_clustering(
        len(pts),
        core_mask,
        core_labels,
        borders,
        meta={
            "algorithm": "exact_grid",
            "eps": params.eps,
            "min_pts": params.min_pts,
            "bcp_strategy": bcp_strategy,
            "grid_cells": len(grid),
        },
    )


def gunawan_2d_dbscan(points, eps: float, min_pts: int, edges: str = "kdtree") -> Clustering:
    """Gunawan's 2D O(n log n) algorithm (d = 2 only).

    ``edges`` selects the per-cell nearest-neighbour machinery for the
    graph computation: ``"voronoi"`` builds a Voronoi diagram (Delaunay
    dual) per core cell exactly as the thesis describes; ``"kdtree"``
    (default) answers the same queries from a kd-tree per cell, which is
    asymptotically equivalent and faster in this pure-Python setting.
    """
    pts = as_points(points)
    if pts.shape[1] != 2:
        raise ValueError("gunawan_2d_dbscan requires 2-D points")
    if edges not in ("kdtree", "voronoi"):
        raise ValueError(f"edges must be 'kdtree' or 'voronoi'; got {edges!r}")
    result = exact_grid_dbscan(pts, eps, min_pts, bcp_strategy=edges)
    result.meta["algorithm"] = "gunawan2d"
    result.meta["edges"] = edges
    return result
