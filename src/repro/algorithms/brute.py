"""Reference O(n^2) DBSCAN.

The textbook quadratic algorithm (see e.g. Tan, Steinbach & Kumar, which
the paper cites for the folklore O(n^2) bound): compute every neighbourhood
by brute force, mark cores, connect cores within ``eps`` with union-find,
then attach border points.  Slow but unconditionally correct in every
dimensionality — the ground-truth oracle for the test suite.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.params import DBSCANParams
from repro.core.result import Clustering, build_clustering
from repro.geometry import distance as dm
from repro.runtime.deadline import Deadline, as_deadline
from repro.runtime.memory import MemoryBudget
from repro.utils.unionfind import UnionFind
from repro.utils.validation import as_points


def brute_dbscan(
    points,
    eps: float,
    min_pts: int,
    *,
    time_budget: Optional[float] = None,
    deadline: Optional[Deadline] = None,
    memory: Optional[MemoryBudget] = None,
) -> Clustering:
    """Exact DBSCAN by exhaustive pairwise distances.

    The deadline (from ``time_budget`` seconds or a ready-made token) is
    polled once per distance-matrix chunk in each of the three quadratic
    passes; ``memory`` is polled at the same cadence.
    """
    params = DBSCANParams(eps, min_pts)
    pts = as_points(points)
    n = len(pts)
    sq_eps = dm.sq_radius(params.eps)
    deadline = as_deadline(time_budget, deadline)

    def checkpoint(phase: str) -> None:
        if deadline is not None:
            deadline.check()
        if memory is not None:
            memory.check(phase)

    # Pass 1: neighbour counts -> core mask.
    counts = np.zeros(n, dtype=np.int64)
    for rows, block in dm.iter_chunked_sq_dists(pts, pts):
        checkpoint("brute counts")
        counts[rows] = (block <= sq_eps).sum(axis=1)
    core_mask = counts >= params.min_pts

    # Pass 2: union cores within eps.
    core_idx = np.nonzero(core_mask)[0]
    uf = UnionFind(len(core_idx))
    core_pts = pts[core_idx]
    for rows, block in dm.iter_chunked_sq_dists(core_pts, core_pts):
        checkpoint("brute core graph")
        within = block <= sq_eps
        for local_i in range(rows.stop - rows.start):
            for local_j in np.nonzero(within[local_i])[0]:
                uf.union(rows.start + local_i, int(local_j))

    # Dense component ids per core point.
    root_to_cid: Dict[int, int] = {}
    core_labels = np.full(n, -1, dtype=np.int64)
    for local, i in enumerate(core_idx):
        root = uf.find(local)
        if root not in root_to_cid:
            root_to_cid[root] = len(root_to_cid)
        core_labels[i] = root_to_cid[root]

    # Pass 3: border memberships.
    borders: Dict[int, Tuple[int, ...]] = {}
    non_core = np.nonzero(~core_mask)[0]
    if len(non_core) and len(core_idx):
        for rows, block in dm.iter_chunked_sq_dists(pts[non_core], core_pts):
            checkpoint("brute borders")
            within = block <= sq_eps
            for local in range(rows.stop - rows.start):
                hits = np.nonzero(within[local])[0]
                if len(hits):
                    q = int(non_core[rows.start + local])
                    cids = np.unique(core_labels[core_idx[hits]])
                    borders[q] = tuple(int(c) for c in cids)

    return build_clustering(
        n,
        core_mask,
        core_labels,
        borders,
        meta={"algorithm": "brute", "eps": params.eps, "min_pts": params.min_pts},
    )
