"""OurApprox: rho-approximate DBSCAN in O(n) expected time (Theorem 4).

Identical to the exact grid algorithm except for the core-cell graph: the
edge between two eps-neighbouring core cells is decided by approximate
range-count queries (Lemma 5 structures built on each cell's core points)
under the paper's yes / no / don't-care contract.

The output is a legal solution to Problem 2 and therefore enjoys the
sandwich guarantee of Theorem 3: every exact-DBSCAN(eps) cluster is
contained in one of these clusters, and each of these clusters is contained
in an exact-DBSCAN(eps(1+rho)) cluster.
"""

from __future__ import annotations

from repro.core.border import assign_borders
from repro.core.cellgraph import approx_components
from repro.core.labeling import label_cores
from repro.core.params import ApproxParams
from repro.core.result import Clustering, build_clustering
from repro.grid.cells import Grid
from repro.utils.log import get_logger
from repro.utils.validation import as_points

_log = get_logger("algorithms.approx")


def approx_dbscan(
    points,
    eps: float,
    min_pts: int,
    rho: float = 0.001,
    exact_leaf_size: int | None = None,
) -> Clustering:
    """rho-approximate DBSCAN (Theorem 4).

    Parameters
    ----------
    points:
        Array-like of shape ``(n, d)``.
    eps, min_pts:
        The usual DBSCAN parameters.
    rho:
        Approximation constant; the paper recommends 0.001 (Section 5.2).
    exact_leaf_size:
        Tuning knob of the Lemma 5 structures (None = library default;
        0 = the paper's verbatim structure).
    """
    params = ApproxParams(eps, min_pts, rho)
    pts = as_points(points)
    grid = Grid(pts, params.eps)
    _log.debug("grid built: %d non-empty cells for %d points", len(grid), len(pts))
    core_mask = label_cores(grid, params.min_pts)
    _log.debug("labeling done: %d core points", int(core_mask.sum()))
    core_labels, k = approx_components(
        grid, core_mask, params.rho, exact_leaf_size=exact_leaf_size
    )
    _log.debug("approximate graph connectivity done: %d components", k)
    borders = assign_borders(grid, core_mask, core_labels)
    _log.debug("border assignment done: %d border points", len(borders))
    return build_clustering(
        len(pts),
        core_mask,
        core_labels,
        borders,
        meta={
            "algorithm": "approx",
            "eps": params.eps,
            "min_pts": params.min_pts,
            "rho": params.rho,
            "grid_cells": len(grid),
        },
    )
