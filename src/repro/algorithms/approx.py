"""OurApprox: rho-approximate DBSCAN in O(n) expected time (Theorem 4).

Identical to the exact grid algorithm except for the core-cell graph: the
edge between two eps-neighbouring core cells is decided by approximate
range-count queries (Lemma 5 structures built on each cell's core points)
under the paper's yes / no / don't-care contract.

The output is a legal solution to Problem 2 and therefore enjoys the
sandwich guarantee of Theorem 3: every exact-DBSCAN(eps) cluster is
contained in one of these clusters, and each of these clusters is contained
in an exact-DBSCAN(eps(1+rho)) cluster.  This guarantee is what makes the
degradation cascade of :func:`repro.runtime.run_resilient` principled:
falling back from the exact algorithm to this one bounds the damage.
"""

from __future__ import annotations

from typing import Optional

from repro.core.params import ApproxParams
from repro.core.result import Clustering, empty_clustering
from repro.parallel.executor import WorkersLike, as_parallel_config, parallel_approx_components
from repro.runtime.checkpoint import CheckpointStore
from repro.runtime.deadline import Deadline, as_deadline
from repro.runtime.memory import MemoryBudget, as_memory_budget
from repro.runtime.pipeline import run_grid_pipeline
from repro.utils.log import get_logger
from repro.utils.validation import as_points

_log = get_logger("algorithms.approx")


def approx_dbscan(
    points,
    eps: float,
    min_pts: int,
    rho: float = 0.001,
    exact_leaf_size: int | None = None,
    *,
    time_budget: Optional[float] = None,
    deadline: Optional[Deadline] = None,
    memory_budget_mb: Optional[float] = None,
    memory: Optional[MemoryBudget] = None,
    checkpoint: Optional[str] = None,
    workers: WorkersLike = None,
) -> Clustering:
    """rho-approximate DBSCAN (Theorem 4).

    Parameters
    ----------
    points:
        Array-like of shape ``(n, d)``.  An empty input is a legal
        degenerate workload and yields an empty clustering.
    eps, min_pts:
        The usual DBSCAN parameters.
    rho:
        Approximation constant; the paper recommends 0.001 (Section 5.2).
    exact_leaf_size:
        Tuning knob of the Lemma 5 structures (None = library default;
        0 = the paper's verbatim structure).
    time_budget:
        Optional wall-clock cut-off in seconds (raises
        :class:`~repro.errors.TimeoutExceeded`); ``deadline`` passes a
        ready-made token instead.
    memory_budget_mb:
        Optional RSS budget (raises
        :class:`~repro.errors.MemoryBudgetExceeded`).
    checkpoint:
        Optional ``.npz`` path for phase-level checkpoint/resume.
    workers:
        Optional worker-process count (or a
        :class:`~repro.parallel.ParallelConfig`) for the sharded parallel
        pipeline; the labeling is identical to the serial run.
    """
    params = ApproxParams(eps, min_pts, rho)
    pts = as_points(points, allow_empty=True)
    if len(pts) == 0:
        return empty_clustering(
            meta={
                "algorithm": "approx",
                "eps": params.eps,
                "min_pts": params.min_pts,
                "rho": params.rho,
            }
        )

    cfg = as_parallel_config(workers)
    guard = as_memory_budget(memory_budget_mb, memory)

    def connect(grid, core_mask, dl, par):
        return parallel_approx_components(
            grid, core_mask, par, params.rho, exact_leaf_size, deadline=dl, memory=guard
        )

    return run_grid_pipeline(
        pts,
        params.eps,
        params.min_pts,
        connect,
        meta={
            "algorithm": "approx",
            "eps": params.eps,
            "min_pts": params.min_pts,
            "rho": params.rho,
        },
        deadline=as_deadline(time_budget, deadline),
        memory=guard,
        checkpoint=CheckpointStore(checkpoint) if checkpoint else None,
        parallel=cfg,
    )
