"""OurApprox: rho-approximate DBSCAN in O(n) expected time (Theorem 4).

Identical to the exact grid algorithm except for the core-cell graph: the
edge between two eps-neighbouring core cells is decided by approximate
range-count queries (Lemma 5 structures built on each cell's core points)
under the paper's yes / no / don't-care contract.  The structures are the
flat batched kernel (:class:`repro.grid.FlatHierarchy`): each edge test is
one batched query over all of the probing cell's core points, and warm
structures donated through ``hooks.structures`` (the engine's cache seam)
are reused as-is — serial, parallel and engine-cached runs all answer
through the same kernel.

The output is a legal solution to Problem 2 and therefore enjoys the
sandwich guarantee of Theorem 3: every exact-DBSCAN(eps) cluster is
contained in one of these clusters, and each of these clusters is contained
in an exact-DBSCAN(eps(1+rho)) cluster.  This guarantee is what makes the
degradation cascade of :func:`repro.runtime.run_resilient` principled:
falling back from the exact algorithm to this one bounds the damage.
"""

from __future__ import annotations

from typing import Optional

from repro.core.params import ApproxParams
from repro.core.result import Clustering, empty_clustering
from repro.errors import ParameterError
from repro.parallel.executor import (
    WorkersLike,
    as_parallel_config,
    parallel_approx_components,
    with_transport,
)
from repro.runtime.checkpoint import CheckpointStore
from repro.runtime.deadline import Deadline, as_deadline
from repro.runtime.memory import MemoryBudget, as_memory_budget
from repro.runtime.pipeline import PipelineHooks, run_grid_pipeline
from repro.utils.log import get_logger
from repro.utils.validation import as_points

_log = get_logger("algorithms.approx")


def approx_dbscan(
    points,
    eps: float,
    min_pts: int,
    rho: float = 0.001,
    exact_leaf_size: int | None = None,
    *,
    time_budget: Optional[float] = None,
    deadline: Optional[Deadline] = None,
    memory_budget_mb: Optional[float] = None,
    memory: Optional[MemoryBudget] = None,
    checkpoint: Optional[str] = None,
    workers: WorkersLike = None,
    shm: object = None,
    hooks: Optional[PipelineHooks] = None,
    engine=None,
) -> Clustering:
    """rho-approximate DBSCAN (Theorem 4).

    Parameters
    ----------
    points:
        Array-like of shape ``(n, d)``.  An empty input is a legal
        degenerate workload and yields an empty clustering.
    eps, min_pts:
        The usual DBSCAN parameters.
    rho:
        Approximation constant; the paper recommends 0.001 (Section 5.2).
    exact_leaf_size:
        Tuning knob of the Lemma 5 structures (None = library default;
        0 = the paper's verbatim structure).
    time_budget:
        Optional wall-clock cut-off in seconds (raises
        :class:`~repro.errors.TimeoutExceeded`); ``deadline`` passes a
        ready-made token instead.
    memory_budget_mb:
        Optional RSS budget (raises
        :class:`~repro.errors.MemoryBudgetExceeded`).
    checkpoint:
        Optional ``.npz`` path for phase-level checkpoint/resume.
    workers:
        Optional worker-process count (or a
        :class:`~repro.parallel.ParallelConfig`) for the sharded parallel
        pipeline; the labeling is identical to the serial run.
    shm:
        Parallel transport override: ``True`` / ``False`` / ``"auto"``
        select the zero-copy shared-memory path of
        :mod:`repro.parallel.shm` (``None`` keeps the config's setting,
        i.e. the ``REPRO_SHM`` default).  Output is byte-identical either
        way.
    hooks:
        Warm phase products and monotone-sweep seeds
        (:class:`~repro.runtime.pipeline.PipelineHooks`) — the reuse seam
        of :class:`repro.engine.ClusteringEngine`.  The output is
        identical with or without them.
    engine:
        Optional :class:`~repro.engine.ClusteringEngine` over these same
        points: the call is answered through its structure cache (byte-
        identical output).  Incompatible with ``checkpoint`` and with an
        explicit ``hooks``.
    """
    params = ApproxParams(eps, min_pts, rho)
    pts = as_points(points, allow_empty=True)
    if len(pts) == 0:
        return empty_clustering(
            meta={
                "algorithm": "approx",
                "eps": params.eps,
                "min_pts": params.min_pts,
                "rho": params.rho,
            }
        )

    if engine is not None:
        if checkpoint is not None:
            raise ParameterError(
                "checkpoint cannot be combined with engine=; run either a "
                "resumable one-shot call or a cached engine call"
            )
        if hooks is not None:
            raise ParameterError(
                "pass either engine= (which builds its own hooks) or hooks=, "
                "not both"
            )
        if not engine.matches(pts):
            raise ParameterError(
                "engine was built over a different dataset than the points "
                "passed to approx_dbscan(); build a ClusteringEngine over "
                "these points"
            )
        return engine.approx_dbscan(
            params.eps, params.min_pts, params.rho, exact_leaf_size,
            time_budget=time_budget, deadline=deadline,
            memory_budget_mb=memory_budget_mb, workers=workers, shm=shm,
        )

    cfg = with_transport(as_parallel_config(workers), shm=shm)
    guard = as_memory_budget(memory_budget_mb, memory)
    preunion = None if hooks is None else hooks.preunion
    structures = None if hooks is None else hooks.structures

    def connect(grid, core_mask, dl, par):
        return parallel_approx_components(
            grid, core_mask, par, params.rho, exact_leaf_size,
            deadline=dl, memory=guard, preunion=preunion, structures=structures,
        )

    return run_grid_pipeline(
        pts,
        params.eps,
        params.min_pts,
        connect,
        meta={
            "algorithm": "approx",
            "eps": params.eps,
            "min_pts": params.min_pts,
            "rho": params.rho,
        },
        deadline=as_deadline(time_budget, deadline),
        memory=guard,
        checkpoint=CheckpointStore(checkpoint) if checkpoint else None,
        parallel=cfg,
        hooks=hooks,
    )
