"""CIT08: grid-accelerated exact DBSCAN (Mahran & Mahar, CIT 2008).

The paper's "state of the art" exact baseline: the same seed-expansion
control flow as KDD96, but region queries are answered from a regular grid
with cell side ``eps`` — a query for point ``p`` only scans the points in
``p``'s cell and the ``3^d - 1`` surrounding cells.  This removes the index
traversal overhead yet, as the paper stresses, still degenerates to
``Theta(n^2)`` when eps-balls cover many points.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.params import DBSCANParams
from repro.core.result import Clustering
from repro.algorithms.expansion import expand_dbscan
from repro.geometry import distance as dm
from repro.runtime.deadline import Deadline, as_deadline
from repro.runtime.memory import MemoryBudget
from repro.utils.validation import as_points


class _EpsGrid:
    """Regular grid with cell side ``eps`` answering ball range queries."""

    def __init__(self, points: np.ndarray, eps: float) -> None:
        self.points = points
        self.eps = eps
        self._sq_eps = dm.sq_radius(eps)
        coords = np.floor(points / eps).astype(np.int64)
        self.coords = coords
        self.cells: Dict[Tuple[int, ...], np.ndarray] = {}
        order = np.lexsort(coords.T[::-1])
        sorted_coords = coords[order]
        change = np.any(sorted_coords[1:] != sorted_coords[:-1], axis=1)
        bounds = np.concatenate([[0], np.nonzero(change)[0] + 1, [len(points)]])
        for a, b in zip(bounds[:-1], bounds[1:]):
            self.cells[tuple(int(v) for v in sorted_coords[a])] = np.sort(order[a:b])
        d = points.shape[1]
        axes = [np.array([-1, 0, 1])] * d
        mesh = np.meshgrid(*axes, indexing="ij")
        self._offsets = np.stack([m.ravel() for m in mesh], axis=1)

    def region_query(self, i: int) -> np.ndarray:
        base = self.coords[i]
        q = self.points[i]
        blocks = []
        for off in self._offsets:
            idx = self.cells.get(tuple((base + off).tolist()))
            if idx is None:
                continue
            sq = dm.sq_dists_to_point(self.points[idx], q)
            hits = idx[sq <= self._sq_eps]
            if len(hits):
                blocks.append(hits)
        if not blocks:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(blocks)


def cit08_dbscan(
    points,
    eps: float,
    min_pts: int,
    time_budget: Optional[float] = None,
    *,
    deadline: Optional[Deadline] = None,
    memory: Optional[MemoryBudget] = None,
) -> Clustering:
    """Grid-accelerated exact DBSCAN (identical output to KDD96).

    ``time_budget`` / ``deadline`` / ``memory`` behave as in
    :func:`repro.algorithms.kdd96.kdd96_dbscan`.
    """
    params = DBSCANParams(eps, min_pts)
    pts = as_points(points)
    deadline = as_deadline(time_budget, deadline)
    if deadline is not None:
        deadline.check()
    grid = _EpsGrid(pts, params.eps)
    return expand_dbscan(
        pts,
        params,
        grid.region_query,
        algorithm_name="cit08",
        deadline=deadline,
        memory=memory,
        extra_meta={"grid_cells": len(grid.cells)},
    )
