"""Seed-expansion DBSCAN control flow shared by KDD96 and CIT08.

This is the original KDD'96 algorithm: scan the points; when an
unclassified point proves core, start a cluster and grow it by repeatedly
range-querying the seeds (the "chained effect" of Section 1).  Exactly one
range query is issued per point — which is precisely why the algorithm is
Theta(n^2) in the worst case: when all points lie within ``eps`` of each
other, the queries alone touch n^2 pairs (footnote 1 of the paper).

The expansion collects, on the side, the *full* border memberships (every
non-core point within ``eps`` of an expanded core point joins that core's
cluster), so the returned :class:`~repro.core.result.Clustering` is the
canonical unique DBSCAN result of Problem 1 even though the classic
first-come label assignment is also preserved in ``meta['first_labels']``.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, Optional, Set

import numpy as np

from repro.core.params import DBSCANParams
from repro.core.result import Clustering, build_clustering
from repro.runtime.deadline import Deadline, as_deadline
from repro.runtime.memory import MemoryBudget

RegionQuery = Callable[[int], np.ndarray]

#: Batched variant: point indices -> one neighbour array per index.
RegionQueryBatch = Callable[[np.ndarray], "list[np.ndarray]"]

#: Range queries between two RSS polls when a memory budget is active.
_MEMORY_POLL_STRIDE = 1024


def expand_dbscan(
    points: np.ndarray,
    params: DBSCANParams,
    region_query: RegionQuery,
    algorithm_name: str,
    time_budget: Optional[float] = None,
    extra_meta: Optional[Dict[str, object]] = None,
    *,
    deadline: Optional[Deadline] = None,
    memory: Optional[MemoryBudget] = None,
    region_query_batch: Optional[RegionQueryBatch] = None,
) -> Clustering:
    """Run seed-expansion DBSCAN with the given range-query backend.

    ``region_query(i)`` must return the indices of all points within
    ``params.eps`` of point ``i`` (including ``i`` itself).
    ``time_budget`` (seconds) aborts long runs with
    :class:`~repro.errors.TimeoutExceeded` — the reproduction's analogue of
    the paper's 12-hour cut-off for the slow baselines.  The deadline is
    polled before every range query (the unit of work that dominates the
    Theta(n^2) worst case); ``memory`` is polled every
    ``_MEMORY_POLL_STRIDE`` queries.

    ``region_query_batch`` (indices -> list of neighbour arrays) switches
    the seed expansion to *batched frontier rounds*: the pending seeds of a
    cluster are range-queried in one call instead of one Python-level query
    each.  Because newly discovered seeds always join the tail of the
    queue, a FIFO round is exactly the serial processing order, so the
    result — including ``meta['first_labels']`` and the query counters —
    is byte-identical to the per-point path.
    """
    n = len(points)
    min_pts = params.min_pts
    deadline = as_deadline(time_budget, deadline)

    UNCLASSIFIED, NOISE = -2, -1
    first_labels = np.full(n, UNCLASSIFIED, dtype=np.int64)
    core_mask = np.zeros(n, dtype=bool)
    queried = np.zeros(n, dtype=bool)
    memberships: Dict[int, Set[int]] = {}
    n_clusters = 0
    n_queries = 0
    n_retrieved = 0  # total points returned by all range queries

    for p in range(n):
        if first_labels[p] != UNCLASSIFIED:
            continue
        if deadline is not None:
            deadline.check()
        neighbors = region_query(p)
        queried[p] = True
        n_queries += 1
        n_retrieved += len(neighbors)
        if len(neighbors) < min_pts:
            first_labels[p] = NOISE  # may be revised to border later
            continue
        # p is core: start a new cluster and expand it.
        cid = n_clusters
        n_clusters += 1
        core_mask[p] = True
        first_labels[p] = cid
        seeds = deque()
        _absorb(neighbors, cid, first_labels, core_mask, memberships, seeds, NOISE, UNCLASSIFIED)
        while seeds:
            if region_query_batch is not None:
                # Batched frontier round: snapshot the queue (new seeds are
                # only ever appended behind it, so querying the snapshot in
                # order is exactly the serial FIFO order), dedupe it, and
                # answer every pending query in one vectorised call.
                frontier = []
                seen_round = set()
                while seeds:
                    q = seeds.popleft()
                    if queried[q] or q in seen_round:
                        continue
                    seen_round.add(q)
                    frontier.append(q)
                if not frontier:
                    continue
                if deadline is not None:
                    deadline.check()
                batch = region_query_batch(np.asarray(frontier, dtype=np.int64))
                for q, q_neighbors in zip(frontier, batch):
                    queried[q] = True
                    n_queries += 1
                    if memory is not None and n_queries % _MEMORY_POLL_STRIDE == 0:
                        memory.check(f"{algorithm_name} expansion")
                    n_retrieved += len(q_neighbors)
                    if len(q_neighbors) < min_pts:
                        continue  # border point: not expanded
                    core_mask[q] = True
                    _absorb(q_neighbors, cid, first_labels, core_mask,
                            memberships, seeds, NOISE, UNCLASSIFIED)
                continue
            q = seeds.popleft()
            if queried[q]:
                continue
            queried[q] = True
            n_queries += 1
            if deadline is not None:
                deadline.check()
            if memory is not None and n_queries % _MEMORY_POLL_STRIDE == 0:
                memory.check(f"{algorithm_name} expansion")
            q_neighbors = region_query(q)
            n_retrieved += len(q_neighbors)
            if len(q_neighbors) < min_pts:
                continue  # border point: stays in the cluster, not expanded
            core_mask[q] = True
            _absorb(q_neighbors, cid, first_labels, core_mask, memberships, seeds, NOISE, UNCLASSIFIED)

    # Assemble the canonical result: cluster id per core point plus the full
    # border membership sets gathered during expansion.
    core_labels = np.where(core_mask, first_labels, -1)
    borders = {
        q: tuple(sorted(cids))
        for q, cids in memberships.items()
        if not core_mask[q]
    }
    meta: Dict[str, object] = {
        "algorithm": algorithm_name,
        "eps": params.eps,
        "min_pts": params.min_pts,
        "range_queries": n_queries,
        "points_retrieved": n_retrieved,
        "first_labels": np.where(first_labels == UNCLASSIFIED, NOISE, first_labels),
    }
    if extra_meta:
        meta.update(extra_meta)
    return build_clustering(n, core_mask, core_labels, borders, meta=meta)


def _absorb(neighbors, cid, first_labels, core_mask, memberships, seeds, NOISE, UNCLASSIFIED):
    """Fold a core point's neighbourhood into cluster ``cid``."""
    for r in neighbors:
        r = int(r)
        label = first_labels[r]
        if label == UNCLASSIFIED:
            first_labels[r] = cid
            seeds.append(r)
        elif label == NOISE:
            first_labels[r] = cid  # classic border re-labelling
        if not core_mask[r]:
            memberships.setdefault(r, set()).add(cid)
