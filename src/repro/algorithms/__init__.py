"""The DBSCAN algorithms evaluated in the paper (Section 5.3)."""

from repro.algorithms.approx import approx_dbscan
from repro.algorithms.brute import brute_dbscan
from repro.algorithms.cit08 import cit08_dbscan
from repro.algorithms.exact_grid import exact_grid_dbscan, gunawan_2d_dbscan
from repro.algorithms.kdd96 import kdd96_dbscan

__all__ = [
    "approx_dbscan",
    "brute_dbscan",
    "cit08_dbscan",
    "exact_grid_dbscan",
    "gunawan_2d_dbscan",
    "kdd96_dbscan",
]
