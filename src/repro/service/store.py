"""Pluggable persistence for the service's dataset registry.

The registry survives restarts through a :class:`RegistryStore`: an
append-only **journal** of mutations layered over an atomic **snapshot**
of the full catalog, plus content-addressed ``.npy`` payload files for
the point arrays themselves.  The design mirrors the checkpointing rules
of :mod:`repro.runtime.checkpoint` — never trust a file you did not
finish writing, and bind every payload to a content fingerprint so a
reload can *prove* it is serving the same bytes it stored.

Two implementations:

* :class:`MemoryStore` — keeps records in a list and payloads in a dict;
  the default, for tests and ephemeral services.  ``load()`` after a
  process restart returns nothing, exactly like the pre-persistence
  registry behaved.
* :class:`FileStore` — a directory with::

      registry.json           atomic snapshot (tmp + fsync + os.replace)
      journal.jsonl           CRC-framed mutations since the snapshot
      payloads/<fp>.npy       one payload per dataset fingerprint
      quarantine/             corrupt journal tails, bad payloads

  Every journal line is ``crc32(body) + " " + body`` where body is one
  JSON object; :meth:`FileStore.load` replays the snapshot then the
  journal, **truncating at the first torn or corrupt record** and moving
  the unreadable tail into ``quarantine/`` — a crash mid-append loses at
  most the mutation being written, never the catalog.  Payloads are
  verified against their recorded fingerprint on reload; a mismatch
  quarantines the payload and drops the dataset instead of serving wrong
  data.

Crash-consistency rules (in order, per mutation):

1. payload file is written *and fsynced* first (content-addressed, so a
   half-written payload from a crash is simply overwritten next time);
2. the journal record referencing it is appended and fsynced;
3. compaction writes the whole catalog to ``registry.json.tmp``, fsyncs,
   ``os.replace``-s it over ``registry.json``, and only then truncates
   the journal.

A ``kill -9`` between any two steps leaves the store loadable: step 1
alone leaves an unreferenced payload (garbage, harmless), step 2 alone
is the normal journaled state, and a crash inside step 3 leaves either
the old snapshot + full journal or the new snapshot + stale journal —
replaying a journal record that is already in the snapshot is idempotent
by construction (records carry the full entry, not a delta).
"""

from __future__ import annotations

import io
import json
import os
import tempfile
import threading
import zlib
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import RegistryStoreError
from repro.runtime import faultinject
from repro.utils.log import get_logger

_log = get_logger("service.store")

#: Snapshot schema version; bump on incompatible layout changes.
SNAPSHOT_FORMAT = "repro.registry/v1"

#: Journal record operations understood by :meth:`RegistryStore.load`.
JOURNAL_OPS = ("register", "unregister", "tenant", "warm")

#: Warm-eps hints retained per dataset (journaled by the service so a
#: restart can rebuild the grids traffic was actually using).
MAX_WARM_HINTS = 8


def _fsync_file(fh) -> None:
    fh.flush()
    os.fsync(fh.fileno())


def _fsync_dir(path: str) -> None:
    """Force the directory entry itself to disk (rename durability)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - exotic filesystems
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover
        pass
    finally:
        os.close(fd)


def frame_record(record: Dict[str, object]) -> str:
    """One journal line: ``crc32 <json>`` (newline added by the writer)."""
    body = json.dumps(record, sort_keys=True, separators=(",", ":"))
    crc = zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF
    return f"{crc:08x} {body}"


def parse_record(line: str) -> Optional[Dict[str, object]]:
    """Decode one framed journal line; None when torn or corrupt."""
    if " " not in line:
        return None
    crc_text, _, body = line.partition(" ")
    try:
        crc = int(crc_text, 16)
    except ValueError:
        return None
    if zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF != crc:
        return None
    try:
        record = json.loads(body)
    except ValueError:  # pragma: no cover - crc already guards this
        return None
    return record if isinstance(record, dict) else None


class RegistryState:
    """The replayed catalog a store hands the registry at startup.

    ``datasets`` maps name -> the record of its last ``register`` (with
    ``name``, ``tenant``, ``source``, ``fingerprint`` and the store's
    payload reference); ``tenants`` maps tenant -> its persisted config
    (``weight``, ``quota_mb``).  ``recovered`` notes what the load had to
    repair (truncated journal records, quarantined payloads) so the
    registry can log an honest account of the recovery.
    """

    def __init__(self) -> None:
        self.datasets: Dict[str, Dict[str, object]] = {}
        self.tenants: Dict[str, Dict[str, object]] = {}
        self.recovered: List[str] = []

    def apply(self, record: Dict[str, object]) -> None:
        """Replay one journal record (idempotent: records are absolute)."""
        op = record.get("op")
        if op == "register":
            self.datasets[str(record["name"])] = dict(record)
        elif op == "unregister":
            self.datasets.pop(str(record.get("name")), None)
        elif op == "tenant":
            tenant = str(record.get("tenant"))
            cfg = self.tenants.setdefault(tenant, {})
            for key in ("weight", "quota_mb", "max_queue", "max_inflight"):
                if key in record:
                    cfg[key] = record[key]
        elif op == "warm":
            entry = self.datasets.get(str(record.get("name")))
            if entry is not None:
                warm = list(entry.get("warm", ()))
                eps = record.get("eps")
                if eps is not None and eps not in warm:
                    warm.append(eps)
                    entry["warm"] = warm[-MAX_WARM_HINTS:]
        else:
            self.recovered.append(f"skipped unknown journal op {op!r}")


class RegistryStore:
    """Interface the registry persists through (default: no-op memory)."""

    def load(self) -> RegistryState:
        """Replay snapshot + journal into a :class:`RegistryState`."""
        raise NotImplementedError

    def append(self, record: Dict[str, object]) -> None:
        """Durably journal one mutation (fsynced before returning)."""
        raise NotImplementedError

    def save_payload(self, fingerprint: str, points: np.ndarray) -> str:
        """Persist a point array; returns the payload reference."""
        raise NotImplementedError

    def load_payload(self, ref: str) -> np.ndarray:
        """Load a payload saved by :meth:`save_payload` (memmapped)."""
        raise NotImplementedError

    def compact(self, state: RegistryState) -> None:
        """Atomically snapshot ``state`` and truncate the journal."""
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - trivial default
        pass

    @property
    def persistent(self) -> bool:
        """True when records survive process restarts."""
        return False


class MemoryStore(RegistryStore):
    """In-process store: real journaling semantics, no disk, no survival."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._records: List[Dict[str, object]] = []
        self._payloads: Dict[str, np.ndarray] = {}

    def load(self) -> RegistryState:
        state = RegistryState()
        with self._lock:
            for record in self._records:
                state.apply(record)
        return state

    def append(self, record: Dict[str, object]) -> None:
        # Round-trip through the frame so Memory and File stores accept
        # exactly the same record shapes (catches unserialisable fields).
        parsed = parse_record(frame_record(record))
        if parsed is None:  # pragma: no cover - frame_record always parses
            raise RegistryStoreError("journal record did not round-trip")
        with self._lock:
            self._records.append(parsed)

    def save_payload(self, fingerprint: str, points: np.ndarray) -> str:
        # A reference, not a copy: the memory store offers no durability,
        # so duplicating every registered array would be pure waste (the
        # engine's frozen-points contract keeps the bytes stable).
        ref = f"mem:{fingerprint}"
        with self._lock:
            self._payloads[ref] = np.asarray(points, dtype=np.float64)
        return ref

    def load_payload(self, ref: str) -> np.ndarray:
        with self._lock:
            try:
                return self._payloads[ref]
            except KeyError:
                raise RegistryStoreError(f"unknown payload reference {ref!r}") from None

    def compact(self, state: RegistryState) -> None:
        with self._lock:
            self._records = [dict(rec) for rec in state.datasets.values()]
            for tenant, cfg in state.tenants.items():
                self._records.append({"op": "tenant", "tenant": tenant, **cfg})


class FileStore(RegistryStore):
    """Durable directory-backed store (see the module docstring layout).

    Parameters
    ----------
    root:
        The store directory; created (with ``payloads/`` and
        ``quarantine/``) when missing.
    compact_every:
        Journal records between automatic compactions; compaction also
        runs on :meth:`close` and can be forced via :meth:`compact`.
    """

    SNAPSHOT = "registry.json"
    JOURNAL = "journal.jsonl"

    def __init__(self, root: str, *, compact_every: int = 256) -> None:
        if int(compact_every) < 1:
            raise RegistryStoreError(
                f"compact_every must be >= 1; got {compact_every}"
            )
        self.root = str(root)
        self.compact_every = int(compact_every)
        self._lock = threading.Lock()
        self._appends_since_compact = 0
        os.makedirs(self.root, exist_ok=True)
        os.makedirs(self.payload_dir, exist_ok=True)
        os.makedirs(self.quarantine_dir, exist_ok=True)
        # One long-lived append handle: opening per record would pay a
        # path lookup per mutation and still need the fsync.
        self._journal_fh = open(
            self.journal_path, "a", encoding="utf-8", buffering=1
        )

    # ------------------------------------------------------------- layout

    @property
    def snapshot_path(self) -> str:
        return os.path.join(self.root, self.SNAPSHOT)

    @property
    def journal_path(self) -> str:
        return os.path.join(self.root, self.JOURNAL)

    @property
    def payload_dir(self) -> str:
        return os.path.join(self.root, "payloads")

    @property
    def quarantine_dir(self) -> str:
        return os.path.join(self.root, "quarantine")

    @property
    def persistent(self) -> bool:
        return True

    def close(self) -> None:
        with self._lock:
            if not self._journal_fh.closed:
                self._journal_fh.close()

    # ------------------------------------------------------------ loading

    def _quarantine_bytes(self, label: str, payload: bytes) -> str:
        """Preserve unreadable bytes under ``quarantine/`` (never destroy)."""
        fd, path = tempfile.mkstemp(
            prefix=f"{label}.", suffix=".corrupt", dir=self.quarantine_dir
        )
        with os.fdopen(fd, "wb") as fh:
            fh.write(payload)
        return path

    def _load_snapshot(self, state: RegistryState) -> None:
        if not os.path.exists(self.snapshot_path):
            return
        try:
            with open(self.snapshot_path, "r", encoding="utf-8") as fh:
                snap = json.load(fh)
            if snap.get("format") != SNAPSHOT_FORMAT:
                raise ValueError(f"unknown snapshot format {snap.get('format')!r}")
            records = snap["datasets"]
            tenants = snap.get("tenants", {})
        except (ValueError, KeyError, OSError) as exc:
            with open(self.snapshot_path, "rb") as fh:
                side = self._quarantine_bytes("registry.json", fh.read())
            # Remove the unreadable original (its bytes are preserved in
            # quarantine) so the next compaction starts clean and the
            # next reload doesn't quarantine a second copy.
            os.remove(self.snapshot_path)
            state.recovered.append(
                f"snapshot unreadable ({exc}); quarantined to {side}"
            )
            _log.warning("store: %s", state.recovered[-1])
            return
        for record in records:
            state.apply(dict(record, op="register"))
        for tenant, cfg in tenants.items():
            state.apply({"op": "tenant", "tenant": tenant, **cfg})

    def _load_journal(self, state: RegistryState) -> None:
        if not os.path.exists(self.journal_path):
            return
        valid_bytes = 0
        torn: Optional[bytes] = None
        with open(self.journal_path, "rb") as fh:
            for raw in fh:
                text = raw.decode("utf-8", errors="replace")
                record = (
                    parse_record(text.rstrip("\n"))
                    if text.endswith("\n")
                    else None  # no newline: the append was cut mid-write
                )
                if record is None:
                    torn = raw + fh.read()
                    break
                state.apply(record)
                valid_bytes += len(raw)
        if torn is None:
            return
        side = self._quarantine_bytes(self.JOURNAL, torn)
        state.recovered.append(
            f"journal torn/corrupt after {valid_bytes} byte(s); truncated and "
            f"quarantined {len(torn)} trailing byte(s) to {side}"
        )
        _log.warning("store: %s", state.recovered[-1])
        with self._lock:
            self._journal_fh.close()
            with open(self.journal_path, "r+b") as fh:
                fh.truncate(valid_bytes)
                _fsync_file(fh)
            self._journal_fh = open(
                self.journal_path, "a", encoding="utf-8", buffering=1
            )

    def load(self) -> RegistryState:
        state = RegistryState()
        self._load_snapshot(state)
        self._load_journal(state)
        return state

    # ------------------------------------------------------------ writing

    def append(self, record: Dict[str, object]) -> None:
        line = frame_record(record)
        with self._lock:
            if self._journal_fh.closed:
                raise RegistryStoreError("store is closed")
            self._journal_fh.write(line + "\n")
            _fsync_file(self._journal_fh)
            self._appends_since_compact += 1
            faultinject.maybe_crash_after_journal_write(self._journal_fh)

    def save_payload(self, fingerprint: str, points: np.ndarray) -> str:
        ref = f"{fingerprint}.npy"
        final = os.path.join(self.payload_dir, ref)
        if os.path.exists(final):
            return ref  # content-addressed: same fingerprint, same bytes
        arr = np.ascontiguousarray(points, dtype=np.float64)
        buf = io.BytesIO()
        np.save(buf, arr)
        fd, tmp = tempfile.mkstemp(prefix=ref + ".", dir=self.payload_dir)
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(buf.getvalue())
                _fsync_file(fh)
            os.replace(tmp, final)
        except BaseException:
            if os.path.exists(tmp):  # pragma: no cover - cleanup on failure
                os.unlink(tmp)
            raise
        _fsync_dir(self.payload_dir)
        return ref

    def load_payload(self, ref: str) -> np.ndarray:
        path = os.path.join(self.payload_dir, os.path.basename(str(ref)))
        if not os.path.exists(path):
            raise RegistryStoreError(f"missing payload file {ref!r}")
        try:
            # Memmapped: reloading a catalog of N datasets must not
            # materialise every array before the first request needs it.
            return np.load(path, mmap_mode="r")
        except ValueError as exc:
            raise RegistryStoreError(f"payload {ref!r} is unreadable: {exc}") from exc

    def quarantine_payload(self, ref: str, reason: str) -> Optional[str]:
        """Move a bad payload into ``quarantine/``; returns the new path."""
        path = os.path.join(self.payload_dir, os.path.basename(str(ref)))
        if not os.path.exists(path):
            return None
        dest = os.path.join(
            self.quarantine_dir, os.path.basename(path) + ".corrupt"
        )
        os.replace(path, dest)
        _log.warning("store: quarantined payload %s (%s)", path, reason)
        return dest

    # --------------------------------------------------------- compaction

    def should_compact(self) -> bool:
        with self._lock:
            return self._appends_since_compact >= self.compact_every

    def compact(self, state: RegistryState) -> None:
        """Write the catalog snapshot atomically, then reset the journal."""
        snap = {
            "format": SNAPSHOT_FORMAT,
            "datasets": [
                {k: v for k, v in rec.items() if k != "op"}
                for _, rec in sorted(state.datasets.items())
            ],
            "tenants": {t: dict(cfg) for t, cfg in sorted(state.tenants.items())},
        }
        payload = json.dumps(snap, sort_keys=True, indent=1)
        fd, tmp = tempfile.mkstemp(prefix=self.SNAPSHOT + ".", dir=self.root)
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            fh.write(payload)
            _fsync_file(fh)
        os.replace(tmp, self.snapshot_path)
        _fsync_dir(self.root)
        with self._lock:
            self._journal_fh.close()
            with open(self.journal_path, "w", encoding="utf-8") as fh:
                _fsync_file(fh)
            self._journal_fh = open(
                self.journal_path, "a", encoding="utf-8", buffering=1
            )
            self._appends_since_compact = 0

    def gc_payloads(self, state: RegistryState) -> Tuple[str, ...]:
        """Unlink payload files no catalog entry references (post-compact)."""
        live = {
            os.path.basename(str(rec.get("payload")))
            for rec in state.datasets.values()
            if rec.get("payload")
        }
        removed = []
        for name in os.listdir(self.payload_dir):
            if name not in live and name.endswith(".npy"):
                os.unlink(os.path.join(self.payload_dir, name))
                removed.append(name)
        return tuple(removed)


def open_store(spec: Optional[str]) -> RegistryStore:
    """Build a store from a CLI/config spec: None -> memory, path -> file."""
    if spec is None or spec == "" or spec == "memory":
        return MemoryStore()
    return FileStore(spec)
