"""The asyncio :class:`ClusteringService` and its wire servers.

One event loop owns the front door: admission, coalescing and breaker
decisions all happen on the loop thread (no locks, no races), while the
actual clustering runs in a small thread pool — the engine's hot loops
are numpy kernels that release the GIL, and parallel runs fan out worker
*processes* from those threads, so ``max_concurrency`` threads saturate
the machine without oversubscribing it.

The request lifecycle::

    admit -> coalesce -> (queue for an execution slot) -> choose tier
          -> execute under supervisor + retry + breaker -> respond

Every stage that can refuse work does so with a structured error
(:class:`~repro.errors.ServiceOverloadError`,
:class:`~repro.errors.DatasetQuarantinedError`,
:class:`~repro.errors.UnknownDatasetError`), and every success records
``{tier, reason}`` in the response metadata — a client can always tell
*what* it got and *why*.

Wire protocol (``repro-dbscan serve``): line-delimited JSON over stdio or
localhost TCP.  One request object per line, one response object per
line; requests are served concurrently, so responses carry the request's
``id`` back and may arrive out of order.  See ``docs/SERVICE.md``.
"""

from __future__ import annotations

import asyncio
import json
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional

from repro.core.serialize import to_dict
from repro.errors import (
    AlgorithmError,
    ConfigError,
    DataError,
    DatasetQuarantinedError,
    MemoryBudgetExceeded,
    ParameterError,
    ReproError,
    ServiceError,
    ServiceOverloadError,
    TimeoutExceeded,
    WorkerPoolError,
)
from repro.parallel.supervisor import retry_transient
from repro.runtime.deadline import Deadline, as_deadline
from repro.runtime.resilient import TIERS, sampled_dbscan, tier_guarantee
from repro.service.admission import AdmissionController, AdmissionPolicy, CircuitBreaker
from repro.service.queue import FairScheduler, RequestKey, ServiceStats, SingleFlight
from repro.service.registry import DatasetEntry, DatasetRegistry
from repro.utils.log import get_logger

_log = get_logger("service.server")

#: Error codes for the wire protocol's non-service library errors.
_ERROR_CODES = (
    (TimeoutExceeded, "timeout"),
    (MemoryBudgetExceeded, "memory"),
    (WorkerPoolError, "worker-pool"),
    (ConfigError, "config"),
    (DataError, "data"),
    (ParameterError, "parameter"),
    (AlgorithmError, "algorithm"),
)


def error_payload(exc: BaseException) -> Dict[str, object]:
    """The structured ``error`` object a failed request answers with."""
    if isinstance(exc, ServiceError):
        return exc.as_dict()
    for klass, code in _ERROR_CODES:
        if isinstance(exc, klass):
            return {"code": code, "message": str(exc)}
    if isinstance(exc, ReproError):
        return {"code": "error", "message": str(exc)}
    return {"code": "internal", "message": f"{type(exc).__name__}: {exc}"}


class ClusteringService:
    """The async front-end over a :class:`DatasetRegistry` of warm engines.

    Parameters
    ----------
    registry:
        The dataset registry to serve (a fresh one by default).
    policy:
        The :class:`AdmissionPolicy` bundle; defaults are sized for tests
        and small deployments — production callers should set at least
        ``max_queue``, ``default_time_budget`` and ``memory_budget_mb``.
    """

    def __init__(
        self,
        registry: Optional[DatasetRegistry] = None,
        policy: Optional[AdmissionPolicy] = None,
    ) -> None:
        self.registry = registry if registry is not None else DatasetRegistry()
        self.policy = policy if policy is not None else AdmissionPolicy()
        self.admission = AdmissionController(self.policy)
        self.breaker = CircuitBreaker(
            self.policy.breaker_threshold, self.policy.breaker_cooldown
        )
        self.flights = SingleFlight()
        self.stats = ServiceStats()
        self._executor = ThreadPoolExecutor(
            max_workers=self.policy.max_concurrency,
            thread_name_prefix="repro-service",
        )
        self._gate: Optional[asyncio.Semaphore] = None
        self._fair: Optional[FairScheduler] = None
        self._shutdown: Optional[asyncio.Event] = None
        self._started = time.monotonic()

    # ----------------------------------------------------------- lifecycle

    def _gate_sem(self) -> asyncio.Semaphore:
        if self._gate is None:
            self._gate = asyncio.Semaphore(self.policy.max_concurrency)
        return self._gate

    def _tenant_limits(self, tenant: str):
        """``(weight, max_queue, max_inflight)`` for the fair scheduler.

        Registry-configured values win; the policy's tenant defaults fill
        the gaps.  Resolved per enqueue, so a live ``tenant`` op changes
        the very next dispatch.
        """
        cfg = self.registry.tenant_config(tenant)
        max_queue = cfg.max_queue if cfg.max_queue is not None else self.policy.tenant_max_queue
        max_inflight = (
            cfg.max_inflight if cfg.max_inflight is not None
            else self.policy.tenant_max_inflight
        )
        return (cfg.weight, max_queue, max_inflight)

    def scheduler(self) -> FairScheduler:
        if self._fair is None:
            self._fair = FairScheduler(
                self.policy.max_concurrency, config=self._tenant_limits
            )
        return self._fair

    def shutdown_event(self) -> asyncio.Event:
        if self._shutdown is None:
            self._shutdown = asyncio.Event()
        return self._shutdown

    async def drain(self, timeout: Optional[float] = None) -> Dict[str, object]:
        """The graceful-restart protocol: stop admitting, finish, flush.

        New requests are refused with ``reason="draining"`` (and an
        honest ``retry_after`` of the drain budget) from the first line
        onward; in-flight requests get up to ``timeout`` seconds
        (``policy.drain_timeout`` by default) to finish; then the
        registry's journal is compacted and fsynced so a restart replays
        a clean snapshot.  Returns a summary for the log / response.
        """
        budget = float(self.policy.drain_timeout if timeout is None else timeout)
        self.admission.start_draining()
        t0 = time.monotonic()
        while self.admission.depth > 0 and time.monotonic() - t0 < budget:
            await asyncio.sleep(0.05)
        abandoned = self.admission.depth
        self.registry.close()  # compacts + closes a persistent store
        self.shutdown_event().set()
        return {
            "drained": abandoned == 0,
            "abandoned": abandoned,
            "elapsed": time.monotonic() - t0,
        }

    def close(self) -> None:
        """Release the executor threads (idempotent)."""
        self._executor.shutdown(wait=False, cancel_futures=True)

    # ------------------------------------------------------- registry ops

    def register(self, name, points=None, path=None, *, tenant="default",
                 on_bad_rows="raise") -> Dict[str, object]:
        """Register a dataset (see :meth:`DatasetRegistry.register`)."""
        return self.registry.register(
            name, points, path, tenant=tenant, on_bad_rows=on_bad_rows
        )

    def unregister(self, name) -> bool:
        return self.registry.unregister(name)

    def datasets(self) -> Dict[str, Dict[str, object]]:
        return self.registry.describe()

    def service_stats(self) -> Dict[str, object]:
        """The ``stats`` endpoint: counters + queue + breaker snapshot."""
        return {
            "uptime": time.monotonic() - self._started,
            "queue_depth": self.admission.depth,
            "queue_limit": self.policy.max_queue,
            "in_flight": self.flights.in_flight(),
            "draining": self.admission.draining,
            "breakers": self.breaker.snapshot(),
            "tenants": self._fair.snapshot() if self._fair is not None else {},
            "datasets": len(self.registry),
            **self.stats.as_dict(),
        }

    # ----------------------------------------------------------- requests

    async def cluster(
        self,
        dataset: str,
        eps: float,
        min_pts: int,
        *,
        rho: Optional[float] = None,
        algorithm: Optional[str] = None,
        workers=None,
        shm=None,
        time_budget: Optional[float] = None,
        tier: Optional[str] = None,
        tenant: Optional[str] = None,
        priority: int = 0,
    ) -> Dict[str, object]:
        """Serve one clustering request through the full front-end.

        ``tenant`` defaults to the dataset's owning tenant — a request
        carrying its own tenant label is billed (queued, weighted,
        quota-checked) against that label instead.  ``priority`` orders a
        tenant's own queue (higher first; earliest deadline breaks ties);
        it never lets one tenant outrank another — that is what weights
        are for.

        Returns the response dict: the serialized clustering under
        ``"clustering"`` plus ``tier`` / ``reason`` / ``coalesced`` /
        ``elapsed``.  Raises a structured library error otherwise — the
        wire layer turns those into error responses, in-process callers
        catch them directly.
        """
        entry = self.registry.get(dataset)
        tenant = str(tenant) if tenant is not None else entry.tenant
        try:
            probe = self.breaker.check(entry.name)
        except DatasetQuarantinedError:
            self.stats.quarantined += 1
            raise
        try:
            if tier is not None and tier not in TIERS:
                raise ParameterError(f"unknown tier {tier!r}; choose from {TIERS}")
            requested = tier or (
                "approx" if rho is not None or algorithm == "approx" else "exact"
            )
            budget = (
                float(time_budget)
                if time_budget is not None
                else self.policy.default_time_budget
            )
            deadline = as_deadline(budget)
            tenant_quota = self._tenant_limits(tenant)[1]
            try:
                self.admission.admit(deadline, tenant=tenant, tenant_quota=tenant_quota)
            except ServiceOverloadError:
                self.stats.rejected += 1
                raise
            self.stats.accepted += 1
            try:
                key = RequestKey.build(
                    entry.name, eps, min_pts, rho=rho, workers=workers,
                    algorithm=algorithm
                    or ("approx" if requested != "exact" else "grid"),
                    requested=requested,
                    shm=shm,
                )
                flight, leader = self.flights.acquire(key)
                if not leader:
                    self.stats.coalesced += 1
                    return await self._await_flight(flight, deadline)
                try:
                    response = await self._lead(
                        entry, key, requested, deadline, workers, shm,
                        tenant=tenant, priority=priority,
                    )
                except BaseException as exc:
                    self.flights.resolve_error(key, exc)
                    raise
                self.flights.resolve(key, response)
                return response
            except ServiceOverloadError:
                # Every post-admission overload is a deadline expiry
                # (queued for a slot, or waiting coalesced) or a
                # scheduler-level shed: the request was accepted, so count
                # it apart from admission sheds — accepted and rejected
                # stay a partition.
                self.stats.expired += 1
                raise
            finally:
                self.admission.release(tenant)
        finally:
            # If this request held the half-open probe slot, guarantee it
            # resolves: a no-op when record_success/record_failure already
            # reported, otherwise (shed, invalid tier, budget verdict) the
            # slot is freed so the breaker can probe again rather than
            # quarantining the dataset forever.
            if probe:
                self.breaker.probe_aborted(entry.name)

    async def _await_flight(
        self, flight, deadline: Optional[Deadline]
    ) -> Dict[str, object]:
        """Attach to an in-flight computation, honouring *this* deadline.

        The shared future is shielded: one waiter timing out must not
        cancel the computation the leader and the other waiters still
        want.
        """
        remaining = None
        if deadline is not None:
            remaining = deadline.remaining()
            if remaining is not None:
                remaining = max(remaining, 1e-3)
        try:
            response = await asyncio.wait_for(
                asyncio.shield(flight.future), timeout=remaining
            )
        except asyncio.TimeoutError:
            raise ServiceOverloadError(
                "deadline expired while waiting for the coalesced result",
                reason="deadline-expired",
                queue_depth=self.admission.depth,
                limit=self.policy.max_queue,
            ) from None
        out = dict(response)
        out["coalesced"] = True
        return out

    async def _lead(
        self,
        entry: DatasetEntry,
        key: RequestKey,
        requested: str,
        deadline: Optional[Deadline],
        workers=None,
        shm=None,
        *,
        tenant: str = "default",
        priority: int = 0,
    ) -> Dict[str, object]:
        """Run the single computation every coalesced waiter shares.

        The execution slot comes from the :class:`FairScheduler` when the
        policy says ``fair`` (the default) — deficit round robin across
        tenants, priority-then-earliest-deadline within one — or from the
        plain FIFO semaphore otherwise (the benchmark baseline and a
        paranoia escape hatch).
        """
        if self.policy.fair:
            await self.scheduler().acquire(tenant, deadline, priority)
            try:
                return await self._run_slot(entry, key, requested, deadline, workers, shm)
            finally:
                self.scheduler().release(tenant)
        async with self._gate_sem():
            # The deadline kept running while the request queued for an
            # execution slot (tightest-deadline semantics: admission-time
            # clock).  Shed rather than start work that cannot finish.
            if deadline is not None and deadline.expired():
                raise ServiceOverloadError(
                    "deadline expired while queued for an execution slot",
                    reason="deadline-expired",
                    queue_depth=self.admission.depth,
                    limit=self.policy.max_queue,
                )
            return await self._run_slot(entry, key, requested, deadline, workers, shm)

    async def _run_slot(
        self,
        entry: DatasetEntry,
        key: RequestKey,
        requested: str,
        deadline: Optional[Deadline],
        workers=None,
        shm=None,
    ) -> Dict[str, object]:
        """The slot-holding half of :meth:`_lead`: tier choice + execution."""
        loop = asyncio.get_running_loop()
        tier, reason = self.admission.choose_tier(requested)
        job = {
            "eps": key.eps,
            "min_pts": key.min_pts,
            "rho": key.rho,
            "algorithm": key.algorithm,
            # The original object, not the key's hash-safe repr — a
            # ParallelConfig must reach the engine intact.
            "workers": workers,
            "shm": shm,
            "tier": tier,
            "deadline": deadline,
        }
        retry_log: List[Dict[str, object]] = []

        def attempt() -> object:
            return self._execute(entry, job)

        def call() -> object:
            return retry_transient(
                attempt,
                attempts=self.policy.retry_attempts,
                deadline=deadline,
                on_retry=lambda n, exc: retry_log.append(
                    {"attempt": n, "error": type(exc).__name__, "detail": str(exc)}
                ),
            )

        t0 = time.monotonic()
        try:
            result = await loop.run_in_executor(self._executor, call)
        except (TimeoutExceeded, MemoryBudgetExceeded, ParameterError,
                DataError, ServiceError):
            # Budget verdicts and caller mistakes: the infrastructure
            # is healthy, so the breaker stays closed.
            self.stats.failed += 1
            self.stats.retries += len(retry_log)
            raise
        except Exception as exc:
            self.stats.failed += 1
            self.stats.retries += len(retry_log)
            failures = self.breaker.record_failure(entry.name)
            if failures >= self.policy.breaker_threshold:
                _log.warning(
                    "service: circuit breaker OPEN for dataset %r after %d "
                    "consecutive failure(s): %s: %s",
                    entry.name, failures, type(exc).__name__, exc,
                )
            raise
        self.breaker.record_success(entry.name)
        entry.count_request()
        # Journal the eps as a warm hint: a restart with --warm-on-recover
        # rebuilds this grid before the first request arrives.
        self.registry.note_warm_eps(entry.name, key.eps)
        self.stats.executed += 1
        self.stats.retries += len(retry_log)
        self.stats.count_tier(tier)
        if tier != requested:
            self.stats.degraded += 1
            _log.warning(
                "service: request for %r degraded %s -> %s (%s)",
                entry.name, requested, tier, reason,
            )
        result.meta["service"] = {
            "tier": tier,
            "reason": reason,
            "requested": requested,
            "guarantee": tier_guarantee(tier),
            "retries": retry_log,
        }
        return {
            "dataset": entry.name,
            "tier": tier,
            "reason": reason,
            "coalesced": False,
            "elapsed": time.monotonic() - t0,
            "clustering": to_dict(result),
        }

    def _execute(self, entry: DatasetEntry, job: Dict[str, object]):
        """One engine execution (runs on an executor thread).

        A plain synchronous method on purpose: the fault-injection tests
        monkeypatch it to stage deterministic overload, and subclasses can
        wrap it.  Parallel ``workers`` runs inherit the full PR 3
        supervisor (retry -> respawn -> quarantine) through the engine's
        pipeline; on top of that the dispatcher's
        :func:`~repro.parallel.retry_transient` retries whole executions
        that die of :class:`~repro.errors.WorkerPoolError`.
        """
        engine = entry.engine
        deadline: Optional[Deadline] = job["deadline"]
        tier = job["tier"]
        rho = job["rho"] if job["rho"] is not None else self.policy.default_rho
        if tier == "sampled":
            return sampled_dbscan(
                engine.points,
                job["eps"],
                job["min_pts"],
                rho=rho,
                sample_size=self.policy.sample_size,
                seed=0,
                deadline=deadline,
            )
        if tier == "approx":
            return engine.approx_dbscan(
                job["eps"],
                job["min_pts"],
                rho=rho,
                deadline=deadline,
                memory_budget_mb=self.policy.memory_budget_mb,
                workers=job["workers"],
                shm=job["shm"],
            )
        return engine.dbscan(
            job["eps"],
            job["min_pts"],
            algorithm=job["algorithm"] or "grid",
            deadline=deadline,
            memory_budget_mb=self.policy.memory_budget_mb,
            workers=job["workers"],
            shm=job["shm"],
        )

    # --------------------------------------------------------------- wire

    @staticmethod
    def _require(request: Dict[str, object], *fields: str) -> None:
        """Reject a wire request that lacks required fields.

        Explicit validation, not a blanket ``except KeyError`` around the
        whole operation — a ``KeyError`` escaping library code is an
        internal bug and must surface as one, not masquerade as a caller
        mistake.
        """
        missing = [name for name in fields if name not in request]
        if missing:
            raise ParameterError(
                "missing required field(s): " + ", ".join(missing)
            )

    async def handle(self, request: Dict[str, object]) -> Optional[Dict[str, object]]:
        """Serve one wire-protocol request object; None answers ``shutdown``."""
        rid = request.get("id")
        op = request.get("op")
        try:
            if op == "cluster":
                self._require(request, "dataset", "eps", "min_pts")
                payload = await self.cluster(
                    request["dataset"],
                    request["eps"],
                    request["min_pts"],
                    rho=request.get("rho"),
                    algorithm=request.get("algorithm"),
                    workers=request.get("workers"),
                    shm=request.get("shm"),
                    time_budget=request.get("time_budget"),
                    tier=request.get("tier"),
                    tenant=request.get("tenant"),
                    priority=int(request.get("priority", 0)),
                )
            elif op == "register":
                self._require(request, "name")
                payload = self.register(
                    request["name"],
                    points=request.get("points"),
                    path=request.get("path"),
                    tenant=request.get("tenant", "default"),
                    on_bad_rows=request.get("on_bad_rows", "raise"),
                )
            elif op == "unregister":
                self._require(request, "name")
                payload = {"removed": self.unregister(request["name"])}
            elif op == "datasets":
                payload = self.datasets()
            elif op == "stats":
                payload = self.service_stats()
            elif op == "ping":
                payload = {"pong": True}
            elif op == "tenant":
                self._require(request, "name")
                cfg = self.registry.configure_tenant(
                    request["name"],
                    weight=request.get("weight"),
                    quota_mb=request.get("quota_mb"),
                    max_queue=request.get("max_queue"),
                    max_inflight=request.get("max_inflight"),
                )
                payload = {"tenant": str(request["name"]), **cfg.as_dict()}
            elif op == "drain":
                payload = await self.drain(request.get("timeout"))
            elif op == "shutdown":
                self.shutdown_event().set()
                return None
            else:
                raise ParameterError(f"unknown op {op!r}")
        except asyncio.CancelledError:
            raise
        except BaseException as exc:  # noqa: BLE001 - the wire must answer
            return {"id": rid, "ok": False, "error": error_payload(exc)}
        return {"id": rid, "ok": True, "result": payload}

    async def _serve_stream(
        self,
        reader: asyncio.StreamReader,
        write_line,
    ) -> None:
        """Shared line loop: requests run concurrently, responses serialise.

        A malformed line answers with a ``parameter`` error instead of
        killing the connection; EOF or a ``shutdown`` op drains the
        in-flight tasks and returns.
        """
        lock = asyncio.Lock()
        tasks: set = set()
        stop = False

        async def serve_one(line: bytes) -> None:
            nonlocal stop
            try:
                request = json.loads(line)
                if not isinstance(request, dict):
                    raise ValueError("request must be a JSON object")
            except ValueError as exc:
                response = {
                    "id": None,
                    "ok": False,
                    "error": {"code": "parameter", "message": f"bad request line: {exc}"},
                }
            else:
                response = await self.handle(request)
                if response is None:  # shutdown
                    stop = True
                    response = {"id": request.get("id"), "ok": True,
                                "result": {"stopping": True}}
            async with lock:
                await write_line(json.dumps(response) + "\n")

        while not stop:
            line = await reader.readline()
            if not line:
                break
            if not line.strip():
                continue
            task = asyncio.ensure_future(serve_one(line))
            tasks.add(task)
            task.add_done_callback(tasks.discard)
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)

    async def serve_tcp(self, host: str = "127.0.0.1", port: int = 0):
        """Start the localhost TCP server; returns the ``asyncio`` server.

        The caller owns the server object (``server.sockets[0]`` has the
        bound port; ``async with server: await server.serve_forever()``
        runs it).  A ``shutdown`` op sets :meth:`shutdown_event` — the CLI
        waits on it and closes the server.
        """

        async def on_connection(reader, writer):
            async def write_line(text: str) -> None:
                writer.write(text.encode())
                await writer.drain()

            try:
                await self._serve_stream(reader, write_line)
            finally:
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionError, OSError):  # pragma: no cover
                    pass

        return await asyncio.start_server(on_connection, host, port)

    async def serve_stdio(self, stdin=None, stdout=None) -> None:
        """Serve line-delimited JSON over stdio until EOF or ``shutdown``."""
        loop = asyncio.get_running_loop()
        stdin = stdin if stdin is not None else sys.stdin
        stdout = stdout if stdout is not None else sys.stdout
        reader = asyncio.StreamReader()
        await loop.connect_read_pipe(
            lambda: asyncio.StreamReaderProtocol(reader), stdin
        )

        async def write_line(text: str) -> None:
            stdout.write(text)
            stdout.flush()

        await self._serve_stream(reader, write_line)
