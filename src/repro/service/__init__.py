"""Clustering-as-a-service: an async front-end over the warm engine.

The ROADMAP's north star is serving rho-approximate DBSCAN (Gan & Tao,
SIGMOD 2015) to heavy multi-tenant traffic: one process, one warm
:class:`~repro.engine.ClusteringEngine` per dataset, many concurrent
callers.  The pieces built by the earlier PRs — cooperative
:class:`~repro.runtime.Deadline` / :class:`~repro.runtime.MemoryBudget`
guards, the supervisor recovery ladder of :mod:`repro.parallel`, the
fingerprint-keyed :class:`~repro.engine.cache.StructureCache` — keep one
*run* honest; this package keeps the *system* honest when requests arrive
faster than they can be served:

* :mod:`~repro.service.registry` — named datasets (arrays or CSV paths),
  one engine each, per-tenant structure-cache byte quotas;
* :mod:`~repro.service.queue` — single-flight request coalescing:
  concurrent requests for the same ``(dataset, eps, min_pts, rho,
  workers)`` attach to one in-flight computation and all receive its
  result;
* :mod:`~repro.service.admission` — bounded admission, queue-pressure
  accounting, the degradation ladder (exact -> rho-approximate ->
  DBSCAN++-style sampled cores), and the per-dataset circuit breaker;
* :mod:`~repro.service.server` — the asyncio :class:`ClusteringService`
  plus line-delimited-JSON servers over stdio and localhost TCP
  (``repro-dbscan serve``);
* :mod:`~repro.service.client` — a small in-process
  :class:`ServiceClient` for tests and examples.

See ``docs/SERVICE.md`` for the endpoint reference, the admission /
degradation semantics, and the failure model.
"""

from repro.service.admission import AdmissionController, AdmissionPolicy, CircuitBreaker
from repro.service.client import ServiceClient
from repro.service.queue import RequestKey, ServiceStats, SingleFlight
from repro.service.registry import DatasetEntry, DatasetRegistry
from repro.service.server import ClusteringService

__all__ = [
    "AdmissionController",
    "AdmissionPolicy",
    "CircuitBreaker",
    "ClusteringService",
    "DatasetEntry",
    "DatasetRegistry",
    "RequestKey",
    "ServiceClient",
    "ServiceStats",
    "SingleFlight",
]
