"""Clustering-as-a-service: an async front-end over the warm engine.

The ROADMAP's north star is serving rho-approximate DBSCAN (Gan & Tao,
SIGMOD 2015) to heavy multi-tenant traffic: one process, one warm
:class:`~repro.engine.ClusteringEngine` per dataset, many concurrent
callers.  The pieces built by the earlier PRs — cooperative
:class:`~repro.runtime.Deadline` / :class:`~repro.runtime.MemoryBudget`
guards, the supervisor recovery ladder of :mod:`repro.parallel`, the
fingerprint-keyed :class:`~repro.engine.cache.StructureCache` — keep one
*run* honest; this package keeps the *system* honest when requests arrive
faster than they can be served:

* :mod:`~repro.service.registry` — named datasets (arrays or CSV paths),
  one engine each, per-tenant structure-cache byte quotas and persisted
  :class:`TenantConfig` (fair-queueing weight + quotas);
* :mod:`~repro.service.store` — pluggable catalog persistence: the
  ephemeral :class:`MemoryStore` and the crash-safe :class:`FileStore`
  (atomic snapshot + CRC-framed append-only journal + content-addressed
  payload files), so a restart recovers the catalog byte-identically;
* :mod:`~repro.service.queue` — single-flight request coalescing plus
  the :class:`FairScheduler`: deficit-round-robin execution slots across
  tenants, priority-then-earliest-deadline within one;
* :mod:`~repro.service.admission` — bounded admission (global and
  per-tenant), queue-pressure accounting, the degradation ladder (exact
  -> rho-approximate -> DBSCAN++-style sampled cores), the per-dataset
  circuit breaker, and the drain flag;
* :mod:`~repro.service.server` — the asyncio :class:`ClusteringService`
  plus line-delimited-JSON servers over stdio and localhost TCP
  (``repro-dbscan serve``), and the SIGTERM drain protocol;
* :mod:`~repro.service.metrics` — ``GET /metrics`` (Prometheus text) and
  ``/healthz`` on a tiny read-only HTTP responder;
* :mod:`~repro.service.client` — the in-process :class:`ServiceClient`
  (with bounded ``retry_after``-honouring retries) and the line-JSON
  :class:`TcpServiceClient`.

See ``docs/SERVICE.md`` for the endpoint reference, the admission /
degradation semantics, the persistence model, and the failure model.
"""

from repro.service.admission import AdmissionController, AdmissionPolicy, CircuitBreaker
from repro.service.client import ServiceClient, TcpServiceClient
from repro.service.metrics import render_metrics, serve_metrics
from repro.service.queue import FairScheduler, RequestKey, ServiceStats, SingleFlight
from repro.service.registry import DatasetEntry, DatasetRegistry, TenantConfig
from repro.service.server import ClusteringService
from repro.service.store import FileStore, MemoryStore, RegistryStore, open_store

__all__ = [
    "AdmissionController",
    "AdmissionPolicy",
    "CircuitBreaker",
    "ClusteringService",
    "DatasetEntry",
    "DatasetRegistry",
    "FairScheduler",
    "FileStore",
    "MemoryStore",
    "RegistryStore",
    "RequestKey",
    "ServiceClient",
    "ServiceStats",
    "SingleFlight",
    "TcpServiceClient",
    "TenantConfig",
    "open_store",
    "render_metrics",
    "serve_metrics",
]
