"""Admission control, the degradation ladder, and the circuit breaker.

Three mechanisms keep the service responsive under overload, all of them
*structured* — every shed, degrade and quarantine decision is visible in
the response (``{tier, reason}`` metadata or a typed error), never an
unexplained hang:

* **bounded admission** — at most ``max_queue`` requests may be
  outstanding; request ``max_queue + 1`` is rejected immediately with a
  :class:`~repro.errors.ServiceOverloadError` carrying a ``retry_after``
  hint.  Rejecting early is the whole point: an unbounded queue converts
  overload into unbounded memory growth and unbounded latency, and every
  queued request would miss its deadline anyway.
* **the degradation ladder** — queue pressure (depth / ``max_queue``)
  and memory pressure (process RSS against the service's
  :class:`~repro.runtime.MemoryBudget`) drive accepted requests down the
  cascade justified by the paper's Sandwich Theorem: exact ->
  rho-approximate (Theorem 4 bounds the error) -> DBSCAN++-style sampled
  cores (cost bounded by the sample size, so the bottom tier always
  returns).  The tier taken and the pressure reading that forced it are
  recorded in the response metadata.
* **the circuit breaker** — a dataset whose requests keep failing for
  *infrastructure* reasons (poisoned worker pools, crashing shards) is
  quarantined for a cooldown so it cannot keep burning pool respawns that
  other tenants need; after the cooldown a single probe request is let
  through (half-open) and its outcome closes or re-opens the breaker.  A
  probe that exits without a verdict (shed, invalid parameters, budget
  expiry) releases the probe slot so the breaker can probe again instead
  of quarantining the dataset forever.
  Cooperative budget verdicts (:class:`~repro.errors.TimeoutExceeded`,
  :class:`~repro.errors.MemoryBudgetExceeded`) and caller mistakes
  (:class:`~repro.errors.ParameterError`) never trip it.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.errors import (
    DatasetQuarantinedError,
    ParameterError,
    ServiceOverloadError,
)
from repro.runtime.deadline import Deadline
from repro.runtime.memory import MemoryBudget, current_rss

#: RSS fraction of the memory budget above which the ladder jumps straight
#: to the sampled tier (mirrors the cache's high-water shedding).
_MEMORY_HIGH_WATER = 0.9


@dataclass(frozen=True)
class AdmissionPolicy:
    """Every service knob in one frozen bundle.

    Parameters
    ----------
    max_queue:
        Maximum outstanding requests (in flight + waiting); the bound the
        load-shedder enforces.
    max_concurrency:
        Engine executions running at once (executor threads).  Keep small:
        each execution may itself fan out worker processes.
    default_time_budget:
        Per-request deadline in seconds when the request carries none
        (``None`` = unbounded requests allowed).
    degrade_pressure / sample_pressure:
        Queue-pressure thresholds (fractions of ``max_queue``) at which
        accepted *exact* requests degrade to the rho-approximate tier and
        any request degrades to the sampled tier.
    default_rho:
        Approximation constant used when the ladder degrades a request
        that did not specify one.
    sample_size:
        Point budget of the sampled tier
        (:func:`repro.runtime.resilient.sampled_dbscan`).
    memory_budget_mb:
        Service-wide RSS budget driving the memory leg of the ladder and
        handed to every engine execution.
    retry_attempts:
        Dispatcher attempts per execution (transient infrastructure
        failures only; see :func:`repro.parallel.retry_transient`).
    breaker_threshold / breaker_cooldown:
        Consecutive infrastructure failures that open a dataset's circuit
        breaker, and the seconds before a half-open probe is allowed.
    """

    max_queue: int = 32
    max_concurrency: int = 2
    default_time_budget: Optional[float] = None
    degrade_pressure: float = 0.5
    sample_pressure: float = 0.85
    default_rho: float = 0.001
    sample_size: int = 2000
    memory_budget_mb: Optional[float] = None
    retry_attempts: int = 2
    breaker_threshold: int = 3
    breaker_cooldown: float = 30.0
    #: Weighted fair queueing across tenants (deficit round robin +
    #: per-tenant deadline/priority ordering); ``False`` restores the
    #: PR 6 first-come-first-served semaphore (the benchmark baseline).
    fair: bool = True
    #: Default per-tenant bound on *outstanding* (queued + running)
    #: requests; ``None`` leaves only ``max_queue``.  Per-tenant
    #: overrides come from the registry's :class:`TenantConfig`.
    tenant_max_queue: Optional[int] = None
    #: Default per-tenant bound on concurrently *executing* requests;
    #: ``None`` bounds only by ``max_concurrency``.
    tenant_max_inflight: Optional[int] = None
    #: Seconds a draining service waits for in-flight work before the
    #: executor is torn down regardless (the SIGTERM drain budget).
    drain_timeout: float = 30.0

    def __post_init__(self) -> None:
        if int(self.max_queue) < 1:
            raise ParameterError(f"max_queue must be >= 1; got {self.max_queue}")
        if int(self.max_concurrency) < 1:
            raise ParameterError(
                f"max_concurrency must be >= 1; got {self.max_concurrency}"
            )
        if not 0.0 < float(self.degrade_pressure) <= 1.0:
            raise ParameterError(
                f"degrade_pressure must be in (0, 1]; got {self.degrade_pressure}"
            )
        if not float(self.degrade_pressure) <= float(self.sample_pressure) <= 1.0:
            raise ParameterError(
                "sample_pressure must satisfy degrade_pressure <= sample_pressure "
                f"<= 1; got {self.sample_pressure}"
            )
        if int(self.retry_attempts) < 1:
            raise ParameterError(
                f"retry_attempts must be >= 1; got {self.retry_attempts}"
            )
        if int(self.breaker_threshold) < 1:
            raise ParameterError(
                f"breaker_threshold must be >= 1; got {self.breaker_threshold}"
            )
        for name in ("tenant_max_queue", "tenant_max_inflight"):
            value = getattr(self, name)
            if value is not None and int(value) < 1:
                raise ParameterError(f"{name} must be >= 1 (or None); got {value}")
        if not float(self.drain_timeout) >= 0:
            raise ParameterError(
                f"drain_timeout must be >= 0; got {self.drain_timeout}"
            )


class AdmissionController:
    """Bounded outstanding-request accounting plus the tier ladder."""

    def __init__(self, policy: AdmissionPolicy) -> None:
        self.policy = policy
        self._lock = threading.Lock()
        self._depth = 0
        self._tenant_depth: Dict[str, int] = {}
        self._draining = False
        self.memory = (
            MemoryBudget(policy.memory_budget_mb)
            if policy.memory_budget_mb is not None
            else None
        )

    @property
    def depth(self) -> int:
        with self._lock:
            return self._depth

    def tenant_depth(self, tenant: str) -> int:
        """Outstanding requests of one tenant."""
        with self._lock:
            return self._tenant_depth.get(str(tenant), 0)

    @property
    def draining(self) -> bool:
        with self._lock:
            return self._draining

    def start_draining(self) -> None:
        """Refuse all new work from now on (the drain protocol's step 1)."""
        with self._lock:
            self._draining = True

    def pressure(self) -> float:
        """Outstanding requests as a fraction of the admission bound."""
        with self._lock:
            return self._depth / float(self.policy.max_queue)

    def admit(
        self,
        deadline: Optional[Deadline] = None,
        tenant: str = "default",
        tenant_quota: Optional[int] = None,
    ) -> None:
        """Count one request in, or shed it with a structured error.

        Sheds when the queue is at its bound, when the *tenant's* share
        of it is at its quota (``tenant_quota`` falls back to the
        policy's ``tenant_max_queue``), when the request's deadline is
        *already* expired — accepting work that cannot possibly answer in
        time only steals capacity from work that can — and when the
        service is draining for shutdown.
        """
        tenant = str(tenant)
        if deadline is not None and deadline.expired():
            raise ServiceOverloadError(
                "request deadline expired before admission",
                reason="deadline-expired",
                queue_depth=self.depth,
                limit=self.policy.max_queue,
            )
        quota = tenant_quota if tenant_quota is not None else self.policy.tenant_max_queue
        with self._lock:
            if self._draining:
                raise ServiceOverloadError(
                    "service is draining for shutdown",
                    reason="draining",
                    queue_depth=self._depth,
                    limit=self.policy.max_queue,
                    retry_after=float(self.policy.drain_timeout),
                )
            if self._depth >= self.policy.max_queue:
                raise ServiceOverloadError(
                    f"queue is full ({self._depth}/{self.policy.max_queue} "
                    "requests outstanding)",
                    reason="queue-full",
                    queue_depth=self._depth,
                    limit=self.policy.max_queue,
                    # Honest hint: one execution slot's worth of patience.
                    retry_after=1.0,
                )
            held = self._tenant_depth.get(tenant, 0)
            if quota is not None and held >= int(quota):
                raise ServiceOverloadError(
                    f"tenant {tenant!r} already has {held} request(s) "
                    f"outstanding (quota {int(quota)})",
                    reason="tenant-quota",
                    queue_depth=self._depth,
                    limit=int(quota),
                    retry_after=1.0,
                )
            self._depth += 1
            self._tenant_depth[tenant] = held + 1

    def release(self, tenant: str = "default") -> None:
        tenant = str(tenant)
        with self._lock:
            if self._depth > 0:
                self._depth -= 1
            held = self._tenant_depth.get(tenant, 0)
            if held <= 1:
                self._tenant_depth.pop(tenant, None)
            else:
                self._tenant_depth[tenant] = held - 1

    # ------------------------------------------------------------- ladder

    def memory_pressure(self) -> Optional[float]:
        """Process RSS as a fraction of the service budget (None = no budget)."""
        if self.memory is None or self.memory.limit_bytes is None:
            return None
        return current_rss() / float(self.memory.limit_bytes)

    def choose_tier(self, requested: str) -> Tuple[str, str]:
        """The ``(tier, reason)`` an execution dispatching *now* should use.

        ``requested`` is the tier the request asked for (``"exact"`` or
        ``"approx"``); the ladder only ever moves *down* from it.  The
        returned reason is the human- and machine-readable justification
        recorded in the response metadata.
        """
        mem = self.memory_pressure()
        if mem is not None and mem >= _MEMORY_HIGH_WATER:
            return "sampled", (
                f"memory-pressure: rss at {mem:.0%} of the "
                f"{self.policy.memory_budget_mb:g} MB budget"
            )
        pressure = self.pressure()
        if pressure >= self.policy.sample_pressure:
            return "sampled", (
                f"queue-pressure {pressure:.2f} >= {self.policy.sample_pressure:g}"
            )
        if requested == "exact" and pressure >= self.policy.degrade_pressure:
            return "approx", (
                f"queue-pressure {pressure:.2f} >= {self.policy.degrade_pressure:g}"
            )
        return requested, "requested"


@dataclass
class _BreakerState:
    failures: int = 0
    opened_at: float = 0.0
    probing: bool = False


class CircuitBreaker:
    """Per-dataset quarantine after repeated infrastructure failures."""

    def __init__(self, threshold: int = 3, cooldown: float = 30.0) -> None:
        self.threshold = int(threshold)
        self.cooldown = float(cooldown)
        self._lock = threading.Lock()
        self._state: Dict[str, _BreakerState] = {}

    def check(self, name: str) -> bool:
        """Gate a request on ``name``'s breaker.

        Closed: passes (returns ``False``).  Open within the cooldown:
        raises :class:`DatasetQuarantinedError` with the remaining
        cooldown.  Open past the cooldown: lets exactly one probe through
        (half-open, returns ``True``) and quarantines the rest until the
        probe reports back.

        The caller of a ``True`` return owns the probe slot and must
        resolve it on *every* exit path — :meth:`record_success`,
        :meth:`record_failure`, or :meth:`probe_aborted` when the probe
        never reached the engine — or the breaker stays half-open forever
        and quarantines every later request.
        """
        with self._lock:
            state = self._state.get(str(name))
            if state is None or state.failures < self.threshold:
                return False
            remaining = self.cooldown - (time.monotonic() - state.opened_at)
            if remaining > 0:
                raise DatasetQuarantinedError(str(name), state.failures, remaining)
            if state.probing:
                raise DatasetQuarantinedError(str(name), state.failures, self.cooldown)
            state.probing = True
            return True

    def record_failure(self, name: str) -> int:
        """Count one infrastructure failure; returns the consecutive total."""
        with self._lock:
            state = self._state.setdefault(str(name), _BreakerState())
            state.failures += 1
            state.probing = False
            if state.failures >= self.threshold:
                state.opened_at = time.monotonic()
            return state.failures

    def record_success(self, name: str) -> None:
        """A request (or half-open probe) succeeded: close the breaker."""
        with self._lock:
            self._state.pop(str(name), None)

    def probe_aborted(self, name: str) -> None:
        """The half-open probe exited without an infrastructure verdict.

        A probe shed by admission, rejected by parameter validation, or
        stopped by a cooperative budget verdict (``TimeoutExceeded`` /
        ``MemoryBudgetExceeded``) says nothing about whether the
        infrastructure recovered, so it neither closes the breaker nor
        counts as a failure — it just frees the probe slot so the next
        request can probe.  A no-op when the probe already reported
        through :meth:`record_success` / :meth:`record_failure`.
        """
        with self._lock:
            state = self._state.get(str(name))
            if state is not None:
                state.probing = False

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Open/closed state per dataset with a failure count (``stats`` op)."""
        with self._lock:
            out: Dict[str, Dict[str, object]] = {}
            for name, state in self._state.items():
                open_ = state.failures >= self.threshold
                out[name] = {
                    "failures": state.failures,
                    "open": open_,
                    "retry_after": (
                        max(0.0, self.cooldown - (time.monotonic() - state.opened_at))
                        if open_
                        else 0.0
                    ),
                }
            return out
