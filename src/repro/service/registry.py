"""Named datasets behind the service: one warm engine each, quota'd caches.

The registry is the service's only source of clusterable data: a request
names a dataset, never ships one inline, so the expensive part (validating
the points, fingerprinting them, warming grid / Lemma 5 structures) is
paid at registration time and amortised over every later request.

Tenancy is cache-level *and* config-level: every tenant gets its *own*
:class:`~repro.engine.cache.StructureCache`, capped at the tenant's byte
quota, and a persisted :class:`TenantConfig` carrying its fair-queueing
weight and admission quotas.  One tenant's eps-sweep therefore cannot
evict another tenant's warm structures, and one tenant's burst cannot
monopolise the admission queue (see :mod:`repro.service.queue`).

Durability rides on a pluggable :class:`~repro.service.store.RegistryStore`
(:class:`~repro.service.store.MemoryStore` by default — the historical
forget-on-restart behaviour; :class:`~repro.service.store.FileStore` for
real deployments).  Every mutation is journaled after it commits in
memory, point payloads are content-addressed ``.npy`` files, and
:meth:`DatasetRegistry.recover` replays the catalog on construction,
verifying each payload against its recorded fingerprint before an engine
is allowed to serve it — a restart either serves the same bytes it
stored or refuses the dataset, never something in between.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Tuple

from repro.engine.cache import StructureCache
from repro.engine.core import ClusteringEngine
from repro.errors import ParameterError, RegistryStoreError, UnknownDatasetError
from repro.runtime.checkpoint import fingerprint_points
from repro.service.store import MemoryStore, RegistryState, RegistryStore
from repro.utils.log import get_logger

_log = get_logger("service.registry")


@dataclass
class TenantConfig:
    """Per-tenant scheduling and quota knobs (persisted via the store).

    ``weight`` is the deficit-round-robin share of execution slots (any
    positive float; 2.0 gets twice the dispatch quantum of 1.0).
    ``max_queue`` / ``max_inflight`` bound the tenant's waiting and
    running requests (``None`` = only the service-wide bounds apply);
    ``quota_mb`` caps the tenant's structure cache.
    """

    weight: float = 1.0
    quota_mb: Optional[float] = None
    max_queue: Optional[int] = None
    max_inflight: Optional[int] = None

    def __post_init__(self) -> None:
        if not float(self.weight) > 0:
            raise ParameterError(f"tenant weight must be positive; got {self.weight}")
        if self.quota_mb is not None and not float(self.quota_mb) > 0:
            raise ParameterError(
                f"tenant quota_mb must be positive (or None); got {self.quota_mb}"
            )
        for name in ("max_queue", "max_inflight"):
            value = getattr(self, name)
            if value is not None and int(value) < 1:
                raise ParameterError(f"tenant {name} must be >= 1; got {value}")

    def as_dict(self) -> Dict[str, object]:
        return {
            "weight": self.weight,
            "quota_mb": self.quota_mb,
            "max_queue": self.max_queue,
            "max_inflight": self.max_inflight,
        }


@dataclass
class DatasetEntry:
    """One registered dataset: its engine, provenance and tenancy."""

    name: str
    engine: ClusteringEngine
    tenant: str
    source: str  # "array" or the originating file path
    #: Store reference of the persisted payload ("" for memory stores).
    payload: str = ""
    #: Number of cluster requests served from this entry (informational).
    requests: int = 0
    #: eps values whose grids were warm when last journaled (recovery hint).
    warm_eps: Tuple[float, ...] = ()
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def count_request(self) -> None:
        with self._lock:
            self.requests += 1

    def info(self) -> Dict[str, object]:
        """JSON-safe description for the ``datasets`` endpoint."""
        points = self.engine.points
        return {
            "name": self.name,
            "tenant": self.tenant,
            "source": self.source,
            "n": int(len(points)),
            "d": int(points.shape[1]) if points.ndim == 2 and len(points) else 0,
            "fingerprint": self.engine.fingerprint,
            "requests": self.requests,
            # Per-algorithm execution counts: the exactly-once evidence
            # the coalescing smoke asserts on over the wire.
            "runs": self.engine.run_counts(),
            "cache": self.engine.cache.stats(),
        }

    def record(self) -> Dict[str, object]:
        """The journal/snapshot record that reconstructs this entry."""
        return {
            "op": "register",
            "name": self.name,
            "tenant": self.tenant,
            "source": self.source,
            "fingerprint": self.engine.fingerprint,
            "payload": self.payload,
            "warm": list(self.warm_eps),
        }


class DatasetRegistry:
    """Thread-safe name -> :class:`DatasetEntry` map with tenant quotas.

    Parameters
    ----------
    tenant_quota_mb:
        Default byte quota (estimated, in MB) for each tenant's
        :class:`~repro.engine.cache.StructureCache`; ``None`` leaves the
        caches entry-capped only.  Per-tenant overrides via
        :meth:`configure_tenant`.
    workers:
        Default ``workers`` argument for every engine the registry builds
        (same semantics as :class:`~repro.engine.ClusteringEngine`).
    max_datasets:
        Hard cap on registered datasets — registration is memory
        commitment, so it is admission-controlled like everything else.
    store:
        The :class:`~repro.service.store.RegistryStore` to persist
        through; defaults to an ephemeral
        :class:`~repro.service.store.MemoryStore`.  Construction replays
        the store's catalog (see :meth:`recover`).
    warm_on_recover:
        Rebuild the grid structures named by each recovered entry's
        warm-eps hints, so the first post-restart request hits a warm
        engine instead of paying the cold build.
    """

    def __init__(
        self,
        *,
        tenant_quota_mb: Optional[float] = None,
        workers=None,
        max_datasets: int = 64,
        store: Optional[RegistryStore] = None,
        warm_on_recover: bool = False,
    ) -> None:
        if int(max_datasets) < 1:
            raise ParameterError(f"max_datasets must be >= 1; got {max_datasets}")
        if tenant_quota_mb is not None and not float(tenant_quota_mb) > 0:
            raise ParameterError(
                f"tenant_quota_mb must be positive (or None); got {tenant_quota_mb}"
            )
        self.tenant_quota_mb = None if tenant_quota_mb is None else float(tenant_quota_mb)
        self.workers = workers
        self.max_datasets = int(max_datasets)
        self.store = store if store is not None else MemoryStore()
        self._lock = threading.Lock()
        self._entries: Dict[str, DatasetEntry] = {}
        self._tenant_caches: Dict[str, StructureCache] = {}
        self._tenants: Dict[str, TenantConfig] = {}
        #: Human-readable account of what recovery repaired or refused.
        self.recovered: Tuple[str, ...] = ()
        self.recover(warm=warm_on_recover)

    # ------------------------------------------------------------- tenancy

    def _tenant_cache(self, tenant: str) -> StructureCache:
        """The tenant's quota'd cache (created on first use; caller locks)."""
        cache = self._tenant_caches.get(tenant)
        if cache is None:
            cfg = self._tenants.get(tenant)
            quota = cfg.quota_mb if cfg is not None and cfg.quota_mb else None
            cache = self._tenant_caches[tenant] = StructureCache(
                max_mb=quota if quota is not None else self.tenant_quota_mb
            )
        return cache

    def tenant_config(self, tenant: str) -> TenantConfig:
        """The tenant's config (a default-weight one when never configured)."""
        with self._lock:
            cfg = self._tenants.get(str(tenant))
            return cfg if cfg is not None else TenantConfig()

    def tenants(self) -> Dict[str, TenantConfig]:
        """Snapshot of every explicitly configured tenant."""
        with self._lock:
            return dict(self._tenants)

    def configure_tenant(
        self,
        tenant: str,
        *,
        weight: Optional[float] = None,
        quota_mb: Optional[float] = None,
        max_queue: Optional[int] = None,
        max_inflight: Optional[int] = None,
    ) -> TenantConfig:
        """Set (and persist) a tenant's scheduling weight and quotas.

        Only the passed fields change; the rest keep their current
        values.  A changed ``quota_mb`` re-caps the live structure cache
        immediately (evicting down if needed).
        """
        tenant = str(tenant)
        with self._lock:
            current = self._tenants.get(tenant, TenantConfig())
            cfg = TenantConfig(
                weight=current.weight if weight is None else float(weight),
                quota_mb=current.quota_mb if quota_mb is None else float(quota_mb),
                max_queue=current.max_queue if max_queue is None else int(max_queue),
                max_inflight=(
                    current.max_inflight if max_inflight is None else int(max_inflight)
                ),
            )
            self._tenants[tenant] = cfg
            cache = self._tenant_caches.get(tenant)
        if cache is not None and quota_mb is not None:
            cache.set_budget(cfg.quota_mb)
        self.store.append({"op": "tenant", "tenant": tenant, **cfg.as_dict()})
        return cfg

    def set_tenant_quota(self, tenant: str, max_mb: Optional[float]) -> None:
        """Re-cap one tenant's structure cache (evicting down if needed).

        Kept for callers predating :meth:`configure_tenant`; a ``None``
        quota uncaps the cache without touching the persisted config.
        """
        if max_mb is not None:
            self.configure_tenant(tenant, quota_mb=max_mb)
            return
        with self._lock:
            cache = self._tenant_cache(str(tenant))
        cache.set_budget(None)

    # ------------------------------------------------------------ recovery

    def recover(self, *, warm: bool = False) -> Tuple[str, ...]:
        """Replay the store's catalog into live entries (idempotent).

        Every payload is re-fingerprinted before its engine is built; a
        mismatch (bit rot, a truncated payload from a crash mid-write)
        quarantines the payload and skips the dataset — the registry
        never serves bytes it cannot prove are the registered ones.
        Returns the recovery notes (also kept on :attr:`recovered`).
        """
        state = self.store.load()
        notes = list(state.recovered)
        for tenant, cfg in state.tenants.items():
            try:
                self._tenants[str(tenant)] = TenantConfig(
                    weight=float(cfg.get("weight", 1.0)),
                    quota_mb=cfg.get("quota_mb"),
                    max_queue=cfg.get("max_queue"),
                    max_inflight=cfg.get("max_inflight"),
                )
            except ParameterError as exc:
                notes.append(f"dropped invalid tenant config for {tenant!r}: {exc}")
        for name, record in state.datasets.items():
            if name in self._entries:
                continue
            try:
                entry = self._rebuild_entry(record)
            except RegistryStoreError as exc:
                notes.append(f"dropped dataset {name!r}: {exc}")
                _log.warning("registry: %s", notes[-1])
                continue
            with self._lock:
                self._entries[name] = entry
            if warm and entry.warm_eps:
                for eps in entry.warm_eps:
                    try:
                        entry.engine.grid(eps)
                    except Exception as exc:  # pragma: no cover - defensive
                        notes.append(
                            f"warm hint eps={eps:g} for {name!r} failed: {exc}"
                        )
        self.recovered = tuple(notes)
        for note in state.recovered:
            _log.warning("registry: store recovery: %s", note)
        return self.recovered

    def _rebuild_entry(self, record: Dict[str, object]) -> DatasetEntry:
        """One recovered entry: load payload, verify fingerprint, warm cache."""
        name = str(record["name"])
        tenant = str(record.get("tenant", "default"))
        ref = str(record.get("payload") or "")
        if not ref:
            raise RegistryStoreError(f"record for {name!r} has no payload reference")
        points = self.store.load_payload(ref)
        expected = str(record.get("fingerprint") or "")
        actual = fingerprint_points(points)
        if expected and actual != expected:
            quarantine = getattr(self.store, "quarantine_payload", None)
            if quarantine is not None:
                quarantine(ref, f"fingerprint mismatch for dataset {name!r}")
            raise RegistryStoreError(
                f"payload fingerprint mismatch ({actual[:12]} != {expected[:12]}); "
                "payload quarantined"
            )
        with self._lock:
            cache = self._tenant_cache(tenant)
        engine = ClusteringEngine(points, cache=cache, workers=self.workers)
        return DatasetEntry(
            name=name,
            engine=engine,
            tenant=tenant,
            source=str(record.get("source", "array")),
            payload=ref,
            warm_eps=tuple(float(e) for e in record.get("warm", ())),
        )

    # ------------------------------------------------------------- mutation

    def register(
        self,
        name: str,
        points=None,
        path: Optional[str] = None,
        *,
        tenant: str = "default",
        on_bad_rows: str = "raise",
    ) -> Dict[str, object]:
        """Register ``points`` (or the file at ``path``) under ``name``.

        Exactly one of ``points`` / ``path`` must be given; paths go
        through the hardened loader of :mod:`repro.data.io` (with its
        content-fingerprint parse cache, so re-registering an unchanged
        file never re-parses or re-quarantines it) and the parsed array —
        not the raw file — is what the store persists, so a restart
        recovers the dataset without touching the original path again.
        Re-registering a name is idempotent when the data fingerprint
        matches and a :class:`ParameterError` otherwise — silently
        swapping a dataset under live traffic would invalidate every
        coalesced and cached answer in flight.
        """
        name = str(name)
        if not name:
            raise ParameterError("dataset name must be non-empty")
        if (points is None) == (path is None):
            raise ParameterError("register() needs exactly one of points= or path=")
        if path is not None:
            from repro.data.io import load_points

            pts = load_points(str(path), on_bad_rows=on_bad_rows, cache=True)
            source = str(path)
        else:
            pts = points
            source = "array"
        with self._lock:
            cache = self._tenant_cache(str(tenant))
        # Engine construction validates and fingerprints the points; keep
        # it outside the lock so a slow load cannot block lookups.
        engine = ClusteringEngine(pts, cache=cache, workers=self.workers)
        entry = DatasetEntry(name=name, engine=engine, tenant=str(tenant), source=source)
        with self._lock:
            existing = self._entries.get(name)
            if existing is not None:
                if existing.engine.fingerprint == engine.fingerprint:
                    return existing.info()
                raise ParameterError(
                    f"dataset {name!r} is already registered with different data "
                    f"(fingerprint {existing.engine.fingerprint[:12]!r}); "
                    "unregister it first"
                )
            if len(self._entries) >= self.max_datasets:
                raise ParameterError(
                    f"registry is full ({self.max_datasets} datasets); "
                    "unregister one first"
                )
            self._entries[name] = entry
        # Durability order: payload first (content-addressed, so a crash
        # leaves at worst an unreferenced file), then the journal record
        # naming it.  A crash before the append simply forgets the
        # registration — the caller never got an acknowledgement.
        entry.payload = self.store.save_payload(engine.fingerprint, engine.points)
        self.store.append(entry.record())
        self._maybe_compact()
        return entry.info()

    def unregister(self, name: str) -> bool:
        """Remove ``name``; True when it was present.

        The tenant cache is left intact: other datasets of the tenant may
        share entries with the departing one (same fingerprint keys), and
        LRU eviction reclaims orphaned structures on its own.
        """
        with self._lock:
            removed = self._entries.pop(str(name), None) is not None
        if removed:
            self.store.append({"op": "unregister", "name": str(name)})
            self._maybe_compact()
        return removed

    def note_warm_eps(self, name: str, eps: float) -> None:
        """Journal a warm-grid hint for ``name`` (first sighting only)."""
        with self._lock:
            entry = self._entries.get(str(name))
            if entry is None:
                return
            eps = float(eps)
            if eps in entry.warm_eps or len(entry.warm_eps) >= 8:
                return
            entry.warm_eps = entry.warm_eps + (eps,)
        self.store.append({"op": "warm", "name": str(name), "eps": eps})

    # ----------------------------------------------------------- snapshots

    def _state_snapshot(self) -> RegistryState:
        state = RegistryState()
        with self._lock:
            for entry in self._entries.values():
                state.datasets[entry.name] = entry.record()
            for tenant, cfg in self._tenants.items():
                state.tenants[tenant] = cfg.as_dict()
        return state

    def _maybe_compact(self) -> None:
        should = getattr(self.store, "should_compact", None)
        if should is not None and should():
            self.compact()

    def compact(self) -> None:
        """Force a store snapshot of the live catalog (truncates the journal)."""
        self.store.compact(self._state_snapshot())

    def close(self) -> None:
        """Snapshot (when the store persists) and release the store."""
        try:
            if self.store.persistent:
                self.compact()
        finally:
            self.store.close()

    # -------------------------------------------------------------- lookup

    def get(self, name: str) -> DatasetEntry:
        """The entry for ``name``; :class:`UnknownDatasetError` if absent."""
        with self._lock:
            entry = self._entries.get(str(name))
            if entry is None:
                raise UnknownDatasetError(str(name), known=self._entries.keys())
            return entry

    def names(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._entries))

    def describe(self) -> Dict[str, Dict[str, object]]:
        """Info dicts for every registered dataset (the ``datasets`` op)."""
        with self._lock:
            entries = list(self._entries.values())
        return {entry.name: entry.info() for entry in entries}

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return str(name) in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
