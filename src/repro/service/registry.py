"""Named datasets behind the service: one warm engine each, quota'd caches.

The registry is the service's only source of clusterable data: a request
names a dataset, never ships one inline, so the expensive part (validating
the points, fingerprinting them, warming grid / Lemma 5 structures) is
paid at registration time and amortised over every later request.

Tenancy is cache-level: every tenant gets its *own*
:class:`~repro.engine.cache.StructureCache`, capped at the registry's
per-tenant byte quota, and every dataset registered under that tenant
shares it.  One tenant's eps-sweep therefore cannot evict another
tenant's warm structures — the noisy-neighbour failure the ROADMAP's
multi-tenant north star calls out — while datasets *within* a tenant
still share structures through the fingerprint-keyed cache exactly as
engines always have.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.engine.cache import StructureCache
from repro.engine.core import ClusteringEngine
from repro.errors import ParameterError, UnknownDatasetError


@dataclass
class DatasetEntry:
    """One registered dataset: its engine, provenance and tenancy."""

    name: str
    engine: ClusteringEngine
    tenant: str
    source: str  # "array" or the originating file path
    #: Number of cluster requests served from this entry (informational).
    requests: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def count_request(self) -> None:
        with self._lock:
            self.requests += 1

    def info(self) -> Dict[str, object]:
        """JSON-safe description for the ``datasets`` endpoint."""
        points = self.engine.points
        return {
            "name": self.name,
            "tenant": self.tenant,
            "source": self.source,
            "n": int(len(points)),
            "d": int(points.shape[1]) if points.ndim == 2 and len(points) else 0,
            "fingerprint": self.engine.fingerprint,
            "requests": self.requests,
            # Per-algorithm execution counts: the exactly-once evidence
            # the coalescing smoke asserts on over the wire.
            "runs": self.engine.run_counts(),
            "cache": self.engine.cache.stats(),
        }


class DatasetRegistry:
    """Thread-safe name -> :class:`DatasetEntry` map with tenant quotas.

    Parameters
    ----------
    tenant_quota_mb:
        Byte quota (estimated, in MB) for each tenant's
        :class:`~repro.engine.cache.StructureCache`; ``None`` leaves the
        caches entry-capped only.
    workers:
        Default ``workers`` argument for every engine the registry builds
        (same semantics as :class:`~repro.engine.ClusteringEngine`).
    max_datasets:
        Hard cap on registered datasets — registration is memory
        commitment, so it is admission-controlled like everything else.
    """

    def __init__(
        self,
        *,
        tenant_quota_mb: Optional[float] = None,
        workers=None,
        max_datasets: int = 64,
    ) -> None:
        if int(max_datasets) < 1:
            raise ParameterError(f"max_datasets must be >= 1; got {max_datasets}")
        if tenant_quota_mb is not None and not float(tenant_quota_mb) > 0:
            raise ParameterError(
                f"tenant_quota_mb must be positive (or None); got {tenant_quota_mb}"
            )
        self.tenant_quota_mb = None if tenant_quota_mb is None else float(tenant_quota_mb)
        self.workers = workers
        self.max_datasets = int(max_datasets)
        self._lock = threading.Lock()
        self._entries: Dict[str, DatasetEntry] = {}
        self._tenant_caches: Dict[str, StructureCache] = {}

    # ------------------------------------------------------------- mutation

    def _tenant_cache(self, tenant: str) -> StructureCache:
        """The tenant's quota'd cache (created on first use; caller locks)."""
        cache = self._tenant_caches.get(tenant)
        if cache is None:
            cache = self._tenant_caches[tenant] = StructureCache(
                max_mb=self.tenant_quota_mb
            )
        return cache

    def register(
        self,
        name: str,
        points=None,
        path: Optional[str] = None,
        *,
        tenant: str = "default",
        on_bad_rows: str = "raise",
    ) -> Dict[str, object]:
        """Register ``points`` (or the file at ``path``) under ``name``.

        Exactly one of ``points`` / ``path`` must be given; paths go
        through the hardened loader of :mod:`repro.data.io` with the given
        ``on_bad_rows`` policy.  Re-registering a name is idempotent when
        the data fingerprint matches and a :class:`ParameterError`
        otherwise — silently swapping a dataset under live traffic would
        invalidate every coalesced and cached answer in flight.
        """
        name = str(name)
        if not name:
            raise ParameterError("dataset name must be non-empty")
        if (points is None) == (path is None):
            raise ParameterError("register() needs exactly one of points= or path=")
        if path is not None:
            from repro.data.io import load_points

            pts = load_points(str(path), on_bad_rows=on_bad_rows)
            source = str(path)
        else:
            pts = points
            source = "array"
        with self._lock:
            cache = self._tenant_cache(str(tenant))
        # Engine construction validates and fingerprints the points; keep
        # it outside the lock so a slow load cannot block lookups.
        engine = ClusteringEngine(pts, cache=cache, workers=self.workers)
        entry = DatasetEntry(name=name, engine=engine, tenant=str(tenant), source=source)
        with self._lock:
            existing = self._entries.get(name)
            if existing is not None:
                if existing.engine.fingerprint == engine.fingerprint:
                    return existing.info()
                raise ParameterError(
                    f"dataset {name!r} is already registered with different data "
                    f"(fingerprint {existing.engine.fingerprint[:12]!r}); "
                    "unregister it first"
                )
            if len(self._entries) >= self.max_datasets:
                raise ParameterError(
                    f"registry is full ({self.max_datasets} datasets); "
                    "unregister one first"
                )
            self._entries[name] = entry
        return entry.info()

    def unregister(self, name: str) -> bool:
        """Remove ``name``; True when it was present.

        The tenant cache is left intact: other datasets of the tenant may
        share entries with the departing one (same fingerprint keys), and
        LRU eviction reclaims orphaned structures on its own.
        """
        with self._lock:
            return self._entries.pop(str(name), None) is not None

    def set_tenant_quota(self, tenant: str, max_mb: Optional[float]) -> None:
        """Re-cap one tenant's structure cache (evicting down if needed)."""
        with self._lock:
            cache = self._tenant_cache(str(tenant))
        cache.set_budget(max_mb)

    # -------------------------------------------------------------- lookup

    def get(self, name: str) -> DatasetEntry:
        """The entry for ``name``; :class:`UnknownDatasetError` if absent."""
        with self._lock:
            entry = self._entries.get(str(name))
            if entry is None:
                raise UnknownDatasetError(str(name), known=self._entries.keys())
            return entry

    def names(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._entries))

    def describe(self) -> Dict[str, Dict[str, object]]:
        """Info dicts for every registered dataset (the ``datasets`` op)."""
        with self._lock:
            entries = list(self._entries.values())
        return {entry.name: entry.info() for entry in entries}

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return str(name) in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
