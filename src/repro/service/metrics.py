"""Prometheus text exposition and the ``/metrics`` + ``/healthz`` endpoints.

Operating the service needs two read paths that do not compete with the
request queue: a scrapeable gauge/counter snapshot (``GET /metrics``, the
`Prometheus text format
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_) and a
liveness/readiness probe (``GET /healthz``).  Both are served by a
deliberately tiny HTTP/1.0-style responder on the service's own event
loop — rendering a snapshot is microseconds of dict walking, so it never
needs an executor thread, and depending on a web framework for two
``GET`` routes would be the heaviest dependency in the repository.

``/healthz`` answers ``200 {"ok": true}`` while the service accepts
work and ``503 {"ok": false, "draining": true}`` once the drain protocol
has started — exactly what a load balancer's readiness check wants: the
process is alive (it answered) but should receive no new traffic.
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, List, Tuple

#: Every metric is prefixed so scrapes from mixed fleets stay groupable.
PREFIX = "repro_service"

#: ``ServiceStats`` counters exported as ``..._requests_total{outcome=}``.
_OUTCOMES = (
    "accepted",
    "rejected",
    "expired",
    "coalesced",
    "executed",
    "degraded",
    "failed",
    "quarantined",
)

#: Per-tenant fairness gauges/counters from ``FairScheduler.snapshot()``.
_TENANT_GAUGES = ("weight", "queued", "inflight")
_TENANT_COUNTERS = ("dispatched", "shed", "expired")


def _escape(value: str) -> str:
    """Escape a label value per the exposition format."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace("\n", "\\n")
        .replace('"', '\\"')
    )


def _line(name: str, value, labels: Dict[str, str] = None) -> str:
    label_txt = ""
    if labels:
        inner = ",".join(f'{k}="{_escape(v)}"' for k, v in sorted(labels.items()))
        label_txt = "{" + inner + "}"
    if isinstance(value, bool):
        value = int(value)
    return f"{PREFIX}_{name}{label_txt} {float(value):g}"


def render_metrics(stats: Dict[str, object]) -> str:
    """Render one ``service_stats()`` snapshot as Prometheus text.

    Takes the already-built stats dict (not the service) so tests can
    render golden snapshots without standing a service up.
    """
    out: List[str] = []

    def head(name: str, kind: str, help_: str) -> None:
        out.append(f"# HELP {PREFIX}_{name} {help_}")
        out.append(f"# TYPE {PREFIX}_{name} {kind}")

    head("uptime_seconds", "gauge", "Seconds since the service started.")
    out.append(_line("uptime_seconds", stats.get("uptime", 0.0)))
    head("queue_depth", "gauge", "Outstanding admitted requests.")
    out.append(_line("queue_depth", stats.get("queue_depth", 0)))
    head("queue_limit", "gauge", "Admission bound (max_queue).")
    out.append(_line("queue_limit", stats.get("queue_limit", 0)))
    head("in_flight", "gauge", "Coalesced computations currently executing.")
    out.append(_line("in_flight", stats.get("in_flight", 0)))
    head("draining", "gauge", "1 while the drain protocol refuses new work.")
    out.append(_line("draining", bool(stats.get("draining", False))))
    head("datasets", "gauge", "Datasets in the registry catalog.")
    out.append(_line("datasets", stats.get("datasets", 0)))

    head("requests_total", "counter", "Requests by lifecycle outcome.")
    for outcome in _OUTCOMES:
        out.append(_line("requests_total", stats.get(outcome, 0),
                         {"outcome": outcome}))
    head("retries_total", "counter", "Transient-failure dispatch retries.")
    out.append(_line("retries_total", stats.get("retries", 0)))

    head("tier_executions_total", "counter", "Executions by served tier.")
    for tier, count in sorted((stats.get("tiers") or {}).items()):
        out.append(_line("tier_executions_total", count, {"tier": tier}))

    tenants = stats.get("tenants") or {}
    head("tenant_weight", "gauge", "Configured fair-queueing weight.")
    head("tenant_queued", "gauge", "Requests waiting in the tenant queue.")
    head("tenant_inflight", "gauge", "Execution slots the tenant holds.")
    head("tenant_dispatched_total", "counter",
         "Execution slots granted to the tenant.")
    head("tenant_shed_total", "counter",
         "Tenant requests shed at enqueue (quota / hopeless deadline).")
    head("tenant_expired_total", "counter",
         "Tenant requests whose deadline expired while queued.")
    for tenant, share in sorted(tenants.items()):
        labels = {"tenant": tenant}
        for gauge in _TENANT_GAUGES:
            out.append(_line(f"tenant_{gauge}", share.get(gauge, 0), labels))
        for counter in _TENANT_COUNTERS:
            out.append(_line(f"tenant_{counter}_total", share.get(counter, 0),
                             labels))

    breakers = stats.get("breakers") or {}
    head("breaker_open", "gauge", "1 while the dataset's breaker is open.")
    for dataset, state in sorted(breakers.items()):
        out.append(_line("breaker_open", bool(state.get("open", False)),
                         {"dataset": dataset}))
    return "\n".join(out) + "\n"


def _response(status: int, reason: str, body: str, content_type: str) -> bytes:
    payload = body.encode("utf-8")
    head = (
        f"HTTP/1.0 {status} {reason}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(payload)}\r\n"
        "Connection: close\r\n"
        "\r\n"
    )
    return head.encode("ascii") + payload


def _route(service, method: str, path: str) -> Tuple[int, str, str, str]:
    """``(status, reason, body, content_type)`` for one request line."""
    path = path.split("?", 1)[0]
    if method != "GET":
        return (405, "Method Not Allowed", "method not allowed\n", "text/plain")
    if path == "/metrics":
        body = render_metrics(service.service_stats())
        return (200, "OK", body, "text/plain; version=0.0.4; charset=utf-8")
    if path == "/healthz":
        draining = service.admission.draining
        body = json.dumps({"ok": not draining, "draining": draining}) + "\n"
        if draining:
            return (503, "Service Unavailable", body, "application/json")
        return (200, "OK", body, "application/json")
    return (404, "Not Found", "not found\n", "text/plain")


async def serve_metrics(service, host: str = "127.0.0.1", port: int = 0):
    """Start the observability HTTP server; returns the asyncio server.

    The caller owns it the same way it owns ``serve_tcp``'s server:
    ``server.sockets[0].getsockname()`` has the bound port, closing it
    stops the endpoint.  Requests are strictly read-only — nothing here
    can mutate service state, so exposing it more widely than the wire
    port is safe (though the default bind is still localhost).
    """

    async def on_connection(reader: asyncio.StreamReader, writer) -> None:
        try:
            request_line = await asyncio.wait_for(reader.readline(), timeout=5.0)
            parts = request_line.decode("latin-1", "replace").split()
            # Drain headers; HTTP/1.0 + Connection: close means we never
            # need their contents.
            while True:
                line = await asyncio.wait_for(reader.readline(), timeout=5.0)
                if not line or line in (b"\r\n", b"\n"):
                    break
            if len(parts) < 2:
                writer.write(_response(400, "Bad Request", "bad request\n",
                                       "text/plain"))
            else:
                writer.write(_response(*_route(service, parts[0], parts[1])))
            await writer.drain()
        except (asyncio.TimeoutError, ConnectionError, OSError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    return await asyncio.start_server(on_connection, host, port)
