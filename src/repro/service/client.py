"""An in-process client for :class:`~repro.service.ClusteringService`.

The service is an asyncio object; most of this repo's callers (tests,
benchmarks, notebooks) are synchronous.  :class:`ServiceClient` bridges
the two: it owns a background thread running a private event loop, hosts
one service on it, and exposes blocking methods that submit coroutines
via :func:`asyncio.run_coroutine_threadsafe`.

Because every call goes through the *real* service — admission,
coalescing, degradation, breaker — the client is also the fixture the
robustness tests drive: :meth:`cluster_many` submits a batch of requests
concurrently (all landing on the loop before any completes), which is
exactly the shape that exercises single-flight coalescing and queue-full
shedding deterministically.
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import Future
from typing import Dict, List, Optional, Sequence

from repro.core.serialize import from_dict
from repro.service.server import ClusteringService


class ServiceClient:
    """Blocking facade over a :class:`ClusteringService` on a private loop.

    Parameters
    ----------
    service:
        The service to host; a fresh one (built from ``**kwargs``:
        ``registry=``, ``policy=``) when omitted.  The client owns the
        loop and, on :meth:`close`, the service's executor.

    Use as a context manager::

        with ServiceClient(policy=AdmissionPolicy(max_queue=8)) as client:
            client.register("toy", points)
            result = client.cluster("toy", eps=0.05, min_pts=10)
            result.meta["service"]["tier"]   # "exact" | "approx" | "sampled"
    """

    def __init__(self, service: Optional[ClusteringService] = None, **kwargs) -> None:
        self.service = service if service is not None else ClusteringService(**kwargs)
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._run_loop, name="repro-service-client", daemon=True
        )
        self._thread.start()

    def _run_loop(self) -> None:
        asyncio.set_event_loop(self._loop)
        self._loop.run_forever()

    # ------------------------------------------------------------ plumbing

    def submit(self, coro) -> Future:
        """Schedule a coroutine on the service loop; returns its Future."""
        return asyncio.run_coroutine_threadsafe(coro, self._loop)

    def _call(self, coro, timeout: Optional[float] = None):
        return self.submit(coro).result(timeout)

    def close(self) -> None:
        """Stop the loop, join the thread, release the service executor."""
        if self._loop.is_running():
            self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=5.0)
        if not self._loop.is_running():  # pragma: no branch
            self._loop.close()
        self.service.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------- dataset

    def register(self, name, points=None, path=None, *, tenant="default",
                 on_bad_rows="raise") -> Dict[str, object]:
        # The registry is thread-safe on its own; no loop hop needed.
        return self.service.register(
            name, points=points, path=path, tenant=tenant, on_bad_rows=on_bad_rows
        )

    def unregister(self, name) -> bool:
        return self.service.unregister(name)

    def datasets(self) -> Dict[str, Dict[str, object]]:
        return self.service.datasets()

    def stats(self) -> Dict[str, object]:
        return self.service.service_stats()

    # ------------------------------------------------------------ requests

    def cluster(
        self,
        dataset: str,
        eps: float,
        min_pts: int,
        *,
        rho: Optional[float] = None,
        algorithm: Optional[str] = None,
        workers=None,
        shm=None,
        time_budget: Optional[float] = None,
        tier: Optional[str] = None,
        timeout: Optional[float] = None,
    ):
        """One blocking cluster request; returns a ``Clustering``.

        The response's ``{tier, reason, coalesced}`` metadata is available
        as ``result.meta["service"]``.  Structured service errors
        (:class:`~repro.errors.ServiceOverloadError`, ...) propagate as
        exceptions, exactly as the service raised them.
        """
        response = self._call(
            self.service.cluster(
                dataset, eps, min_pts, rho=rho, algorithm=algorithm,
                workers=workers, shm=shm, time_budget=time_budget, tier=tier,
            ),
            timeout=timeout,
        )
        return self._to_clustering(response)

    def cluster_many(
        self,
        requests: Sequence[Dict[str, object]],
        *,
        timeout: Optional[float] = None,
        return_exceptions: bool = True,
    ) -> List[object]:
        """Submit many requests concurrently; collect results in order.

        Every request dict takes the :meth:`cluster` keywords plus the
        positional trio as ``dataset`` / ``eps`` / ``min_pts``.  All
        coroutines are scheduled before any result is awaited, so
        identical requests genuinely race — the coalescing and shedding
        paths, not the sequential cache, serve the duplicates.  With
        ``return_exceptions`` (the default) failures come back in-slot as
        exception objects instead of aborting the batch.
        """
        futures = [
            self.submit(
                self.service.cluster(
                    req["dataset"], req["eps"], req["min_pts"],
                    rho=req.get("rho"),
                    algorithm=req.get("algorithm"),
                    workers=req.get("workers"),
                    shm=req.get("shm"),
                    time_budget=req.get("time_budget"),
                    tier=req.get("tier"),
                )
            )
            for req in requests
        ]
        out: List[object] = []
        for future in futures:
            try:
                out.append(self._to_clustering(future.result(timeout)))
            except Exception as exc:  # noqa: BLE001 - collected, not hidden
                if not return_exceptions:
                    raise
                out.append(exc)
        return out

    @staticmethod
    def _to_clustering(response: Dict[str, object]):
        result = from_dict(response["clustering"])
        # Coalesced waiters share the leader's response payload, and
        # from_dict reuses its nested meta dict — copy before annotating
        # this caller's view (coalesced-ness is per request, not per
        # computation).
        meta = dict(result.meta)
        service = dict(meta.get("service") or {})
        service["coalesced"] = response.get("coalesced", False)
        service["elapsed"] = response.get("elapsed")
        meta["service"] = service
        result.meta = meta
        return result
