"""Clients for :class:`~repro.service.ClusteringService`.

The service is an asyncio object; most of this repo's callers (tests,
benchmarks, notebooks) are synchronous.  :class:`ServiceClient` bridges
the two: it owns a background thread running a private event loop, hosts
one service on it, and exposes blocking methods that submit coroutines
via :func:`asyncio.run_coroutine_threadsafe`.

Because every call goes through the *real* service — admission,
coalescing, degradation, breaker — the client is also the fixture the
robustness tests drive: :meth:`cluster_many` submits a batch of requests
concurrently (all landing on the loop before any completes), which is
exactly the shape that exercises single-flight coalescing and queue-full
shedding deterministically.

:class:`TcpServiceClient` speaks the wire protocol instead: line-delimited
JSON over a localhost TCP connection to a ``repro-dbscan serve --port``
process.  It is what the restart/fairness oracles use — the server is a
*separate process* there, so ``kill -9`` means what it says.

Both clients can honour the service's overload verdicts: when
``retries > 0``, a :class:`~repro.errors.ServiceOverloadError` carrying a
``retry_after`` hint is retried after sleeping that long (bounded,
jittered).  Off by default — a retry loop the caller did not ask for
turns load shedding back into queueing.
"""

from __future__ import annotations

import asyncio
import json
import random
import socket
import threading
import time
from concurrent.futures import Future
from typing import Dict, List, Optional, Sequence

from repro.core.serialize import from_dict
from repro.errors import ServiceOverloadError
from repro.service.server import ClusteringService

#: Longest single ``retry_after`` nap either client will take (seconds).
MAX_RETRY_SLEEP = 5.0


def _retry_sleep(retry_after: Optional[float]) -> float:
    """Bounded, jittered sleep for one overload retry.

    The jitter (up to +25%) keeps a burst of shed clients from
    re-arriving in lockstep and being shed again as one thundering herd.
    """
    base = min(float(retry_after or 0.1), MAX_RETRY_SLEEP)
    return base * (1.0 + 0.25 * random.random())


class ServiceClient:
    """Blocking facade over a :class:`ClusteringService` on a private loop.

    Parameters
    ----------
    service:
        The service to host; a fresh one (built from ``**kwargs``:
        ``registry=``, ``policy=``) when omitted.  The client owns the
        loop and, on :meth:`close`, the service's executor.
    retries:
        Extra attempts for a :meth:`cluster` call shed with a
        ``retry_after`` hint (0 = never retry, the default).  Each retry
        sleeps the hinted time (bounded by ``MAX_RETRY_SLEEP``, +25%
        jitter).  Sheds without a hint (expired deadlines) never retry —
        the verdict is final, not transient.

    Use as a context manager::

        with ServiceClient(policy=AdmissionPolicy(max_queue=8)) as client:
            client.register("toy", points)
            result = client.cluster("toy", eps=0.05, min_pts=10)
            result.meta["service"]["tier"]   # "exact" | "approx" | "sampled"
    """

    def __init__(
        self,
        service: Optional[ClusteringService] = None,
        *,
        retries: int = 0,
        **kwargs,
    ) -> None:
        if int(retries) < 0:
            raise ValueError(f"retries must be >= 0; got {retries}")
        self.retries = int(retries)
        self.service = service if service is not None else ClusteringService(**kwargs)
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._run_loop, name="repro-service-client", daemon=True
        )
        self._thread.start()

    def _run_loop(self) -> None:
        asyncio.set_event_loop(self._loop)
        self._loop.run_forever()

    # ------------------------------------------------------------ plumbing

    def submit(self, coro) -> Future:
        """Schedule a coroutine on the service loop; returns its Future."""
        return asyncio.run_coroutine_threadsafe(coro, self._loop)

    def _call(self, coro, timeout: Optional[float] = None):
        return self.submit(coro).result(timeout)

    def close(self) -> None:
        """Stop the loop, join the thread, release the service executor."""
        if self._loop.is_running():
            self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=5.0)
        if not self._loop.is_running():  # pragma: no branch
            self._loop.close()
        self.service.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------- dataset

    def register(self, name, points=None, path=None, *, tenant="default",
                 on_bad_rows="raise") -> Dict[str, object]:
        # The registry is thread-safe on its own; no loop hop needed.
        return self.service.register(
            name, points=points, path=path, tenant=tenant, on_bad_rows=on_bad_rows
        )

    def unregister(self, name) -> bool:
        return self.service.unregister(name)

    def datasets(self) -> Dict[str, Dict[str, object]]:
        return self.service.datasets()

    def stats(self) -> Dict[str, object]:
        return self.service.service_stats()

    # ------------------------------------------------------------ requests

    def cluster(
        self,
        dataset: str,
        eps: float,
        min_pts: int,
        *,
        rho: Optional[float] = None,
        algorithm: Optional[str] = None,
        workers=None,
        shm=None,
        time_budget: Optional[float] = None,
        tier: Optional[str] = None,
        tenant: Optional[str] = None,
        priority: int = 0,
        timeout: Optional[float] = None,
    ):
        """One blocking cluster request; returns a ``Clustering``.

        The response's ``{tier, reason, coalesced}`` metadata is available
        as ``result.meta["service"]``.  Structured service errors
        (:class:`~repro.errors.ServiceOverloadError`, ...) propagate as
        exceptions, exactly as the service raised them — unless the
        client was built with ``retries > 0`` and the error carries a
        ``retry_after`` hint, in which case the request is re-submitted
        after the hinted sleep, up to the retry budget.
        """
        attempts = 0
        while True:
            try:
                response = self._call(
                    self.service.cluster(
                        dataset, eps, min_pts, rho=rho, algorithm=algorithm,
                        workers=workers, shm=shm, time_budget=time_budget,
                        tier=tier, tenant=tenant, priority=priority,
                    ),
                    timeout=timeout,
                )
            except ServiceOverloadError as exc:
                if attempts >= self.retries or exc.retry_after is None:
                    raise
                attempts += 1
                time.sleep(_retry_sleep(exc.retry_after))
                continue
            return self._to_clustering(response)

    def cluster_many(
        self,
        requests: Sequence[Dict[str, object]],
        *,
        timeout: Optional[float] = None,
        return_exceptions: bool = True,
    ) -> List[object]:
        """Submit many requests concurrently; collect results in order.

        Every request dict takes the :meth:`cluster` keywords plus the
        positional trio as ``dataset`` / ``eps`` / ``min_pts``.  Every
        task is created in one loop callback, so all requests land on
        the service before the first one can complete and identical
        requests genuinely race — the coalescing and shedding paths, not
        the sequential cache, serve the duplicates.  (Submitting them
        one cross-thread hop at a time would let a fast leader finish
        and clear the single-flight window mid-batch, turning
        exactly-once into a race.)  ``timeout`` bounds the whole batch.
        With ``return_exceptions`` (the default) failures come back
        in-slot as exception objects instead of aborting the batch.
        """
        coros = [
            self.service.cluster(
                req["dataset"], req["eps"], req["min_pts"],
                rho=req.get("rho"),
                algorithm=req.get("algorithm"),
                workers=req.get("workers"),
                shm=req.get("shm"),
                time_budget=req.get("time_budget"),
                tier=req.get("tier"),
                tenant=req.get("tenant"),
                priority=req.get("priority", 0),
            )
            for req in requests
        ]

        async def run_batch():
            tasks = [asyncio.ensure_future(coro) for coro in coros]
            return await asyncio.gather(*tasks, return_exceptions=True)

        out: List[object] = []
        for result in self._call(run_batch(), timeout=timeout):
            if isinstance(result, BaseException):
                if not return_exceptions:
                    raise result
                out.append(result)
            else:
                out.append(self._to_clustering(result))
        return out

    @staticmethod
    def _to_clustering(response: Dict[str, object]):
        result = from_dict(response["clustering"])
        # Coalesced waiters share the leader's response payload, and
        # from_dict reuses its nested meta dict — copy before annotating
        # this caller's view (coalesced-ness is per request, not per
        # computation).
        meta = dict(result.meta)
        service = dict(meta.get("service") or {})
        service["coalesced"] = response.get("coalesced", False)
        service["elapsed"] = response.get("elapsed")
        meta["service"] = service
        result.meta = meta
        return result


class WireError(RuntimeError):
    """A wire error response with no richer local type (``.payload``)."""

    def __init__(self, payload: Dict[str, object]) -> None:
        super().__init__(f"{payload.get('code')}: {payload.get('message')}")
        self.payload = dict(payload)


def _raise_wire_error(payload: Dict[str, object]) -> None:
    """Reconstruct the structured exception a wire error response encodes."""
    code = payload.get("code")
    message = str(payload.get("message", ""))
    if code == "overload":
        raise ServiceOverloadError(
            message,
            reason=str(payload.get("reason", "queue-full")),
            queue_depth=int(payload.get("queue_depth", 0)),
            limit=int(payload.get("limit", 0)),
            retry_after=payload.get("retry_after"),
        )
    raise WireError(payload)


#: Wire ops safe to replay after a dropped connection: each either reads
#: state or (register / tenant) writes an absolute record whose replay
#: converges to the same state.  ``shutdown`` / ``drain`` are absent on
#: purpose — replaying one against a *restarted* server would kill it.
IDEMPOTENT_OPS = frozenset(
    {"cluster", "stats", "datasets", "ping", "register", "unregister", "tenant"}
)


class TcpServiceClient:
    """Blocking line-delimited-JSON client for ``repro-dbscan serve --port``.

    One socket, sequential request/response (the protocol allows
    out-of-order responses, but a synchronous client never has more than
    one request outstanding, so reading one line per request is exact).

    Parameters
    ----------
    host, port:
        Where the server listens (the CLI prints ``serving on H:P``).
    retries:
        Like :class:`ServiceClient`: extra attempts for requests shed
        with a ``retry_after`` hint.  Off by default.
    timeout:
        Socket timeout per response read (None = block forever).

    A connection that dies mid-request (``ConnectionResetError`` — the
    server was killed or restarted) is re-dialled **once**, and only for
    :data:`IDEMPOTENT_OPS`; a non-idempotent request surfaces the error
    to the caller, who alone knows whether replaying it is safe.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        retries: int = 0,
        timeout: Optional[float] = 30.0,
    ) -> None:
        if int(retries) < 0:
            raise ValueError(f"retries must be >= 0; got {retries}")
        self.host = str(host)
        self.port = int(port)
        self.retries = int(retries)
        self.timeout = timeout
        self._sock: Optional[socket.socket] = None
        self._fh = None
        self._next_id = 0
        self._lock = threading.Lock()

    # ---------------------------------------------------------- connection

    def connect(self) -> "TcpServiceClient":
        with self._lock:
            self._connect_locked()
        return self

    def _connect_locked(self) -> None:
        self._close_locked()
        sock = socket.create_connection((self.host, self.port), timeout=self.timeout)
        self._sock = sock
        self._fh = sock.makefile("rwb")

    def _close_locked(self) -> None:
        if self._fh is not None:
            try:
                self._fh.close()
            except OSError:
                pass
            self._fh = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def close(self) -> None:
        with self._lock:
            self._close_locked()

    def __enter__(self) -> "TcpServiceClient":
        return self.connect()

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------ requests

    def _roundtrip_locked(self, payload: Dict[str, object]) -> Dict[str, object]:
        if self._fh is None:
            self._connect_locked()
        self._fh.write((json.dumps(payload) + "\n").encode())
        self._fh.flush()
        line = self._fh.readline()
        if not line:
            # EOF mid-response behaves like a reset: the server is gone.
            raise ConnectionResetError("server closed the connection")
        return json.loads(line)

    def request(self, op: str, **fields) -> Dict[str, object]:
        """One wire request; returns the ``result`` object or raises.

        Overload errors become :class:`ServiceOverloadError` (retried per
        the client's budget when hinted); every other error response
        raises :class:`WireError` carrying the full payload.
        """
        attempts = 0
        while True:
            with self._lock:
                self._next_id += 1
                payload = {"id": self._next_id, "op": op, **fields}
                try:
                    response = self._roundtrip_locked(payload)
                except (ConnectionResetError, BrokenPipeError):
                    if op not in IDEMPOTENT_OPS:
                        self._close_locked()
                        raise
                    # One reconnect, one replay; a second reset is real.
                    self._connect_locked()
                    response = self._roundtrip_locked(payload)
            if response.get("ok"):
                return response.get("result", {})
            try:
                _raise_wire_error(response.get("error") or {})
            except ServiceOverloadError as exc:
                if attempts >= self.retries or exc.retry_after is None:
                    raise
                attempts += 1
                time.sleep(_retry_sleep(exc.retry_after))

    # Convenience wrappers mirroring ServiceClient's surface.

    def ping(self) -> bool:
        return bool(self.request("ping").get("pong"))

    def stats(self) -> Dict[str, object]:
        return self.request("stats")

    def datasets(self) -> Dict[str, Dict[str, object]]:
        return self.request("datasets")

    def register(self, name, *, path, tenant="default", on_bad_rows="raise"):
        return self.request(
            "register", name=name, path=path, tenant=tenant, on_bad_rows=on_bad_rows
        )

    def configure_tenant(self, name, **fields) -> Dict[str, object]:
        return self.request("tenant", name=name, **fields)

    def shutdown(self) -> None:
        """Ask the server to stop (not retried, not replayed)."""
        try:
            self.request("shutdown")
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass

    def cluster_raw(self, dataset, eps, min_pts, **fields) -> Dict[str, object]:
        """The raw response dict (``clustering`` still serialized)."""
        return self.request(
            "cluster", dataset=dataset, eps=eps, min_pts=min_pts, **fields
        )

    def cluster(self, dataset, eps, min_pts, **fields):
        """A deserialized ``Clustering``, like :meth:`ServiceClient.cluster`."""
        return ServiceClient._to_clustering(self.cluster_raw(dataset, eps, min_pts, **fields))
