"""Single-flight coalescing, weighted fair queueing, and the counters.

Identical concurrent requests are the common case for a clustering
service — a dashboard fans one parameter setting out to many widgets, a
hyper-parameter sweep retries the eps it already asked for — and the
engine's structure cache only helps *sequential* repeats.
:class:`SingleFlight` closes the concurrent window: the first request for
a :class:`RequestKey` becomes the *leader* and actually computes; every
request arriving while it is in flight *attaches* to the same future and
receives the identical response object.  N identical concurrent requests
therefore execute the clustering exactly once (the acceptance criterion
verified via :meth:`ClusteringEngine.run_counts` and the kernel counters
in ``tests/test_service.py``).

:class:`FairScheduler` replaces the old first-come-first-served execution
gate.  FIFO under multi-tenant load has a well-known failure: a tenant
that bursts 16 requests parks them all at the head of the queue, and
every other tenant waits behind the whole burst.  The scheduler instead
keeps one queue *per tenant* and dispatches by **deficit round robin** —
each pass over the active tenants adds the tenant's configured weight to
its deficit, and a tenant whose deficit covers a request's cost (1) gets
one execution slot — so completed-request shares converge to the weight
ratio regardless of arrival order.  Within a tenant the queue is ordered
by **priority, then earliest deadline**, so soon-to-expire requests run
first, and requests whose deadline already passed are shed at enqueue or
pop time with a structured verdict instead of burning a slot on work
nobody can use.  Per-tenant quotas bound queued and in-flight requests,
so one tenant's backlog can never fill the shared admission bound.

All of this runs on the service's event loop — one thread — so the maps
need no lock; the executor threads doing the actual clustering never
touch them.
"""

from __future__ import annotations

import asyncio
import heapq
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ServiceOverloadError
from repro.runtime.deadline import Deadline


@dataclass(frozen=True)
class RequestKey:
    """What makes two cluster requests "the same computation".

    The coalescing key of the tentpole spec: ``(dataset, eps, min_pts,
    rho, workers, shm)`` plus the algorithm family and the tier the caller
    *requested* — an explicit ``tier="sampled"`` request must not share a
    flight with an ``"approx"`` one, or the approx caller silently
    receives the low-quality sampled result.  Deliberately *excluded*:
    the tier the ladder actually *dispatches* (decided once, at dispatch
    time, for the single in-flight computation — every attached waiter
    receives the same result and the same ``{tier, reason}`` metadata)
    and the deadline (each waiter enforces its own while it waits).
    """

    dataset: str
    eps: float
    min_pts: int
    rho: Optional[float]
    workers: object
    algorithm: str = "grid"
    requested: str = "exact"
    shm: object = None

    @classmethod
    def build(
        cls,
        dataset: str,
        eps: float,
        min_pts: int,
        *,
        rho: Optional[float] = None,
        workers=None,
        algorithm: str = "grid",
        requested: str = "exact",
        shm=None,
    ) -> "RequestKey":
        # A ParallelConfig is not hashable; its repr is deterministic and
        # total, which is all a coalescing key needs.
        if workers is not None and not isinstance(workers, (int, str)):
            workers = repr(workers)
        if shm is not None and not isinstance(shm, (bool, str)):
            shm = repr(shm)
        return cls(
            dataset=str(dataset),
            eps=float(eps),
            min_pts=int(min_pts),
            rho=None if rho is None else float(rho),
            workers=workers,
            algorithm=str(algorithm),
            requested=str(requested),
            shm=shm,
        )


@dataclass
class _Flight:
    """One in-flight computation and the requests attached to it."""

    future: "asyncio.Future"
    waiters: int = 1  # the leader counts too


class SingleFlight:
    """The key -> in-flight-future map (event-loop confined)."""

    def __init__(self) -> None:
        self._flights: Dict[RequestKey, _Flight] = {}

    def acquire(self, key: RequestKey) -> Tuple[_Flight, bool]:
        """Join the flight for ``key``; the bool is "you are the leader".

        The leader must eventually call :meth:`resolve` or
        :meth:`resolve_error` — every attached waiter is awaiting the
        flight's future, and an unresolved future is a hung client.
        """
        flight = self._flights.get(key)
        if flight is not None and not flight.future.done():
            flight.waiters += 1
            return flight, False
        flight = _Flight(future=asyncio.get_running_loop().create_future())
        self._flights[key] = flight
        return flight, True

    def resolve(self, key: RequestKey, response: Dict[str, object]) -> None:
        """Deliver the leader's response to every attached waiter."""
        flight = self._flights.pop(key, None)
        if flight is not None and not flight.future.done():
            flight.future.set_result(response)

    def resolve_error(self, key: RequestKey, exc: BaseException) -> None:
        """Fail every attached waiter with the leader's (structured) error."""
        flight = self._flights.pop(key, None)
        if flight is not None and not flight.future.done():
            flight.future.set_exception(exc)
            # The leader re-raises on its own path; if no waiter ever
            # awaits the future, don't let asyncio log a spurious
            # "exception was never retrieved" warning.
            if flight.waiters <= 1:
                flight.future.exception()

    def in_flight(self) -> int:
        return len(self._flights)


@dataclass
class _Waiter:
    """One request waiting for an execution slot."""

    future: "asyncio.Future"
    tenant: str
    priority: int
    deadline: Optional[Deadline]
    seq: int
    #: Lazy-removal flag: a cancelled waiter stays in its heap until the
    #: dispatcher pops (and skips) it.
    cancelled: bool = False

    def sort_key(self) -> Tuple[float, float, int]:
        # Higher priority first, then earliest deadline (None = never
        # expires = last), then arrival order.
        remaining = self.deadline.remaining() if self.deadline is not None else None
        expiry = float("inf") if remaining is None else remaining
        return (-self.priority, expiry, self.seq)


@dataclass
class TenantShare:
    """Live scheduler accounting for one tenant (the fairness gauges)."""

    weight: float = 1.0
    deficit: float = 0.0
    inflight: int = 0
    #: Requests granted an execution slot over the scheduler's lifetime.
    dispatched: int = 0
    #: Requests shed at enqueue (tenant queue quota / hopeless deadline).
    shed: int = 0
    #: Requests shed at pop time because their deadline expired queued.
    expired: int = 0
    heap: List[Tuple[Tuple[float, float, int], "_Waiter"]] = field(
        default_factory=list, repr=False
    )

    def queued(self) -> int:
        return sum(1 for _, w in self.heap if not w.cancelled)


class FairScheduler:
    """Deficit-round-robin execution slots with per-tenant EDF queues.

    Parameters
    ----------
    slots:
        Concurrent executions (the old ``max_concurrency`` semaphore
        count).
    config:
        ``tenant -> (weight, max_queue, max_inflight)`` resolver; called
        at enqueue time so live re-configuration (weights changed through
        the registry) applies to the next request without a restart.
        ``max_queue`` / ``max_inflight`` of ``None`` mean unbounded /
        bounded only by ``slots``.

    Event-loop confined, like :class:`SingleFlight`.  Usage::

        await scheduler.acquire(tenant, deadline, priority)
        try:
            ...  # run on an executor thread
        finally:
            scheduler.release(tenant)
    """

    def __init__(
        self,
        slots: int,
        config: Optional[Callable[[str], Tuple[float, Optional[int], Optional[int]]]] = None,
    ) -> None:
        if int(slots) < 1:
            raise ValueError(f"slots must be >= 1; got {slots}")
        self.slots = int(slots)
        self._free = int(slots)
        self._config = config if config is not None else (lambda tenant: (1.0, None, None))
        self._shares: Dict[str, TenantShare] = {}
        #: Round-robin order over tenants (stable across dispatches).
        self._ring: List[str] = []
        #: DRR service pointer: the tenant currently being visited, and
        #: whether this visit already granted it its quantum.  Persists
        #: across dispatch calls so a tenant spends its whole deficit
        #: before the pointer moves on — and only gets a fresh quantum
        #: when the pointer *arrives*, not on every free slot.
        self._cursor = 0
        self._topped = False
        self._seq = 0

    # ------------------------------------------------------------ helpers

    def _share(self, tenant: str) -> TenantShare:
        share = self._shares.get(tenant)
        if share is None:
            share = self._shares[tenant] = TenantShare()
            self._ring.append(tenant)
        return share

    def _resolved(self, tenant: str) -> Tuple[float, Optional[int], Optional[int]]:
        weight, max_queue, max_inflight = self._config(tenant)
        return (max(float(weight), 1e-9), max_queue, max_inflight)

    def _overload(self, reason: str, message: str, retry_after: Optional[float]) -> ServiceOverloadError:
        return ServiceOverloadError(
            message,
            reason=reason,
            queue_depth=self.total_queued(),
            limit=self.slots,
            retry_after=retry_after,
        )

    def total_queued(self) -> int:
        return sum(share.queued() for share in self._shares.values())

    def inflight(self) -> int:
        return sum(share.inflight for share in self._shares.values())

    # ------------------------------------------------------------ enqueue

    async def acquire(
        self,
        tenant: str,
        deadline: Optional[Deadline] = None,
        priority: int = 0,
    ) -> None:
        """Wait for an execution slot under the tenant's quota and weight.

        Sheds immediately (structured :class:`ServiceOverloadError`) when
        the tenant's queue quota is full or the request's deadline is
        already hopeless — queueing it would only delay the verdict past
        the point where retrying elsewhere could still help.
        """
        tenant = str(tenant)
        share = self._share(tenant)
        weight, max_queue, max_inflight = self._resolved(tenant)
        share.weight = weight
        if deadline is not None and deadline.expired():
            share.shed += 1
            raise self._overload(
                "deadline-expired",
                f"deadline expired before an execution slot was free (tenant {tenant!r})",
                None,
            )
        if max_queue is not None and share.queued() >= max_queue:
            share.shed += 1
            raise self._overload(
                "tenant-queue-full",
                f"tenant {tenant!r} already has {share.queued()} request(s) "
                f"queued (quota {max_queue})",
                # One slot's worth of patience per queued request ahead.
                max(0.1, share.queued() / float(self.slots)),
            )
        self._seq += 1
        waiter = _Waiter(
            future=asyncio.get_running_loop().create_future(),
            tenant=tenant,
            priority=int(priority),
            deadline=deadline,
            seq=self._seq,
        )
        heapq.heappush(share.heap, (waiter.sort_key(), waiter))
        self._dispatch()
        try:
            await waiter.future
        except asyncio.CancelledError:
            if waiter.future.done() and not waiter.future.cancelled():
                # The slot was granted between the cancellation and this
                # handler: give it back or it leaks forever.
                self.release(tenant, completed=False)
            waiter.cancelled = True
            raise

    def release(self, tenant: str, *, completed: bool = True) -> None:
        """Return a slot taken via :meth:`acquire`; wakes the next waiter."""
        share = self._shares.get(str(tenant))
        if share is not None and share.inflight > 0:
            share.inflight -= 1
            if not completed:
                share.dispatched = max(0, share.dispatched - 1)
        self._free = min(self.slots, self._free + 1)
        self._dispatch()

    # ----------------------------------------------------------- dispatch

    def _pop_live(self, share: TenantShare) -> Optional[_Waiter]:
        """Next live waiter of ``share`` (sheds expired ones on the way)."""
        while share.heap:
            _, waiter = heapq.heappop(share.heap)
            if waiter.cancelled or waiter.future.done():
                continue
            if waiter.deadline is not None and waiter.deadline.expired():
                share.expired += 1
                waiter.future.set_exception(
                    self._overload(
                        "deadline-expired",
                        "deadline expired while queued for an execution slot "
                        f"(tenant {waiter.tenant!r})",
                        None,
                    )
                )
                continue
            return waiter
        return None

    def _eligible(self) -> List[str]:
        out = []
        for tenant in self._ring:
            share = self._shares[tenant]
            if not share.queued():
                # Standard DRR: an idle tenant accumulates no deficit
                # (otherwise it could starve everyone after a long sleep).
                share.deficit = 0.0
                continue
            _, _, max_inflight = self._resolved(tenant)
            limit = self.slots if max_inflight is None else int(max_inflight)
            if share.inflight >= limit:
                continue
            out.append(tenant)
        return out

    def _advance(self) -> None:
        self._cursor = (self._cursor + 1) % max(1, len(self._ring))
        self._topped = False

    def _dispatch(self) -> None:
        """Grant free slots by deficit round robin until none can move.

        The service pointer (:attr:`_cursor`) visits tenants in ring
        order; arriving at a tenant grants it one quantum (its weight),
        and the pointer stays while the tenant spends its deficit — one
        request per whole unit — then moves on.  A pointer that always
        restarted at the ring head would let the first heavy tenant
        monopolize every free slot while its (large) quantum lasted; the
        rotating pointer is what makes the *interleaving* fair, not just
        the long-run shares.
        """
        while self._free > 0:
            eligible = set(self._eligible())
            if not eligible:
                return
            granted = False
            for _ in range(len(self._ring) + 1):
                tenant = self._ring[self._cursor % len(self._ring)]
                share = self._shares[tenant]
                if tenant not in eligible:
                    self._advance()
                    continue
                if not self._topped:
                    share.deficit += share.weight
                    self._topped = True
                if share.deficit < 1.0:
                    self._advance()
                    continue
                waiter = self._pop_live(share)
                if waiter is None:
                    # Its queue held only dead work (cancelled/expired,
                    # now drained): nothing to spend deficit on here.
                    eligible.discard(tenant)
                    self._advance()
                    continue
                share.deficit -= 1.0
                share.inflight += 1
                share.dispatched += 1
                self._free -= 1
                waiter.future.set_result(None)
                granted = True
                break
            if not granted:
                # A full circuit added one quantum everywhere and nobody
                # crossed a whole unit: every eligible weight is < 1.
                # Jump all of them forward by the same k rounds — the
                # smallest that lets someone spend — preserving the
                # weight-proportional deficit ratios.
                live = [t for t in eligible if self._shares[t].queued()]
                if not live:
                    return
                k = max(
                    1,
                    min(
                        math.ceil(
                            max(0.0, 1.0 - self._shares[t].deficit)
                            / self._shares[t].weight
                        )
                        for t in live
                    ),
                )
                for tenant in live:
                    self._shares[tenant].deficit += k * self._shares[tenant].weight

    # -------------------------------------------------------------- stats

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Per-tenant gauges for the ``stats`` op and ``/metrics``."""
        out: Dict[str, Dict[str, object]] = {}
        for tenant, share in self._shares.items():
            out[tenant] = {
                "weight": share.weight,
                "queued": share.queued(),
                "inflight": share.inflight,
                "dispatched": share.dispatched,
                "shed": share.shed,
                "expired": share.expired,
            }
        return out


@dataclass
class ServiceStats:
    """Monotonic counters over the service's lifetime (the ``stats`` op)."""

    #: Requests admitted past the queue-depth bound.
    accepted: int = 0
    #: Requests shed *at* admission (queue full / deadline already
    #: expired); disjoint from ``accepted``.
    rejected: int = 0
    #: Accepted requests shed *after* admission because their deadline
    #: expired while queued for an execution slot or while waiting on a
    #: coalesced flight.
    expired: int = 0
    #: Requests that attached to an existing in-flight computation.
    coalesced: int = 0
    #: Clustering executions actually dispatched to the engine.
    executed: int = 0
    #: Executions served below the requested tier (ladder engaged).
    degraded: int = 0
    #: Executions that raised (any error reaching the response).
    failed: int = 0
    #: Transient-failure retries spent by the dispatcher.
    retries: int = 0
    #: Requests refused with :class:`DatasetQuarantinedError` by an open
    #: per-dataset circuit breaker (counted where the check raises).
    quarantined: int = 0
    #: Per-tier execution counts.
    tiers: Dict[str, int] = field(default_factory=dict)

    def count_tier(self, tier: str) -> None:
        self.tiers[tier] = self.tiers.get(tier, 0) + 1

    def as_dict(self) -> Dict[str, object]:
        return {
            "accepted": self.accepted,
            "rejected": self.rejected,
            "expired": self.expired,
            "coalesced": self.coalesced,
            "executed": self.executed,
            "degraded": self.degraded,
            "failed": self.failed,
            "retries": self.retries,
            "quarantined": self.quarantined,
            "tiers": dict(self.tiers),
        }
