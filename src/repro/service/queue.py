"""Single-flight request coalescing and the service's counters.

Identical concurrent requests are the common case for a clustering
service — a dashboard fans one parameter setting out to many widgets, a
hyper-parameter sweep retries the eps it already asked for — and the
engine's structure cache only helps *sequential* repeats.
:class:`SingleFlight` closes the concurrent window: the first request for
a :class:`RequestKey` becomes the *leader* and actually computes; every
request arriving while it is in flight *attaches* to the same future and
receives the identical response object.  N identical concurrent requests
therefore execute the clustering exactly once (the acceptance criterion
verified via :meth:`ClusteringEngine.run_counts` and the kernel counters
in ``tests/test_service.py``).

All of this runs on the service's event loop — one thread — so the map
needs no lock; the executor threads doing the actual clustering never
touch it.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple


@dataclass(frozen=True)
class RequestKey:
    """What makes two cluster requests "the same computation".

    The coalescing key of the tentpole spec: ``(dataset, eps, min_pts,
    rho, workers, shm)`` plus the algorithm family and the tier the caller
    *requested* — an explicit ``tier="sampled"`` request must not share a
    flight with an ``"approx"`` one, or the approx caller silently
    receives the low-quality sampled result.  Deliberately *excluded*:
    the tier the ladder actually *dispatches* (decided once, at dispatch
    time, for the single in-flight computation — every attached waiter
    receives the same result and the same ``{tier, reason}`` metadata)
    and the deadline (each waiter enforces its own while it waits).
    """

    dataset: str
    eps: float
    min_pts: int
    rho: Optional[float]
    workers: object
    algorithm: str = "grid"
    requested: str = "exact"
    shm: object = None

    @classmethod
    def build(
        cls,
        dataset: str,
        eps: float,
        min_pts: int,
        *,
        rho: Optional[float] = None,
        workers=None,
        algorithm: str = "grid",
        requested: str = "exact",
        shm=None,
    ) -> "RequestKey":
        # A ParallelConfig is not hashable; its repr is deterministic and
        # total, which is all a coalescing key needs.
        if workers is not None and not isinstance(workers, (int, str)):
            workers = repr(workers)
        if shm is not None and not isinstance(shm, (bool, str)):
            shm = repr(shm)
        return cls(
            dataset=str(dataset),
            eps=float(eps),
            min_pts=int(min_pts),
            rho=None if rho is None else float(rho),
            workers=workers,
            algorithm=str(algorithm),
            requested=str(requested),
            shm=shm,
        )


@dataclass
class _Flight:
    """One in-flight computation and the requests attached to it."""

    future: "asyncio.Future"
    waiters: int = 1  # the leader counts too


class SingleFlight:
    """The key -> in-flight-future map (event-loop confined)."""

    def __init__(self) -> None:
        self._flights: Dict[RequestKey, _Flight] = {}

    def acquire(self, key: RequestKey) -> Tuple[_Flight, bool]:
        """Join the flight for ``key``; the bool is "you are the leader".

        The leader must eventually call :meth:`resolve` or
        :meth:`resolve_error` — every attached waiter is awaiting the
        flight's future, and an unresolved future is a hung client.
        """
        flight = self._flights.get(key)
        if flight is not None and not flight.future.done():
            flight.waiters += 1
            return flight, False
        flight = _Flight(future=asyncio.get_running_loop().create_future())
        self._flights[key] = flight
        return flight, True

    def resolve(self, key: RequestKey, response: Dict[str, object]) -> None:
        """Deliver the leader's response to every attached waiter."""
        flight = self._flights.pop(key, None)
        if flight is not None and not flight.future.done():
            flight.future.set_result(response)

    def resolve_error(self, key: RequestKey, exc: BaseException) -> None:
        """Fail every attached waiter with the leader's (structured) error."""
        flight = self._flights.pop(key, None)
        if flight is not None and not flight.future.done():
            flight.future.set_exception(exc)
            # The leader re-raises on its own path; if no waiter ever
            # awaits the future, don't let asyncio log a spurious
            # "exception was never retrieved" warning.
            if flight.waiters <= 1:
                flight.future.exception()

    def in_flight(self) -> int:
        return len(self._flights)


@dataclass
class ServiceStats:
    """Monotonic counters over the service's lifetime (the ``stats`` op)."""

    #: Requests admitted past the queue-depth bound.
    accepted: int = 0
    #: Requests shed *at* admission (queue full / deadline already
    #: expired); disjoint from ``accepted``.
    rejected: int = 0
    #: Accepted requests shed *after* admission because their deadline
    #: expired while queued for an execution slot or while waiting on a
    #: coalesced flight.
    expired: int = 0
    #: Requests that attached to an existing in-flight computation.
    coalesced: int = 0
    #: Clustering executions actually dispatched to the engine.
    executed: int = 0
    #: Executions served below the requested tier (ladder engaged).
    degraded: int = 0
    #: Executions that raised (any error reaching the response).
    failed: int = 0
    #: Transient-failure retries spent by the dispatcher.
    retries: int = 0
    #: Requests refused with :class:`DatasetQuarantinedError` by an open
    #: per-dataset circuit breaker (counted where the check raises).
    quarantined: int = 0
    #: Per-tier execution counts.
    tiers: Dict[str, int] = field(default_factory=dict)

    def count_tier(self, tier: str) -> None:
        self.tiers[tier] = self.tiers.get(tier, 0) + 1

    def as_dict(self) -> Dict[str, object]:
        return {
            "accepted": self.accepted,
            "rejected": self.rejected,
            "expired": self.expired,
            "coalesced": self.coalesced,
            "executed": self.executed,
            "degraded": self.degraded,
            "failed": self.failed,
            "retries": self.retries,
            "quarantined": self.quarantined,
            "tiers": dict(self.tiers),
        }
