"""Tests for the Voronoi-backed variant of Gunawan's 2D algorithm."""

import numpy as np
import pytest

from repro.algorithms.brute import brute_dbscan
from repro.algorithms.exact_grid import exact_grid_dbscan, gunawan_2d_dbscan
from repro.errors import ParameterError

from .conftest import make_blobs


class TestVoronoiEdges:
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_brute(self, seed):
        pts = make_blobs(180, 2, 3, spread=1.2, domain=35.0, seed=seed)
        voronoi = gunawan_2d_dbscan(pts, 2.5, 5, edges="voronoi")
        reference = brute_dbscan(pts, 2.5, 5)
        assert voronoi.same_clusters(reference)
        assert (voronoi.core_mask == reference.core_mask).all()

    def test_matches_kdtree_variant(self):
        pts = make_blobs(150, 2, 4, spread=1.0, domain=30.0, seed=7)
        a = gunawan_2d_dbscan(pts, 2.0, 4, edges="voronoi")
        b = gunawan_2d_dbscan(pts, 2.0, 4, edges="kdtree")
        assert a.same_clusters(b)

    def test_meta_records_edges(self):
        pts = make_blobs(60, 2, 2, spread=1.0, domain=15.0, seed=8)
        res = gunawan_2d_dbscan(pts, 2.0, 4, edges="voronoi")
        assert res.meta["edges"] == "voronoi"

    def test_bad_edges_value(self):
        with pytest.raises(ValueError):
            gunawan_2d_dbscan(np.zeros((5, 2)), 1.0, 2, edges="rtree")

    def test_voronoi_strategy_rejects_3d(self):
        pts = make_blobs(60, 3, 2, spread=1.0, domain=15.0, seed=9)
        with pytest.raises(ParameterError):
            exact_grid_dbscan(pts, 2.0, 4, bcp_strategy="voronoi")

    def test_boundary_pair_at_eps(self):
        # Two 10-point columns whose closest cross pair is exactly at eps:
        # the Voronoi edge test must include it.
        left = np.column_stack([np.zeros(10), np.linspace(0, 0.9, 10)])
        right = left + [1.0, 0.0]
        pts = np.vstack([left, right])
        res = gunawan_2d_dbscan(pts, 1.0, 4, edges="voronoi")
        ref = brute_dbscan(pts, 1.0, 4)
        assert res.same_clusters(ref)
        assert res.n_clusters == 1

    def test_collinear_cells(self):
        # Cells whose core points are collinear exercise the degenerate
        # Voronoi fallback.
        pts = np.column_stack([np.linspace(0, 9, 40), np.zeros(40)])
        res = gunawan_2d_dbscan(pts, 1.0, 3, edges="voronoi")
        ref = brute_dbscan(pts, 1.0, 3)
        assert res.same_clusters(ref)
