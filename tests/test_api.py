"""Tests for the public API surface."""

import numpy as np
import pytest

import repro
from repro.api import EXACT_ALGORITHMS, dbscan
from repro.errors import DataError, ParameterError

from .conftest import make_blobs


class TestDbscanDispatch:
    @pytest.mark.parametrize("algorithm", ["grid", "kdd96", "cit08", "brute"])
    def test_all_algorithms_callable(self, algorithm):
        pts = make_blobs(80, 3, 2, spread=1.0, domain=20.0, seed=0)
        res = dbscan(pts, 2.0, 4, algorithm=algorithm)
        assert res.n == len(pts)

    def test_gunawan_requires_2d(self):
        with pytest.raises(ValueError):
            dbscan(np.zeros((10, 3)), 1.0, 2, algorithm="gunawan2d")

    def test_gunawan_works_2d(self):
        pts = make_blobs(80, 2, 2, spread=1.0, domain=20.0, seed=1)
        res = dbscan(pts, 2.0, 4, algorithm="gunawan2d")
        assert res.meta["algorithm"] == "gunawan2d"

    def test_unknown_algorithm(self):
        with pytest.raises(ParameterError):
            dbscan(np.zeros((3, 2)), 1.0, 2, algorithm="quantum")

    def test_accepts_lists(self):
        res = dbscan([[0.0, 0.0], [0.1, 0.0], [0.2, 0.0]], 1.0, 2)
        assert res.n_clusters == 1

    def test_empty_input_is_legal(self):
        # An empty batch is a legal degenerate workload: the public entry
        # points return the empty clustering instead of erroring.
        res = dbscan([], 1.0, 2)
        assert res.n == 0 and res.n_clusters == 0

    def test_empty_input_still_strict_internally(self):
        from repro.utils.validation import as_points

        with pytest.raises(DataError):
            as_points([], allow_empty=False)
        with pytest.raises(DataError):
            as_points([])  # strict by default

    def test_rejects_bad_eps(self):
        with pytest.raises(ParameterError):
            dbscan([[0.0, 0.0]], -1.0, 2)


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__ == "1.1.0"

    def test_exports(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_exact_algorithms_tuple(self):
        assert "grid" in EXACT_ALGORITHMS
        assert "brute" in EXACT_ALGORITHMS

    def test_top_level_functions(self):
        pts = make_blobs(60, 2, 2, spread=1.0, domain=20.0, seed=2)
        exact = repro.dbscan(pts, 2.0, 4)
        approx = repro.approx_dbscan(pts, 2.0, 4, rho=0.001)
        assert isinstance(exact, repro.Clustering)
        assert isinstance(approx, repro.Clustering)
