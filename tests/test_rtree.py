"""Unit tests for the STR-packed R-tree."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.errors import DataError
from repro.index.rtree import RTree, _min_sq_to_box, _str_sort


def brute_range(points, q, radius):
    sq = ((points - q) ** 2).sum(axis=1)
    return np.nonzero(sq <= radius * radius)[0]


class TestConstruction:
    def test_rejects_empty(self):
        with pytest.raises(DataError):
            RTree(np.empty((0, 2)))

    def test_rejects_small_fanout(self):
        with pytest.raises(DataError):
            RTree(np.zeros((4, 2)), fanout=1)

    def test_str_sort_is_permutation(self):
        rng = np.random.default_rng(0)
        pts = rng.uniform(size=(101, 3))
        order = _str_sort(pts, fanout=8)
        assert sorted(order.tolist()) == list(range(101))

    def test_single_point(self):
        tree = RTree(np.array([[5.0, 5.0]]))
        assert tree.range_query(np.array([5.0, 5.0]), 0.1).tolist() == [0]

    def test_levels_shrink(self):
        rng = np.random.default_rng(1)
        tree = RTree(rng.uniform(size=(300, 2)), fanout=4)
        sizes = [len(level) for level in tree._levels]
        assert sizes[-1] == 1
        assert all(a > b for a, b in zip(sizes, sizes[1:]))


class TestMinSqToBox:
    def test_inside_box_is_zero(self):
        assert _min_sq_to_box(np.array([0.5, 0.5]), np.zeros(2), np.ones(2)) == 0.0

    def test_outside_box(self):
        assert _min_sq_to_box(np.array([2.0, 0.5]), np.zeros(2), np.ones(2)) == pytest.approx(1.0)

    def test_corner_distance(self):
        got = _min_sq_to_box(np.array([2.0, 2.0]), np.zeros(2), np.ones(2))
        assert got == pytest.approx(2.0)


class TestRangeQuery:
    @pytest.mark.parametrize("d", [1, 2, 3, 5, 7])
    @pytest.mark.parametrize("fanout", [2, 8, 16])
    def test_matches_brute(self, d, fanout):
        rng = np.random.default_rng(d * 31 + fanout)
        pts = rng.uniform(0, 100, size=(250, d))
        tree = RTree(pts, fanout=fanout)
        for _ in range(8):
            q = rng.uniform(0, 100, size=d)
            r = float(rng.uniform(1, 50))
            assert tree.range_query(q, r).tolist() == brute_range(pts, q, r).tolist()

    def test_duplicates(self):
        pts = np.array([[1.0, 1.0]] * 37 + [[9.0, 9.0]] * 3)
        tree = RTree(pts, fanout=4)
        assert len(tree.range_query(np.array([1.0, 1.0]), 0.5)) == 37

    def test_empty_result(self):
        tree = RTree(np.zeros((10, 2)))
        out = tree.range_query(np.array([100.0, 100.0]), 1.0)
        assert out.dtype == np.int64 and len(out) == 0


class TestCountWithin:
    def test_matches_range_query(self):
        rng = np.random.default_rng(77)
        pts = rng.uniform(0, 10, size=(180, 4))
        tree = RTree(pts, fanout=8)
        for _ in range(10):
            q = rng.uniform(0, 10, size=4)
            r = float(rng.uniform(0.5, 6))
            assert tree.count_within(q, r) == len(tree.range_query(q, r))

    def test_cap_respected(self):
        pts = np.zeros((50, 2))
        tree = RTree(pts, fanout=4)
        assert tree.count_within(np.zeros(2), 1.0, cap=7) >= 7


class TestKDTreeRTreeAgree:
    def test_same_answers(self):
        from repro.index.kdtree import KDTree

        rng = np.random.default_rng(5)
        pts = rng.normal(0, 10, size=(220, 3))
        kd, rt = KDTree(pts), RTree(pts)
        for _ in range(10):
            q = rng.normal(0, 10, size=3)
            r = float(rng.uniform(1, 15))
            assert kd.range_query(q, r).tolist() == rt.range_query(q, r).tolist()


@settings(max_examples=40, deadline=None)
@given(
    pts=arrays(np.float64, st.tuples(st.integers(1, 40), st.just(2)),
               elements=st.floats(-100, 100)),
    q=arrays(np.float64, (2,), elements=st.floats(-100, 100)),
    radius=st.floats(0.0, 120.0),
)
def test_property_range_matches_brute(pts, q, radius):
    tree = RTree(pts, fanout=3)
    assert tree.range_query(q, radius).tolist() == brute_range(pts, q, radius).tolist()
