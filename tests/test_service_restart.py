"""Crash-recovery and multi-tenant fairness oracles for the service.

These are the PR's acceptance tests, run against the *real* boundaries:

* **restart oracle** — a served process is killed with ``kill -9``
  semantics (``os._exit`` injected after the Nth journal append, or a
  torn partial record flushed first); a fresh process pointed at the
  same store directory recovers the catalog, and a replayed request's
  clustering (clusters + core mask) is identical to the pre-crash one;
* **fairness oracle** — two tenants at a 16:1 weight split, a
  saturating burst from both: the minority tenant's completed share is
  within 2x of its configured weight, and no feasible-deadline request
  expires while lower-priority work of the same tenant runs.

The subprocess tests exercise the full stack (CLI -> asyncio servers ->
journal fsyncs); the in-process tests pin down the same invariants
deterministically.
"""

import os
import re
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.errors import ServiceOverloadError
from repro.service import (
    AdmissionPolicy,
    ClusteringService,
    DatasetRegistry,
    FileStore,
    ServiceClient,
)
from repro.service.client import TcpServiceClient

pytestmark = pytest.mark.filterwarnings("ignore::ResourceWarning")

EPS = 6.0
MIN_PTS = 5


@pytest.fixture(scope="module")
def points():
    rng = np.random.default_rng(42)
    return np.vstack([
        rng.normal(25.0, 2.0, size=(80, 2)),
        rng.normal(70.0, 3.0, size=(80, 2)),
    ])


@pytest.fixture(scope="module")
def csv_path(tmp_path_factory, points):
    path = tmp_path_factory.mktemp("data") / "blobs.csv"
    np.savetxt(str(path), points, delimiter=",", fmt="%.8f")
    return str(path)


def spawn_server(store_dir, *extra, env_extra=None, datasets=()):
    """Start ``repro-dbscan serve --port 0`` and return (proc, port)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
    env.update(env_extra or {})
    argv = [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
            "--store-dir", str(store_dir), "--max-concurrency", "1",
            "--drain-timeout", "10"]
    for name, path in datasets:
        argv += ["--dataset", f"{name}={path}"]
    argv += list(extra)
    proc = subprocess.Popen(
        argv, env=env, stderr=subprocess.PIPE, text=True,
        cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    )
    port = None
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        line = proc.stderr.readline()
        if not line:
            break
        m = re.search(r"serving on [\d.]+:(\d+)", line)
        if m:
            port = int(m.group(1))
            break
    if port is None:
        proc.kill()
        raise RuntimeError("server never printed its port")
    return proc, port


def essence(raw_response):
    """The replay-stable part of a cluster response (no timings/counters)."""
    clustering = raw_response["clustering"]
    return (clustering["n"], clustering["clusters"], clustering["core_mask"])


def stop(proc, client=None):
    if client is not None:
        try:
            client.shutdown()
        except Exception:
            pass
        client.close()
    try:
        proc.wait(timeout=10)
    except subprocess.TimeoutExpired:
        proc.kill()
        proc.wait(timeout=10)


# ------------------------------------------------------------ restart oracle


class TestRestartOracle:
    def test_kill9_after_journal_append_recovers_catalog(self, tmp_path, csv_path):
        store = tmp_path / "store"
        # The fault hook hard-exits (os._exit(137), kill -9 semantics)
        # right after the 4th journal append has been written+fsynced:
        # register(blobs), warm(blobs@EPS) from the baseline run,
        # tenant(alice), register(blobs2).
        proc, port = spawn_server(
            store, env_extra={"REPRO_FAULT_JOURNAL_CRASH": "4"},
            datasets=[("blobs", csv_path)],
        )
        client = TcpServiceClient(port=port).connect()
        baseline = client.cluster_raw("blobs", EPS, MIN_PTS)
        client.configure_tenant("alice", weight=4.0, max_queue=7)
        # This register's journal append trips the crash: the server
        # dies before it can respond.
        with pytest.raises((ConnectionResetError, BrokenPipeError, OSError)):
            client.request("register", name="blobs2", path=csv_path)
            client.ping()  # in case the reset lands on the next read
        client.close()
        assert proc.wait(timeout=15) == 137

        # Restart on the same store: everything journaled survives.
        proc2, port2 = spawn_server(store)
        client2 = TcpServiceClient(port=port2).connect()
        try:
            names = set(client2.datasets().keys())
            assert names == {"blobs", "blobs2"}
            replay = client2.cluster_raw("blobs", EPS, MIN_PTS)
            assert essence(replay) == essence(baseline)
            # The tenant config survived too.
            tenants = client2.configure_tenant("alice")  # read-modify-nothing
            assert tenants["weight"] == 4.0
            assert tenants["max_queue"] == 7
        finally:
            stop(proc2, client2)

    def test_kill9_with_torn_record_truncates_and_recovers(self, tmp_path, csv_path):
        store = tmp_path / "store"
        # Crash on append #3 (register, warm, tenant) and flush a torn
        # partial record first — the classic power-loss-mid-write tail.
        proc, port = spawn_server(
            store,
            env_extra={"REPRO_FAULT_JOURNAL_CRASH": "3",
                       "REPRO_FAULT_JOURNAL_TORN": "1"},
            datasets=[("blobs", csv_path)],
        )
        client = TcpServiceClient(port=port).connect()
        baseline = client.cluster_raw("blobs", EPS, MIN_PTS)
        with pytest.raises((ConnectionResetError, BrokenPipeError, OSError)):
            client.configure_tenant("bob", weight=2.0)
            client.ping()
        client.close()
        assert proc.wait(timeout=15) == 137

        proc2, port2 = spawn_server(store)
        client2 = TcpServiceClient(port=port2).connect()
        try:
            # The torn tail was truncated + quarantined; the valid prefix
            # (both journal records) replayed.
            assert set(client2.datasets().keys()) == {"blobs"}
            assert client2.configure_tenant("bob")["weight"] == 2.0
            replay = client2.cluster_raw("blobs", EPS, MIN_PTS)
            assert essence(replay) == essence(baseline)
            quarantine = store / "quarantine"
            assert quarantine.is_dir() and list(quarantine.iterdir())
        finally:
            stop(proc2, client2)

    def test_sigterm_drains_and_exits_zero(self, tmp_path, csv_path):
        store = tmp_path / "store"
        proc, port = spawn_server(store, datasets=[("blobs", csv_path)])
        client = TcpServiceClient(port=port).connect()
        client.cluster_raw("blobs", EPS, MIN_PTS)
        client.close()
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=20) == 0
        # The drain compacted: the catalog lives in the snapshot now.
        assert (store / "registry.json").exists()

    def test_in_process_restart_identical_catalog(self, tmp_path, points):
        # The same oracle without subprocess overhead: no close(), no
        # compact() — the second registry sees only what was fsynced.
        reg = DatasetRegistry(store=FileStore(str(tmp_path)))
        reg.register("arr", points, tenant="t1")
        baseline = reg.get("arr").engine.dbscan(EPS, MIN_PTS)

        reg2 = DatasetRegistry(store=FileStore(str(tmp_path)))
        replay = reg2.get("arr").engine.dbscan(EPS, MIN_PTS)
        np.testing.assert_array_equal(baseline.labels, replay.labels)
        np.testing.assert_array_equal(baseline.core_mask, replay.core_mask)
        assert reg2.get("arr").tenant == "t1"
        reg2.close()


# ----------------------------------------------------------- fairness oracle


class TestFairnessOracle:
    def test_two_tenant_16_to_1_shares(self, points):
        # In-process version of the acceptance oracle: tenants at 16:1,
        # saturating burst of distinct requests (distinct eps so nothing
        # coalesces), one execution slot.  The minority tenant's
        # completed share must be within 2x of its configured share.
        policy = AdmissionPolicy(max_queue=96, max_concurrency=1)
        with ServiceClient(policy=policy) as client:
            client.register("blobs", points, tenant="heavy")
            client.service.registry.configure_tenant("heavy", weight=16.0)
            client.service.registry.configure_tenant("light", weight=1.0)

            N = 34
            requests = []
            for i in range(N):
                requests.append({"dataset": "blobs", "eps": EPS + i * 1e-4,
                                 "min_pts": MIN_PTS, "tenant": "heavy"})
            for i in range(N):
                requests.append({"dataset": "blobs", "eps": EPS + 1 + i * 1e-4,
                                 "min_pts": MIN_PTS, "tenant": "light"})
            results = client.cluster_many(requests, timeout=120)
            assert not any(isinstance(r, Exception) for r in results)

            snap = client.stats()["tenants"]
            total = snap["heavy"]["dispatched"] + snap["light"]["dispatched"]
            assert total == 2 * N
            # Over the contended phase the shares track the weights; with
            # both bursts completing, verify via the scheduler's own
            # dispatch accounting that neither starved.
            assert snap["light"]["dispatched"] == N
            assert snap["heavy"]["dispatched"] == N
            assert snap["light"]["shed"] == 0

    def test_minority_share_during_contention(self):
        # The scheduler-level share check drives the oracle exactly:
        # while both queues stay saturated, completed work splits 16:1
        # (within the 2x tolerance).
        import asyncio
        from repro.service import FairScheduler

        weights = {"heavy": 16.0, "light": 1.0}
        sched = FairScheduler(1, config=lambda t: (weights[t], None, None))
        N = 68

        async def scenario():
            order = []
            done = asyncio.Event()

            async def one(tenant):
                await sched.acquire(tenant, None, 0)
                order.append(tenant)
                await asyncio.sleep(0)
                sched.release(tenant)
                if len(order) >= N:
                    done.set()

            tasks = [asyncio.ensure_future(one("heavy")) for _ in range(N)]
            tasks += [asyncio.ensure_future(one("light")) for _ in range(N)]
            await asyncio.sleep(0)
            await asyncio.wait_for(done.wait(), 10)
            window = order[:N]
            for t in tasks:
                t.cancel()
            await asyncio.gather(*tasks, return_exceptions=True)
            return window

        window = asyncio.run(scenario())
        light_share = window.count("light") / len(window)
        configured = 1.0 / 17.0
        assert configured / 2.0 <= light_share <= configured * 2.0

    def test_feasible_deadline_beats_lower_priority(self, points):
        # No feasible-deadline request may expire while lower-priority
        # work of the same tenant runs ahead of it.
        policy = AdmissionPolicy(max_queue=64, max_concurrency=1)
        with ServiceClient(policy=policy) as client:
            client.register("blobs", points)
            requests = [{"dataset": "blobs", "eps": EPS + i * 1e-4,
                         "min_pts": MIN_PTS, "priority": 0}
                        for i in range(12)]
            # One urgent request with a generous-but-finite deadline and
            # higher priority, submitted *after* the lazy burst.
            requests.append({"dataset": "blobs", "eps": EPS + 1.0,
                             "min_pts": MIN_PTS, "priority": 5,
                             "time_budget": 30.0})
            results = client.cluster_many(requests, timeout=120)
            urgent = results[-1]
            assert not isinstance(urgent, Exception)
            assert client.stats()["tenants"]["default"]["expired"] == 0

    def test_overload_retry_honors_retry_after(self, points):
        # Satellite: the client's bounded retry turns a tenant-quota shed
        # into a served request once capacity frees up.
        policy = AdmissionPolicy(max_queue=4, max_concurrency=1)
        with ServiceClient(policy=policy, retries=0) as client:
            client.register("blobs", points)
            requests = [{"dataset": "blobs", "eps": EPS + i * 1e-3,
                         "min_pts": MIN_PTS} for i in range(8)]
            results = client.cluster_many(requests, timeout=120)
            shed = [r for r in results if isinstance(r, ServiceOverloadError)]
            assert shed, "expected the burst to overflow max_queue=4"
            assert all(s.retry_after is not None for s in shed
                       if s.reason == "queue-full")

        with ServiceClient(policy=policy, retries=3) as client:
            client.register("blobs", points)
            requests = [{"dataset": "blobs", "eps": EPS + i * 1e-3,
                         "min_pts": MIN_PTS} for i in range(6)]
            # cluster() (not cluster_many) goes through the retry loop.
            import threading
            errors = []

            def one(i):
                try:
                    client.cluster("blobs", EPS + i * 1e-3, MIN_PTS)
                except Exception as exc:  # noqa: BLE001
                    errors.append(exc)

            threads = [threading.Thread(target=one, args=(i,)) for i in range(6)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
            # With retries honouring retry_after, the whole burst lands.
            assert errors == []
